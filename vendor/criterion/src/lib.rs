//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the API surface the workspace's seven bench targets use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a straightforward wall-clock loop: a short warm-up sizes
//! the per-sample iteration count to ~5 ms, then `sample_size` samples are
//! taken and the mean/min/max per-iteration times reported. Results go to
//! stdout, and — when the `CRITERION_JSON` environment variable names a file
//! — are appended there as JSON lines so baselines can be checked in.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_SAMPLE: Duration = Duration::from_millis(5);
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Top-level benchmark driver, handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the CLI arguments cargo-bench forwards (`--bench`, an optional
    /// name filter); flags are ignored, the first free argument filters by
    /// substring, exactly like real criterion's basic usage.
    pub fn configure_from_args() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Criterion { filter }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&full);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size the per-sample iteration count to ~TARGET_SAMPLE.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let total = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(total / iters as f64);
        }
    }

    fn report(&self, full_id: &str) {
        if self.samples_ns.is_empty() {
            println!("{full_id:<48} (no samples collected)");
            return;
        }
        let n = self.samples_ns.len() as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0, f64::max);
        println!(
            "{full_id:<48} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"id\":\"{full_id}\",\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{}}}",
                self.samples_ns.len()
            );
            line.push('\n');
            use std::io::Write as _;
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = file.write_all(line.as_bytes());
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declares a group function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_filters() {
        let mut c = Criterion {
            filter: Some("keep".into()),
        };
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("keep_me", |b| {
                ran.push("keep");
                b.iter(|| black_box(1u64 + 1));
            });
            g.bench_function("skip_me", |b| {
                ran.push("skip");
                b.iter(|| black_box(2u64 + 2));
            });
            g.finish();
        }
        assert_eq!(ran, vec!["keep"]);
    }
}
