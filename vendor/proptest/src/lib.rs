//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the property-testing surface the workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, [`arbitrary::any`], integer-range and tuple strategies,
//! [`collection::vec`], [`array::uniform3`], `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//! macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the assertion message; the RNG is deterministic (seeded from the test
//!   name, overridable with `PROPTEST_SEED`), so failures reproduce exactly.
//! * **Uniform choice in `prop_oneof!`** rather than weighted.
//! * `prop_recursive(depth, ..)` unrolls the recursion `depth` levels with a
//!   50/50 leaf/recurse split per level instead of size-budgeted growth.

pub mod test_runner {
    /// Deterministic SplitMix64 generator used by all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(state: u64) -> Self {
            TestRng { state }
        }

        /// Seeds from the test name (FNV-1a), so each property gets an
        /// independent but reproducible stream. `PROPTEST_SEED` overrides.
        pub fn deterministic(name: &str) -> Self {
            if let Some(seed) = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
            {
                return TestRng::from_seed(seed);
            }
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; modulo bias is irrelevant here.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot draw below 0");
            self.next_u64() % bound
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree and no shrinking:
    /// `generate` draws a value directly from the RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Unrolls `depth` recursion levels; each level is a 50/50 choice
        /// between the leaf strategy and one application of `recurse`.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            strat
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives; backs `prop_oneof!`.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = rng.next_u64() as u128 % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = rng.next_u64() as u128 % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Accepted size arguments for [`vec`]: an exact length or a half-open
    /// range of lengths.
    pub trait IntoSizeRange {
        /// Returns `(min, max)` inclusive.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length lies in `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`uniform3`].
    pub struct Uniform3<S>(S);

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }

    /// An array of three values drawn independently from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3(element)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Declares property tests. Each `name in strategy` argument is drawn
/// freshly per case; the body runs `config.cases` times. Attributes
/// (including `#[test]` and doc comments) pass through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_bounded(a in 0u64..100, b in -5i32..5, c in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert!((-5..5).contains(&b));
            let _ = c;
        }

        #[test]
        fn vec_and_tuple_strategies(
            xs in crate::collection::vec((0u64..10, any::<bool>()), 1..6),
            trio in crate::array::uniform3(-3i32..3),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() <= 5);
            for (v, _) in &xs {
                prop_assert!(*v < 10);
            }
            prop_assert_eq!(trio.len(), 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Recursive strategies terminate and map correctly.
        #[test]
        fn recursion_and_oneof(n in recursive_depth_strategy()) {
            prop_assert!(n <= 3);
        }
    }

    fn recursive_depth_strategy() -> BoxedStrategy<u32> {
        let leaf = (0u32..1).prop_map(|z| z);
        leaf.prop_recursive(3, 8, 2, |inner| {
            prop_oneof![inner.clone().prop_map(|d| d + 1), inner.prop_map(|d| d)]
        })
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
