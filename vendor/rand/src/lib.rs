//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}` and
//! `seq::SliceRandom::shuffle` — backed by SplitMix64. Every consumer in the
//! workspace seeds explicitly, so determinism is the contract that matters,
//! not the exact stream of the upstream `StdRng` (which is version-dependent
//! in upstream `rand` anyway and must never be relied on).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided;
/// that is the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from a raw 64-bit word via [`Rng::gen`].
pub trait Standard: Sized {
    fn from_word(word: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_word(word: u64) -> Self {
                word as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_word(word: u64) -> Self {
        word & 1 == 1
    }
}

impl Standard for f64 {
    fn from_word(word: u64) -> Self {
        (word >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_word(self.next_u64())
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers. Only `shuffle` (Fisher–Yates) is provided.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-100..100);
            assert!((-100..100).contains(&v));
            let u: usize = rng.gen_range(0..5);
            assert!(u < 5);
            let b: u8 = rng.gen_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "seed 9 should not yield the identity permutation"
        );
    }
}
