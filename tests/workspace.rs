//! Workspace smoke test: every module re-exported by the `cheri` facade must
//! be reachable, and the enum universes the harness iterates over must be
//! non-empty and free of duplicates. A manifest regression (a dropped
//! dependency edge or a renamed re-export) fails here loudly instead of
//! surfacing as a confusing downstream error.

use std::collections::HashSet;

#[test]
fn facade_reexports_are_reachable() {
    // cap
    let c = cheri::cap::Capability::new_mem(0x1000, 64, cheri::cap::Perms::data());
    assert!(c.check_access(1, cheri::cap::Perms::LOAD).is_ok());
    // mem
    let _ = cheri::mem::TaggedMemory::new(4096);
    // cache
    let _ = cheri::cache::HierarchyConfig::default();
    // isa
    assert!(!cheri::isa::Op::ALL.is_empty());
    // vm
    let _ = cheri::vm::VmConfig::default();
    // c
    assert!(cheri::c::parse("int main(void) { return 0; }").is_ok());
    // interp
    assert!(!cheri::interp::ModelKind::ALL.is_empty());
    // idioms
    assert!(!cheri::idioms::Idiom::ALL.is_empty());
    // compile
    assert!(!cheri::compile::Abi::ALL.is_empty());
    // gc + workloads are reachable as modules; touch a cheap item from each
    let _ = cheri::gc::GcStats::default();
    assert!(!cheri::workloads::sources::dhrystone(1).is_empty());
}

#[test]
fn model_kinds_are_nonempty_and_distinct() {
    let all = cheri::interp::ModelKind::ALL;
    assert_eq!(all.len(), 7, "the paper evaluates seven memory models");
    let unique: HashSet<String> = all.iter().map(|m| format!("{m:?}")).collect();
    assert_eq!(unique.len(), all.len(), "duplicate ModelKind in ALL");
    let names: HashSet<&str> = all.iter().map(|m| m.display_name()).collect();
    assert_eq!(names.len(), all.len(), "duplicate ModelKind display name");
}

#[test]
fn abis_are_nonempty_and_distinct() {
    let all = cheri::compile::Abi::ALL;
    assert_eq!(all.len(), 3, "MIPS, CHERIv2 and CHERIv3 code generation");
    let unique: HashSet<String> = all.iter().map(|a| format!("{a:?}")).collect();
    assert_eq!(unique.len(), all.len(), "duplicate Abi in ALL");
}
