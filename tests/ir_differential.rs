//! Differential coverage for the IR lowering: the lowered interpreter must
//! produce byte-identical `ExecResult`s (exit code, output, `RtError`) to
//! the idiom corpus's paper-expected outcomes across all seven models, and
//! the shared-lowering path must agree exactly with the lower-per-run path
//! on arbitrary generated programs.

use cheri::idioms::{cases, Idiom};
use cheri::interp::{run_main, run_main_all, LoweredUnit, ModelKind};
use proptest::prelude::*;

/// Every cell of the 7×8 matrix, executed through the shared lowering,
/// must reproduce the paper's Table 3 verdict — and match the
/// lower-per-run path byte for byte.
#[test]
fn idiom_corpus_expected_outcomes_on_lowered_interpreter() {
    for idiom in Idiom::ALL {
        let unit = cheri::c::parse(cases::source(idiom)).expect("idiom cases parse");
        let lowered = LoweredUnit::new(&unit);
        for model in ModelKind::ALL {
            let shared = lowered.run(model);
            let fresh = run_main(&unit, model);
            assert_eq!(
                shared, fresh,
                "shared vs fresh lowering at ({model}, {idiom})"
            );
            let works = shared.as_ref().map(|r| r.exit_code == 0).unwrap_or(false);
            assert_eq!(
                works,
                cases::paper_expected(model, idiom).works(),
                "({model}, {idiom}): got {shared:?}"
            );
        }
    }
}

/// The threaded fan-out must be observationally identical to running the
/// models one by one, in `ModelKind::ALL` order.
#[test]
fn run_main_all_is_deterministic_and_exact() {
    for idiom in [Idiom::Container, Idiom::Mask, Idiom::Wide] {
        let unit = cheri::c::parse(cases::source(idiom)).expect("idiom cases parse");
        let all = run_main_all(&unit);
        let kinds: Vec<ModelKind> = all.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds, ModelKind::ALL.to_vec());
        for (k, r) in all {
            assert_eq!(r, run_main(&unit, k), "{k} on {idiom}");
        }
    }
}

// --- Property test: generated programs, shared vs fresh lowering --------

#[derive(Debug, Clone)]
enum S {
    Assign(usize, i64),
    AddVar(usize, usize),
    IfLess(usize, usize, i64),
    Loop(usize, u8),
    ArrStore(usize, usize),
    Print(usize),
}

const NVARS: usize = 4;

fn arb_stmt() -> impl Strategy<Value = S> {
    prop_oneof![
        ((0..NVARS), -50i64..50).prop_map(|(v, k)| S::Assign(v, k)),
        ((0..NVARS), 0..NVARS).prop_map(|(a, b)| S::AddVar(a, b)),
        ((0..NVARS), (0..NVARS), -20i64..20).prop_map(|(a, b, k)| S::IfLess(a, b, k)),
        ((0..NVARS), 1u8..6).prop_map(|(v, n)| S::Loop(v, n)),
        ((0..5usize), 0..NVARS).prop_map(|(i, v)| S::ArrStore(i, v)),
        (0..NVARS).prop_map(S::Print),
    ]
}

fn render(stmts: &[S]) -> String {
    let mut body = String::new();
    for i in 0..NVARS {
        body.push_str(&format!("    long v{i} = {};\n", i * 3));
    }
    body.push_str("    long a[5];\n");
    body.push_str("    for (int i = 0; i < 5; i++) a[i] = i;\n");
    for s in stmts {
        match s {
            S::Assign(v, k) => body.push_str(&format!("    v{v} = {k};\n")),
            S::AddVar(a, b) => body.push_str(&format!("    v{a} += v{b} + 1;\n")),
            S::IfLess(a, b, k) => body.push_str(&format!(
                "    if (v{a} < v{b}) {{ v{a} = v{b} + {k}; }} else {{ v{b}--; }}\n"
            )),
            S::Loop(v, n) => body.push_str(&format!(
                "    for (int i = 0; i < {n}; i++) {{ v{v} += i; }}\n"
            )),
            S::ArrStore(i, v) => {
                body.push_str(&format!("    a[{i}] = v{v}; v{v} = a[{i}] + a[0];\n"))
            }
            S::Print(v) => body.push_str(&format!("    putint((int)(v{v} % 1000));\n")),
        }
    }
    body.push_str("    long r = (v0 + v1 + v2 + v3 + a[2]) % 100000;\n");
    body.push_str("    return (int)(r < 0 ? -r : r);\n");
    format!("int main(void) {{\n{body}}}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharing one lowering across the seven models is byte-identical —
    /// exit code, output and error — to lowering per run.
    #[test]
    fn shared_lowering_equals_fresh_lowering(
        stmts in proptest::collection::vec(arb_stmt(), 1..8),
    ) {
        let src = render(&stmts);
        let unit = cheri::c::parse(&src).expect("generated program parses");
        let lowered = LoweredUnit::new(&unit);
        for model in ModelKind::ALL {
            let shared = lowered.run(model);
            let fresh = run_main(&unit, model);
            prop_assert_eq!(shared, fresh, "{} disagrees on:\n{}", model, &src);
        }
    }
}
