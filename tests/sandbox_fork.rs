//! Fork determinism: a request served from a copy-on-write fork of a
//! warmed snapshot must be bit-identical — architectural state, output,
//! retired instructions, simulated cycles, cache and DRAM-traffic
//! ledgers — to the same request served by a cold-booted guest, for every
//! capability format and execution backend. And a batch must produce the
//! same responses under any worker count, because each request runs on
//! its own fork.

use cheri::compile::{compile, Abi};
use cheri::isa::Program;
use cheri::sandbox::{guests, Request, SandboxService, TenantConfig};
use cheri::vm::{BackendKind, CapFormat, TrapCause, Vm, VmConfig, VmTrap};

const TENANT_MEM: u64 = 4 << 20;

const BACKENDS: [BackendKind; 4] = [
    BackendKind::Reference,
    BackendKind::Chained,
    BackendKind::Template,
    BackendKind::Native,
];

fn cfg(format: CapFormat, backend: BackendKind) -> VmConfig {
    // The FPGA preset carries the cache model, so the comparison also
    // covers the traffic ledger, not just the architectural state.
    VmConfig::fpga()
        .with_mem_size(TENANT_MEM)
        .with_cap_format(format)
        .with_backend(backend)
}

/// Boots `prog` from scratch and runs it to the guest's ready marker —
/// the path a request would take without snapshot forking.
fn cold_boot(prog: &Program, vm_cfg: VmConfig) -> Vm {
    let mut vm = Vm::new(prog.clone(), vm_cfg);
    match vm.run(u64::MAX) {
        Err(VmTrap {
            pc,
            cause: TrapCause::Breakpoint,
        }) => vm.set_pc(pc + 1),
        other => panic!("guest must reach its ready marker, got {other:?}"),
    }
    vm
}

/// Copies `payload` into the guest's `request` / `request_len` globals,
/// exactly as the service does on a fork.
fn inject(vm: &mut Vm, prog: &Program, payload: &[u8]) {
    let sym = |name: &str| {
        prog.symbols
            .iter()
            .find(|s| !s.is_func && s.name == name)
            .unwrap_or_else(|| panic!("guest has a {name:?} global"))
            .value
    };
    vm.mem_mut().write_bytes(sym("request"), payload).unwrap();
    vm.mem_mut()
        .write_u64(sym("request_len"), payload.len() as u64)
        .unwrap();
}

/// Asserts two machines that ran the same guest are observationally
/// identical: registers, capabilities, output, and the full statistics
/// block (instructions, cycles, fetch checks, cache hit/miss and traffic
/// ledger, compression tallies).
fn assert_vms_identical(a: &Vm, b: &Vm, what: &str) {
    for r in 0..32 {
        assert_eq!(a.reg(r), b.reg(r), "{what}: integer register {r}");
        assert_eq!(a.cap(r), b.cap(r), "{what}: capability register {r}");
    }
    assert_eq!(a.output(), b.output(), "{what}: console output");
    let (sa, sb) = (a.stats(), b.stats());
    assert_eq!(sa.instret, sb.instret, "{what}: instructions retired");
    assert_eq!(sa.cycles, sb.cycles, "{what}: simulated cycles");
    assert_eq!(sa.fetch_checks, sb.fetch_checks, "{what}: PCC validations");
    assert_eq!(sa.cache, sb.cache, "{what}: cache stats + traffic ledger");
    assert_eq!(sa.compression, sb.compression, "{what}: compression stats");
}

#[test]
fn fork_matches_cold_boot_across_formats_and_backends() {
    let source = guests::tree_service(6);
    let prog = compile(&source, Abi::CheriV3).unwrap();
    for format in [CapFormat::Cap256, CapFormat::Cap128] {
        for backend in BACKENDS {
            let what = format!("{format:?}/{backend:?}");
            let vm_cfg = cfg(format, backend);

            let mut service = SandboxService::new();
            let tenant = service
                .add_tenant(
                    TenantConfig::new(&format!("tree-{what}"), source.clone(), Abi::CheriV3)
                        .with_vm(vm_cfg),
                )
                .unwrap();

            let mut forked = service.fork_tenant(tenant);
            let mut cold = cold_boot(&prog, vm_cfg);
            assert_vms_identical(&forked, &cold, &format!("{what} at the ready marker"));

            inject(&mut forked, &prog, b"determinism");
            inject(&mut cold, &prog, b"determinism");
            let exit_forked = forked.run(u64::MAX).expect("forked guest completes");
            let exit_cold = cold.run(u64::MAX).expect("cold guest completes");
            assert_eq!(exit_forked.code, exit_cold.code, "{what}: exit code");
            assert_vms_identical(&forked, &cold, &format!("{what} after the request"));
        }
    }
}

#[test]
fn trapping_fork_matches_trapping_cold_boot() {
    let source = guests::oob_service();
    let prog = compile(&source, Abi::CheriV3).unwrap();
    for format in [CapFormat::Cap256, CapFormat::Cap128] {
        for backend in BACKENDS {
            let what = format!("{format:?}/{backend:?}");
            let vm_cfg = cfg(format, backend);

            let mut service = SandboxService::new();
            let tenant = service
                .add_tenant(
                    TenantConfig::new(&format!("oob-{what}"), source.clone(), Abi::CheriV3)
                        .with_vm(vm_cfg),
                )
                .unwrap();

            // An odd leading byte sends the guest out of bounds: the trap
            // program counter and cause must also be reproducible.
            let mut forked = service.fork_tenant(tenant);
            let mut cold = cold_boot(&prog, vm_cfg);
            inject(&mut forked, &prog, &[9, 1, 2]);
            inject(&mut cold, &prog, &[9, 1, 2]);
            let trap_forked = forked.run(u64::MAX).expect_err("forked guest traps");
            let trap_cold = cold.run(u64::MAX).expect_err("cold guest traps");
            assert_eq!(trap_forked.pc, trap_cold.pc, "{what}: trap pc");
            assert_eq!(trap_forked.cause, trap_cold.cause, "{what}: trap cause");
            assert_vms_identical(&forked, &cold, &format!("{what} after the trap"));
        }
    }
}

#[test]
fn parallel_service_matches_serial_service() {
    let mut service = SandboxService::new();
    let fleet = [
        (
            "tree".to_string(),
            guests::tree_service(6),
            CapFormat::Cap256,
        ),
        (
            "table".to_string(),
            guests::table_service(),
            CapFormat::Cap128,
        ),
        ("oob".to_string(), guests::oob_service(), CapFormat::Cap256),
    ];
    for (name, source, format) in fleet {
        service
            .add_tenant(
                TenantConfig::new(&name, source, Abi::CheriV3)
                    .with_vm(
                        VmConfig::functional()
                            .with_mem_size(TENANT_MEM)
                            .with_cap_format(format),
                    )
                    // A tight quantum, so multi-slice preemption and
                    // re-queueing are actually on the tested path.
                    .with_fuel_slice(1_000),
            )
            .unwrap();
    }
    // Mixed stream: completing, hashing, trapping (odd lead byte) and
    // oversized (rejected) requests, deliberately interleaved.
    let requests: Vec<Request> = (0..48)
        .map(|i| Request {
            tenant: i % 3,
            payload: match i % 4 {
                0 => vec![i as u8; 1 + i % 20],
                1 => vec![2 * i as u8 + 1; 3],
                2 => vec![i as u8],
                _ => vec![0xAB; 1000], // larger than every request buffer
            },
        })
        .collect();

    let serial = service.serve(&requests, 1);
    assert_eq!(serial.len(), requests.len());
    assert!(serial.iter().any(|r| r.outcome.is_completed()));
    assert!(
        serial
            .iter()
            .any(|r| matches!(r.outcome, cheri::sandbox::Outcome::Trapped { .. })),
        "the stream must exercise the rewind path"
    );
    assert!(
        serial
            .iter()
            .any(|r| matches!(r.outcome, cheri::sandbox::Outcome::Rejected { .. })),
        "the stream must exercise payload rejection"
    );
    for workers in [2, 4, 8] {
        let parallel = service.serve(&requests, workers);
        assert_eq!(
            serial, parallel,
            "responses must not depend on {workers}-worker interleaving"
        );
    }
}
