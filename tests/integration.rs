//! Cross-crate integration tests: the full pipeline from C source through
//! the front end, both execution substrates (interpreter and compiled
//! emulator), the idiom machinery and the collector.

use cheri::cap::{Capability, Perms};
use cheri::compile::{compile, Abi};
use cheri::idioms::{analyzer, cases, Idiom};
use cheri::interp::{run_main, ModelKind};
use cheri::vm::{Vm, VmConfig};
use cheri::workloads::{inputs, runner, sources};

/// The same program must produce the same answer on every memory model of
/// the interpreter AND on every compiled ABI — six substrates total.
#[test]
fn interpreter_and_compiler_agree_everywhere() {
    let src = r#"
        struct node { long v; struct node *next; };
        int main(void) {
            struct node *head = 0;
            long sum = 0;
            for (int i = 1; i <= 12; i++) {
                struct node *n = (struct node*)malloc(sizeof(struct node));
                n->v = i * i;
                n->next = head;
                head = n;
            }
            while (head) {
                sum = sum + head->v;
                head = head->next;
            }
            return (int)(sum % 251);
        }
    "#;
    let expect = (1..=12i64).map(|i| i * i).sum::<i64>() % 251;
    let unit = cheri::c::parse(src).unwrap();
    for model in ModelKind::ALL {
        let r = run_main(&unit, model).unwrap_or_else(|e| panic!("{model}: {e}"));
        assert_eq!(r.exit_code, expect, "interp/{model}");
    }
    for abi in Abi::ALL {
        let prog = compile(src, abi).unwrap();
        let mut vm = Vm::new(prog, VmConfig::functional());
        let exit = vm.run(10_000_000).unwrap();
        assert_eq!(exit.code, expect, "vm/{abi}");
    }
}

/// The idiom test cases that the analyzer detects are exactly the ones the
/// interpreter's models judge: the two views of the taxonomy are linked.
#[test]
fn analyzer_flags_every_failing_idiom_case() {
    for idiom in Idiom::ALL {
        let unit = cheri::c::parse(cases::source(idiom)).unwrap();
        let counts = analyzer::analyze(&unit);
        // The II case writes its arithmetic across statements, which the
        // analyzer classifies as Sub — mirroring the paper's own note that
        // "most of the cases of invalid intermediates also involve
        // subtraction" and the classification is heuristic (§2).
        let hits = if idiom == Idiom::II {
            counts.get(Idiom::II) + counts.get(Idiom::Sub)
        } else {
            counts.get(idiom)
        };
        assert!(hits > 0, "{idiom}: the canonical case must be flagged");
    }
}

/// End-to-end security story: the compiled CHERI program confines an
/// overflow that the interpreter's PDP-11 model lets corrupt memory.
#[test]
fn overflow_containment_end_to_end() {
    let src = r#"
        int main(void) {
            char *a = (char*)malloc(32);
            char *b = (char*)malloc(32);
            b[0] = 42;
            for (int i = 0; i < 200; i++) {
                a[i] = 0;     /* tramples b on unsafe substrates */
            }
            return (int)b[0];
        }
    "#;
    // PDP-11 interpretation: the overflow silently zeroes b[0].
    let unit = cheri::c::parse(src).unwrap();
    let r = run_main(&unit, ModelKind::Pdp11).unwrap();
    assert_eq!(r.exit_code, 0, "corruption went undetected");
    // CHERIv3, interpreted and compiled: trapped.
    assert!(run_main(&unit, ModelKind::CheriV3).is_err());
    let prog = compile(src, Abi::CheriV3).unwrap();
    let mut vm = Vm::new(prog, VmConfig::functional());
    assert!(vm.run(10_000_000).is_err());
    // MIPS ABI on the emulator: also silently corrupted.
    let prog = compile(src, Abi::Mips).unwrap();
    let mut vm = Vm::new(prog, VmConfig::functional());
    assert_eq!(vm.run(10_000_000).unwrap().code, 0);
}

/// Spilled capabilities survive the stack round trip with tags intact, and
/// a data overwrite kills them — the tagged-memory contract, observed
/// through the whole compiled pipeline.
#[test]
fn tag_integrity_through_compiled_code() {
    let src = r#"
        struct holder { int *p; };
        int main(void) {
            int x = 7;
            struct holder h;
            struct holder copy;
            h.p = &x;
            memcpy(&copy, &h, sizeof(struct holder));
            return *copy.p;   /* tag must survive memcpy */
        }
    "#;
    for abi in [Abi::CheriV2, Abi::CheriV3] {
        let prog = compile(src, abi).unwrap();
        let mut vm = Vm::new(prog, VmConfig::functional());
        let exit = vm.run(1_000_000).unwrap_or_else(|e| panic!("{abi}: {e}"));
        assert_eq!(exit.code, 7, "{abi}");
    }
}

/// The performance pipeline is deterministic: identical runs, identical
/// cycle counts (the emulator is a simulator, not a stopwatch).
#[test]
fn cycle_counts_are_deterministic() {
    let src = sources::treeadd(6, 2);
    let a = runner::run_workload(&src, Abi::CheriV3, VmConfig::fpga(), &[], 1 << 30).unwrap();
    let b = runner::run_workload(&src, Abi::CheriV3, VmConfig::fpga(), &[], 1 << 30).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instret, b.instret);
    assert_eq!(a.output, b.output);
}

/// tcpdump across the full porting story: baseline on MIPS/v3, the ported
/// source everywhere, all agreeing byte-for-byte on a malicious trace.
#[test]
fn tcpdump_porting_story_end_to_end() {
    let trace = inputs::packet_trace(300, 99);
    let ins: &[(&str, &[u8])] = &[("trace", &trace)];
    let baseline = sources::tcpdump_baseline();
    let ported = sources::tcpdump_cheriv2();
    // Baseline cannot target CHERIv2 at all.
    assert!(compile(&baseline, Abi::CheriV2).is_err());
    let reference =
        runner::run_workload(&baseline, Abi::Mips, VmConfig::functional(), ins, 1 << 32)
            .unwrap()
            .output;
    for abi in Abi::ALL {
        let out = runner::run_workload(&ported, abi, VmConfig::functional(), ins, 1 << 32)
            .unwrap_or_else(|e| panic!("{abi}: {e}"))
            .output;
        assert_eq!(out, reference, "{abi}");
    }
}

/// Capabilities round-trip through encode/decode/tagged memory across
/// crate boundaries.
#[test]
fn capability_round_trip_across_crates() {
    let mut mem = cheri::mem::TaggedMemory::new(0x1000);
    let sealer = Capability::new_mem(0x77, 1, Perms::all());
    let c = Capability::new_mem(0x100, 64, Perms::data())
        .inc_offset(12)
        .unwrap()
        .seal(&sealer)
        .unwrap();
    mem.write_cap(0x40, &c).unwrap();
    let back = mem.read_cap(0x40).unwrap();
    assert_eq!(back, c);
    assert!(back.is_sealed());
    assert_eq!(back.unseal(&sealer).unwrap().offset(), 12);
}
