//! Differential testing: generated programs must behave identically on all
//! eleven substrates — the seven interpreter memory models, the three
//! compiled ABIs, and CHERIv3 re-run on 128-bit compressed capability
//! storage. Any divergence is a bug in a model, the code generator, the
//! emulator, or the capability compression.

use cheri::compile::{compile, Abi};
use cheri::interp::{run_main, ModelKind};
use cheri::vm::{CapFormat, TrapCause, Vm, VmConfig};
use proptest::prelude::*;

/// A tiny expression grammar: integer arithmetic, comparisons and array
/// reads with in-bounds indices, rendered as mini-C.
#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Var(usize),
    Arr(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

const NVARS: usize = 3;
const ARR_LEN: usize = 5;

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-100i32..100).prop_map(E::Lit),
        (0..NVARS).prop_map(E::Var),
        (0..ARR_LEN).prop_map(E::Arr),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, a, b)| E::Ternary(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn render(e: &E) -> String {
    match e {
        E::Lit(v) => format!("({v})"),
        E::Var(i) => format!("v{i}"),
        E::Arr(i) => format!("a[{i}]"),
        E::Add(a, b) => format!("({} + {})", render(a), render(b)),
        E::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        E::Mul(a, b) => format!("({} * {})", render(a), render(b)),
        // Guard division by zero at the source level, as C programmers do.
        E::Div(a, b) => format!("({} / ({} | 1))", render(a), render(b)),
        E::Lt(a, b) => format!("({} < {})", render(a), render(b)),
        E::Ternary(c, a, b) => format!("({} ? {} : {})", render(c), render(a), render(b)),
    }
}

fn program(exprs: &[E], inits: &[i32; NVARS]) -> String {
    let mut body = String::new();
    for (i, v) in inits.iter().enumerate() {
        body.push_str(&format!("    long v{i} = {v};\n"));
    }
    body.push_str(&format!("    long a[{ARR_LEN}];\n"));
    body.push_str(&format!(
        "    for (int i = 0; i < {ARR_LEN}; i++) {{ a[i] = i * 3 - 4; }}\n"
    ));
    for (i, e) in exprs.iter().enumerate() {
        body.push_str(&format!("    v{} = {};\n", i % NVARS, render(e)));
    }
    body.push_str("    long r = (v0 + v1 + v2) % 100000;\n");
    body.push_str("    return (int)(r < 0 ? -r : r);\n");
    format!("int main(void) {{\n{body}}}\n")
}

/// Per-substrate VM outcome: exit code or the trap that stopped the run.
type VmVerdict = (String, Result<i64, TrapCause>);

/// Runs `src` on every interpreter model (expecting one agreed exit code)
/// and on every VM substrate (the three ABIs plus CHERIv3 on Cap128),
/// returning the VM outcomes for per-substrate verdict checks.
fn run_everywhere(src: &str) -> (Vec<i64>, Vec<VmVerdict>) {
    let unit = cheri::c::parse(src).expect("edge-case program parses");
    let interp: Vec<i64> = ModelKind::ALL
        .iter()
        .map(|&m| {
            run_main(&unit, m)
                .unwrap_or_else(|e| panic!("{m}: {e}\n{src}"))
                .exit_code
        })
        .collect();
    let mut vms = Vec::new();
    let mut v3 = None;
    for abi in Abi::ALL {
        let prog = compile(src, abi).unwrap_or_else(|e| panic!("{abi}: {e}\n{src}"));
        if abi == Abi::CheriV3 {
            v3 = Some(prog.clone());
        }
        let mut vm = Vm::new(prog, VmConfig::functional());
        let r = vm.run(50_000_000).map(|s| s.code).map_err(|t| t.cause);
        vms.push((abi.to_string(), r));
    }
    let cfg = VmConfig::functional().with_cap_format(CapFormat::Cap128);
    let mut vm = Vm::new(v3.expect("Abi::ALL contains CheriV3"), cfg);
    let r = vm.run(50_000_000).map(|s| s.code).map_err(|t| t.cause);
    vms.push(("CHERIv3+Cap128".to_string(), r));
    (interp, vms)
}

/// `i64::MIN / -1` and `i64::MIN % -1`: the seven interpreter models use
/// two's-complement wrapping (`MIN / -1 == MIN`, `MIN % -1 == 0`), while
/// the VM's trapping `div`/`rem` (§3.1.1 hardware-assisted AIR) raise
/// `IntegerOverflow` on every substrate. Both verdicts are the harness's
/// expected behaviour — what this test pins down is that no substrate
/// silently disagrees with its family.
#[test]
fn i64_min_division_edge_cases_have_expected_verdicts() {
    let cases = [
        // q == MIN proves the interpreters wrapped rather than saturated.
        ("div", "long q = min / m1; return (int)(q == min);", 1),
        ("rem", "long q = min % m1; return (int)(q == 0);", 1),
    ];
    for (name, stmt, expected) in cases {
        let src = format!(
            "int main(void) {{\n    long min = 1;\n    long m1 = 1;\n    \
             min = min << 63;\n    m1 = m1 - 2;\n    {stmt}\n}}\n"
        );
        let (interp, vms) = run_everywhere(&src);
        for (m, code) in ModelKind::ALL.iter().zip(&interp) {
            assert_eq!(*code, expected, "{name}: model {m} did not wrap");
        }
        for (abi, r) in &vms {
            assert_eq!(
                *r,
                Err(TrapCause::IntegerOverflow),
                "{name}: VM substrate {abi} must trap IntegerOverflow"
            );
        }
    }
}

/// Shift amounts ≥ 64: every substrate masks the amount to six bits
/// (MIPS/RISC-style), so `x << 64 == x` and `x >> 65 == x >> 1` — one
/// agreed answer across all seven models and all four VM substrates.
#[test]
fn oversized_shift_amounts_agree_everywhere() {
    let cases = [
        ("shl64", "return (int)(one << s64);", 1),
        ("shl65", "return (int)(one << (s64 + 1));", 2),
        ("shr65", "return (int)(four >> (s64 + 1));", 2),
        // 127 & 63 == 63, so the four is shifted out entirely.
        ("shr127", "return (int)(four >> (s64 + 63));", 0),
    ];
    for (name, stmt, expected) in cases {
        let src = format!(
            "int main(void) {{\n    long one = 1;\n    long four = 4;\n    \
             long s64 = 64;\n    {stmt}\n}}\n"
        );
        let (interp, vms) = run_everywhere(&src);
        for (m, code) in ModelKind::ALL.iter().zip(&interp) {
            assert_eq!(*code, expected, "{name}: model {m} disagrees");
        }
        for (abi, r) in &vms {
            assert_eq!(*r, Ok(expected), "{name}: VM substrate {abi} disagrees");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ten substrates, one answer.
    #[test]
    fn all_substrates_agree(
        exprs in proptest::collection::vec(arb_expr(), 1..5),
        inits in proptest::array::uniform3(-50i32..50),
    ) {
        let src = program(&exprs, &inits);
        let unit = cheri::c::parse(&src).expect("generated program parses");
        let mut answers: Vec<(String, i64)> = Vec::new();
        for model in ModelKind::ALL {
            let r = run_main(&unit, model)
                .unwrap_or_else(|e| panic!("{model}: {e}\n{src}"));
            answers.push((model.to_string(), r.exit_code));
        }
        let mut v3_prog = None;
        for abi in Abi::ALL {
            let prog = compile(&src, abi).unwrap_or_else(|e| panic!("{abi}: {e}\n{src}"));
            if abi == Abi::CheriV3 {
                v3_prog = Some(prog.clone());
            }
            let mut vm = Vm::new(prog, VmConfig::functional());
            let exit = vm.run(50_000_000).unwrap_or_else(|e| panic!("{abi}: {e}\n{src}"));
            answers.push((abi.to_string(), exit.code));
        }
        // Eleventh substrate: CHERIv3 with 128-bit compressed capability
        // storage — the verdict must not depend on the in-memory format.
        {
            let cfg = VmConfig::functional().with_cap_format(CapFormat::Cap128);
            let mut vm = Vm::new(v3_prog.expect("Abi::ALL contains CheriV3"), cfg);
            let exit = vm
                .run(50_000_000)
                .unwrap_or_else(|e| panic!("CHERIv3+Cap128: {e}\n{src}"));
            answers.push(("CHERIv3+Cap128".to_string(), exit.code));
        }
        let expect = answers[0].1;
        for (name, got) in &answers {
            prop_assert_eq!(*got, expect, "{} disagrees on:\n{}", name, &src);
        }
    }
}
