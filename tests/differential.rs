//! Differential testing: generated programs must behave identically on all
//! eleven substrates — the seven interpreter memory models, the three
//! compiled ABIs, and CHERIv3 re-run on 128-bit compressed capability
//! storage. Any divergence is a bug in a model, the code generator, the
//! emulator, or the capability compression.

use cheri::compile::{compile, Abi};
use cheri::interp::{run_main, ModelKind};
use cheri::vm::{CapFormat, Vm, VmConfig};
use proptest::prelude::*;

/// A tiny expression grammar: integer arithmetic, comparisons and array
/// reads with in-bounds indices, rendered as mini-C.
#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Var(usize),
    Arr(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

const NVARS: usize = 3;
const ARR_LEN: usize = 5;

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-100i32..100).prop_map(E::Lit),
        (0..NVARS).prop_map(E::Var),
        (0..ARR_LEN).prop_map(E::Arr),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, a, b)| E::Ternary(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn render(e: &E) -> String {
    match e {
        E::Lit(v) => format!("({v})"),
        E::Var(i) => format!("v{i}"),
        E::Arr(i) => format!("a[{i}]"),
        E::Add(a, b) => format!("({} + {})", render(a), render(b)),
        E::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        E::Mul(a, b) => format!("({} * {})", render(a), render(b)),
        // Guard division by zero at the source level, as C programmers do.
        E::Div(a, b) => format!("({} / ({} | 1))", render(a), render(b)),
        E::Lt(a, b) => format!("({} < {})", render(a), render(b)),
        E::Ternary(c, a, b) => format!("({} ? {} : {})", render(c), render(a), render(b)),
    }
}

fn program(exprs: &[E], inits: &[i32; NVARS]) -> String {
    let mut body = String::new();
    for (i, v) in inits.iter().enumerate() {
        body.push_str(&format!("    long v{i} = {v};\n"));
    }
    body.push_str(&format!("    long a[{ARR_LEN}];\n"));
    body.push_str(&format!(
        "    for (int i = 0; i < {ARR_LEN}; i++) {{ a[i] = i * 3 - 4; }}\n"
    ));
    for (i, e) in exprs.iter().enumerate() {
        body.push_str(&format!("    v{} = {};\n", i % NVARS, render(e)));
    }
    body.push_str("    long r = (v0 + v1 + v2) % 100000;\n");
    body.push_str("    return (int)(r < 0 ? -r : r);\n");
    format!("int main(void) {{\n{body}}}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ten substrates, one answer.
    #[test]
    fn all_substrates_agree(
        exprs in proptest::collection::vec(arb_expr(), 1..5),
        inits in proptest::array::uniform3(-50i32..50),
    ) {
        let src = program(&exprs, &inits);
        let unit = cheri::c::parse(&src).expect("generated program parses");
        let mut answers: Vec<(String, i64)> = Vec::new();
        for model in ModelKind::ALL {
            let r = run_main(&unit, model)
                .unwrap_or_else(|e| panic!("{model}: {e}\n{src}"));
            answers.push((model.to_string(), r.exit_code));
        }
        let mut v3_prog = None;
        for abi in Abi::ALL {
            let prog = compile(&src, abi).unwrap_or_else(|e| panic!("{abi}: {e}\n{src}"));
            if abi == Abi::CheriV3 {
                v3_prog = Some(prog.clone());
            }
            let mut vm = Vm::new(prog, VmConfig::functional());
            let exit = vm.run(50_000_000).unwrap_or_else(|e| panic!("{abi}: {e}\n{src}"));
            answers.push((abi.to_string(), exit.code));
        }
        // Eleventh substrate: CHERIv3 with 128-bit compressed capability
        // storage — the verdict must not depend on the in-memory format.
        {
            let cfg = VmConfig::functional().with_cap_format(CapFormat::Cap128);
            let mut vm = Vm::new(v3_prog.expect("Abi::ALL contains CheriV3"), cfg);
            let exit = vm
                .run(50_000_000)
                .unwrap_or_else(|e| panic!("CHERIv3+Cap128: {e}\n{src}"));
            answers.push(("CHERIv3+Cap128".to_string(), exit.code));
        }
        let expect = answers[0].1;
        for (name, got) in &answers {
            prop_assert_eq!(*got, expect, "{} disagrees on:\n{}", name, &src);
        }
    }
}
