//! Capability-format differential tests: everything the compiled pipeline
//! does on 256-bit capability storage it must also do, byte-for-byte in
//! outputs and trap-for-trap in failures, on the low-fat 128-bit format —
//! while actually halving the capability memory footprint.

use cheri::cap::{CapFormat, Capability, CompressedCapability, Perms};
use cheri::compile::{compile, Abi};
use cheri::mem::{TaggedMemory, UnrepresentablePolicy};
use cheri::vm::{Vm, VmConfig, VmTrap};
use cheri::workloads::{runner, sources};
use proptest::prelude::*;

fn run_with(src: &str, abi: Abi, cfg: VmConfig) -> Result<(i64, String), VmTrap> {
    let prog = compile(src, abi).unwrap_or_else(|e| panic!("{abi}: {e}"));
    let mut vm = Vm::new(prog, cfg);
    let status = vm.run(50_000_000)?;
    Ok((status.code, vm.output_string()))
}

/// C programs covering the capability-heavy paths: heap graphs, spills,
/// memcpy tag transport, and deliberate overflows that must trap.
const PROGRAMS: &[(&str, &str)] = &[
    (
        "linked_list",
        r#"
        struct node { long v; struct node *next; };
        int main(void) {
            struct node *head = 0;
            long sum = 0;
            for (int i = 1; i <= 12; i++) {
                struct node *n = (struct node*)malloc(sizeof(struct node));
                n->v = i * i;
                n->next = head;
                head = n;
            }
            while (head) {
                sum = sum + head->v;
                head = head->next;
            }
            return (int)(sum % 251);
        }
    "#,
    ),
    (
        "memcpy_tag_transport",
        r#"
        struct holder { int *p; };
        int main(void) {
            int x = 7;
            struct holder h;
            struct holder copy;
            h.p = &x;
            memcpy(&copy, &h, sizeof(struct holder));
            return *copy.p;
        }
    "#,
    ),
    (
        "overflow_trap",
        r#"
        int main(void) {
            char *a = (char*)malloc(32);
            char *b = (char*)malloc(32);
            b[0] = 42;
            for (int i = 0; i < 200; i++) {
                a[i] = 0;
            }
            return (int)b[0];
        }
    "#,
    ),
    (
        "free_and_reuse",
        r#"
        int main(void) {
            long *a = (long*)malloc(64);
            a[0] = 5;
            free(a);
            long *b = (long*)malloc(64);
            b[1] = 6;
            return (int)b[1];
        }
    "#,
    ),
];

/// Every program, every ABI: identical exit codes, outputs and traps on
/// both capability formats and both unrepresentable-store policies.
#[test]
fn compiled_suite_identical_across_formats() {
    let configs = [
        VmConfig::functional().with_cap_format(CapFormat::Cap128),
        VmConfig::functional()
            .with_cap_format(CapFormat::Cap128)
            .with_cap128_policy(UnrepresentablePolicy::Trap),
    ];
    for (name, src) in PROGRAMS {
        for abi in Abi::ALL {
            let reference = run_with(src, abi, VmConfig::functional());
            for cfg in configs {
                let got = run_with(src, abi, cfg);
                assert_eq!(got, reference, "{name}/{abi}: Cap128 diverged");
            }
        }
    }
}

/// The Olden/Dhrystone workload runner agrees across formats: same output,
/// same exit, same instruction count (the instruction stream is identical;
/// only the simulated cache traffic shrinks).
#[test]
fn workloads_identical_across_formats() {
    for (name, src) in [
        ("treeadd", sources::treeadd(6, 2)),
        ("dhrystone", sources::dhrystone(30)),
        // The malloc churn, including the far-out-of-bounds probes that
        // escape to the Cap128 side table: the escape path must be
        // semantically invisible.
        ("malloc_stress_oob", sources::malloc_stress_oob(24, 4)),
    ] {
        let base = runner::run_workload(&src, Abi::CheriV3, VmConfig::functional(), &[], 1 << 30)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let cfg = VmConfig::functional().with_cap_format(CapFormat::Cap128);
        let z = runner::run_workload(&src, Abi::CheriV3, cfg, &[], 1 << 30)
            .unwrap_or_else(|e| panic!("{name}/cap128: {e}"));
        assert_eq!(z.exit, base.exit, "{name}");
        assert_eq!(z.output, base.output, "{name}");
        assert_eq!(z.instret, base.instret, "{name}");
    }
}

/// The compiled pipeline through the superinstruction dispatcher agrees
/// with single-stepping, instruction for instruction, on both capability
/// formats: same exit/trap, output, instret, cycles and per-op counts.
#[test]
fn block_dispatch_matches_stepping_on_compiled_programs() {
    use cheri::isa::Op;
    for (name, src) in PROGRAMS {
        for format in [CapFormat::Cap256, CapFormat::Cap128] {
            let cfg = VmConfig::fpga().with_cap_format(format);
            let prog = compile(src, Abi::CheriV3).unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut blocked = Vm::new(prog.clone(), cfg);
            let ra = blocked.run(50_000_000).map(|s| s.code);
            let mut stepped = Vm::new(prog, cfg);
            let rb = loop {
                // `run(0)` returns Ok exactly when the machine has halted.
                if let Ok(status) = stepped.run(0) {
                    break Ok(status.code);
                }
                match stepped.step() {
                    Ok(()) => {}
                    Err(t) => break Err(t),
                }
            };
            assert_eq!(ra, rb, "{name}/{format:?}: outcome diverged");
            let (a, b) = (blocked.stats(), stepped.stats());
            assert_eq!(a.instret, b.instret, "{name}/{format:?}");
            assert_eq!(a.cycles, b.cycles, "{name}/{format:?}");
            assert_eq!(a.fetch_checks, b.fetch_checks, "{name}/{format:?}");
            for &op in Op::ALL {
                assert_eq!(
                    a.op_count(op),
                    b.op_count(op),
                    "{name}/{format:?}: op count for {op} diverged"
                );
            }
            assert_eq!(
                blocked.output_string(),
                stepped.output_string(),
                "{name}/{format:?}"
            );
        }
    }
}

/// The malloc stress's far-out-of-bounds probes populate the Cap128 side
/// table — and the block dispatcher agrees with single-stepping on the
/// escape-heavy run, traffic ledger included, on the narrow-line geometry.
#[test]
fn malloc_stress_oob_escapes_match_across_dispatchers() {
    let src = sources::malloc_stress_oob(24, 3);
    let prog = compile(&src, Abi::CheriV3).unwrap();
    let cfg = VmConfig::fpga()
        .with_cap_format(CapFormat::Cap128)
        .with_l1_line_bytes(16);
    let mut blocked = Vm::new(prog.clone(), cfg);
    let ra = blocked.run(50_000_000).map(|s| s.code);
    let mut stepped = Vm::new(prog, cfg);
    let rb = loop {
        if let Ok(status) = stepped.run(0) {
            break Ok(status.code);
        }
        match stepped.step() {
            Ok(()) => {}
            Err(t) => break Err(t),
        }
    };
    assert_eq!(ra, rb);
    assert!(
        blocked.mem().side_table_len() > 0,
        "the probes must escape to the side table"
    );
    assert_eq!(
        blocked.mem().side_table_len(),
        stepped.mem().side_table_len()
    );
    let (a, b) = (blocked.stats(), stepped.stats());
    assert_eq!(a.cycles, b.cycles);
    // CacheStats equality covers the per-edge traffic ledger.
    assert_eq!(a.cache, b.cache, "cache stats diverged");
    assert_eq!(a.compression, b.compression);
}

/// A capability-heavy run on Cap128 actually halves the resident
/// capability footprint.
#[test]
fn cap128_footprint_shrinks() {
    let src = r#"
        struct node { long v; struct node *next; };
        int main(void) {
            struct node *head = 0;
            for (int i = 0; i < 40; i++) {
                struct node *n = (struct node*)malloc(sizeof(struct node));
                n->next = head;
                head = n;
            }
            return 0;
        }
    "#;
    let mut footprints = Vec::new();
    for format in [CapFormat::Cap256, CapFormat::Cap128] {
        let prog = compile(src, Abi::CheriV3).unwrap();
        let mut vm = Vm::new(prog, VmConfig::functional().with_cap_format(format));
        assert_eq!(vm.run(10_000_000).unwrap().code, 0);
        footprints.push(vm.mem().cap_footprint_bytes());
    }
    assert!(footprints[0] > 0);
    assert_eq!(
        footprints[1] * 2,
        footprints[0],
        "128-bit storage must halve the tagged footprint (no escapes here)"
    );
}

proptest! {
    /// Store→load round-trips byte- and tag-identically in both formats,
    /// whatever capability shape the machine produces — including offsets
    /// far out of bounds and sealed capabilities, which escape to the
    /// side table in Cap128 mode.
    #[test]
    fn store_load_round_trips_in_both_formats(
        base in 0u64..1 << 42,
        len in 0u64..1 << 32,
        off in any::<u64>(),
        perm_bits in any::<u16>(),
        tag in any::<bool>(),
        sealed in any::<bool>(),
    ) {
        let c = Capability::new_mem(base, len, Perms::from_bits(perm_bits))
            .set_offset(off)
            .unwrap();
        let c = if sealed {
            let sealer = Capability::new_mem(0x42, 1, Perms::all());
            c.seal(&sealer).unwrap()
        } else {
            c
        };
        let c = if tag { c } else { c.clear_tag() };
        for format in [CapFormat::Cap256, CapFormat::Cap128] {
            let mut m = TaggedMemory::with_format(
                0x1000,
                format,
                UnrepresentablePolicy::SideTable,
            );
            m.write_cap(0x40, &c).unwrap();
            prop_assert_eq!(m.read_cap(0x40).unwrap(), c, "{:?}", format);
            prop_assert_eq!(m.tag_at(0x40).unwrap(), c.tag());
        }
    }

    /// The compressor itself never lies: when Cap128 storage avoids the
    /// side table, the slot alone reconstructs the capability.
    #[test]
    fn in_format_slots_reconstruct_exactly(
        base in 0u64..1 << 30,
        len in 1u64..0x1_0000,
        off in 0u64..0x1_0000,
    ) {
        let c = Capability::new_mem(base, len, Perms::data())
            .set_offset(off % (len + 1))
            .unwrap();
        if let Some(z) = CompressedCapability::compress(&c) {
            let back = CompressedCapability::from_bytes(&z.to_bytes());
            prop_assert_eq!(back.decompress(), c);
        }
    }
}
