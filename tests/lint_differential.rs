//! Lint soundness at scale: the static analyzer's verdicts checked against
//! every dynamic substrate on hundreds of generated programs.
//!
//! Two hard guarantees (any violation is a test failure):
//!
//! * **portable ⇒ divergence-free**: when the lint calls a program
//!   portable, all eleven substrates (seven interpreter models, three
//!   compiled ABIs, CHERIv3 on 128-bit capabilities) must produce the same
//!   exit code.
//! * **works(m) ⇒ runs under m**: a model the lint blesses must actually
//!   run the program (no unsound-clean).
//!
//! The converse — the lint warning about a program that happens to run —
//! is tallied and bounded, not forbidden: that is the imprecision budget.
//!
//! The generator is deterministic (no proptest shrinking needed — every
//! seed is checked, every failure names its seed) and emits six program
//! shapes per seed class: pure arithmetic, pointer→`long` round trips,
//! `intptr_t` round trips, flag-masking stashes, nested-loop pointer
//! walks, and pointer escapes across a call boundary.

use cheri::compile::{compile, Abi};
use cheri::interp::{run_main, ModelKind};
use cheri::lint::analyze_source;
use cheri::vm::{CapFormat, Vm, VmConfig};
use proptest::prelude::*;

/// Number of generated programs; the issue floor is 500.
const PROGRAMS: u64 = 520;

/// A tiny deterministic PRNG (splitmix64) so the suite needs no shared
/// state with the vendored rand.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pure integer arithmetic on `int` accumulators: portable by
/// construction — the lint must agree, and every substrate must match.
fn gen_arith(seed: u64) -> String {
    let a = (mix(seed) % 90 + 1) as i64;
    let b = (mix(seed ^ 1) % 50 + 2) as i64;
    let n = (mix(seed ^ 2) % 6 + 2) as i64;
    let op = match mix(seed ^ 3) % 3 {
        0 => "+",
        1 => "-",
        _ => "*",
    };
    format!(
        "int main(void) {{\n\
         \x20   int s = {a};\n\
         \x20   int i;\n\
         \x20   for (i = 0; i < {n}; i++) {{ s = s {op} {b}; }}\n\
         \x20   s = s % 1000;\n\
         \x20   if (s < 0) {{ s = -s; }}\n\
         \x20   return s;\n\
         }}\n"
    )
}

/// Pointer stored in a **plain** `long` and dereferenced after the round
/// trip: runs everywhere except CHERI, where the tag cannot follow.
fn gen_plain_roundtrip(seed: u64) -> String {
    let v = (mix(seed) % 100) as i64;
    format!(
        "int main(void) {{\n\
         \x20   int x = {v};\n\
         \x20   long bits = (long)&x;\n\
         \x20   int *p = (int*)bits;\n\
         \x20   assert(*p == {v});\n\
         \x20   return 0;\n\
         }}\n"
    )
}

/// Unmodified `intptr_t` round trip: the paper's escape hatch — portable
/// on every model including both CHERIs.
fn gen_intptr_roundtrip(seed: u64) -> String {
    let v = (mix(seed) % 100) as i64;
    format!(
        "int main(void) {{\n\
         \x20   int x = {v};\n\
         \x20   intptr_t bits = (intptr_t)&x;\n\
         \x20   int *p = (int*)bits;\n\
         \x20   assert(*p == {v});\n\
         \x20   return 0;\n\
         }}\n"
    )
}

/// Flag stashed in an alignment bit of an `uintptr_t`, masked off before
/// the dereference: works on address-based schemes and CHERIv3; the
/// capability arithmetic refuses it on CHERIv2, and the modified-integer
/// metadata lookup fails on HardBound/Strict.
fn gen_mask_stash(seed: u64) -> String {
    let v = (mix(seed) % 100) as i64;
    format!(
        "int main(void) {{\n\
         \x20   long a[2];\n\
         \x20   a[0] = {v};\n\
         \x20   uintptr_t t = (uintptr_t)a;\n\
         \x20   t = t | 1;\n\
         \x20   uintptr_t u = t & ~(uintptr_t)1;\n\
         \x20   long *p = (long*)u;\n\
         \x20   assert(*p == {v});\n\
         \x20   return 0;\n\
         }}\n"
    )
}

/// Nested-loop pointer walk: repeated passes over an array through a
/// derived pointer, every deref indexed by the inner counter so the
/// lint's interval analysis can prove it in bounds (and every load
/// masked before accumulating so the AIR overflow check stays provable
/// too). Portable by construction — the lint must prove it.
fn gen_nested_walk(seed: u64) -> String {
    let n = (mix(seed) % 4 + 2) as i64; // array length, 2..=5
    let k = (mix(seed ^ 1) % 9 + 1) as i64; // fill multiplier
    let r = (mix(seed ^ 2) % 3 + 2) as i64; // outer passes, 2..=4
    format!(
        "int main(void) {{\n\
         \x20   int a[{n}];\n\
         \x20   int *p = a;\n\
         \x20   int i;\n\
         \x20   int j;\n\
         \x20   int s = 0;\n\
         \x20   for (j = 0; j < {n}; j++) {{ p[j] = j * {k}; }}\n\
         \x20   for (i = 0; i < {r}; i++) {{\n\
         \x20       for (j = 0; j < {n}; j++) {{ s = s + p[j] % 32; }}\n\
         \x20   }}\n\
         \x20   return s % 256;\n\
         }}\n"
    )
}

/// Pointer escaping into a callee that stashes it through a plain
/// `long` before dereferencing: the shape-1 round trip moved across a
/// call boundary, so the lint's verdict depends on tracking the taint
/// interprocedurally. Runs everywhere except the two CHERIs.
fn gen_escape_call(seed: u64) -> String {
    let v = (mix(seed) % 100) as i64;
    format!(
        "int peek(int *p) {{\n\
         \x20   long bits = (long)p;\n\
         \x20   int *q = (int*)bits;\n\
         \x20   return *q;\n\
         }}\n\
         int main(void) {{\n\
         \x20   int x = {v};\n\
         \x20   int r = peek(&x);\n\
         \x20   assert(r == {v});\n\
         \x20   return 0;\n\
         }}\n"
    )
}

fn gen_program(seed: u64) -> String {
    match seed % 6 {
        0 => gen_arith(seed),
        1 => gen_plain_roundtrip(seed),
        2 => gen_intptr_roundtrip(seed),
        3 => gen_mask_stash(seed),
        4 => gen_nested_walk(seed),
        _ => gen_escape_call(seed),
    }
}

/// Exit codes on all eleven substrates (panics on any trap — callers only
/// use this for programs every substrate must run).
fn run_all_substrates(src: &str) -> Vec<(String, i64)> {
    let unit = cheri::c::parse(src).expect("generated program parses");
    let mut out: Vec<(String, i64)> = ModelKind::ALL
        .iter()
        .map(|&m| {
            let r = run_main(&unit, m).unwrap_or_else(|e| panic!("{m}: {e}\n{src}"));
            (m.to_string(), r.exit_code)
        })
        .collect();
    let mut v3 = None;
    for abi in Abi::ALL {
        let prog = compile(src, abi).unwrap_or_else(|e| panic!("{abi}: {e}\n{src}"));
        if abi == Abi::CheriV3 {
            v3 = Some(prog.clone());
        }
        let mut vm = Vm::new(prog, VmConfig::functional());
        let exit = vm
            .run(50_000_000)
            .unwrap_or_else(|e| panic!("{abi}: {e}\n{src}"));
        out.push((abi.to_string(), exit.code));
    }
    let cfg = VmConfig::functional().with_cap_format(CapFormat::Cap128);
    let mut vm = Vm::new(v3.expect("Abi::ALL contains CheriV3"), cfg);
    let exit = vm
        .run(50_000_000)
        .unwrap_or_else(|e| panic!("CHERIv3+Cap128: {e}\n{src}"));
    out.push(("CHERIv3+Cap128".to_string(), exit.code));
    out
}

#[test]
fn lint_is_sound_on_generated_programs() {
    let mut portable_count = 0u64;
    let mut false_warn_cells = 0u64;
    let mut checked_cells = 0u64;
    for seed in 0..PROGRAMS {
        let src = gen_program(seed);
        let report =
            analyze_source(&src).unwrap_or_else(|e| panic!("seed {seed}: parse error {e}\n{src}"));
        let unit = cheri::c::parse(&src).expect("parsed above");
        // Guarantee 1: every model the lint blesses must run the program.
        let mut dynamic_ok = Vec::new();
        for m in ModelKind::ALL {
            let ran = run_main(&unit, m).map(|r| r.exit_code).ok();
            dynamic_ok.push(ran.is_some());
            if report.works(m) {
                assert!(
                    ran.is_some(),
                    "seed {seed}: UNSOUND-CLEAN — lint blessed {m} but it traps\n{}\n{src}",
                    report.render()
                );
            }
        }
        // The imprecision tally (lint warns, model runs anyway).
        for (ok, m) in dynamic_ok.iter().zip(ModelKind::ALL) {
            checked_cells += 1;
            if *ok && !report.works(m) {
                false_warn_cells += 1;
            }
        }
        // Guarantee 2: a portable verdict means divergence-free execution
        // on all eleven substrates.
        if report.portable() {
            portable_count += 1;
            let answers = run_all_substrates(&src);
            let expect = answers[0].1;
            for (name, got) in &answers {
                assert_eq!(
                    *got, expect,
                    "seed {seed}: substrate {name} diverges on a portable program\n{src}"
                );
            }
        }
    }
    // The generator's shape 0 (pure arithmetic) and shape 2 (intptr_t
    // round trip) are portable by construction — the lint must actually
    // prove a healthy majority of them, or "portable" means nothing.
    assert!(
        portable_count >= PROGRAMS / 4,
        "only {portable_count}/{PROGRAMS} programs proved portable"
    );
    // Precision bound: blessed-but-warned cells stay under 5% overall.
    assert!(
        false_warn_cells * 20 <= checked_cells,
        "false-warn rate too high: {false_warn_cells}/{checked_cells}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Proptest layer over the same generators: free-ranging seeds (and
    /// explicit shape choice, so shrinking converges per shape) must keep
    /// both soundness guarantees. The deterministic sweep above covers
    /// seeds 0..520; this explores the rest of the seed space.
    #[test]
    fn lint_is_sound_on_arbitrary_seeds(seed in 0u64..u64::MAX / 2, shape in 0u64..6) {
        let src = gen_program(seed / 6 * 6 + shape);
        let report = analyze_source(&src).expect("generated program parses");
        let unit = cheri::c::parse(&src).expect("parsed above");
        for m in ModelKind::ALL {
            if report.works(m) {
                let ran = run_main(&unit, m);
                prop_assert!(
                    ran.is_ok(),
                    "seed {seed} shape {shape}: UNSOUND-CLEAN — lint blessed {m} but it traps\n{src}"
                );
            }
        }
        if report.portable() {
            let answers = run_all_substrates(&src);
            let expect = answers[0].1;
            for (name, got) in &answers {
                prop_assert_eq!(
                    *got, expect,
                    "seed {} shape {}: substrate {} diverges on a portable program\n{}",
                    seed, shape, name, &src
                );
            }
        }
    }
}

/// The shape-by-shape verdict profile, pinned so the analysis cannot
/// silently drift: arithmetic, `intptr_t` round trips and nested-loop
/// pointer walks are portable, plain-`long` round trips (in `main` or
/// behind a call) lose exactly the two CHERIs, and mask stashes
/// additionally lose the metadata-keyed schemes.
#[test]
fn generated_shapes_have_pinned_verdicts() {
    use ModelKind::*;
    for seed in 0..60u64 {
        let src = gen_program(seed);
        let report = analyze_source(&src).expect("generated program parses");
        let works: Vec<ModelKind> = ModelKind::ALL
            .iter()
            .copied()
            .filter(|&m| report.works(m))
            .collect();
        match seed % 6 {
            0 | 2 | 4 => assert!(
                report.portable(),
                "seed {seed} should be portable\n{}\n{src}",
                report.render()
            ),
            1 | 5 => assert_eq!(
                works,
                vec![Pdp11, HardBound, Mpx, Relaxed, Strict],
                "seed {seed}\n{src}"
            ),
            _ => assert_eq!(
                works,
                vec![Pdp11, Mpx, Relaxed, CheriV3],
                "seed {seed}\n{src}"
            ),
        }
    }
}
