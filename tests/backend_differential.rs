//! Backend/optimizer differential suite: every execution backend, at every
//! optimization level, on both capability formats, must be bit-identical to
//! the reference interpreter running unoptimized blocks — same exit code or
//! trap (pc and cause), same output bytes, same architectural registers,
//! and the same simulated statistics down to the per-edge traffic ledger.
//! The backends are allowed to differ only in host wall-clock time.

use cheri::cap::CapFormat;
use cheri::compile::{compile, Abi};
use cheri::isa::{Op, Program};
use cheri::vm::{BackendKind, OptLevel, Vm, VmConfig, VmTrap};
use cheri::workloads::{runner, sources};

/// Everything observable about a finished run. `PartialEq` on the whole
/// struct is the identity the pipeline promises; `cache` equality covers
/// hit/miss/write-back counts and the per-edge traffic ledger.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    outcome: Result<i64, VmTrap>,
    output: String,
    regs: [u64; 32],
    pc: u64,
    instret: u64,
    cycles: u64,
    fetch_checks: u64,
    op_counts: Vec<u64>,
    cache: Option<cheri::cache::CacheStats>,
}

fn fingerprint(prog: &Program, cfg: VmConfig) -> Fingerprint {
    let mut vm = Vm::new(prog.clone(), cfg);
    let outcome = vm.run(50_000_000).map(|s| s.code);
    snapshot(&vm, outcome)
}

fn snapshot(vm: &Vm, outcome: Result<i64, VmTrap>) -> Fingerprint {
    let stats = vm.stats();
    let mut regs = [0u64; 32];
    for (r, slot) in regs.iter_mut().enumerate() {
        *slot = vm.reg(r as u8);
    }
    Fingerprint {
        outcome,
        output: vm.output_string(),
        regs,
        pc: vm.pc(),
        instret: stats.instret,
        cycles: stats.cycles,
        fetch_checks: stats.fetch_checks,
        op_counts: Op::ALL.iter().map(|&op| stats.op_count(op)).collect(),
        cache: stats.cache,
    }
}

/// The non-reference cells of the matrix: every backend at every opt
/// level except the (Reference, None) oracle itself.
fn matrix() -> Vec<(BackendKind, OptLevel)> {
    let mut cells = Vec::new();
    for backend in BackendKind::ALL {
        for opt in [OptLevel::None, OptLevel::Peephole] {
            if (backend, opt) != (BackendKind::Reference, OptLevel::None) {
                cells.push((backend, opt));
            }
        }
    }
    cells
}

/// Eleven programs chosen to stress each rewrite and each dispatch path:
/// foldable constants, dead stores, fusable compare-and-branch loops,
/// branchy control flow for chaining, mid-block traps (overflow, divide,
/// capability bounds), heap graphs, tag transport, console output and deep
/// recursion through `jal`/`jr`.
const PROGRAMS: &[(&str, &str)] = &[
    (
        "const_fold_chain",
        r#"
        int main(void) {
            int a = 3;
            int b = a * 4 + 1;
            int c = b * b - a;
            int d = (c & 0xff) | (b << 2);
            return (d ^ a) % 199;
        }
    "#,
    ),
    (
        "dead_writes",
        r#"
        int main(void) {
            int x = 1;
            x = 2;
            x = 3;
            int y = x + 4;
            y = x + 5;
            return x * 10 + y;
        }
    "#,
    ),
    (
        "counted_loop",
        r#"
        int main(void) {
            long sum = 0;
            for (int i = 0; i < 1000; i++) {
                sum += i;
            }
            return (int)(sum % 251);
        }
    "#,
    ),
    (
        "branchy",
        r#"
        int main(void) {
            int acc = 0;
            for (int i = 0; i < 200; i++) {
                if (i % 3 == 0) {
                    acc += i;
                } else if (i % 5 == 0) {
                    acc -= i;
                } else {
                    acc ^= i;
                }
            }
            return acc & 0x7f;
        }
    "#,
    ),
    (
        "null_deref_trap",
        r#"
        int main(void) {
            int *p = 0;
            int x = 1;
            return *p + x;
        }
    "#,
    ),
    (
        "div_zero_trap",
        r#"
        int main(void) {
            int z = 3;
            for (int i = 0; i < 3; i++) {
                z = z - 1;
            }
            return 100 / z;
        }
    "#,
    ),
    (
        "oob_trap",
        r#"
        int main(void) {
            char *a = (char*)malloc(16);
            int sum = 0;
            for (int i = 0; i < 64; i++) {
                a[i] = (char)i;
                sum += a[i];
            }
            return sum;
        }
    "#,
    ),
    (
        "linked_list",
        r#"
        struct node { long v; struct node *next; };
        int main(void) {
            struct node *head = 0;
            long sum = 0;
            for (int i = 1; i <= 12; i++) {
                struct node *n = (struct node*)malloc(sizeof(struct node));
                n->v = i * i;
                n->next = head;
                head = n;
            }
            while (head) {
                sum = sum + head->v;
                head = head->next;
            }
            return (int)(sum % 251);
        }
    "#,
    ),
    (
        "memcpy_tags",
        r#"
        struct holder { int *p; };
        int main(void) {
            int x = 7;
            struct holder h;
            struct holder copy;
            h.p = &x;
            memcpy(&copy, &h, sizeof(struct holder));
            return *copy.p;
        }
    "#,
    ),
    (
        "output_stream",
        r#"
        int main(void) {
            for (int i = 0; i < 10; i++) {
                putint(i * i);
                putchar(' ');
            }
            putchar(10);
            return 0;
        }
    "#,
    ),
    (
        "recursion",
        r#"
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main(void) {
            return fib(15) % 101;
        }
    "#,
    ),
];

/// Programs above that must end in a trap, so the matrix is known to
/// exercise the mid-block unwind and trap-pc paths rather than silently
/// running clean.
const TRAPPING: &[&str] = &["null_deref_trap", "div_zero_trap", "oob_trap"];

fn program(name: &str) -> &'static str {
    PROGRAMS
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("no program named {name}"))
        .1
}

/// The 11-program identity matrix: {reference, chained, template} ×
/// {opt off, opt on} × {Cap256, Cap128}, every cell compared field by
/// field against the (reference, opt off) oracle of the same format.
#[test]
fn backend_matrix_is_bit_identical() {
    for (name, src) in PROGRAMS {
        let prog = compile(src, Abi::CheriV3).unwrap_or_else(|e| panic!("{name}: {e}"));
        for format in [CapFormat::Cap256, CapFormat::Cap128] {
            let base = VmConfig::fpga().with_cap_format(format);
            let oracle = fingerprint(
                &prog,
                base.with_backend(BackendKind::Reference)
                    .with_opt_level(OptLevel::None),
            );
            if TRAPPING.contains(name) {
                assert!(oracle.outcome.is_err(), "{name} must trap");
            } else {
                assert!(oracle.outcome.is_ok(), "{name} must exit: {oracle:?}");
            }
            for (backend, opt) in matrix() {
                let got = fingerprint(&prog, base.with_backend(backend).with_opt_level(opt));
                assert_eq!(
                    got, oracle,
                    "{name}/{format:?}/{backend:?}/{opt:?} diverged from reference"
                );
            }
        }
    }
}

/// Fuel is an architectural contract too: running in fixed-size fuel
/// slices must leave every backend at the same pc, registers, cycle count
/// and instruction count at every slice boundary, and the sliced run must
/// finish bit-identical to a one-shot run.
#[test]
fn sliced_fuel_is_identical_across_backends() {
    for name in ["counted_loop", "branchy", "oob_trap"] {
        let src = program(name);
        let prog = compile(src, Abi::CheriV3).unwrap_or_else(|e| panic!("{name}: {e}"));
        let cfg = VmConfig::fpga();
        let one_shot = fingerprint(
            &prog,
            cfg.with_backend(BackendKind::Reference)
                .with_opt_level(OptLevel::None),
        );
        for (backend, opt) in matrix() {
            let mut vm = Vm::new(prog.clone(), cfg.with_backend(backend).with_opt_level(opt));
            let mut boundaries = Vec::new();
            let outcome = loop {
                match vm.run(7) {
                    Ok(status) => break Ok(status.code),
                    Err(t) if t.cause == cheri::vm::TrapCause::OutOfFuel => {
                        let s = vm.stats();
                        boundaries.push((vm.pc(), s.instret, s.cycles));
                        assert!(
                            boundaries.len() < 2_000_000,
                            "{name}/{backend:?}/{opt:?}: runaway"
                        );
                    }
                    Err(t) => break Err(t),
                }
            };
            let end = snapshot(&vm, outcome);
            assert_eq!(
                end, one_shot,
                "{name}/{backend:?}/{opt:?}: sliced end state"
            );
            // Boundaries must agree across backends: compare to the
            // reference backend rerun the same way.
            let mut reference = Vm::new(
                prog.clone(),
                cfg.with_backend(BackendKind::Reference)
                    .with_opt_level(OptLevel::None),
            );
            for (i, &(pc, instret, cycles)) in boundaries.iter().enumerate() {
                match reference.run(7) {
                    Ok(_) => panic!("{name}: reference halted before slice {i}"),
                    Err(t) => assert_eq!(t.cause, cheri::vm::TrapCause::OutOfFuel),
                }
                let s = reference.stats();
                assert_eq!(
                    (reference.pc(), s.instret, s.cycles),
                    (pc, instret, cycles),
                    "{name}/{backend:?}/{opt:?}: slice {i} boundary diverged"
                );
            }
        }
    }
}

/// Hand-built blocks around the trapping arithmetic the C compiler never
/// emits (`add`/`sub` trap on signed overflow, §3.1.1): the trap must
/// surface at the same pc with the same cause in every matrix cell, even
/// when the peephole pass could have folded the trapping op.
#[test]
fn assembly_traps_identical_across_matrix() {
    use cheri::isa::Instr;
    let overflow = {
        let mut p = Program::new();
        p.code = vec![
            Instr::li(4, 1),
            Instr::i2(Op::Sll, 4, 4, 62),
            Instr::r3(Op::Add, 5, 4, 4), // 2^62 + 2^62 overflows i64: trap
            Instr::syscall(0),
        ];
        p
    };
    let div_zero = {
        let mut p = Program::new();
        p.code = vec![
            Instr::li(4, 5),
            Instr::li(5, 0),
            Instr::r3(Op::Div, 6, 4, 5), // divide by known zero: trap
            Instr::syscall(0),
        ];
        p
    };
    for (name, prog, pc) in [("overflow", &overflow, 2), ("div_zero", &div_zero, 2)] {
        for format in [CapFormat::Cap256, CapFormat::Cap128] {
            let base = VmConfig::fpga().with_cap_format(format);
            let oracle = fingerprint(
                prog,
                base.with_backend(BackendKind::Reference)
                    .with_opt_level(OptLevel::None),
            );
            match oracle.outcome {
                Err(t) => assert_eq!(t.pc, pc, "{name}: trap at the wrong pc"),
                Ok(code) => panic!("{name} must trap, exited with {code}"),
            }
            for (backend, opt) in matrix() {
                let got = fingerprint(prog, base.with_backend(backend).with_opt_level(opt));
                assert_eq!(got, oracle, "{name}/{format:?}/{backend:?}/{opt:?}");
            }
        }
    }
}

/// The transaction-era identity contract: the serialized knobs
/// (`mshrs = 1`, no store buffer, prefetch off, fetch charging off) are
/// the defaults and spelling them out explicitly changes no observable
/// bit — cycles, instret, registers and the full traffic ledger included.
/// This is the wall that keeps the pre-transaction eras reproducible.
#[test]
fn serialized_transaction_knobs_are_the_legacy_model() {
    use cheri::cache::{HierarchyConfig, PrefetchPolicy};
    let spelled_cache = HierarchyConfig::fpga_softcore()
        .with_mshrs(1)
        .with_store_buffer(0)
        .with_prefetch(PrefetchPolicy::Off);
    for name in ["linked_list", "branchy", "oob_trap"] {
        let prog = compile(program(name), Abi::CheriV3).unwrap_or_else(|e| panic!("{name}: {e}"));
        for format in [CapFormat::Cap256, CapFormat::Cap128] {
            for (backend, opt) in matrix() {
                let base = VmConfig::fpga()
                    .with_cap_format(format)
                    .with_backend(backend)
                    .with_opt_level(opt);
                let legacy = fingerprint(&prog, base);
                let spelled = fingerprint(
                    &prog,
                    base.with_cache(spelled_cache).with_fetch_charging(false),
                );
                assert_eq!(
                    spelled, legacy,
                    "{name}/{format:?}/{backend:?}/{opt:?}: serialized knobs must be a no-op"
                );
                let cache = legacy.cache.as_ref().expect("fpga config has a cache");
                assert_eq!(
                    cache.fetch,
                    Default::default(),
                    "no fetch ledger by default"
                );
                assert_eq!(cache.contention_cycles, 0, "no shared edges by default");
                assert_eq!(cache.traffic.l2_dram.prefetch_lines, 0);
            }
        }
    }
}

/// The new cost-model axes — overlapping MSHRs, a store buffer, a
/// prefetcher, and per-block fetch charging — keep every backend
/// bit-identical to the reference interpreter at the same configuration,
/// and fetch charging shows up as strictly more cycles plus a populated
/// fetch ledger.
#[test]
fn transaction_knobs_are_identical_across_backends() {
    use cheri::cache::{HierarchyConfig, PrefetchPolicy};
    let overlapped = HierarchyConfig::fpga_softcore()
        .with_mshrs(4)
        .with_store_buffer(2)
        .with_prefetch(PrefetchPolicy::NextLine);
    let variants: [(&str, VmConfig); 3] = [
        ("mshr_sb_prefetch", VmConfig::fpga().with_cache(overlapped)),
        ("fetch_charging", VmConfig::fpga().with_fetch_charging(true)),
        (
            "everything_on",
            VmConfig::fpga()
                .with_cache(overlapped)
                .with_l1_line_bytes(16)
                .with_fetch_charging(true),
        ),
    ];
    for name in ["linked_list", "recursion", "oob_trap"] {
        let prog = compile(program(name), Abi::CheriV3).unwrap_or_else(|e| panic!("{name}: {e}"));
        let legacy = fingerprint(
            &prog,
            VmConfig::fpga()
                .with_backend(BackendKind::Reference)
                .with_opt_level(OptLevel::None),
        );
        for (label, base) in variants {
            let oracle = fingerprint(
                &prog,
                base.with_backend(BackendKind::Reference)
                    .with_opt_level(OptLevel::None),
            );
            for (backend, opt) in matrix() {
                let got = fingerprint(&prog, base.with_backend(backend).with_opt_level(opt));
                assert_eq!(
                    got, oracle,
                    "{name}/{label}/{backend:?}/{opt:?} diverged from reference"
                );
            }
            if base.fetch_charging {
                let cache = oracle.cache.as_ref().expect("cache model configured");
                assert!(cache.fetch.blocks > 0, "{name}/{label}: fetch ledger empty");
                assert!(cache.fetch.bytes >= cache.fetch.blocks * 8);
                assert!(
                    oracle.cycles > legacy.cycles,
                    "{name}/{label}: charging fetch must cost cycles"
                );
            } else {
                assert_eq!(oracle.instret, legacy.instret, "{name}/{label}: same work");
            }
        }
    }
}

/// Compiled Olden/Dhrystone workloads through the workload runner: the
/// whole matrix agrees on exit, output, instret, simulated cycles and the
/// full cache statistics (traffic ledger included).
#[test]
fn compiled_workloads_identical_across_backends() {
    for (name, src) in [
        ("treeadd", sources::treeadd(5, 2)),
        ("dhrystone", sources::dhrystone(20)),
    ] {
        let base = VmConfig::fpga();
        let oracle = runner::run_workload(
            &src,
            Abi::CheriV3,
            base.with_backend(BackendKind::Reference)
                .with_opt_level(OptLevel::None),
            &[],
            1 << 30,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        for (backend, opt) in matrix() {
            let got = runner::run_workload(
                &src,
                Abi::CheriV3,
                base.with_backend(backend).with_opt_level(opt),
                &[],
                1 << 30,
            )
            .unwrap_or_else(|e| panic!("{name}/{backend:?}/{opt:?}: {e}"));
            assert_eq!(got.exit, oracle.exit, "{name}/{backend:?}/{opt:?}");
            assert_eq!(got.output, oracle.output, "{name}/{backend:?}/{opt:?}");
            assert_eq!(got.instret, oracle.instret, "{name}/{backend:?}/{opt:?}");
            assert_eq!(got.cycles, oracle.cycles, "{name}/{backend:?}/{opt:?}");
            assert_eq!(got.cache, oracle.cache, "{name}/{backend:?}/{opt:?}");
        }
    }
}
