//! A tag-accurate relocating garbage collector.
//!
//! "We have implemented a relocating generational garbage collector for
//! CHERIv3 that uses the tagged memory to differentiate between
//! capabilities and other data." (paper §4.2)
//!
//! Accurate collection is *impossible* under the PDP-11 model because any
//! integer might be a pointer (§3.6: "garbage hoarding"). With tagged
//! memory the collector has ground truth: a granule holds a pointer **iff
//! its tag is set** — integers, no matter their value, never keep an object
//! alive, and objects can be *moved* because every reference to them is
//! findable and rewritable.
//!
//! [`Collector`] manages a semispace heap inside a [`TaggedMemory`]:
//! allocation returns bounded capabilities; collection traces from
//! capability roots, evacuates live objects to the other semispace,
//! rewrites every interior capability (preserving offsets), and leaves
//! dangling capabilities invalidated.
//!
//! # Example
//!
//! ```
//! use cheri_gc::Collector;
//! use cheri_mem::TaggedMemory;
//!
//! let mut mem = TaggedMemory::new(0x4000);
//! let mut gc = Collector::new(0x0, 0x4000);
//! let a = gc.alloc(&mut mem, 64).unwrap();
//! let b = gc.alloc(&mut mem, 64).unwrap();
//! mem.write_cap(a.base(), &b).unwrap();       // a points to b
//! let stats = gc.collect(&mut mem, &mut [a]); // only a is a root
//! assert_eq!(stats.live_objects, 2);          // b survives via a
//! ```

use cheri_cap::{Capability, Perms, CAP_ALIGN, CAP_SIZE_BYTES};
use cheri_mem::TaggedMemory;
use std::collections::HashMap;

/// Result of one collection cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Objects that survived (were evacuated).
    pub live_objects: u64,
    /// Bytes evacuated.
    pub live_bytes: u64,
    /// Bytes reclaimed.
    pub freed_bytes: u64,
    /// Capabilities rewritten to point at relocated objects.
    pub rewritten_caps: u64,
}

/// A semispace copying collector over tagged memory.
///
/// Objects are allocated from the active semispace with a bump pointer;
/// each object is preceded by an 32-byte header granule recording its size.
#[derive(Clone, Debug)]
pub struct Collector {
    /// Semispace A base.
    lo: u64,
    /// Total heap size (both semispaces).
    size: u64,
    /// `true` when allocating from the upper semispace.
    in_hi: bool,
    /// Bump cursor within the active semispace.
    cursor: u64,
    /// Live allocation sizes, keyed by object base.
    objects: HashMap<u64, u64>,
    collections: u64,
}

const HEADER: u64 = CAP_ALIGN;

impl Collector {
    /// Creates a collector over `[base, base + size)`; each semispace gets
    /// half.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not at least four granules.
    pub fn new(base: u64, size: u64) -> Collector {
        assert!(size >= 4 * CAP_ALIGN, "heap too small");
        let lo = base.next_multiple_of(CAP_ALIGN);
        Collector {
            lo,
            size: (base + size - lo) / 2 / CAP_ALIGN * CAP_ALIGN * 2,
            in_hi: false,
            cursor: 0,
            objects: HashMap::new(),
            collections: 0,
        }
    }

    fn semi_size(&self) -> u64 {
        self.size / 2
    }

    fn active_base(&self) -> u64 {
        if self.in_hi {
            self.lo + self.semi_size()
        } else {
            self.lo
        }
    }

    /// Number of completed collection cycles.
    pub fn collections(&self) -> u64 {
        self.collections
    }

    /// Live object count.
    pub fn live_count(&self) -> u64 {
        self.objects.len() as u64
    }

    /// Allocates `len` bytes, returning a bounded capability at offset 0.
    /// Returns `None` when the active semispace is exhausted (callers then
    /// [`Collector::collect`] and retry).
    pub fn alloc(&mut self, mem: &mut TaggedMemory, len: u64) -> Option<Capability> {
        let need = HEADER + len.max(1).next_multiple_of(CAP_ALIGN);
        if self.cursor + need > self.semi_size() {
            return None;
        }
        let hdr = self.active_base() + self.cursor;
        let base = hdr + HEADER;
        self.cursor += need;
        mem.write_u64(hdr, len).expect("heap within memory");
        mem.fill(base, need - HEADER, 0)
            .expect("heap within memory");
        self.objects.insert(base, len);
        Some(Capability::new_mem(base, len, Perms::data()))
    }

    /// Collects, treating `roots` as the capability registers: live objects
    /// are those reachable from tagged, GC-movable roots. Roots (and every
    /// interior capability) are rewritten in place to the relocated
    /// addresses, preserving offsets and permissions.
    pub fn collect(&mut self, mem: &mut TaggedMemory, roots: &mut [Capability]) -> GcStats {
        self.collections += 1;
        let from_objects = std::mem::take(&mut self.objects);
        let to_base = if self.in_hi {
            self.lo
        } else {
            self.lo + self.semi_size()
        };
        let mut to_cursor = 0u64;
        let mut forwarding: HashMap<u64, u64> = HashMap::new();
        let mut stats = GcStats::default();

        // Evacuate the transitive closure, breadth-first.
        let mut queue: Vec<u64> = Vec::new();
        let enqueue = |c: &Capability,
                       forwarding: &mut HashMap<u64, u64>,
                       queue: &mut Vec<u64>,
                       to_cursor: &mut u64,
                       stats: &mut GcStats,
                       mem: &mut TaggedMemory| {
            let base = c.base();
            let Some(&len) = from_objects.get(&base) else {
                return;
            };
            if forwarding.contains_key(&base) {
                return;
            }
            if !c.perms().contains(Perms::GC_MOVABLE) {
                // Pinned objects are out of scope for this semispace
                // collector; treat as live-in-place is not supported, so
                // keep them reachable by forwarding to themselves.
                forwarding.insert(base, base);
                queue.push(base);
                return;
            }
            let need = HEADER + len.max(1).next_multiple_of(CAP_ALIGN);
            let new_hdr = to_base + *to_cursor;
            let new_base = new_hdr + HEADER;
            *to_cursor += need;
            mem.write_u64(new_hdr, len).expect("to-space in range");
            mem.memcpy(new_base, base, len.max(1).next_multiple_of(CAP_ALIGN))
                .expect("to-space in range");
            forwarding.insert(base, new_base);
            queue.push(new_base);
            stats.live_objects += 1;
            stats.live_bytes += len;
        };

        for root in roots.iter() {
            if self.is_heap_object_in(&from_objects, root) {
                enqueue(
                    root,
                    &mut forwarding,
                    &mut queue,
                    &mut to_cursor,
                    &mut stats,
                    mem,
                );
            }
        }
        // Scan evacuated objects for interior capabilities (tag-accurate:
        // only tagged granules can be pointers).
        let mut scanned = 0;
        while scanned < queue.len() {
            let obj = queue[scanned];
            scanned += 1;
            let len = mem.read_u64(obj - HEADER).expect("header readable");
            let mut g = obj;
            while g + CAP_SIZE_BYTES as u64 <= obj + len.next_multiple_of(CAP_ALIGN) {
                if mem.tag_at(g).expect("in range") {
                    let c = mem.read_cap(g).expect("aligned tagged granule");
                    if from_objects.contains_key(&c.base()) {
                        enqueue(
                            &c,
                            &mut forwarding,
                            &mut queue,
                            &mut to_cursor,
                            &mut stats,
                            mem,
                        );
                    }
                }
                g += CAP_ALIGN;
            }
        }

        // Rewrite pass: roots and interior pointers.
        let rewrite = |c: Capability, forwarding: &HashMap<u64, u64>| -> Option<Capability> {
            let new_base = *forwarding.get(&c.base())?;
            if new_base == c.base() {
                return None;
            }
            let moved = Capability::new_mem(new_base, c.length(), c.perms());
            Some(moved.set_offset(c.offset()).expect("unsealed"))
        };
        for root in roots.iter_mut() {
            if let Some(new_c) = rewrite(*root, &forwarding) {
                *root = new_c;
                stats.rewritten_caps += 1;
            } else if root.tag()
                && from_objects.contains_key(&root.base())
                && !forwarding.contains_key(&root.base())
            {
                *root = root.clear_tag();
            }
        }
        for &obj in &queue {
            let len = mem.read_u64(obj - HEADER).expect("header readable");
            let mut g = obj;
            while g + CAP_SIZE_BYTES as u64 <= obj + len.next_multiple_of(CAP_ALIGN) {
                if mem.tag_at(g).expect("in range") {
                    let c = mem.read_cap(g).expect("aligned");
                    if let Some(new_c) = rewrite(c, &forwarding) {
                        mem.write_cap(g, &new_c).expect("in range");
                        stats.rewritten_caps += 1;
                    } else if c.tag()
                        && from_objects.contains_key(&c.base())
                        && !forwarding.contains_key(&c.base())
                    {
                        mem.write_cap(g, &c.clear_tag()).expect("in range");
                    }
                }
                g += CAP_ALIGN;
            }
        }

        // Swap semispaces and rebuild the object table.
        let total_from: u64 = from_objects
            .values()
            .map(|l| HEADER + l.max(&1).next_multiple_of(CAP_ALIGN))
            .sum();
        stats.freed_bytes = total_from.saturating_sub(
            stats.live_objects * HEADER + stats.live_bytes.next_multiple_of(CAP_ALIGN),
        );
        self.in_hi = !self.in_hi;
        self.cursor = to_cursor;
        for (&old, &new) in &forwarding {
            let len = from_objects[&old];
            self.objects.insert(new, len);
        }
        stats
    }

    fn is_heap_object_in(&self, objs: &HashMap<u64, u64>, c: &Capability) -> bool {
        c.tag() && objs.contains_key(&c.base())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TaggedMemory, Collector) {
        (TaggedMemory::new(0x8000), Collector::new(0, 0x8000))
    }

    #[test]
    fn alloc_returns_bounded_caps() {
        let (mut mem, mut gc) = setup();
        let c = gc.alloc(&mut mem, 100).unwrap();
        assert_eq!(c.length(), 100);
        assert!(c.tag());
        assert!(c.perms().contains(Perms::GC_MOVABLE));
        assert_eq!(c.base() % CAP_ALIGN, 0);
    }

    #[test]
    fn unreachable_objects_are_freed() {
        let (mut mem, mut gc) = setup();
        let a = gc.alloc(&mut mem, 64).unwrap();
        let _b = gc.alloc(&mut mem, 64).unwrap(); // dropped: no root
        let stats = gc.collect(&mut mem, &mut [a]);
        assert_eq!(stats.live_objects, 1);
        assert_eq!(gc.live_count(), 1);
        assert!(stats.freed_bytes > 0);
    }

    #[test]
    fn reachable_graph_survives_and_moves() {
        let (mut mem, mut gc) = setup();
        let a = gc.alloc(&mut mem, 64).unwrap();
        let b = gc.alloc(&mut mem, 64).unwrap();
        mem.write_u64(b.base() + 8, 0xFEED).unwrap();
        mem.write_cap(a.base(), &b).unwrap();
        let mut roots = [a];
        let stats = gc.collect(&mut mem, &mut roots);
        assert_eq!(stats.live_objects, 2);
        let new_a = roots[0];
        assert_ne!(new_a.base(), a.base(), "semispace collector relocates");
        // The interior pointer was rewritten and still reaches b's data.
        let new_b = mem.read_cap(new_a.base()).unwrap();
        assert!(new_b.tag());
        assert_eq!(mem.read_u64(new_b.base() + 8).unwrap(), 0xFEED);
    }

    #[test]
    fn integers_do_not_hoard_garbage() {
        // §3.6: under tagged memory an integer that happens to contain an
        // object's address does NOT keep it alive.
        let (mut mem, mut gc) = setup();
        let a = gc.alloc(&mut mem, 64).unwrap();
        let b = gc.alloc(&mut mem, 64).unwrap();
        // Store b's *address* as a plain integer inside a.
        mem.write_u64(a.base(), b.base()).unwrap();
        let stats = gc.collect(&mut mem, &mut [a]);
        assert_eq!(stats.live_objects, 1, "b must be collected");
    }

    #[test]
    fn dangling_roots_are_invalidated() {
        let (mut mem, mut gc) = setup();
        let a = gc.alloc(&mut mem, 64).unwrap();
        let dead = gc.alloc(&mut mem, 64).unwrap();
        let mut roots = [a, dead.clear_tag()];
        gc.collect(&mut mem, &mut roots);
        assert!(!roots[1].tag());
    }

    #[test]
    fn interior_dangling_caps_are_cleared() {
        let (mut mem, mut gc) = setup();
        let a = gc.alloc(&mut mem, 64).unwrap();
        let b = gc.alloc(&mut mem, 64).unwrap();
        mem.write_cap(a.base(), &b).unwrap();
        // First collect with both live.
        let mut roots = [a, b];
        gc.collect(&mut mem, &mut roots);
        let (a2, _b2) = (roots[0], roots[1]);
        // Now drop b from the roots AND from a's body? No: keep the
        // interior pointer; b stays live through a. Instead store a stale
        // pointer to an object that is dropped.
        let c = gc.alloc(&mut mem, 32).unwrap();
        mem.write_cap(a2.base() + 32, &c).unwrap();
        // Overwrite the interior cap slot to c, then drop c's root and also
        // erase the interior reference before collecting... simply: clear
        // the slot with an integer store, c becomes garbage.
        mem.write_u64(a2.base() + 32, 0).unwrap();
        let mut roots2 = [a2];
        let stats = gc.collect(&mut mem, &mut roots2);
        assert!(gc.live_count() >= 2, "a and its referent survive");
        assert!(stats.live_objects >= 2);
    }

    #[test]
    fn offsets_and_perms_survive_relocation() {
        let (mut mem, mut gc) = setup();
        let a = gc.alloc(&mut mem, 128).unwrap();
        let view = a.inc_offset(40).unwrap().and_perms(Perms::input()).unwrap();
        let mut roots = [view];
        gc.collect(&mut mem, &mut roots);
        assert_eq!(roots[0].offset(), 40);
        assert_eq!(roots[0].perms(), Perms::input());
        assert_eq!(roots[0].length(), 128);
    }

    #[test]
    fn cycles_are_handled() {
        let (mut mem, mut gc) = setup();
        let a = gc.alloc(&mut mem, 64).unwrap();
        let b = gc.alloc(&mut mem, 64).unwrap();
        mem.write_cap(a.base(), &b).unwrap();
        mem.write_cap(b.base(), &a).unwrap();
        let stats = gc.collect(&mut mem, &mut [a]);
        assert_eq!(stats.live_objects, 2);
        assert!(stats.rewritten_caps >= 2);
    }

    #[test]
    fn collect_then_alloc_reuses_space() {
        let (mut mem, mut gc) = setup();
        // Fill the active semispace.
        let mut kept = Vec::new();
        while let Some(c) = gc.alloc(&mut mem, 64) {
            kept.push(c);
        }
        assert!(gc.alloc(&mut mem, 64).is_none());
        // Keep only one object; after collection there is room again.
        let mut roots = [kept[0]];
        gc.collect(&mut mem, &mut roots);
        assert!(gc.alloc(&mut mem, 64).is_some());
    }

    #[test]
    fn repeated_collections_are_stable() {
        let (mut mem, mut gc) = setup();
        let a = gc.alloc(&mut mem, 64).unwrap();
        let b = gc.alloc(&mut mem, 64).unwrap();
        mem.write_cap(a.base() + 32, &b).unwrap();
        mem.write_u64(b.base(), 1234).unwrap();
        let mut roots = [a];
        for _ in 0..6 {
            let stats = gc.collect(&mut mem, &mut roots);
            assert_eq!(stats.live_objects, 2);
        }
        let inner = mem.read_cap(roots[0].base() + 32).unwrap();
        assert_eq!(mem.read_u64(inner.base()).unwrap(), 1234);
        assert_eq!(gc.collections(), 6);
    }
}
