//! Trap causes and reporting.

use cheri_cap::CapError;
use cheri_isa::DecodeError;
use cheri_mem::MemError;
use std::error::Error;
use std::fmt;

/// Why the machine trapped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrapCause {
    /// A capability check failed (tag, seal, permission, bounds…).
    Capability(CapError),
    /// The physical memory access failed (out of backing store,
    /// misalignment).
    Memory(MemError),
    /// A legacy access hit the unmapped low guard page — the page-protection
    /// "segmentation fault" of conventional implementations.
    NullGuard {
        /// The faulting virtual address.
        addr: u64,
    },
    /// Trapping signed arithmetic (`add`/`sub`/`addi`) overflowed (§3.1.1).
    IntegerOverflow,
    /// Integer division or remainder by zero.
    DivideByZero,
    /// The program counter left the PCC's bounds.
    PccBounds {
        /// The faulting instruction index.
        pc: u64,
    },
    /// A capability jump (`CJR`/`CJALR`) targeted a byte address that is
    /// not aligned to the 8-byte instruction word — silently truncating it
    /// would land control on the previous instruction.
    PccMisaligned {
        /// The misaligned target byte address.
        addr: u64,
    },
    /// An undefined instruction word was fetched.
    BadInstruction(DecodeError),
    /// An unknown syscall number.
    BadSyscall(i32),
    /// `break` executed.
    Breakpoint,
    /// The fuel budget given to [`crate::Vm::run`] ran out.
    OutOfFuel,
}

impl fmt::Display for TrapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapCause::Capability(e) => write!(f, "capability exception: {e}"),
            TrapCause::Memory(e) => write!(f, "memory exception: {e}"),
            TrapCause::NullGuard { addr } => {
                write!(
                    f,
                    "segmentation fault: access at {addr:#x} in the null guard page"
                )
            }
            TrapCause::IntegerOverflow => write!(f, "trapped signed integer overflow"),
            TrapCause::DivideByZero => write!(f, "integer division by zero"),
            TrapCause::PccBounds { pc } => write!(f, "pc {pc} left the PCC bounds"),
            TrapCause::PccMisaligned { addr } => {
                write!(f, "jump target {addr:#x} is not instruction-aligned")
            }
            TrapCause::BadInstruction(e) => write!(f, "illegal instruction: {e}"),
            TrapCause::BadSyscall(n) => write!(f, "unknown syscall {n}"),
            TrapCause::Breakpoint => write!(f, "breakpoint"),
            TrapCause::OutOfFuel => write!(f, "instruction budget exhausted"),
        }
    }
}

/// A trap, located at the instruction that raised it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VmTrap {
    /// Instruction index at which the trap was raised.
    pub pc: u64,
    /// The cause.
    pub cause: TrapCause,
}

impl fmt::Display for VmTrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trap at pc {}: {}", self.pc, self.cause)
    }
}

impl Error for VmTrap {}

impl From<CapError> for TrapCause {
    fn from(e: CapError) -> TrapCause {
        TrapCause::Capability(e)
    }
}

impl From<MemError> for TrapCause {
    fn from(e: MemError) -> TrapCause {
        TrapCause::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let t = VmTrap {
            pc: 12,
            cause: TrapCause::Capability(CapError::TagViolation),
        };
        let s = t.to_string();
        assert!(s.contains("pc 12"));
        assert!(s.contains("tag"));
        assert!(TrapCause::NullGuard { addr: 0 }
            .to_string()
            .contains("segmentation"));
    }

    #[test]
    fn conversions_work() {
        let c: TrapCause = CapError::TagViolation.into();
        assert_eq!(c, TrapCause::Capability(CapError::TagViolation));
        let m: TrapCause = MemError::Misaligned { addr: 1 }.into();
        assert!(matches!(m, TrapCause::Memory(_)));
    }
}
