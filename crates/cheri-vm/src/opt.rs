//! The IR optimization layer: a peephole pass over [`Block`]s.
//!
//! Three rewrites, each chosen because it is *unobservable* to the
//! architectural state the identity suites pin (registers, memory, traps
//! and their pcs, simulated cycles, per-op retirement counts, cache
//! traffic):
//!
//! 1. **Constant folding into immediates.** Registers whose value is
//!    block-known (seeded by `li`/`lui` and `r0`) propagate through pure
//!    integer ALU ops, which collapse to [`FlatOp::Li`]. A *trapping* op
//!    (`add`/`sub`/`addi`/`div`/…) folds only when the constant operands
//!    show it cannot trap; if it *would* trap it is left in place so the
//!    trap fires at exactly the source pc with exactly the pre-op
//!    registers.
//! 2. **Redundant-write elision.** A pure, non-trapping integer write
//!    whose destination is overwritten later in the block — before any
//!    read and with no potentially-trapping op in between (registers at a
//!    trap are observable) — is replaced by [`FlatOp::Nop`] *in its
//!    slot*, so pc accounting and mid-block unwind stay positional.
//! 3. **Fused compare-and-branch.** The dominant loop idiom
//!    `slt/sltu/slti/sltiu rd, …` + terminal `beq/bne rd, r0, target`
//!    fuses into one [`FlatOp::FusedCmpBranch`] micro-op that still
//!    writes `rd` and then branches — one dispatch instead of two per
//!    loop iteration. Neither component can trap, so this is the only
//!    rewrite allowed to shorten the op array (the instruction count
//!    still comes from [`Block::raw`]).
//!
//! Every rewrite leaves `raw`, `hist` and `base_cycles` untouched:
//! statistics always describe the *source* instructions. Loads, stores
//! and capability-register writes are never folded or elided — their
//! cache charges and trap snapshots are observable. The pass is gated by
//! [`crate::OptLevel`] so the unoptimized path stays available for
//! differential testing.

use crate::ir::{Block, FlatOp};

/// Applies the peephole rewrites to `block` in place.
pub(crate) fn peephole(block: &mut Block) {
    let mut ops: Vec<FlatOp> = block.ops.to_vec();
    fold_constants(&mut ops);
    elide_dead_writes(&mut ops);
    fuse_cmp_branch(&mut ops);
    block.ops = ops.into_boxed_slice();
}

/// What a fold attempt learned about an op under known operands.
enum Folded {
    /// The op computes this value into its destination and cannot trap.
    Value(u64),
    /// The op would trap on these operands: leave it exactly in place.
    WouldTrap,
}

/// Propagates block-known register constants and collapses pure integer
/// ALU ops over them into `Li`.
fn fold_constants(ops: &mut [FlatOp]) {
    // `consts[r]` is the value register `r` is known to hold at this point
    // in the block; `r0` is always 0.
    let mut consts: [Option<u64>; 32] = [None; 32];
    consts[0] = Some(0);
    for op in ops.iter_mut() {
        if let FlatOp::Li { rd, v } = *op {
            if rd != 0 {
                consts[rd as usize] = Some(v);
            }
            continue;
        }
        match try_fold(op, &consts) {
            Some(Folded::Value(v)) => {
                let rd = int_write(op).expect("foldable ops write a register");
                *op = FlatOp::Li { rd, v };
                if rd != 0 {
                    consts[rd as usize] = Some(v);
                }
                continue;
            }
            Some(Folded::WouldTrap) => {
                // Execution cannot continue past this op at runtime, but
                // stay conservative: its destination is no longer known.
                if let Some(rd) = int_write(op) {
                    if rd != 0 {
                        consts[rd as usize] = None;
                    }
                }
                continue;
            }
            None => {}
        }
        // Not foldable: invalidate whatever it writes. `Other` may be a
        // syscall or sealing op — drop all knowledge.
        if matches!(op, FlatOp::Other(_)) {
            consts = [None; 32];
            consts[0] = Some(0);
        } else if let Some(rd) = int_write(op) {
            if rd != 0 {
                consts[rd as usize] = None;
            }
        }
    }
}

/// Attempts to evaluate `op` over `consts`. `None` means the op is not a
/// pure integer ALU op or an operand is unknown.
fn try_fold(op: &FlatOp, consts: &[Option<u64>; 32]) -> Option<Folded> {
    let c = |r: u8| consts[r as usize];
    let v = |x: u64| Some(Folded::Value(x));
    match *op {
        // Non-trapping two-register ALU.
        FlatOp::Addu { rs, rt, .. } => v(c(rs)?.wrapping_add(c(rt)?)),
        FlatOp::Subu { rs, rt, .. } => v(c(rs)?.wrapping_sub(c(rt)?)),
        FlatOp::And { rs, rt, .. } => v(c(rs)? & c(rt)?),
        FlatOp::Or { rs, rt, .. } => v(c(rs)? | c(rt)?),
        FlatOp::Xor { rs, rt, .. } => v(c(rs)? ^ c(rt)?),
        FlatOp::Nor { rs, rt, .. } => v(!(c(rs)? | c(rt)?)),
        FlatOp::Slt { rs, rt, .. } => v(u64::from((c(rs)? as i64) < (c(rt)? as i64))),
        FlatOp::Sltu { rs, rt, .. } => v(u64::from(c(rs)? < c(rt)?)),
        FlatOp::Sllv { rs, rt, .. } => v(c(rs)? << (c(rt)? & 63)),
        FlatOp::Srlv { rs, rt, .. } => v(c(rs)? >> (c(rt)? & 63)),
        FlatOp::Srav { rs, rt, .. } => v(((c(rs)? as i64) >> (c(rt)? & 63)) as u64),
        FlatOp::Mul { rs, rt, .. } => v(c(rs)?.wrapping_mul(c(rt)?)),
        // Non-trapping immediate ALU.
        FlatOp::Addiu { rs, imm, .. } => v(c(rs)?.wrapping_add(imm)),
        FlatOp::Andi { rs, imm, .. } => v(c(rs)? & imm),
        FlatOp::Ori { rs, imm, .. } => v(c(rs)? | imm),
        FlatOp::Xori { rs, imm, .. } => v(c(rs)? ^ imm),
        FlatOp::Slti { rs, imm, .. } => v(u64::from((c(rs)? as i64) < imm)),
        FlatOp::Sltiu { rs, imm, .. } => v(u64::from(c(rs)? < imm)),
        FlatOp::Sll { rs, sh, .. } => v(c(rs)? << sh),
        FlatOp::Srl { rs, sh, .. } => v(c(rs)? >> sh),
        FlatOp::Sra { rs, sh, .. } => v(((c(rs)? as i64) >> sh) as u64),
        // Trapping signed arithmetic folds only when it provably cannot
        // trap on these operands.
        FlatOp::Add { rs, rt, .. } => match (c(rs)? as i64).checked_add(c(rt)? as i64) {
            Some(x) => v(x as u64),
            None => Some(Folded::WouldTrap),
        },
        FlatOp::Sub { rs, rt, .. } => match (c(rs)? as i64).checked_sub(c(rt)? as i64) {
            Some(x) => v(x as u64),
            None => Some(Folded::WouldTrap),
        },
        FlatOp::Addi { rs, imm, .. } => match (c(rs)? as i64).checked_add(imm) {
            Some(x) => v(x as u64),
            None => Some(Folded::WouldTrap),
        },
        FlatOp::Div { rs, rt, .. } => {
            let (a, b) = (c(rs)? as i64, c(rt)? as i64);
            match (b != 0).then(|| a.checked_div(b)).flatten() {
                Some(x) => v(x as u64),
                None => Some(Folded::WouldTrap),
            }
        }
        FlatOp::Divu { rs, rt, .. } => match c(rs)?.checked_div(c(rt)?) {
            Some(x) => v(x),
            None => Some(Folded::WouldTrap),
        },
        FlatOp::Rem { rs, rt, .. } => {
            let (a, b) = (c(rs)? as i64, c(rt)? as i64);
            match (b != 0).then(|| a.checked_rem(b)).flatten() {
                Some(x) => v(x as u64),
                None => Some(Folded::WouldTrap),
            }
        }
        FlatOp::Remu { rs, rt, .. } => match c(rs)?.checked_rem(c(rt)?) {
            Some(x) => v(x),
            None => Some(Folded::WouldTrap),
        },
        _ => None,
    }
}

/// The integer register `op` writes, if any. `Some(0)` is reported as-is;
/// callers treat a write to `r0` as no write.
fn int_write(op: &FlatOp) -> Option<u8> {
    match *op {
        FlatOp::Add { rd, .. }
        | FlatOp::Sub { rd, .. }
        | FlatOp::Addi { rd, .. }
        | FlatOp::Addu { rd, .. }
        | FlatOp::Subu { rd, .. }
        | FlatOp::And { rd, .. }
        | FlatOp::Or { rd, .. }
        | FlatOp::Xor { rd, .. }
        | FlatOp::Nor { rd, .. }
        | FlatOp::Slt { rd, .. }
        | FlatOp::Sltu { rd, .. }
        | FlatOp::Sllv { rd, .. }
        | FlatOp::Srlv { rd, .. }
        | FlatOp::Srav { rd, .. }
        | FlatOp::Mul { rd, .. }
        | FlatOp::Div { rd, .. }
        | FlatOp::Divu { rd, .. }
        | FlatOp::Rem { rd, .. }
        | FlatOp::Remu { rd, .. }
        | FlatOp::Addiu { rd, .. }
        | FlatOp::Andi { rd, .. }
        | FlatOp::Ori { rd, .. }
        | FlatOp::Xori { rd, .. }
        | FlatOp::Slti { rd, .. }
        | FlatOp::Sltiu { rd, .. }
        | FlatOp::Li { rd, .. }
        | FlatOp::Sll { rd, .. }
        | FlatOp::Srl { rd, .. }
        | FlatOp::Sra { rd, .. }
        | FlatOp::Jalr { rd, .. }
        | FlatOp::Load { rd, .. }
        | FlatOp::CGetBase { rd, .. }
        | FlatOp::CGetLen { rd, .. }
        | FlatOp::CGetOffset { rd, .. }
        | FlatOp::CGetPerm { rd, .. }
        | FlatOp::CGetTag { rd, .. }
        | FlatOp::CPtrCmp { rd, .. }
        | FlatOp::CToPtr { rd, .. }
        | FlatOp::FusedCmpBranch { rd, .. } => Some(rd),
        FlatOp::Jal { .. } => Some(cheri_isa::RA),
        _ => None,
    }
}

/// The integer registers `op` reads. `None` means "assume it reads
/// everything" (the `Other` long tail: syscalls read argument registers).
fn int_reads(op: &FlatOp) -> Option<[Option<u8>; 2]> {
    let two = |a, b| Some([Some(a), Some(b)]);
    let one = |a| Some([Some(a), None]);
    let zero = Some([None, None]);
    match *op {
        FlatOp::Add { rs, rt, .. }
        | FlatOp::Sub { rs, rt, .. }
        | FlatOp::Addu { rs, rt, .. }
        | FlatOp::Subu { rs, rt, .. }
        | FlatOp::And { rs, rt, .. }
        | FlatOp::Or { rs, rt, .. }
        | FlatOp::Xor { rs, rt, .. }
        | FlatOp::Nor { rs, rt, .. }
        | FlatOp::Slt { rs, rt, .. }
        | FlatOp::Sltu { rs, rt, .. }
        | FlatOp::Sllv { rs, rt, .. }
        | FlatOp::Srlv { rs, rt, .. }
        | FlatOp::Srav { rs, rt, .. }
        | FlatOp::Mul { rs, rt, .. }
        | FlatOp::Div { rs, rt, .. }
        | FlatOp::Divu { rs, rt, .. }
        | FlatOp::Rem { rs, rt, .. }
        | FlatOp::Remu { rs, rt, .. }
        | FlatOp::Beq { rs, rt, .. }
        | FlatOp::Bne { rs, rt, .. } => two(rs, rt),
        FlatOp::Addi { rs, .. }
        | FlatOp::Addiu { rs, .. }
        | FlatOp::Andi { rs, .. }
        | FlatOp::Ori { rs, .. }
        | FlatOp::Xori { rs, .. }
        | FlatOp::Slti { rs, .. }
        | FlatOp::Sltiu { rs, .. }
        | FlatOp::Sll { rs, .. }
        | FlatOp::Srl { rs, .. }
        | FlatOp::Sra { rs, .. }
        | FlatOp::Blez { rs, .. }
        | FlatOp::Bgtz { rs, .. }
        | FlatOp::Bltz { rs, .. }
        | FlatOp::Bgez { rs, .. }
        | FlatOp::Jr { rs }
        | FlatOp::Jalr { rs, .. } => one(rs),
        FlatOp::Nop | FlatOp::Li { .. } | FlatOp::J { .. } | FlatOp::Jal { .. } => zero,
        FlatOp::FusedCmpBranch {
            rs, rt, imm_form, ..
        } => {
            if imm_form {
                one(rs)
            } else {
                two(rs, rt)
            }
        }
        FlatOp::Load { base, via_cap, .. } => {
            if via_cap {
                zero
            } else {
                one(base)
            }
        }
        FlatOp::Store {
            rv, base, via_cap, ..
        } => {
            if via_cap {
                one(rv)
            } else {
                two(rv, base)
            }
        }
        FlatOp::Clc { .. }
        | FlatOp::Csc { .. }
        | FlatOp::CIncOffsetImm { .. }
        | FlatOp::CClearTag { .. }
        | FlatOp::CMove { .. } => zero,
        FlatOp::CIncOffset { rt, .. }
        | FlatOp::CSetOffset { rt, .. }
        | FlatOp::CSetBounds { rt, .. }
        | FlatOp::CAndPerm { rt, .. } => one(rt),
        FlatOp::CGetBase { .. }
        | FlatOp::CGetLen { .. }
        | FlatOp::CGetOffset { .. }
        | FlatOp::CGetPerm { .. }
        | FlatOp::CGetTag { .. }
        | FlatOp::CPtrCmp { .. }
        | FlatOp::CToPtr { .. } => zero,
        FlatOp::Other(_) => None,
    }
}

/// `true` when `op` can raise a trap at runtime.
fn can_trap(op: &FlatOp) -> bool {
    matches!(
        op,
        FlatOp::Add { .. }
            | FlatOp::Sub { .. }
            | FlatOp::Addi { .. }
            | FlatOp::Div { .. }
            | FlatOp::Divu { .. }
            | FlatOp::Rem { .. }
            | FlatOp::Remu { .. }
            | FlatOp::Load { .. }
            | FlatOp::Store { .. }
            | FlatOp::Clc { .. }
            | FlatOp::Csc { .. }
            | FlatOp::CIncOffset { .. }
            | FlatOp::CIncOffsetImm { .. }
            | FlatOp::CSetOffset { .. }
            | FlatOp::CSetBounds { .. }
            | FlatOp::CAndPerm { .. }
            | FlatOp::Other(_)
    )
}

/// `true` when `op`'s only architectural effect is writing one integer
/// register and it cannot trap: the elidable class.
fn is_elidable_write(op: &FlatOp) -> bool {
    if can_trap(op) {
        return false;
    }
    match op {
        // Control transfers write a link register as a *side effect* of
        // transferring control — never elidable.
        FlatOp::Jal { .. } | FlatOp::Jalr { .. } | FlatOp::FusedCmpBranch { .. } => false,
        _ => int_write(op).is_some(),
    }
}

/// Replaces integer writes that are dead within the block by `Nop`,
/// keeping the slot so pc accounting stays positional.
fn elide_dead_writes(ops: &mut [FlatOp]) {
    for i in 0..ops.len() {
        if !is_elidable_write(&ops[i]) {
            continue;
        }
        let rd = int_write(&ops[i]).expect("elidable ops write a register");
        if rd == 0 {
            // Writes to `r0` are architecturally ignored.
            ops[i] = FlatOp::Nop;
            continue;
        }
        let mut dead = false;
        for later in ops.iter().skip(i + 1) {
            let reads_rd = match int_reads(later) {
                Some(reads) => reads.iter().flatten().any(|&r| r == rd),
                None => true, // `Other`: assume it reads everything.
            };
            if reads_rd {
                break;
            }
            // A trap between the elided write and the superseding write
            // would expose the missing value in the register snapshot.
            if can_trap(later) {
                break;
            }
            if int_write(later) == Some(rd) {
                dead = true;
                break;
            }
        }
        if dead {
            ops[i] = FlatOp::Nop;
        }
    }
}

/// Fuses a penultimate compare with a terminal branch on its result.
fn fuse_cmp_branch(ops: &mut Vec<FlatOp>) {
    let n = ops.len();
    if n < 2 {
        return;
    }
    let (rd, rs, rt, imm, signed, imm_form) = match ops[n - 2] {
        FlatOp::Slt { rd, rs, rt } => (rd, rs, rt, 0, true, false),
        FlatOp::Sltu { rd, rs, rt } => (rd, rs, rt, 0, false, false),
        FlatOp::Slti { rd, rs, imm } => (rd, rs, 0, imm, true, true),
        FlatOp::Sltiu { rd, rs, imm } => (rd, rs, 0, imm as i64, false, true),
        _ => return,
    };
    // `rd == 0` would discard the compare and branch on the constant
    // `r0`; leave that (degenerate, compiler-never-emitted) shape alone.
    if rd == 0 {
        return;
    }
    let (brs, brt, target, branch_if) = match ops[n - 1] {
        FlatOp::Beq { rs, rt, target } => (rs, rt, target, false),
        FlatOp::Bne { rs, rt, target } => (rs, rt, target, true),
        _ => return,
    };
    // The branch must test exactly the compare's result against `r0`.
    if !((brs == rd && brt == 0) || (brs == 0 && brt == rd)) {
        return;
    }
    ops[n - 2] = FlatOp::FusedCmpBranch {
        rd,
        rs,
        rt,
        imm,
        signed,
        imm_form,
        branch_if,
        target,
    };
    ops.truncate(n - 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BackendKind, OptLevel, VmConfig};
    use crate::machine::Vm;
    use crate::trap::TrapCause;
    use cheri_isa::{Instr, Op, Program};

    fn optimized(code: &[Instr]) -> Vec<FlatOp> {
        let mut b = Block::build(0, code);
        peephole(&mut b);
        b.ops.to_vec()
    }

    /// Runs `code` with the peephole on and off (reference backend) and
    /// asserts the outcome, registers, stats and final pc agree.
    fn assert_opt_preserves(code: Vec<Instr>) {
        let mut p = Program::new();
        p.code = code;
        let run = |opt: OptLevel| {
            let cfg = VmConfig::functional()
                .with_backend(BackendKind::Reference)
                .with_opt_level(opt);
            let mut vm = Vm::new(p.clone(), cfg);
            let out = vm.run(100_000).map(|s| s.code);
            let stats = vm.stats();
            let regs: Vec<u64> = (0..32).map(|r| vm.reg(r)).collect();
            let ops: Vec<u64> = Op::ALL.iter().map(|&o| stats.op_count(o)).collect();
            (
                out,
                vm.pc(),
                regs,
                stats.instret,
                stats.cycles,
                ops,
                vm.output_string(),
            )
        };
        assert_eq!(run(OptLevel::None), run(OptLevel::Peephole));
    }

    #[test]
    fn constants_fold_into_immediates() {
        // li 8, 6; li 9, 7; mul 10, 8, 9 → the mul becomes li 10, 42.
        let code = vec![
            Instr::li(8, 6),
            Instr::li(9, 7),
            Instr::r3(Op::Mul, 10, 8, 9),
            Instr::syscall(0),
        ];
        let ops = optimized(&code);
        assert!(
            matches!(ops[2], FlatOp::Li { rd: 10, v: 42 }),
            "got {:?}",
            ops[2]
        );
        assert_opt_preserves(code);
    }

    #[test]
    fn folding_uses_r0_as_zero() {
        // addu 8, 0, 0 is a constant 0 without any li seeding it.
        let code = vec![Instr::r3(Op::Addu, 8, 0, 0), Instr::syscall(0)];
        let ops = optimized(&code);
        assert!(matches!(ops[0], FlatOp::Li { rd: 8, v: 0 }));
        assert_opt_preserves(code);
    }

    #[test]
    fn trapping_fold_that_would_trap_stays_put() {
        // li 8, i64::MAX (via shift); add 9, 8, 8 overflows: the add must
        // stay an Add so it traps at pc 2 with the pre-op registers.
        let code = vec![
            Instr::li(8, i32::MAX),
            Instr::i2(Op::Sll, 8, 8, 32),
            Instr::r3(Op::Add, 9, 8, 8),
            Instr::syscall(0),
        ];
        let ops = optimized(&code);
        // Slot 1 folds (sll over a known constant), slot 2 must not.
        assert!(matches!(ops[1], FlatOp::Li { rd: 8, .. }));
        assert!(matches!(ops[2], FlatOp::Add { .. }), "got {:?}", ops[2]);
        // And the trap lands at the same pc with the same cause either way.
        let mut p = Program::new();
        p.code = code.clone();
        for opt in [OptLevel::None, OptLevel::Peephole] {
            let cfg = VmConfig::functional().with_opt_level(opt);
            let err = Vm::new(p.clone(), cfg).run(1000).unwrap_err();
            assert_eq!((err.pc, err.cause), (2, TrapCause::IntegerOverflow));
        }
        assert_opt_preserves(code);
    }

    #[test]
    fn trapping_fold_that_cannot_trap_folds() {
        let code = vec![
            Instr::li(8, 20),
            Instr::li(9, 22),
            Instr::r3(Op::Add, 10, 8, 9),
            Instr::syscall(0),
        ];
        let ops = optimized(&code);
        assert!(matches!(ops[2], FlatOp::Li { rd: 10, v: 42 }));
        assert_opt_preserves(code);
    }

    #[test]
    fn division_by_known_zero_stays_put() {
        let code = vec![
            Instr::li(8, 1),
            Instr::li(9, 0),
            Instr::r3(Op::Div, 10, 8, 9),
            Instr::syscall(0),
        ];
        let ops = optimized(&code);
        assert!(matches!(ops[2], FlatOp::Div { .. }));
        assert_opt_preserves(code);
    }

    #[test]
    fn dead_write_is_elided_in_place() {
        // The first li's value is overwritten before any read: slot 0
        // becomes a Nop (slot retained), and the block still has 4 ops.
        let code = vec![
            Instr::li(8, 1),
            Instr::li(8, 2),
            Instr::r3(Op::Addu, 4, 8, 0),
            Instr::syscall(0),
        ];
        let ops = optimized(&code);
        assert_eq!(ops.len(), 4);
        assert!(matches!(ops[0], FlatOp::Nop), "got {:?}", ops[0]);
        assert!(matches!(ops[1], FlatOp::Li { rd: 8, v: 2 }));
        assert_opt_preserves(code);
    }

    #[test]
    fn write_before_potential_trap_is_not_elided() {
        // A load between the two writes can trap; the register snapshot
        // at that trap must show the first value, so no elision.
        let code = vec![
            Instr::li(8, 1),
            Instr::mem(Op::Ld, 9, 10, 0),
            Instr::li(8, 2),
            Instr::syscall(0),
        ];
        let ops = optimized(&code);
        assert!(matches!(ops[0], FlatOp::Li { rd: 8, v: 1 }));
        assert_opt_preserves(code);
    }

    #[test]
    fn read_write_not_elided() {
        // The intermediate value is read (by the fold-resistant store),
        // so the write survives.
        let code = vec![
            Instr::mem(Op::Ld, 8, 10, 0), // unknown value into r8
            Instr::mem(Op::Sd, 8, 10, 8), // reads r8
            Instr::li(8, 2),
            Instr::syscall(0),
        ];
        let mut b = Block::build(0, &code);
        peephole(&mut b);
        assert!(matches!(b.ops[0], FlatOp::Load { rd: 8, .. }));
    }

    #[test]
    fn cmp_branch_pairs_fuse() {
        // The sum-loop back edge: slt 11, 10, 9; beq 0, 11, 3.
        let code = vec![
            Instr::r3(Op::Addu, 8, 8, 9),
            Instr::i2(Op::Addiu, 9, 9, 1),
            Instr::r3(Op::Slt, 11, 10, 9),
            Instr::new(Op::Beq, 0, 11, 0, 0),
        ];
        let ops = optimized(&code);
        assert_eq!(ops.len(), 3, "the branch slot folds into the compare");
        match ops[2] {
            FlatOp::FusedCmpBranch {
                rd,
                rs,
                rt,
                signed,
                imm_form,
                branch_if,
                target,
                ..
            } => {
                assert_eq!((rd, rs, rt), (11, 10, 9));
                assert!(signed && !imm_form);
                assert!(!branch_if, "beq branches when the compare is 0");
                assert_eq!(target, 0);
            }
            ref other => panic!("expected a fused compare-branch, got {other:?}"),
        }
    }

    #[test]
    fn fused_loop_preserves_semantics_and_register_writes() {
        // Sum 1..=10; the loop compare's rd (r11) is live after the loop
        // and must hold the final compare result.
        let code = vec![
            Instr::li(8, 0),
            Instr::li(9, 1),
            Instr::li(10, 10),
            Instr::r3(Op::Addu, 8, 8, 9),
            Instr::i2(Op::Addiu, 9, 9, 1),
            Instr::r3(Op::Slt, 11, 10, 9),
            Instr::new(Op::Beq, 0, 11, 0, 3),
            Instr::r3(Op::Addu, 4, 8, 0),
            Instr::syscall(0),
        ];
        assert_opt_preserves(code);
    }

    #[test]
    fn sltiu_bne_fuses_with_immediate() {
        let code = vec![
            Instr::i2(Op::Sltiu, 11, 9, 100),
            Instr::new(Op::Bne, 0, 11, 0, 0),
        ];
        let ops = optimized(&code);
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            ops[0],
            FlatOp::FusedCmpBranch {
                imm_form: true,
                signed: false,
                branch_if: true,
                imm: 100,
                ..
            }
        ));
    }

    #[test]
    fn unrelated_branch_does_not_fuse() {
        // The branch tests a different register than the compare writes.
        let code = vec![
            Instr::r3(Op::Slt, 11, 10, 9),
            Instr::new(Op::Beq, 0, 12, 0, 0),
        ];
        let ops = optimized(&code);
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0], FlatOp::Slt { .. }));
    }

    #[test]
    fn raw_and_cycles_survive_rewrites() {
        let code = vec![
            Instr::li(8, 1),
            Instr::li(8, 2),
            Instr::r3(Op::Slt, 11, 8, 9),
            Instr::new(Op::Bne, 0, 11, 0, 0),
        ];
        let mut b = Block::build(0, &code);
        let (raw, cycles, hist) = (b.raw.clone(), b.base_cycles, b.hist.clone());
        peephole(&mut b);
        assert_eq!(b.raw, raw, "raw opcodes are the accounting basis");
        assert_eq!(b.base_cycles, cycles);
        assert_eq!(b.hist, hist);
        assert_eq!(b.instr_len(), 4);
        assert_eq!(b.ops.len(), 3);
    }
}
