//! Pluggable execution backends over the block IR.
//!
//! A backend owns the compiled-block cache and the dispatch loop; the
//! [`crate::Vm`] owns the architectural state (registers, memory, PCC,
//! statistics) and hands itself to the backend for the duration of
//! [`crate::Vm::run`]. All backends are instances of one generic
//! [`Engine`] parameterised by a [`BlockRepr`] — what a compiled block
//! *is* — plus a chaining switch:
//!
//! * [`BackendKind::Reference`] — `Engine<InterpBody>`, no chaining: the
//!   superinstruction interpreter exactly as before this refactor, and
//!   the semantics every other backend is differenced against.
//! * [`BackendKind::Chained`] — the same body, but a block whose terminal
//!   is a direct branch or jump transfers straight to the already-compiled
//!   successor (a memoized slot on the block) without re-entering the
//!   outer dispatch loop.
//! * [`BackendKind::Template`] — `Engine<TemplateBody>` with chaining:
//!   each micro-op is pre-bound at compile time to a monomorphized
//!   handler function, so the per-op dispatch is an indirect call on
//!   pre-extracted operands instead of a match over [`FlatOp`].
//!
//! Chaining preserves bit-identity because the chain loop re-applies the
//! outer loop's policy before every hop: the successor must lie inside
//! the validated fetch window (so `fetch_checks` cannot diverge — the
//! reference loop would not have revalidated either) and must fit in the
//! remaining fuel (so `OutOfFuel` falls back to single-stepping at the
//! same pc). Within a chain the window is invariant: the only ops that
//! write the PCC (`cjr`/`cjalr`) are block terminals classified
//! [`BlockExit::CapJump`], which never chain; [`BlockExit::Effect`]
//! (syscall/break) never chains either, so the `halted` flag is always
//! seen by the outer loop.

use crate::config::{BackendKind, OptLevel, VmConfig};
use crate::ir::{Block, BlockExit, FlatOp};
use crate::machine::{ExitStatus, Vm};
use crate::opt;
use crate::trap::{TrapCause, VmTrap};
use cheri_isa::{Instr, Op};
use std::fmt;

/// An execution backend: compiles blocks on demand and runs the machine
/// until exit, trap, or fuel exhaustion. Exactly the contract
/// [`crate::Vm::run`] had before backends were pluggable.
pub(crate) trait ExecBackend: fmt::Debug + Send + Sync {
    /// Which backend this is (bench/driver labelling).
    fn kind(&self) -> BackendKind;
    /// Runs `vm` for at most `fuel` retired instructions.
    fn run(&mut self, vm: &mut Vm, fuel: u64) -> Result<ExitStatus, VmTrap>;
    /// Folds this backend's block execution counters (histogram × execs)
    /// into `counts`, completing the per-op retirement statistics.
    fn add_op_counts(&self, counts: &mut [u64]);
    /// Clone through the trait object (keeps `Vm: Clone`).
    fn boxed_clone(&self) -> Box<dyn ExecBackend>;
}

/// Builds the backend selected by `cfg.backend`.
pub(crate) fn new_backend(cfg: &VmConfig, code_len: usize) -> Box<dyn ExecBackend> {
    match cfg.backend {
        BackendKind::Reference => Box::new(Engine::<InterpBody>::new(cfg, false, code_len)),
        BackendKind::Chained => Box::new(Engine::<InterpBody>::new(cfg, true, code_len)),
        BackendKind::Template => Box::new(Engine::<TemplateBody>::new(cfg, true, code_len)),
        BackendKind::Native => new_native(cfg, code_len),
    }
}

/// The native tier, or its fallback where the emitter cannot target the
/// host (non-x86-64, non-Linux, miri).
fn new_native(cfg: &VmConfig, code_len: usize) -> Box<dyn ExecBackend> {
    #[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
    if crate::codegen::supported() {
        return Box::new(Engine::<crate::codegen::NativeBody>::new(
            cfg, true, code_len,
        ));
    }
    native_fallback(cfg, code_len)
}

/// The template tier running under the `Native` label — results are
/// bit-identical (that is the whole point of the differential matrix), so
/// every suite and driver stays green on hosts without the JIT. Logs a
/// note once per process so the substitution is never silent.
fn native_fallback(cfg: &VmConfig, code_len: usize) -> Box<dyn ExecBackend> {
    static NOTE: std::sync::Once = std::sync::Once::new();
    NOTE.call_once(|| {
        eprintln!(
            "cheri-vm: the native backend has no emitter for this host; \
             running the template tier under the `native` label"
        );
    });
    Box::new(Engine::<TemplateBody>::new(cfg, true, code_len))
}

/// What a compiled block is to a particular backend.
pub(crate) trait BlockRepr: Clone + fmt::Debug + Send + Sync + 'static {
    /// Per-engine compilation context, threaded into every `compile`.
    /// `()` for the interpreted tiers; the native tier's executable
    /// [`crate::codegen`] code buffer. Cloning a context must yield a
    /// context fit for an *independent* engine clone (the native buffer
    /// seals itself and hands the clone an empty one).
    type Cx: Default + Clone + fmt::Debug + Send + Sync;
    /// Compiles the (possibly peephole-rewritten) micro-ops of the block
    /// entered at `start`.
    fn compile(ops: &[FlatOp], start: u64, cx: &Self::Cx) -> Self;
    /// Executes the block body entered at `entry`. `Ok` is the next pc
    /// after the terminal; `Err` carries the pc of the trapping op so the
    /// engine can unwind the hoisted statistics positionally.
    fn exec(&self, vm: &mut Vm, entry: u64) -> Result<u64, (u64, TrapCause)>;
}

/// One compiled block plus everything the engine needs without touching
/// the body: accounting data (always describing the *source*
/// instructions) and the memoized chain slots.
#[derive(Clone, Debug)]
struct Compiled<R> {
    start: u64,
    /// Source instruction count (`Block::instr_len`, not `ops.len()`).
    len: u64,
    base_cycles: u64,
    raw: Box<[Op]>,
    hist: Box<[(Op, u32)]>,
    exit: BlockExit,
    /// Compiled-block id of the taken/jump successor; `u32::MAX` until
    /// first chained through.
    taken: u32,
    /// Compiled-block id of the fall-through successor.
    fall: u32,
    body: R,
}

/// The generic block engine: lazy compiled-block cache keyed by entry pc,
/// per-block execution counters for stat hoisting, and the dispatch loop
/// with optional block chaining.
#[derive(Clone, Debug)]
pub(crate) struct Engine<R: BlockRepr> {
    kind: BackendKind,
    chain: bool,
    opt: OptLevel,
    /// Per-engine compile context (the native tier's code buffer).
    cx: R::Cx,
    /// `index[pc]` is the compiled block entered at `pc`, or `u32::MAX`.
    index: Vec<u32>,
    blocks: Vec<Compiled<R>>,
    /// Completed executions per block (partial executions account their
    /// prefix into the machine's residual counters instead).
    execs: Vec<u64>,
    /// Memo of the last terminal scan: every entry pc in
    /// `[scan_start, scan_end)` has its block end exactly at `scan_end`.
    /// Lets the dispatch loop ask for block *lengths* without compiling —
    /// one O(block) scan serves a whole single-stepped walk across a long
    /// straight-line region.
    scan_start: u64,
    scan_end: u64,
}

impl<R: BlockRepr> Engine<R> {
    fn new(cfg: &VmConfig, chain: bool, code_len: usize) -> Engine<R> {
        Engine {
            kind: cfg.backend,
            chain,
            opt: cfg.opt,
            cx: R::Cx::default(),
            index: vec![u32::MAX; code_len],
            blocks: Vec::new(),
            execs: Vec::new(),
            scan_start: 0,
            scan_end: 0,
        }
    }

    /// Source-instruction length of the block entered at `pc`, without
    /// compiling it: cached block if one exists, memoized terminal scan
    /// otherwise.
    fn block_len_at(&mut self, pc: u64, code: &[Instr]) -> u64 {
        let id = self.index[pc as usize];
        if id != u32::MAX {
            return self.blocks[id as usize].len;
        }
        if pc >= self.scan_start && pc < self.scan_end {
            return self.scan_end - pc;
        }
        let end = crate::ir::block_end(pc, code);
        self.scan_start = pc;
        self.scan_end = end as u64;
        end as u64 - pc
    }

    /// The compiled block entered at `pc`, building it on first use.
    fn get_or_compile(&mut self, pc: u64, code: &[Instr]) -> u32 {
        let slot = pc as usize;
        let id = self.index[slot];
        if id != u32::MAX {
            return id;
        }
        let mut block = Block::build(pc, code);
        if self.opt == OptLevel::Peephole {
            opt::peephole(&mut block);
        }
        let id = self.blocks.len() as u32;
        let body = R::compile(&block.ops, block.start, &self.cx);
        self.blocks.push(Compiled {
            start: block.start,
            len: block.instr_len(),
            base_cycles: block.base_cycles,
            body,
            raw: block.raw,
            hist: block.hist,
            exit: block.exit,
            taken: u32::MAX,
            fall: u32::MAX,
        });
        self.execs.push(0);
        self.index[slot] = id;
        id
    }

    /// The dispatch loop. Mirrors the pre-backend `Vm::run`/`run_block`
    /// pair decision for decision; the chain loop inside only hops when
    /// the outer loop would have dispatched the successor block whole.
    fn run_loop(&mut self, vm: &mut Vm, fuel: u64) -> Result<ExitStatus, VmTrap> {
        let mut remaining = fuel;
        loop {
            if let Some(code) = vm.halted {
                return Ok(ExitStatus {
                    code,
                    stats: vm.stats_with(&*self),
                });
            }
            if remaining == 0 {
                break;
            }
            let pc = vm.pc;
            // Block entry performs exactly the window validation the
            // per-instruction fetch would: a full PCC check only when the
            // pc left the cached window (after a PCC write or a jump out).
            if pc < vm.run_start || pc >= vm.run_end {
                vm.fetch_slow(pc)?;
            }
            let len = self.block_len_at(pc, &vm.code);
            if len > remaining || pc + len > vm.run_end {
                // Not enough fuel to retire the whole block, or the
                // (narrowed) PCC window cuts it short: single-step, which
                // re-checks the window per instruction and traps exactly
                // where the interpreter would.
                vm.step()?;
                remaining -= 1;
                continue;
            }
            let mut id = self.get_or_compile(pc, &vm.code);
            let mut entry = pc;
            // The chain loop: execute the block, then — for direct
            // branch/jump terminals — hop straight to the compiled
            // successor while it stays inside the window and the fuel.
            loop {
                debug_assert_eq!(self.blocks[id as usize].start, entry);
                // Base cycles are hoisted to one add, *before* the block
                // body, so a terminal `clock()` syscall reads the same
                // cycle count the per-instruction loop (which charges
                // before executing) shows.
                let exec_result = {
                    let c = &self.blocks[id as usize];
                    // Fetch is charged once per block entry (outer dispatch
                    // and chain hops alike), amortized exactly like the
                    // hoisted base cycles; a no-op unless fetch charging is
                    // configured.
                    vm.charge_fetch(entry, c.len);
                    vm.cycles += c.base_cycles;
                    c.body.exec(vm, entry)
                };
                let next = match exec_result {
                    Ok(next) => next,
                    Err((trap_pc, cause)) => {
                        let c = &self.blocks[id as usize];
                        let executed = (trap_pc - entry) as usize + 1;
                        vm.unwind_partial(&c.raw, executed, c.base_cycles);
                        // Like `step`, leave the pc at the trapping
                        // instruction.
                        vm.pc = trap_pc;
                        return Err(VmTrap { pc: trap_pc, cause });
                    }
                };
                self.execs[id as usize] += 1;
                let (blen, exit, taken_memo, fall_memo) = {
                    let c = &self.blocks[id as usize];
                    (c.len, c.exit, c.taken, c.fall)
                };
                vm.instret += blen;
                vm.regs[0] = 0;
                vm.pc = next;
                remaining -= blen;
                if !self.chain {
                    break;
                }
                // Only static-successor exits chain; everything else
                // (indirect, capability jump, syscall/break, fall-off)
                // returns to the outer loop, which re-checks `halted` and
                // the fetch window.
                let take_edge = match exit {
                    BlockExit::Branch { taken, .. } => next == taken,
                    BlockExit::Jump { .. } => true,
                    _ => break,
                };
                // The successor must be inside the validated window (the
                // window is invariant during a chain — nothing chained
                // writes the PCC) and must fit in the remaining fuel,
                // exactly the outer loop's dispatch conditions.
                if next < vm.run_start || next >= vm.run_end {
                    break;
                }
                let memo = if take_edge { taken_memo } else { fall_memo };
                let nid = if memo != u32::MAX {
                    memo
                } else {
                    let nid = self.get_or_compile(next, &vm.code);
                    let c = &mut self.blocks[id as usize];
                    if take_edge {
                        c.taken = nid;
                    } else {
                        c.fall = nid;
                    }
                    nid
                };
                let nlen = self.blocks[nid as usize].len;
                if nlen > remaining || next + nlen > vm.run_end {
                    break;
                }
                id = nid;
                entry = next;
            }
        }
        Err(VmTrap {
            pc: vm.pc,
            cause: TrapCause::OutOfFuel,
        })
    }
}

impl<R: BlockRepr> ExecBackend for Engine<R> {
    fn kind(&self) -> BackendKind {
        self.kind
    }

    fn run(&mut self, vm: &mut Vm, fuel: u64) -> Result<ExitStatus, VmTrap> {
        self.run_loop(vm, fuel)
    }

    fn add_op_counts(&self, counts: &mut [u64]) {
        for (block, &n) in self.blocks.iter().zip(&self.execs) {
            if n == 0 {
                continue;
            }
            for &(op, c) in block.hist.iter() {
                counts[op as usize] += u64::from(c) * n;
            }
        }
    }

    fn boxed_clone(&self) -> Box<dyn ExecBackend> {
        Box::new(self.clone())
    }
}

/// The reference block body: the flattened micro-ops, executed through
/// the interpreter's `exec_flat` match.
#[derive(Clone, Debug)]
pub(crate) struct InterpBody(Box<[FlatOp]>);

impl BlockRepr for InterpBody {
    type Cx = ();

    fn compile(ops: &[FlatOp], _start: u64, _cx: &()) -> InterpBody {
        InterpBody(ops.into())
    }

    fn exec(&self, vm: &mut Vm, entry: u64) -> Result<u64, (u64, TrapCause)> {
        let mut cur = entry;
        for op in self.0.iter() {
            match vm.exec_flat(op, cur) {
                Ok(next) => cur = next,
                Err(cause) => return Err((cur, cause)),
            }
        }
        Ok(cur)
    }
}

/// One op's handler: pre-bound at compile time, reading pre-extracted
/// operands from the [`TOp`] instead of destructuring a [`FlatOp`].
type Handler = fn(&mut Vm, &TOp, u64) -> Result<u64, TrapCause>;

/// A templated op: handler pointer plus its operands, unpacked once at
/// block compile time. `a`/`b`/`c` are the destination and source
/// register indices (or the width, for memory ops); the long tail keeps
/// the original [`FlatOp`] and goes through the interpreter arm.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TOp {
    run: Handler,
    a: u8,
    b: u8,
    c: u8,
    imm: i64,
    target: u64,
    flat: FlatOp,
}

/// The template block body: a pre-bound monomorphized handler chain.
#[derive(Clone, Debug)]
pub(crate) struct TemplateBody(Box<[TOp]>);

impl BlockRepr for TemplateBody {
    type Cx = ();

    fn compile(ops: &[FlatOp], _start: u64, _cx: &()) -> TemplateBody {
        TemplateBody(ops.iter().map(bind).collect())
    }

    fn exec(&self, vm: &mut Vm, entry: u64) -> Result<u64, (u64, TrapCause)> {
        let mut cur = entry;
        for t in self.0.iter() {
            match (t.run)(vm, t, cur) {
                Ok(next) => cur = next,
                Err(cause) => return Err((cur, cause)),
            }
        }
        Ok(cur)
    }
}

macro_rules! alu2 {
    ($name:ident, |$x:ident, $y:ident| $v:expr) => {
        fn $name(vm: &mut Vm, t: &TOp, pc: u64) -> Result<u64, TrapCause> {
            let $x = vm.reg(t.b);
            let $y = vm.reg(t.c);
            vm.set_reg(t.a, $v);
            Ok(pc + 1)
        }
    };
}

macro_rules! alu_imm {
    ($name:ident, |$x:ident, $i:ident| $v:expr) => {
        fn $name(vm: &mut Vm, t: &TOp, pc: u64) -> Result<u64, TrapCause> {
            let $x = vm.reg(t.b);
            let $i = t.imm;
            vm.set_reg(t.a, $v);
            Ok(pc + 1)
        }
    };
}

macro_rules! cond_branch {
    ($name:ident, |$x:ident, $y:ident| $taken:expr) => {
        fn $name(vm: &mut Vm, t: &TOp, pc: u64) -> Result<u64, TrapCause> {
            let $x = vm.reg(t.b);
            let $y = vm.reg(t.c);
            Ok(if $taken { t.target } else { pc + 1 })
        }
    };
}

alu2!(h_addu, |a, b| a.wrapping_add(b));
alu2!(h_subu, |a, b| a.wrapping_sub(b));
alu2!(h_and, |a, b| a & b);
alu2!(h_or, |a, b| a | b);
alu2!(h_xor, |a, b| a ^ b);
alu2!(h_nor, |a, b| !(a | b));
alu2!(h_slt, |a, b| u64::from((a as i64) < (b as i64)));
alu2!(h_sltu, |a, b| u64::from(a < b));
alu2!(h_sllv, |a, b| a << (b & 63));
alu2!(h_srlv, |a, b| a >> (b & 63));
alu2!(h_srav, |a, b| ((a as i64) >> (b & 63)) as u64);
alu2!(h_mul, |a, b| a.wrapping_mul(b));
alu_imm!(h_addiu, |a, i| a.wrapping_add(i as u64));
alu_imm!(h_andi, |a, i| a & (i as u64));
alu_imm!(h_ori, |a, i| a | (i as u64));
alu_imm!(h_xori, |a, i| a ^ (i as u64));
alu_imm!(h_slti, |a, i| u64::from((a as i64) < i));
alu_imm!(h_sltiu, |a, i| u64::from(a < i as u64));
alu_imm!(h_sll, |a, i| a << (i as u32));
alu_imm!(h_srl, |a, i| a >> (i as u32));
alu_imm!(h_sra, |a, i| ((a as i64) >> (i as u32)) as u64);
cond_branch!(h_beq, |a, b| a == b);
cond_branch!(h_bne, |a, b| a != b);
cond_branch!(h_blez, |a, _b| a as i64 <= 0);
cond_branch!(h_bgtz, |a, _b| a as i64 > 0);
cond_branch!(h_bltz, |a, _b| (a as i64) < 0);
cond_branch!(h_bgez, |a, _b| a as i64 >= 0);

fn h_nop(_vm: &mut Vm, _t: &TOp, pc: u64) -> Result<u64, TrapCause> {
    Ok(pc + 1)
}

fn h_li(vm: &mut Vm, t: &TOp, pc: u64) -> Result<u64, TrapCause> {
    vm.set_reg(t.a, t.imm as u64);
    Ok(pc + 1)
}

fn h_add(vm: &mut Vm, t: &TOp, pc: u64) -> Result<u64, TrapCause> {
    let v = (vm.reg(t.b) as i64)
        .checked_add(vm.reg(t.c) as i64)
        .ok_or(TrapCause::IntegerOverflow)?;
    vm.set_reg(t.a, v as u64);
    Ok(pc + 1)
}

fn h_sub(vm: &mut Vm, t: &TOp, pc: u64) -> Result<u64, TrapCause> {
    let v = (vm.reg(t.b) as i64)
        .checked_sub(vm.reg(t.c) as i64)
        .ok_or(TrapCause::IntegerOverflow)?;
    vm.set_reg(t.a, v as u64);
    Ok(pc + 1)
}

fn h_addi(vm: &mut Vm, t: &TOp, pc: u64) -> Result<u64, TrapCause> {
    let v = (vm.reg(t.b) as i64)
        .checked_add(t.imm)
        .ok_or(TrapCause::IntegerOverflow)?;
    vm.set_reg(t.a, v as u64);
    Ok(pc + 1)
}

fn h_j(_vm: &mut Vm, t: &TOp, _pc: u64) -> Result<u64, TrapCause> {
    Ok(t.target)
}

fn h_jal(vm: &mut Vm, t: &TOp, pc: u64) -> Result<u64, TrapCause> {
    vm.set_reg(cheri_isa::RA, pc + 1);
    Ok(t.target)
}

fn h_jr(vm: &mut Vm, t: &TOp, _pc: u64) -> Result<u64, TrapCause> {
    Ok(vm.reg(t.b))
}

fn h_jalr(vm: &mut Vm, t: &TOp, pc: u64) -> Result<u64, TrapCause> {
    // Read the target before writing the link: `jalr r, r` must jump to
    // the register's old value.
    let target = vm.reg(t.b);
    vm.set_reg(t.a, pc + 1);
    Ok(target)
}

fn h_load<const SIGNED: bool, const CAP: bool>(
    vm: &mut Vm,
    t: &TOp,
    pc: u64,
) -> Result<u64, TrapCause> {
    vm.exec_load(t.a, t.b, t.imm as i32, t.c, SIGNED, CAP)?;
    Ok(pc + 1)
}

fn h_store<const CAP: bool>(vm: &mut Vm, t: &TOp, pc: u64) -> Result<u64, TrapCause> {
    vm.exec_store(t.a, t.b, t.imm as i32, t.c, CAP)?;
    Ok(pc + 1)
}

fn h_fused<const SIGNED: bool, const IMM: bool, const IF: bool>(
    vm: &mut Vm,
    t: &TOp,
    pc: u64,
) -> Result<u64, TrapCause> {
    let a = vm.reg(t.b);
    let v = if IMM {
        if SIGNED {
            u64::from((a as i64) < t.imm)
        } else {
            u64::from(a < t.imm as u64)
        }
    } else {
        let b = vm.reg(t.c);
        if SIGNED {
            u64::from((a as i64) < (b as i64))
        } else {
            u64::from(a < b)
        }
    };
    vm.set_reg(t.a, v);
    Ok(if (v != 0) == IF { t.target } else { pc + 2 })
}

/// The long tail — capability ops and `Other` — goes through the
/// interpreter's own arm, which keeps every capability/trap decision in
/// exactly one place.
fn h_flat(vm: &mut Vm, t: &TOp, pc: u64) -> Result<u64, TrapCause> {
    vm.exec_flat(&t.flat, pc)
}

/// Pre-binds one micro-op to its handler, extracting operands once.
fn bind(op: &FlatOp) -> TOp {
    let mut t = TOp {
        run: h_flat,
        a: 0,
        b: 0,
        c: 0,
        imm: 0,
        target: 0,
        flat: *op,
    };
    macro_rules! set {
        ($run:expr, $a:expr, $b:expr, $c:expr, $imm:expr, $target:expr) => {{
            t.run = $run;
            t.a = $a;
            t.b = $b;
            t.c = $c;
            t.imm = $imm;
            t.target = $target;
        }};
    }
    match *op {
        FlatOp::Nop => set!(h_nop, 0, 0, 0, 0, 0),
        FlatOp::Add { rd, rs, rt } => set!(h_add, rd, rs, rt, 0, 0),
        FlatOp::Sub { rd, rs, rt } => set!(h_sub, rd, rs, rt, 0, 0),
        FlatOp::Addi { rd, rs, imm } => set!(h_addi, rd, rs, 0, imm, 0),
        FlatOp::Addu { rd, rs, rt } => set!(h_addu, rd, rs, rt, 0, 0),
        FlatOp::Subu { rd, rs, rt } => set!(h_subu, rd, rs, rt, 0, 0),
        FlatOp::And { rd, rs, rt } => set!(h_and, rd, rs, rt, 0, 0),
        FlatOp::Or { rd, rs, rt } => set!(h_or, rd, rs, rt, 0, 0),
        FlatOp::Xor { rd, rs, rt } => set!(h_xor, rd, rs, rt, 0, 0),
        FlatOp::Nor { rd, rs, rt } => set!(h_nor, rd, rs, rt, 0, 0),
        FlatOp::Slt { rd, rs, rt } => set!(h_slt, rd, rs, rt, 0, 0),
        FlatOp::Sltu { rd, rs, rt } => set!(h_sltu, rd, rs, rt, 0, 0),
        FlatOp::Sllv { rd, rs, rt } => set!(h_sllv, rd, rs, rt, 0, 0),
        FlatOp::Srlv { rd, rs, rt } => set!(h_srlv, rd, rs, rt, 0, 0),
        FlatOp::Srav { rd, rs, rt } => set!(h_srav, rd, rs, rt, 0, 0),
        FlatOp::Mul { rd, rs, rt } => set!(h_mul, rd, rs, rt, 0, 0),
        // Div/Divu/Rem/Remu stay on the interpreter arm: they are rare in
        // compiled code and their two-cause trap logic is not worth a
        // second copy.
        FlatOp::Addiu { rd, rs, imm } => set!(h_addiu, rd, rs, 0, imm as i64, 0),
        FlatOp::Andi { rd, rs, imm } => set!(h_andi, rd, rs, 0, imm as i64, 0),
        FlatOp::Ori { rd, rs, imm } => set!(h_ori, rd, rs, 0, imm as i64, 0),
        FlatOp::Xori { rd, rs, imm } => set!(h_xori, rd, rs, 0, imm as i64, 0),
        FlatOp::Slti { rd, rs, imm } => set!(h_slti, rd, rs, 0, imm, 0),
        FlatOp::Sltiu { rd, rs, imm } => set!(h_sltiu, rd, rs, 0, imm as i64, 0),
        FlatOp::Li { rd, v } => set!(h_li, rd, 0, 0, v as i64, 0),
        FlatOp::Sll { rd, rs, sh } => set!(h_sll, rd, rs, 0, i64::from(sh), 0),
        FlatOp::Srl { rd, rs, sh } => set!(h_srl, rd, rs, 0, i64::from(sh), 0),
        FlatOp::Sra { rd, rs, sh } => set!(h_sra, rd, rs, 0, i64::from(sh), 0),
        FlatOp::Beq { rs, rt, target } => set!(h_beq, 0, rs, rt, 0, target),
        FlatOp::Bne { rs, rt, target } => set!(h_bne, 0, rs, rt, 0, target),
        FlatOp::Blez { rs, target } => set!(h_blez, 0, rs, 0, 0, target),
        FlatOp::Bgtz { rs, target } => set!(h_bgtz, 0, rs, 0, 0, target),
        FlatOp::Bltz { rs, target } => set!(h_bltz, 0, rs, 0, 0, target),
        FlatOp::Bgez { rs, target } => set!(h_bgez, 0, rs, 0, 0, target),
        FlatOp::J { target } => set!(h_j, 0, 0, 0, 0, target),
        FlatOp::Jal { target } => set!(h_jal, 0, 0, 0, 0, target),
        FlatOp::Jr { rs } => set!(h_jr, 0, rs, 0, 0, 0),
        FlatOp::Jalr { rd, rs } => set!(h_jalr, rd, rs, 0, 0, 0),
        FlatOp::FusedCmpBranch {
            rd,
            rs,
            rt,
            imm,
            signed,
            imm_form,
            branch_if,
            target,
        } => {
            let run = match (signed, imm_form, branch_if) {
                (true, true, true) => h_fused::<true, true, true>,
                (true, true, false) => h_fused::<true, true, false>,
                (true, false, true) => h_fused::<true, false, true>,
                (true, false, false) => h_fused::<true, false, false>,
                (false, true, true) => h_fused::<false, true, true>,
                (false, true, false) => h_fused::<false, true, false>,
                (false, false, true) => h_fused::<false, false, true>,
                (false, false, false) => h_fused::<false, false, false>,
            };
            set!(run, rd, rs, rt, imm, target);
        }
        FlatOp::Load {
            rd,
            base,
            off,
            width,
            signed,
            via_cap,
        } => {
            let run = match (signed, via_cap) {
                (true, true) => h_load::<true, true>,
                (true, false) => h_load::<true, false>,
                (false, true) => h_load::<false, true>,
                (false, false) => h_load::<false, false>,
            };
            set!(run, rd, base, width, i64::from(off), 0);
        }
        FlatOp::Store {
            rv,
            base,
            off,
            width,
            via_cap,
        } => {
            let run = if via_cap {
                h_store::<true>
            } else {
                h_store::<false>
            };
            set!(run, rv, base, width, i64::from(off), 0);
        }
        // Capability ops and the `Other` long tail keep `h_flat`.
        _ => {}
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{Instr, Op};

    fn engine(code_len: usize) -> Engine<InterpBody> {
        Engine::new(&VmConfig::functional(), false, code_len)
    }

    #[test]
    fn block_len_at_agrees_with_built_blocks_and_builds_nothing() {
        // A long straight-line region: asking for lengths at every pc must
        // not compile (or cache) any block, and each answer must match
        // what Block::build would produce. Sequential queries ride one
        // memoized scan.
        let mut code = vec![Instr::i2(Op::Addiu, 8, 8, 1); 64];
        code.push(Instr::syscall(0)); // 64: terminal
        code.push(Instr::li(4, 0)); // 65
        code.push(Instr::new(Op::J, 0, 0, 0, 0)); // 66: terminal
        let mut e = engine(code.len());
        for pc in 0..code.len() as u64 {
            let len = e.block_len_at(pc, &code);
            let expect = Block::build(pc, &code).instr_len();
            assert_eq!(len, expect, "length at pc {pc}");
        }
        assert_eq!(e.blocks.len(), 0, "length queries must not compile");
        // Once a block is compiled, its cached length is served from it.
        let id = e.get_or_compile(3, &code);
        assert_eq!(e.block_len_at(3, &code), e.blocks[id as usize].len);
    }

    #[test]
    fn compile_is_cached_and_lengths_count_source_instructions() {
        // A fused terminal shortens `ops` but never the instruction count.
        let code = vec![
            Instr::r3(Op::Slt, 11, 10, 9),
            Instr::new(Op::Beq, 0, 11, 0, 0),
        ];
        let mut e: Engine<InterpBody> = Engine::new(
            &VmConfig::functional().with_opt_level(OptLevel::Peephole),
            false,
            code.len(),
        );
        let id = e.get_or_compile(0, &code);
        assert_eq!(e.blocks[id as usize].len, 2);
        assert_eq!(e.blocks[id as usize].body.0.len(), 1, "fused to one op");
        assert_eq!(e.get_or_compile(0, &code), id, "compile is cached");
    }

    #[test]
    fn add_op_counts_weights_histograms_by_execs() {
        let code = vec![
            Instr::li(8, 0),
            Instr::li(9, 1),
            Instr::r3(Op::Addu, 8, 8, 9),
            Instr::new(Op::Beq, 0, 8, 0, 2),
        ];
        let mut e = engine(code.len());
        let id = e.get_or_compile(0, &code);
        e.execs[id as usize] = 2;
        let mut counts = vec![0u64; 256];
        e.add_op_counts(&mut counts);
        assert_eq!(counts[Op::Li as usize], 4);
        assert_eq!(counts[Op::Beq as usize], 2);
    }

    #[test]
    fn backend_kinds_round_trip_through_the_factory() {
        for kind in BackendKind::ALL {
            let cfg = VmConfig::functional().with_backend(kind);
            assert_eq!(new_backend(&cfg, 4).kind(), kind);
        }
    }

    #[test]
    fn native_fallback_reports_the_native_label_and_runs() {
        // The explicit fallback engine — what `Native` builds on hosts
        // without the emitter (and the path the non-x86_64 cfg of
        // `new_native` always takes). It must report the configured kind,
        // not its template substrate, and execute correctly.
        let cfg = VmConfig::functional().with_backend(BackendKind::Native);
        let mut backend = native_fallback(&cfg, 4);
        assert_eq!(backend.kind(), BackendKind::Native);
        let mut vm = crate::machine::Vm::new(
            {
                let mut p = cheri_isa::Program::new();
                p.code = vec![
                    Instr::li(4, 41),
                    Instr::i2(Op::Addiu, 4, 4, 1),
                    Instr::syscall(0),
                ];
                p
            },
            cfg,
        );
        let exit = backend.run(&mut vm, 1_000).expect("fallback runs");
        assert_eq!(exit.code, 42);
    }

    #[cfg(not(all(target_arch = "x86_64", target_os = "linux", not(miri))))]
    #[test]
    fn native_backend_falls_back_where_unsupported() {
        assert!(!crate::codegen::supported());
        let cfg = VmConfig::functional().with_backend(BackendKind::Native);
        // The factory silently substitutes the template tier but keeps
        // the `Native` label for drivers and stats.
        assert_eq!(new_backend(&cfg, 4).kind(), BackendKind::Native);
    }
}
