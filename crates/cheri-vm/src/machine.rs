//! The machine: register files, execution loop, syscalls.

use crate::backend::{new_backend, ExecBackend};
use crate::config::{VmConfig, NULL_GUARD_SIZE};
use crate::ir::FlatOp;
use crate::sys;
use crate::trap::{TrapCause, VmTrap};
use cheri_cache::{CacheStats, Hierarchy, SharedHierarchy};
#[cfg(test)]
use cheri_cap::CapError;
use cheri_cap::{ptr_cmp, CapFormat, Capability, CompressionStats, Perms};
use cheri_isa::{CmpOp, Instr, Op, Program, DDC};
use cheri_mem::{Allocator, MemSnapshot, TaggedMemory};
use std::cmp::Ordering;

/// Capability register conventions used by the compiler and runtime.
pub mod cabi {
    /// Capability return value / `malloc` result.
    pub const CV0: u8 = 1;
    /// Scratch capability register (reserved for future codegen use).
    #[allow(dead_code)]
    pub const CT0: u8 = 2;
    /// First capability argument register (`ca0` = c3 … `ca3` = c6).
    pub const CA0: u8 = 3;
    /// The stack capability.
    pub const CSP: u8 = 11;
}

/// Execution statistics.
#[derive(Clone, Debug, Default)]
pub struct VmStats {
    /// Instructions retired.
    pub instret: u64,
    /// Cycles charged (pipeline + cache model).
    pub cycles: u64,
    /// Data-cache statistics, when a cache model is configured.
    pub cache: Option<CacheStats>,
    /// Full PCC validations (`set_offset` + `check_access`) the fetch path
    /// performed. With run caching this counts one per control-flow
    /// transfer out of the validated window, not one per instruction.
    pub fetch_checks: u64,
    /// Cycles the instruction-fetch path charged through the cache
    /// hierarchy (zero unless [`VmConfig::fetch_charging`] is on).
    /// Included in `cycles`; the full fetch ledger is in
    /// `cache.unwrap().fetch`.
    pub fetch_cycles: u64,
    /// Capability-compression statistics from tagged memory, present when
    /// the machine stores 128-bit compressed capabilities.
    pub compression: Option<CompressionStats>,
    op_counts: Vec<u64>,
}

impl VmStats {
    /// How many times `op` retired.
    pub fn op_count(&self, op: Op) -> u64 {
        self.op_counts.get(op as usize).copied().unwrap_or(0)
    }

    /// Instructions retired that belong to the CHERI extension.
    pub fn capability_instructions(&self) -> u64 {
        Op::ALL
            .iter()
            .filter(|o| o.is_capability_op())
            .map(|&o| self.op_count(o))
            .sum()
    }
}

/// Successful termination: the program called `exit`.
#[derive(Clone, Debug)]
pub struct ExitStatus {
    /// The exit code passed in `a0`.
    pub code: i64,
    /// Statistics at the moment of exit.
    pub stats: VmStats,
}

/// An immutable image of a (typically warmed-up) machine, shareable across
/// threads, from which per-request machines are forked.
///
/// Produced by [`Vm::snapshot`]. The machine state (registers, heap, cache
/// model, statistics, compiled blocks) is held as a memory-less shell and
/// cloned per fork; memory itself is a [`MemSnapshot`], so each fork pays
/// only for the chunks the guest actually touched — not for the 8–16 MiB
/// backing store, which comes zeroed from the memory pool.
#[derive(Clone, Debug)]
pub struct VmSnapshot {
    /// The machine minus its memory (the shell's memory is zero-sized).
    shell: Vm,
    /// The warm-footprint image of the snapshotted machine's memory.
    mem: MemSnapshot,
}

impl VmSnapshot {
    /// Materializes an independent machine observationally identical to
    /// the one the snapshot was taken from: same registers, output,
    /// statistics, cache/traffic ledger and memory, bit for bit.
    pub fn fork(&self) -> Vm {
        let mut vm = self.shell.clone();
        vm.mem = self.mem.fork();
        vm
    }

    /// Bytes of warm memory each fork copies (the guest's footprint).
    pub fn warm_bytes(&self) -> u64 {
        self.mem.warm_bytes()
    }

    /// The configuration of the snapshotted machine.
    pub fn config(&self) -> VmConfig {
        self.shell.cfg
    }
}

/// The CHERI machine.
///
/// See the crate documentation for an end-to-end example.
#[derive(Debug)]
pub struct Vm {
    pub(crate) code: Vec<Instr>,
    pub(crate) regs: [u64; 32],
    caps: [Capability; 32],
    pcc: Capability,
    pub(crate) pc: u64,
    mem: TaggedMemory,
    cache: Option<Hierarchy>,
    heap: Allocator,
    pub(crate) cycles: u64,
    pub(crate) instret: u64,
    op_counts: Vec<u64>,
    output: Vec<u8>,
    pub(crate) halted: Option<i64>,
    cfg: VmConfig,
    /// Cached straight-line fetch window: instruction indices in
    /// `[run_start, run_end)` are known to pass the PCC execute check, so
    /// the hot fetch path is a single range compare. Invalidated (set
    /// empty) whenever the PCC is written. One successful full check
    /// validates the whole window because tag, seal, permissions and
    /// bounds are properties of the PCC, not of the individual pc.
    pub(crate) run_start: u64,
    pub(crate) run_end: u64,
    fetch_checks: u64,
    /// The pluggable execution pipeline (see [`crate::backend`]): owns
    /// the compiled-block cache and the dispatch loop. `None` only while
    /// `run` has lent it the machine.
    backend: Option<Box<dyn ExecBackend>>,
}

impl Clone for Vm {
    fn clone(&self) -> Vm {
        Vm {
            code: self.code.clone(),
            regs: self.regs,
            caps: self.caps,
            pcc: self.pcc,
            pc: self.pc,
            mem: self.mem.clone(),
            cache: self.cache.clone(),
            heap: self.heap.clone(),
            cycles: self.cycles,
            instret: self.instret,
            op_counts: self.op_counts.clone(),
            output: self.output.clone(),
            halted: self.halted,
            cfg: self.cfg,
            run_start: self.run_start,
            run_end: self.run_end,
            fetch_checks: self.fetch_checks,
            // Clones the compiled blocks *and* their execution counters,
            // so a cloned machine reports the same op counts.
            backend: self.backend.as_ref().map(|b| b.boxed_clone()),
        }
    }
}

impl Vm {
    /// Loads `program` into a fresh machine configured by `cfg`.
    ///
    /// Layout: data segment at `cfg.data_base`, heap after it, stack at the
    /// top of memory. `c0` (DDC) covers all of memory with full rights;
    /// `c11` is the stack capability; PCC covers the whole code image.
    ///
    /// # Panics
    ///
    /// Panics if the data segment does not fit below the heap, which
    /// indicates a mis-sized [`VmConfig`] rather than a guest error.
    pub fn new(program: Program, cfg: VmConfig) -> Vm {
        let mut mem = TaggedMemory::with_format(cfg.mem_size, cfg.cap_format, cfg.cap128_policy);
        mem.write_bytes(cfg.data_base, &program.data)
            .expect("data segment must fit in memory");
        let heap_base = (cfg.data_base + program.data.len() as u64 + 0x100).next_multiple_of(32);
        let stack_base = cfg.mem_size - cfg.stack_size;
        let heap_end = (heap_base + cfg.heap_size).min(stack_base);
        assert!(heap_base < heap_end, "no room for heap: config too small");
        let heap = Allocator::with_format(heap_base, heap_end - heap_base, cfg.cap_format);

        let mut regs = [0u64; 32];
        regs[cheri_isa::SP as usize] = cfg.mem_size - 64;
        let mut caps = [Capability::null(); 32];
        caps[DDC as usize] = Capability::new_mem(0, cfg.mem_size, Perms::all());
        caps[cabi::CSP as usize] = Capability::new_mem(stack_base, cfg.stack_size, Perms::data())
            .set_offset(cfg.stack_size - 64)
            .expect("fresh stack cap is unsealed");
        let pcc = Capability::new_mem(0, program.code.len() as u64 * 8, Perms::code());

        Vm {
            pc: program.entry,
            backend: Some(new_backend(&cfg, program.code.len())),
            code: program.code,
            regs,
            caps,
            pcc,
            mem,
            cache: cfg.cache.map(Hierarchy::new),
            heap,
            cycles: 0,
            instret: 0,
            op_counts: vec![0; 256],
            output: Vec::new(),
            halted: None,
            cfg,
            run_start: 0,
            run_end: 0,
            fetch_checks: 0,
        }
    }

    // --- Introspection (used by tests, examples and the bench harness) ---

    /// General-purpose register `r` (reads of `r0` return 0).
    pub fn reg(&self, r: u8) -> u64 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Sets general-purpose register `r` (writes to `r0` are ignored).
    pub fn set_reg(&mut self, r: u8, v: u64) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Capability register `c`.
    pub fn cap(&self, c: u8) -> Capability {
        self.caps[c as usize]
    }

    /// Sets capability register `c`.
    pub fn set_cap(&mut self, c: u8, v: Capability) {
        self.caps[c as usize] = v;
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> VmConfig {
        self.cfg
    }

    /// The program-counter capability.
    pub fn pcc(&self) -> Capability {
        self.pcc
    }

    /// Current instruction index.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter — e.g. to resume past the `break` a guest
    /// uses as its ready marker before [`Vm::snapshot`]. The next fetch
    /// revalidates against the PCC as usual, so this cannot widen what the
    /// machine may execute.
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// The memory, e.g. to inspect results or pre-load inputs.
    pub fn mem(&self) -> &TaggedMemory {
        &self.mem
    }

    /// Mutable access to memory (test setup).
    pub fn mem_mut(&mut self) -> &mut TaggedMemory {
        &mut self.mem
    }

    /// The heap allocator state.
    pub fn heap(&self) -> &Allocator {
        &self.heap
    }

    /// Console output so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Console output as (lossy) UTF-8.
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// Statistics so far. Per-opcode retirement counts are reconstructed
    /// from the backend's block execution counters plus the single-step
    /// residual.
    pub fn stats(&self) -> VmStats {
        let mut op_counts = self.op_counts.clone();
        if let Some(b) = &self.backend {
            b.add_op_counts(&mut op_counts);
        }
        self.finish_stats(op_counts)
    }

    /// `stats` while the backend is detached (lent to [`Vm::run`]).
    pub(crate) fn stats_with(&self, backend: &dyn ExecBackend) -> VmStats {
        let mut op_counts = self.op_counts.clone();
        backend.add_op_counts(&mut op_counts);
        self.finish_stats(op_counts)
    }

    fn finish_stats(&self, op_counts: Vec<u64>) -> VmStats {
        VmStats {
            instret: self.instret,
            cycles: self.cycles,
            cache: self.cache.as_ref().map(|c| c.stats()),
            fetch_checks: self.fetch_checks,
            fetch_cycles: self.cache.as_ref().map_or(0, |c| c.stats().fetch.cycles),
            compression: (self.cfg.cap_format == CapFormat::Cap128)
                .then(|| self.mem.compression_stats()),
            op_counts,
        }
    }

    /// Which execution backend this machine is configured with.
    pub fn backend_kind(&self) -> crate::BackendKind {
        match &self.backend {
            Some(b) => b.kind(),
            None => self.cfg.backend,
        }
    }

    /// Captures the machine's complete state — registers, capabilities,
    /// PCC/pc, heap, cache and traffic ledger, statistics, console output,
    /// compiled-block cache, and the memory's warm footprint — as a
    /// [`VmSnapshot`] that can be [`VmSnapshot::fork`]ed per request.
    ///
    /// A fork is observationally identical to `self.clone()` but copies
    /// only the dirty-chunk footprint of memory instead of the whole
    /// backing store, which is what makes serving a request stream from a
    /// warmed-up guest image cheap.
    pub fn snapshot(&self) -> VmSnapshot {
        let shell = Vm {
            code: self.code.clone(),
            regs: self.regs,
            caps: self.caps,
            pcc: self.pcc,
            pc: self.pc,
            mem: TaggedMemory::new(0),
            cache: self.cache.clone(),
            heap: self.heap.clone(),
            cycles: self.cycles,
            instret: self.instret,
            op_counts: self.op_counts.clone(),
            output: self.output.clone(),
            halted: self.halted,
            cfg: self.cfg,
            run_start: self.run_start,
            run_end: self.run_end,
            fetch_checks: self.fetch_checks,
            backend: self.backend.as_ref().map(|b| b.boxed_clone()),
        };
        VmSnapshot {
            shell,
            mem: self.mem.snapshot(),
        }
    }

    /// Runs until `exit`, a trap, or `fuel` retired instructions.
    ///
    /// Dispatch is delegated to the configured execution backend (see
    /// [`crate::backend`] and [`crate::BackendKind`]): traps, statistics
    /// and simulated cycles are bit-identical to single-stepping under
    /// every backend and optimization level. Single-stepping remains
    /// available as [`Vm::step`] and is what the backends fall back to
    /// near the fuel limit or when the PCC window is narrower than a
    /// compiled block.
    ///
    /// # Errors
    ///
    /// The trap that stopped execution, including [`TrapCause::OutOfFuel`]
    /// when the budget is exhausted.
    pub fn run(&mut self, fuel: u64) -> Result<ExitStatus, VmTrap> {
        let mut backend = self.backend.take().expect("backend present outside of run");
        let result = backend.run(self, fuel);
        self.backend = Some(backend);
        result
    }

    /// Retires one instruction's statistics — base cycles, instruction
    /// count, residual per-op count. The single accounting path shared by
    /// single-stepping and the backends' partial-block unwind.
    pub(crate) fn retire_one(&mut self, op: Op) {
        self.cycles += op.base_cycles();
        self.instret += 1;
        self.op_counts[op as usize] += 1;
    }

    /// Reconciles a block that stopped after `executed` of its `raw`
    /// instructions: refund the whole `hoisted` base-cycle sum, then
    /// account the executed prefix through the same per-instruction
    /// bookkeeping [`Vm::step`] uses, so the totals match single-stepping
    /// instruction for instruction.
    pub(crate) fn unwind_partial(&mut self, raw: &[Op], executed: usize, hoisted: u64) {
        self.cycles -= hoisted;
        for &op in &raw[..executed] {
            self.retire_one(op);
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Any [`VmTrap`] the instruction raises.
    pub fn step(&mut self) -> Result<(), VmTrap> {
        let pc = self.pc;
        let instr = self.fetch(pc)?;
        self.charge_fetch(pc, 1);
        self.retire_one(instr.op);
        match self.execute_at(instr, pc) {
            Ok(next) => {
                self.pc = next;
                self.regs[0] = 0;
                Ok(())
            }
            Err(cause) => Err(VmTrap { pc, cause }),
        }
    }

    fn fetch(&mut self, pc: u64) -> Result<Instr, VmTrap> {
        // Hot path: the pc is inside the window already validated against
        // the current PCC — no capability work at all.
        if pc >= self.run_start && pc < self.run_end {
            return Ok(self.code[pc as usize]);
        }
        self.fetch_slow(pc)
    }

    /// Full PCC validation, then caching of the straight-line window it
    /// implies: every index whose 8-byte fetch the current PCC authorises
    /// and that has a decoded instruction behind it.
    pub(crate) fn fetch_slow(&mut self, pc: u64) -> Result<Instr, VmTrap> {
        self.fetch_checks += 1;
        let byte_addr = pc.wrapping_mul(8);
        let fetch_cap = self
            .pcc
            .set_offset(byte_addr.wrapping_sub(self.pcc.base()))
            .map_err(|e| VmTrap {
                pc,
                cause: e.into(),
            })?;
        if fetch_cap.check_access(8, Perms::EXECUTE).is_err() {
            return Err(VmTrap {
                pc,
                cause: TrapCause::PccBounds { pc },
            });
        }
        let instr = self.code.get(pc as usize).copied().ok_or(VmTrap {
            pc,
            cause: TrapCause::PccBounds { pc },
        })?;
        // p is in the window iff p*8 >= base and p*8 + 8 <= top, i.e.
        // ceil(base/8) <= p < floor(top/8).
        self.run_start = self.pcc.base().div_ceil(8);
        self.run_end = (self.pcc.top() / 8).min(self.code.len() as u64);
        Ok(instr)
    }

    /// Writes the PCC and invalidates the cached fetch window.
    fn set_pcc(&mut self, cap: Capability) {
        self.pcc = cap;
        self.run_start = 0;
        self.run_end = 0;
    }

    fn charge_mem(&mut self, addr: u64, len: u64, write: bool) {
        match &mut self.cache {
            Some(h) => {
                // Issue at the VM's own clock so the hierarchy's burst
                // windows see compute gaps between accesses (a no-op under
                // the serialized mshrs=1 model).
                self.cycles += h.access_at(self.cycles, addr, len, write);
            }
            None => self.cycles += 1,
        }
    }

    /// Charges one instruction-fetch transaction for `words` instructions
    /// starting at `pc` — one call per superinstruction block entry, or
    /// per instruction when single-stepping. No-op unless
    /// [`VmConfig::fetch_charging`] is on and a cache model is configured.
    pub(crate) fn charge_fetch(&mut self, pc: u64, words: u64) {
        if !self.cfg.fetch_charging {
            return;
        }
        if let Some(h) = &mut self.cache {
            self.cycles += h.access_fetch(self.cycles, pc.wrapping_mul(8), words * 8);
        }
    }

    /// Attaches this machine's cache hierarchy (one simulated core) to
    /// `shared` contended edges; see
    /// [`cheri_cache::Hierarchy::attach_shared`]. No-op on cache-less
    /// configs.
    pub fn attach_shared_hierarchy(&mut self, shared: SharedHierarchy) {
        if let Some(h) = &mut self.cache {
            h.attach_shared(shared);
        }
    }

    /// Resolves a legacy (DDC-relative) access.
    fn legacy_addr(&self, rs: u8, imm: i32, len: u64, perm: Perms) -> Result<u64, TrapCause> {
        let ptr = self.reg(rs).wrapping_add(imm as i64 as u64);
        if ptr < NULL_GUARD_SIZE {
            return Err(TrapCause::NullGuard { addr: ptr });
        }
        let ddc = self.caps[DDC as usize];
        let c = ddc.set_offset(ptr)?;
        Ok(c.check_access(len, perm)?)
    }

    /// Resolves a capability-relative access.
    fn cap_addr(&self, cb: u8, imm: i32, len: u64, perm: Perms) -> Result<u64, TrapCause> {
        let c = self.caps[cb as usize].inc_offset(imm as i64)?;
        Ok(c.check_access(len, perm)?)
    }

    fn load(&mut self, addr: u64, width: u8, signed: bool) -> Result<u64, TrapCause> {
        let raw = self.mem.read_uint(addr, width)?;
        self.charge_mem(addr, width as u64, false);
        Ok(if signed {
            match width {
                1 => raw as u8 as i8 as i64 as u64,
                2 => raw as u16 as i16 as i64 as u64,
                4 => raw as u32 as i32 as i64 as u64,
                _ => raw,
            }
        } else {
            raw
        })
    }

    fn store(&mut self, addr: u64, width: u8, v: u64) -> Result<(), TrapCause> {
        self.mem.write_uint(addr, v, width)?;
        self.charge_mem(addr, width as u64, true);
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn execute_at(&mut self, i: Instr, pc: u64) -> Result<u64, TrapCause> {
        let next = pc + 1;
        let (rd, rs, rt) = (i.rd, i.rs, i.rt);
        let imm = i.imm;
        let simm = imm as i64;
        macro_rules! alu {
            ($v:expr) => {{
                let v = $v;
                self.set_reg(rd, v);
                Ok(next)
            }};
        }
        match i.op {
            Op::Nop => Ok(next),
            Op::Break => Err(TrapCause::Breakpoint),
            Op::Syscall => self.syscall(imm).map(|()| next),

            // Trapping signed arithmetic (§3.1.1).
            Op::Add => {
                let v = (self.reg(rs) as i64)
                    .checked_add(self.reg(rt) as i64)
                    .ok_or(TrapCause::IntegerOverflow)?;
                alu!(v as u64)
            }
            Op::Sub => {
                let v = (self.reg(rs) as i64)
                    .checked_sub(self.reg(rt) as i64)
                    .ok_or(TrapCause::IntegerOverflow)?;
                alu!(v as u64)
            }
            Op::Addi => {
                let v = (self.reg(rs) as i64)
                    .checked_add(simm)
                    .ok_or(TrapCause::IntegerOverflow)?;
                alu!(v as u64)
            }

            Op::Addu => alu!(self.reg(rs).wrapping_add(self.reg(rt))),
            Op::Subu => alu!(self.reg(rs).wrapping_sub(self.reg(rt))),
            Op::And => alu!(self.reg(rs) & self.reg(rt)),
            Op::Or => alu!(self.reg(rs) | self.reg(rt)),
            Op::Xor => alu!(self.reg(rs) ^ self.reg(rt)),
            Op::Nor => alu!(!(self.reg(rs) | self.reg(rt))),
            Op::Slt => alu!(u64::from((self.reg(rs) as i64) < (self.reg(rt) as i64))),
            Op::Sltu => alu!(u64::from(self.reg(rs) < self.reg(rt))),
            Op::Sllv => alu!(self.reg(rs) << (self.reg(rt) & 63)),
            Op::Srlv => alu!(self.reg(rs) >> (self.reg(rt) & 63)),
            Op::Srav => alu!(((self.reg(rs) as i64) >> (self.reg(rt) & 63)) as u64),
            Op::Mul => alu!(self.reg(rs).wrapping_mul(self.reg(rt))),
            Op::Div => {
                let (a, b) = (self.reg(rs) as i64, self.reg(rt) as i64);
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                let v = a.checked_div(b).ok_or(TrapCause::IntegerOverflow)?;
                alu!(v as u64)
            }
            Op::Divu => {
                let b = self.reg(rt);
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                alu!(self.reg(rs) / b)
            }
            Op::Rem => {
                let (a, b) = (self.reg(rs) as i64, self.reg(rt) as i64);
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                let v = a.checked_rem(b).ok_or(TrapCause::IntegerOverflow)?;
                alu!(v as u64)
            }
            Op::Remu => {
                let b = self.reg(rt);
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                alu!(self.reg(rs) % b)
            }

            Op::Addiu => alu!(self.reg(rs).wrapping_add(simm as u64)),
            Op::Andi => alu!(self.reg(rs) & (imm as u32 as u64)),
            Op::Ori => alu!(self.reg(rs) | (imm as u32 as u64)),
            Op::Xori => alu!(self.reg(rs) ^ (imm as u32 as u64)),
            Op::Slti => alu!(u64::from((self.reg(rs) as i64) < simm)),
            Op::Sltiu => alu!(u64::from(self.reg(rs) < simm as u64)),
            Op::Lui => alu!((simm << 16) as u64),
            Op::Li => alu!(simm as u64),
            Op::Sll => alu!(self.reg(rs) << (imm as u32 & 63)),
            Op::Srl => alu!(self.reg(rs) >> (imm as u32 & 63)),
            Op::Sra => alu!(((self.reg(rs) as i64) >> (imm as u32 & 63)) as u64),

            Op::Beq => Ok(if self.reg(rs) == self.reg(rt) {
                imm as u64
            } else {
                next
            }),
            Op::Bne => Ok(if self.reg(rs) != self.reg(rt) {
                imm as u64
            } else {
                next
            }),
            Op::Blez => Ok(if self.reg(rs) as i64 <= 0 {
                imm as u64
            } else {
                next
            }),
            Op::Bgtz => Ok(if self.reg(rs) as i64 > 0 {
                imm as u64
            } else {
                next
            }),
            Op::Bltz => Ok(if (self.reg(rs) as i64) < 0 {
                imm as u64
            } else {
                next
            }),
            Op::Bgez => Ok(if self.reg(rs) as i64 >= 0 {
                imm as u64
            } else {
                next
            }),

            Op::J => Ok(imm as u64),
            Op::Jal => {
                self.set_reg(cheri_isa::RA, next);
                Ok(imm as u64)
            }
            Op::Jr => Ok(self.reg(rs)),
            Op::Jalr => {
                // Read the target before writing the link: `jalr r, r`
                // must jump to the register's old value.
                let target = self.reg(rs);
                self.set_reg(rd, next);
                Ok(target)
            }

            Op::Lb => self.exec_load(rd, rs, imm, 1, true, false).map(|_| next),
            Op::Lbu => self.exec_load(rd, rs, imm, 1, false, false).map(|_| next),
            Op::Lh => self.exec_load(rd, rs, imm, 2, true, false).map(|_| next),
            Op::Lhu => self.exec_load(rd, rs, imm, 2, false, false).map(|_| next),
            Op::Lw => self.exec_load(rd, rs, imm, 4, true, false).map(|_| next),
            Op::Lwu => self.exec_load(rd, rs, imm, 4, false, false).map(|_| next),
            Op::Ld => self.exec_load(rd, rs, imm, 8, false, false).map(|_| next),
            Op::Sb => self.exec_store(rd, rs, imm, 1, false).map(|_| next),
            Op::Sh => self.exec_store(rd, rs, imm, 2, false).map(|_| next),
            Op::Sw => self.exec_store(rd, rs, imm, 4, false).map(|_| next),
            Op::Sd => self.exec_store(rd, rs, imm, 8, false).map(|_| next),

            Op::Clb => self.exec_load(rd, rs, imm, 1, true, true).map(|_| next),
            Op::Clbu => self.exec_load(rd, rs, imm, 1, false, true).map(|_| next),
            Op::Clh => self.exec_load(rd, rs, imm, 2, true, true).map(|_| next),
            Op::Clhu => self.exec_load(rd, rs, imm, 2, false, true).map(|_| next),
            Op::Clw => self.exec_load(rd, rs, imm, 4, true, true).map(|_| next),
            Op::Clwu => self.exec_load(rd, rs, imm, 4, false, true).map(|_| next),
            Op::Cld => self.exec_load(rd, rs, imm, 8, false, true).map(|_| next),
            Op::Csb => self.exec_store(rd, rs, imm, 1, true).map(|_| next),
            Op::Csh => self.exec_store(rd, rs, imm, 2, true).map(|_| next),
            Op::Csw => self.exec_store(rd, rs, imm, 4, true).map(|_| next),
            Op::Csd => self.exec_store(rd, rs, imm, 8, true).map(|_| next),

            Op::Clc => {
                // The full 32-byte granule stays reserved in either format
                // (bounds check); only the stored bytes travel through the
                // cache — half as many in Cap128 mode.
                let addr = self.cap_addr(rs, imm, 32, Perms::LOAD | Perms::LOAD_CAP)?;
                let c = self.mem.read_cap(addr)?;
                self.charge_mem(addr, self.cfg.cap_format.stored_bytes(), false);
                self.caps[rd as usize] = c;
                Ok(next)
            }
            Op::Csc => {
                let addr = self.cap_addr(rs, imm, 32, Perms::STORE | Perms::STORE_CAP)?;
                let c = self.caps[rd as usize];
                self.mem.write_cap(addr, &c)?;
                self.charge_mem(addr, self.cfg.cap_format.stored_bytes(), true);
                Ok(next)
            }

            Op::CIncBase => {
                self.caps[rd as usize] = self.caps[rs as usize].inc_base(self.reg(rt))?;
                Ok(next)
            }
            Op::CSetLen => {
                self.caps[rd as usize] = self.caps[rs as usize].set_length(self.reg(rt))?;
                Ok(next)
            }
            Op::CAndPerm => {
                self.caps[rd as usize] =
                    self.caps[rs as usize].and_perms(Perms::from_bits(self.reg(rt) as u16))?;
                Ok(next)
            }
            Op::CIncOffset => {
                self.caps[rd as usize] = self.caps[rs as usize].inc_offset(self.reg(rt) as i64)?;
                Ok(next)
            }
            Op::CIncOffsetImm => {
                self.caps[rd as usize] = self.caps[rs as usize].inc_offset(simm)?;
                Ok(next)
            }
            Op::CSetOffset => {
                self.caps[rd as usize] = self.caps[rs as usize].set_offset(self.reg(rt))?;
                Ok(next)
            }
            Op::CSetBounds => {
                self.caps[rd as usize] = self.caps[rs as usize].set_bounds(self.reg(rt))?;
                Ok(next)
            }
            Op::CClearTag => {
                self.caps[rd as usize] = self.caps[rs as usize].clear_tag();
                Ok(next)
            }
            Op::CMove => {
                self.caps[rd as usize] = self.caps[rs as usize];
                Ok(next)
            }
            Op::CGetBase => alu!(self.caps[rs as usize].base()),
            Op::CGetLen => alu!(self.caps[rs as usize].length()),
            Op::CGetOffset => alu!(self.caps[rs as usize].offset()),
            Op::CGetPerm => alu!(self.caps[rs as usize].perms().bits() as u64),
            Op::CGetTag => alu!(u64::from(self.caps[rs as usize].tag())),
            Op::CPtrCmp => {
                let r = ptr_cmp(&self.caps[rs as usize], &self.caps[rt as usize]);
                let sel = CmpOp::from_u8(imm as u8).expect("validated at decode");
                let v = match sel {
                    CmpOp::Eq => r.ordering == Ordering::Equal,
                    CmpOp::Ne => r.ordering != Ordering::Equal,
                    CmpOp::Lt | CmpOp::Ltu => r.ordering == Ordering::Less,
                    CmpOp::Le | CmpOp::Leu => r.ordering != Ordering::Greater,
                };
                alu!(u64::from(v))
            }
            Op::CFromPtr => {
                self.caps[rd as usize] =
                    Capability::from_ptr(&self.caps[rs as usize], self.reg(rt))?;
                Ok(next)
            }
            Op::CToPtr => {
                alu!(self.caps[rs as usize].to_ptr(&self.caps[rt as usize]))
            }
            Op::CSeal => {
                self.caps[rd as usize] = self.caps[rs as usize].seal(&self.caps[rt as usize])?;
                Ok(next)
            }
            Op::CUnseal => {
                self.caps[rd as usize] = self.caps[rs as usize].unseal(&self.caps[rt as usize])?;
                Ok(next)
            }
            Op::CJr => {
                let target = self.caps[rs as usize];
                let addr = target.check_access(8, Perms::EXECUTE)?;
                if addr % 8 != 0 {
                    return Err(TrapCause::PccMisaligned { addr });
                }
                self.set_pcc(target);
                Ok(addr / 8)
            }
            Op::CJalr => {
                let target = self.caps[rs as usize];
                let addr = target.check_access(8, Perms::EXECUTE)?;
                if addr % 8 != 0 {
                    return Err(TrapCause::PccMisaligned { addr });
                }
                // The link capability is the current PCC pointed at the
                // return address. A return address below the PCC's base is
                // unrepresentable (the offset is unsigned), e.g. when a
                // trampoline's PCC starts above the caller: trap rather
                // than underflow.
                let ret = next * 8;
                let Some(link_off) = ret.checked_sub(self.pcc.base()) else {
                    return Err(TrapCause::PccBounds { pc: next });
                };
                self.caps[rd as usize] = self.pcc.set_offset(link_off)?;
                self.set_pcc(target);
                Ok(addr / 8)
            }
            Op::CGetPcc => {
                self.caps[rd as usize] = self.pcc;
                Ok(next)
            }
        }
    }

    /// Executes one flattened block micro-op (see [`crate::ir`]).
    /// Mirrors [`Vm::execute_at`] arm for arm with operand decoding
    /// already done; the `Other` fallback *is* `execute_at`. Every
    /// backend funnels its long-tail and capability ops through here, so
    /// each pointer/trap decision lives in exactly one place.
    #[allow(clippy::too_many_lines)]
    pub(crate) fn exec_flat(&mut self, op: &FlatOp, pc: u64) -> Result<u64, TrapCause> {
        let next = pc + 1;
        macro_rules! alu {
            ($rd:expr, $v:expr) => {{
                let v = $v;
                self.set_reg($rd, v);
                Ok(next)
            }};
        }
        macro_rules! branch {
            ($cond:expr, $target:expr) => {
                Ok(if $cond { $target } else { next })
            };
        }
        match *op {
            FlatOp::Nop => Ok(next),
            FlatOp::Add { rd, rs, rt } => {
                let v = (self.reg(rs) as i64)
                    .checked_add(self.reg(rt) as i64)
                    .ok_or(TrapCause::IntegerOverflow)?;
                alu!(rd, v as u64)
            }
            FlatOp::Sub { rd, rs, rt } => {
                let v = (self.reg(rs) as i64)
                    .checked_sub(self.reg(rt) as i64)
                    .ok_or(TrapCause::IntegerOverflow)?;
                alu!(rd, v as u64)
            }
            FlatOp::Addi { rd, rs, imm } => {
                let v = (self.reg(rs) as i64)
                    .checked_add(imm)
                    .ok_or(TrapCause::IntegerOverflow)?;
                alu!(rd, v as u64)
            }
            FlatOp::Addu { rd, rs, rt } => alu!(rd, self.reg(rs).wrapping_add(self.reg(rt))),
            FlatOp::Subu { rd, rs, rt } => alu!(rd, self.reg(rs).wrapping_sub(self.reg(rt))),
            FlatOp::And { rd, rs, rt } => alu!(rd, self.reg(rs) & self.reg(rt)),
            FlatOp::Or { rd, rs, rt } => alu!(rd, self.reg(rs) | self.reg(rt)),
            FlatOp::Xor { rd, rs, rt } => alu!(rd, self.reg(rs) ^ self.reg(rt)),
            FlatOp::Nor { rd, rs, rt } => alu!(rd, !(self.reg(rs) | self.reg(rt))),
            FlatOp::Slt { rd, rs, rt } => {
                alu!(rd, u64::from((self.reg(rs) as i64) < (self.reg(rt) as i64)))
            }
            FlatOp::Sltu { rd, rs, rt } => alu!(rd, u64::from(self.reg(rs) < self.reg(rt))),
            FlatOp::Sllv { rd, rs, rt } => alu!(rd, self.reg(rs) << (self.reg(rt) & 63)),
            FlatOp::Srlv { rd, rs, rt } => alu!(rd, self.reg(rs) >> (self.reg(rt) & 63)),
            FlatOp::Srav { rd, rs, rt } => {
                alu!(rd, ((self.reg(rs) as i64) >> (self.reg(rt) & 63)) as u64)
            }
            FlatOp::Mul { rd, rs, rt } => alu!(rd, self.reg(rs).wrapping_mul(self.reg(rt))),
            FlatOp::Div { rd, rs, rt } => {
                let (a, b) = (self.reg(rs) as i64, self.reg(rt) as i64);
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                let v = a.checked_div(b).ok_or(TrapCause::IntegerOverflow)?;
                alu!(rd, v as u64)
            }
            FlatOp::Divu { rd, rs, rt } => {
                let b = self.reg(rt);
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                alu!(rd, self.reg(rs) / b)
            }
            FlatOp::Rem { rd, rs, rt } => {
                let (a, b) = (self.reg(rs) as i64, self.reg(rt) as i64);
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                let v = a.checked_rem(b).ok_or(TrapCause::IntegerOverflow)?;
                alu!(rd, v as u64)
            }
            FlatOp::Remu { rd, rs, rt } => {
                let b = self.reg(rt);
                if b == 0 {
                    return Err(TrapCause::DivideByZero);
                }
                alu!(rd, self.reg(rs) % b)
            }
            FlatOp::Addiu { rd, rs, imm } => alu!(rd, self.reg(rs).wrapping_add(imm)),
            FlatOp::Andi { rd, rs, imm } => alu!(rd, self.reg(rs) & imm),
            FlatOp::Ori { rd, rs, imm } => alu!(rd, self.reg(rs) | imm),
            FlatOp::Xori { rd, rs, imm } => alu!(rd, self.reg(rs) ^ imm),
            FlatOp::Slti { rd, rs, imm } => alu!(rd, u64::from((self.reg(rs) as i64) < imm)),
            FlatOp::Sltiu { rd, rs, imm } => alu!(rd, u64::from(self.reg(rs) < imm)),
            FlatOp::Li { rd, v } => alu!(rd, v),
            FlatOp::Sll { rd, rs, sh } => alu!(rd, self.reg(rs) << sh),
            FlatOp::Srl { rd, rs, sh } => alu!(rd, self.reg(rs) >> sh),
            FlatOp::Sra { rd, rs, sh } => alu!(rd, ((self.reg(rs) as i64) >> sh) as u64),
            FlatOp::Beq { rs, rt, target } => branch!(self.reg(rs) == self.reg(rt), target),
            FlatOp::Bne { rs, rt, target } => branch!(self.reg(rs) != self.reg(rt), target),
            FlatOp::Blez { rs, target } => branch!(self.reg(rs) as i64 <= 0, target),
            FlatOp::Bgtz { rs, target } => branch!(self.reg(rs) as i64 > 0, target),
            FlatOp::Bltz { rs, target } => branch!((self.reg(rs) as i64) < 0, target),
            FlatOp::Bgez { rs, target } => branch!(self.reg(rs) as i64 >= 0, target),
            FlatOp::FusedCmpBranch {
                rd,
                rs,
                rt,
                imm,
                signed,
                imm_form,
                branch_if,
                target,
            } => {
                // Two source instructions in one dispatch: the compare
                // still writes `rd`, then the branch tests its result.
                // The fall-through is `pc + 2` — past both instructions.
                let a = self.reg(rs);
                let v = if imm_form {
                    if signed {
                        u64::from((a as i64) < imm)
                    } else {
                        u64::from(a < imm as u64)
                    }
                } else {
                    let b = self.reg(rt);
                    if signed {
                        u64::from((a as i64) < (b as i64))
                    } else {
                        u64::from(a < b)
                    }
                };
                self.set_reg(rd, v);
                Ok(if (v != 0) == branch_if {
                    target
                } else {
                    pc + 2
                })
            }
            FlatOp::J { target } => Ok(target),
            FlatOp::Jal { target } => {
                self.set_reg(cheri_isa::RA, next);
                Ok(target)
            }
            FlatOp::Jr { rs } => Ok(self.reg(rs)),
            FlatOp::Jalr { rd, rs } => {
                // Read the target before writing the link: `jalr r, r`
                // must jump to the register's old value.
                let target = self.reg(rs);
                self.set_reg(rd, next);
                Ok(target)
            }
            FlatOp::Load {
                rd,
                base,
                off,
                width,
                signed,
                via_cap,
            } => self
                .exec_load(rd, base, off, width, signed, via_cap)
                .map(|()| next),
            FlatOp::Store {
                rv,
                base,
                off,
                width,
                via_cap,
            } => self
                .exec_store(rv, base, off, width, via_cap)
                .map(|()| next),
            FlatOp::Clc { cd, cb, off } => {
                let addr = self.cap_addr(cb, off, 32, Perms::LOAD | Perms::LOAD_CAP)?;
                let c = self.mem.read_cap(addr)?;
                self.charge_mem(addr, self.cfg.cap_format.stored_bytes(), false);
                self.caps[cd as usize] = c;
                Ok(next)
            }
            FlatOp::Csc { cs, cb, off } => {
                let addr = self.cap_addr(cb, off, 32, Perms::STORE | Perms::STORE_CAP)?;
                let c = self.caps[cs as usize];
                self.mem.write_cap(addr, &c)?;
                self.charge_mem(addr, self.cfg.cap_format.stored_bytes(), true);
                Ok(next)
            }
            FlatOp::CIncOffset { cd, cb, rt } => {
                self.caps[cd as usize] = self.caps[cb as usize].inc_offset(self.reg(rt) as i64)?;
                Ok(next)
            }
            FlatOp::CIncOffsetImm { cd, cb, imm } => {
                self.caps[cd as usize] = self.caps[cb as usize].inc_offset(imm)?;
                Ok(next)
            }
            FlatOp::CSetOffset { cd, cb, rt } => {
                self.caps[cd as usize] = self.caps[cb as usize].set_offset(self.reg(rt))?;
                Ok(next)
            }
            FlatOp::CSetBounds { cd, cb, rt } => {
                self.caps[cd as usize] = self.caps[cb as usize].set_bounds(self.reg(rt))?;
                Ok(next)
            }
            FlatOp::CAndPerm { cd, cb, rt } => {
                self.caps[cd as usize] =
                    self.caps[cb as usize].and_perms(Perms::from_bits(self.reg(rt) as u16))?;
                Ok(next)
            }
            FlatOp::CClearTag { cd, cb } => {
                self.caps[cd as usize] = self.caps[cb as usize].clear_tag();
                Ok(next)
            }
            FlatOp::CMove { cd, cb } => {
                self.caps[cd as usize] = self.caps[cb as usize];
                Ok(next)
            }
            FlatOp::CGetBase { rd, cb } => alu!(rd, self.caps[cb as usize].base()),
            FlatOp::CGetLen { rd, cb } => alu!(rd, self.caps[cb as usize].length()),
            FlatOp::CGetOffset { rd, cb } => alu!(rd, self.caps[cb as usize].offset()),
            FlatOp::CGetPerm { rd, cb } => alu!(rd, self.caps[cb as usize].perms().bits() as u64),
            FlatOp::CGetTag { rd, cb } => alu!(rd, u64::from(self.caps[cb as usize].tag())),
            FlatOp::CPtrCmp { rd, cb, ct, sel } => {
                let r = ptr_cmp(&self.caps[cb as usize], &self.caps[ct as usize]);
                let v = match sel {
                    CmpOp::Eq => r.ordering == Ordering::Equal,
                    CmpOp::Ne => r.ordering != Ordering::Equal,
                    CmpOp::Lt | CmpOp::Ltu => r.ordering == Ordering::Less,
                    CmpOp::Le | CmpOp::Leu => r.ordering != Ordering::Greater,
                };
                alu!(rd, u64::from(v))
            }
            FlatOp::CToPtr { rd, cb, ct } => {
                alu!(rd, self.caps[cb as usize].to_ptr(&self.caps[ct as usize]))
            }
            FlatOp::Other(i) => self.execute_at(i, pc),
        }
    }

    pub(crate) fn exec_load(
        &mut self,
        rd: u8,
        base: u8,
        imm: i32,
        width: u8,
        signed: bool,
        via_cap: bool,
    ) -> Result<(), TrapCause> {
        let addr = if via_cap {
            self.cap_addr(base, imm, width as u64, Perms::LOAD)?
        } else {
            self.legacy_addr(base, imm, width as u64, Perms::LOAD)?
        };
        let v = self.load(addr, width, signed)?;
        self.set_reg(rd, v);
        Ok(())
    }

    pub(crate) fn exec_store(
        &mut self,
        rv: u8,
        base: u8,
        imm: i32,
        width: u8,
        via_cap: bool,
    ) -> Result<(), TrapCause> {
        let addr = if via_cap {
            self.cap_addr(base, imm, width as u64, Perms::STORE)?
        } else {
            self.legacy_addr(base, imm, width as u64, Perms::STORE)?
        };
        self.store(addr, width, self.reg(rv))
    }

    fn syscall(&mut self, n: i32) -> Result<(), TrapCause> {
        let a0 = self.reg(cheri_isa::A0);
        match n {
            sys::EXIT => {
                self.halted = Some(a0 as i64);
                Ok(())
            }
            sys::PUTCHAR => {
                self.output.push(a0 as u8);
                Ok(())
            }
            sys::PUTINT => {
                self.output
                    .extend_from_slice((a0 as i64).to_string().as_bytes());
                Ok(())
            }
            sys::MALLOC => {
                // alloc_cap keeps byte-granular bounds where the format
                // allows and widens to the padded representable block in
                // Cap128 mode (> 64 KiB objects only).
                match self.heap.alloc_cap(a0, Perms::data()) {
                    Ok(cap) => {
                        self.set_reg(cheri_isa::V0, cap.base());
                        self.caps[cabi::CV0 as usize] = cap;
                    }
                    Err(_) => {
                        self.set_reg(cheri_isa::V0, 0);
                        self.caps[cabi::CV0 as usize] = Capability::null();
                    }
                }
                Ok(())
            }
            sys::FREE => {
                self.heap.free(a0)?;
                Ok(())
            }
            sys::CLOCK => {
                self.set_reg(cheri_isa::V0, self.cycles);
                Ok(())
            }
            sys::MEMCPY => {
                let len = self.reg(cheri_isa::A2);
                let (dst, src) = if self.caps[cabi::CA0 as usize].tag() {
                    let d = self.caps[cabi::CA0 as usize].check_access(len, Perms::STORE)?;
                    let s = self.caps[(cabi::CA0 + 1) as usize].check_access(len, Perms::LOAD)?;
                    (d, s)
                } else {
                    let d = self.reg(cheri_isa::A0);
                    let s = self.reg(cheri_isa::A1);
                    if d < NULL_GUARD_SIZE || s < NULL_GUARD_SIZE {
                        return Err(TrapCause::NullGuard { addr: d.min(s) });
                    }
                    (d, s)
                };
                if len > 0 {
                    self.mem.memcpy(dst, src, len)?;
                    // A software copy loop costs ~4 cycles/byte on the
                    // scalar in-order softcore (load, store, index, branch)
                    // on top of the cache traffic charged below.
                    self.cycles += len * 4;
                    let mut a = 0;
                    while a < len {
                        let chunk = (len - a).min(32);
                        self.charge_mem(src + a, chunk, false);
                        self.charge_mem(dst + a, chunk, true);
                        a += 32;
                    }
                }
                Ok(())
            }
            other => Err(TrapCause::BadSyscall(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_isa::{A0, V0};

    fn run_prog_with(code: Vec<Instr>, cfg: VmConfig) -> Result<(ExitStatus, Vm), VmTrap> {
        let mut p = Program::new();
        p.code = code;
        let mut vm = Vm::new(p, cfg);
        let status = vm.run(1_000_000)?;
        Ok((status, vm))
    }

    fn run_prog(code: Vec<Instr>) -> Result<(ExitStatus, Vm), VmTrap> {
        run_prog_with(code, VmConfig::functional())
    }

    #[test]
    fn exit_code_flows_through() {
        let (s, _) = run_prog(vec![Instr::li(A0, 7), Instr::syscall(sys::EXIT)]).unwrap();
        assert_eq!(s.code, 7);
    }

    /// A guest that stores state, hits its `break` ready marker, and then
    /// serves from that state: forking a snapshot taken at the marker is
    /// bit-identical to cloning the whole machine.
    #[test]
    fn snapshot_fork_matches_full_clone() {
        let code = vec![
            Instr::li(8, 0x2000),
            Instr::li(9, 123),
            Instr::mem(Op::Sd, 9, 8, 0),
            Instr::new(Op::Break, 0, 0, 0, 0), // ready marker
            Instr::mem(Op::Ld, 10, 8, 0),
            Instr::r3(Op::Addu, A0, 10, 0),
            Instr::syscall(sys::EXIT),
        ];
        let mut p = Program::new();
        p.code = code;
        let mut vm = Vm::new(p, VmConfig::fpga());
        let trap = vm.run(1_000_000).unwrap_err();
        assert_eq!(trap.cause, TrapCause::Breakpoint);
        vm.set_pc(trap.pc + 1);

        let snap = vm.snapshot();
        let mut cloned = vm.clone();
        let mut forked = snap.fork();
        let a = cloned.run(1_000_000).unwrap();
        let b = forked.run(1_000_000).unwrap();
        assert_eq!((a.code, b.code), (123, 123));
        let (sa, sb) = (cloned.stats(), forked.stats());
        assert_eq!(sa.instret, sb.instret);
        assert_eq!(sa.cycles, sb.cycles);
        assert_eq!(sa.fetch_checks, sb.fetch_checks);
        assert_eq!(sa.cache, sb.cache);
        for r in 0..32 {
            assert_eq!(cloned.reg(r), forked.reg(r), "reg {r}");
            assert_eq!(cloned.cap(r), forked.cap(r), "cap {r}");
        }
        assert_eq!(cloned.output(), forked.output());
        // Forks are independent: running one does not perturb the image.
        let mut again = snap.fork();
        assert_eq!(again.run(1_000_000).unwrap().code, 123);
        assert!(snap.warm_bytes() > 0);
        assert!(snap.warm_bytes() < snap.config().mem_size);
    }

    #[test]
    fn arithmetic_and_branches() {
        // Sum 1..=10 with a loop.
        let code = vec![
            Instr::li(8, 0),   // t0 = 0 (sum)
            Instr::li(9, 1),   // t1 = 1 (i)
            Instr::li(10, 10), // t2 = 10
            // loop:
            Instr::r3(Op::Addu, 8, 8, 9),     // 3: sum += i
            Instr::i2(Op::Addiu, 9, 9, 1),    // 4: i += 1
            Instr::r3(Op::Slt, 11, 10, 9),    // 5: t3 = 10 < i
            Instr::new(Op::Beq, 0, 11, 0, 3), // 6: if t3 == 0 goto 3
            Instr::r3(Op::Addu, A0, 8, 0),    // a0 = sum
            Instr::syscall(sys::EXIT),
        ];
        let (s, _) = run_prog(code).unwrap();
        assert_eq!(s.code, 55);
    }

    #[test]
    fn trapping_add_overflows() {
        let code = vec![
            Instr::li(8, i32::MAX),
            Instr::i2(Op::Sll, 8, 8, 32), // t0 = huge
            Instr::r3(Op::Add, 8, 8, 8),  // overflow
            Instr::syscall(sys::EXIT),
        ];
        let err = run_prog(code).unwrap_err();
        assert_eq!(err.cause, TrapCause::IntegerOverflow);
        assert_eq!(err.pc, 2);
    }

    #[test]
    fn wrapping_addu_does_not_trap() {
        let code = vec![
            Instr::li(8, i32::MAX),
            Instr::i2(Op::Sll, 8, 8, 32),
            Instr::r3(Op::Addu, 8, 8, 8),
            Instr::li(A0, 0),
            Instr::syscall(sys::EXIT),
        ];
        assert!(run_prog(code).is_ok());
    }

    #[test]
    fn divide_by_zero_traps() {
        let code = vec![
            Instr::li(8, 1),
            Instr::li(9, 0),
            Instr::r3(Op::Div, 8, 8, 9),
            Instr::syscall(sys::EXIT),
        ];
        assert_eq!(run_prog(code).unwrap_err().cause, TrapCause::DivideByZero);
    }

    #[test]
    fn null_dereference_hits_guard_page() {
        let code = vec![
            Instr::li(8, 0),
            Instr::mem(Op::Ld, 9, 8, 16), // load 16(0)
            Instr::syscall(sys::EXIT),
        ];
        let err = run_prog(code).unwrap_err();
        assert_eq!(err.cause, TrapCause::NullGuard { addr: 16 });
    }

    #[test]
    fn legacy_load_store_round_trip() {
        let code = vec![
            Instr::li(8, 0x8000),
            Instr::li(9, 1234),
            Instr::mem(Op::Sd, 9, 8, 8),
            Instr::mem(Op::Ld, 10, 8, 8),
            Instr::r3(Op::Addu, A0, 10, 0),
            Instr::syscall(sys::EXIT),
        ];
        let (s, _) = run_prog(code).unwrap();
        assert_eq!(s.code, 1234);
    }

    #[test]
    fn signed_loads_sign_extend() {
        let code = vec![
            Instr::li(8, 0x8000),
            Instr::li(9, -1),
            Instr::mem(Op::Sb, 9, 8, 0),
            Instr::mem(Op::Lb, 10, 8, 0),  // -1
            Instr::mem(Op::Lbu, 11, 8, 0), // 255
            Instr::r3(Op::Addu, A0, 10, 11),
            Instr::syscall(sys::EXIT),
        ];
        let (s, _) = run_prog(code).unwrap();
        assert_eq!(s.code, 254);
    }

    #[test]
    fn malloc_returns_bounded_capability() {
        let code = vec![
            Instr::li(A0, 100),
            Instr::syscall(sys::MALLOC),
            Instr::syscall(sys::EXIT),
        ];
        let (_, vm) = run_prog(code).unwrap();
        let c = vm.cap(cabi::CV0);
        assert!(c.tag());
        assert_eq!(c.length(), 100);
        assert_eq!(c.base(), vm.reg(V0));
    }

    #[test]
    fn capability_load_respects_bounds() {
        // malloc(8); then try cld at offset 8 (out of bounds).
        let code = vec![
            Instr::li(A0, 8),
            Instr::syscall(sys::MALLOC),
            Instr::mem(Op::Cld, 9, cabi::CV0, 8),
            Instr::syscall(sys::EXIT),
        ];
        let err = run_prog(code).unwrap_err();
        assert!(matches!(
            err.cause,
            TrapCause::Capability(CapError::BoundsViolation { .. })
        ));
    }

    #[test]
    fn capability_store_and_load_data() {
        let code = vec![
            Instr::li(A0, 64),
            Instr::syscall(sys::MALLOC),
            Instr::li(9, 4242),
            Instr::mem(Op::Csd, 9, cabi::CV0, 16),
            Instr::mem(Op::Cld, 10, cabi::CV0, 16),
            Instr::r3(Op::Addu, A0, 10, 0),
            Instr::syscall(sys::EXIT),
        ];
        let (s, _) = run_prog(code).unwrap();
        assert_eq!(s.code, 4242);
    }

    #[test]
    fn clc_csc_move_capabilities_with_tags() {
        // Store the malloc cap to the stack, reload into c5, use it.
        let code = vec![
            Instr::li(A0, 64),
            Instr::syscall(sys::MALLOC),
            Instr::mem(Op::Csc, cabi::CV0, cabi::CSP, -64),
            Instr::mem(Op::Clc, 5, cabi::CSP, -64),
            Instr::li(9, 9),
            Instr::mem(Op::Csd, 9, 5, 0),
            Instr::mem(Op::Cld, 10, 5, 0),
            Instr::r3(Op::Addu, A0, 10, 0),
            Instr::syscall(sys::EXIT),
        ];
        let (s, _) = run_prog(code).unwrap();
        assert_eq!(s.code, 9);
    }

    #[test]
    fn plain_store_forges_nothing() {
        // Overwrite the spilled capability with integer stores, then try to
        // load and dereference it: tag violation.
        let code = vec![
            Instr::li(A0, 64),
            Instr::syscall(sys::MALLOC),
            Instr::mem(Op::Csc, cabi::CV0, cabi::CSP, -64),
            // Scribble over the spilled capability via the stack cap.
            Instr::li(9, 0x4141),
            Instr::mem(Op::Csd, 9, cabi::CSP, -64),
            Instr::mem(Op::Clc, 5, cabi::CSP, -64),
            Instr::mem(Op::Cld, 10, 5, 0), // deref forged cap
            Instr::syscall(sys::EXIT),
        ];
        let err = run_prog(code).unwrap_err();
        assert_eq!(err.cause, TrapCause::Capability(CapError::TagViolation));
    }

    #[test]
    fn cincoffset_and_bounds_check() {
        // p = malloc(16); p += 32 (fine); *p traps.
        let code = vec![
            Instr::li(A0, 16),
            Instr::syscall(sys::MALLOC),
            Instr::li(9, 32),
            Instr::c_inc_offset(cabi::CV0, cabi::CV0, 9),
            Instr::mem(Op::Cld, 10, cabi::CV0, 0),
            Instr::syscall(sys::EXIT),
        ];
        let err = run_prog(code).unwrap_err();
        assert!(matches!(
            err.cause,
            TrapCause::Capability(CapError::BoundsViolation { .. })
        ));
    }

    #[test]
    fn candperm_enforces_input_qualifier() {
        // Derive a read-only view, writing through it traps.
        let code = vec![
            Instr::li(A0, 16),
            Instr::syscall(sys::MALLOC),
            Instr::li(9, Perms::input().bits() as i32),
            Instr::cmod(Op::CAndPerm, 5, cabi::CV0, 9),
            Instr::li(10, 1),
            Instr::mem(Op::Csd, 10, 5, 0),
            Instr::syscall(sys::EXIT),
        ];
        let err = run_prog(code).unwrap_err();
        assert_eq!(
            err.cause,
            TrapCause::Capability(CapError::PermissionViolation(Perms::STORE))
        );
    }

    #[test]
    fn cptrcmp_orders_null_before_valid() {
        let code = vec![
            Instr::li(A0, 16),
            Instr::syscall(sys::MALLOC),
            // c5 = null
            Instr::cmod(Op::CClearTag, 5, 5, 0),
            Instr::c_ptr_cmp(A0, 5, cabi::CV0, CmpOp::Ltu),
            Instr::syscall(sys::EXIT),
        ];
        let (s, _) = run_prog(code).unwrap();
        assert_eq!(s.code, 1);
    }

    #[test]
    fn cfromptr_ctoptr_round_trip() {
        let code = vec![
            Instr::li(8, 0x9000),
            Instr::cmod(Op::CFromPtr, 5, DDC, 8),
            Instr::new(Op::CToPtr, A0, 5, DDC, 0),
            Instr::syscall(sys::EXIT),
        ];
        let (s, _) = run_prog(code).unwrap();
        assert_eq!(s.code, 0x9000);
    }

    #[test]
    fn cjalr_confines_execution_to_function() {
        // Build a code capability for instructions [4, 6) and jump to it.
        // The callee returns via cjr on the link cap; then exit.
        let code = vec![
            Instr::new(Op::CGetPcc, 5, 0, 0, 0), // c5 = pcc
            Instr::li(8, 5 * 8),
            Instr::cmod(Op::CSetOffset, 5, 5, 8), // offset = callee
            Instr::new(Op::CJalr, 6, 5, 0, 0),    // call; link in c6
            Instr::new(Op::J, 0, 0, 0, 7),        // pc 4: resume -> exit
            // callee (pc 5): a0 = 77; return
            Instr::li(A0, 77),
            Instr::new(Op::CJr, 0, 6, 0, 0), // pc 6: return to pc 4
            Instr::syscall(sys::EXIT),       // pc 7
        ];
        let (s, _) = run_prog(code).unwrap();
        assert_eq!(s.code, 77);
    }

    #[test]
    fn jalr_same_register_jumps_to_old_value() {
        // jalr r8, r8: the jump target is r8's OLD value; the link (pc 2)
        // is written afterwards. The callee returns the link so we can see
        // both effects.
        let code = vec![
            Instr::li(8, 5),                  // r8 = 5 (callee)
            Instr::new(Op::Jalr, 8, 8, 0, 0), // call r8; link in r8
            Instr::li(A0, 99),                // pc 2: must be skipped
            Instr::syscall(sys::EXIT),        // pc 3
            Instr::new(Op::Nop, 0, 0, 0, 0),  // pc 4
            Instr::r3(Op::Addu, A0, 8, 0),    // pc 5: a0 = link = 2
            Instr::syscall(sys::EXIT),        // pc 6
        ];
        let (s, _) = run_prog(code).unwrap();
        assert_eq!(s.code, 2, "jalr must use the pre-link register value");
    }

    #[test]
    fn cjalr_link_underflow_traps_cleanly() {
        // A sandbox PCC whose base exceeds the return address: the link
        // capability cannot represent a negative offset, so CJALR must
        // trap instead of underflowing (which panicked in debug builds).
        let mut p = Program::new();
        p.code = vec![Instr::new(Op::Nop, 0, 0, 0, 0)];
        let mut vm = Vm::new(p, VmConfig::functional());
        vm.pcc = Capability::new_mem(0x100, 0x100, Perms::code());
        vm.caps[5] = Capability::new_mem(0, 64, Perms::code());
        let err = vm
            .execute_at(Instr::new(Op::CJalr, 6, 5, 0, 0), 0)
            .unwrap_err();
        assert_eq!(err, TrapCause::PccBounds { pc: 1 });
    }

    #[test]
    fn cjr_misaligned_target_traps() {
        // Offset 4 into the code: silently truncating to addr/8 would land
        // on the PREVIOUS instruction. It must trap instead.
        let code = vec![
            Instr::new(Op::CGetPcc, 5, 0, 0, 0),
            Instr::li(8, 4),
            Instr::cmod(Op::CSetOffset, 5, 5, 8),
            Instr::new(Op::CJr, 0, 5, 0, 0),
            Instr::syscall(sys::EXIT),
        ];
        let err = run_prog(code).unwrap_err();
        assert_eq!(err.cause, TrapCause::PccMisaligned { addr: 4 });
        assert_eq!(err.pc, 3);
    }

    #[test]
    fn cjalr_misaligned_target_traps() {
        let mut p = Program::new();
        p.code = vec![Instr::new(Op::Nop, 0, 0, 0, 0)];
        let mut vm = Vm::new(p, VmConfig::functional());
        vm.caps[5] = Capability::new_mem(0, 64, Perms::code())
            .set_offset(12)
            .unwrap();
        let err = vm
            .execute_at(Instr::new(Op::CJalr, 6, 5, 0, 0), 0)
            .unwrap_err();
        assert_eq!(err, TrapCause::PccMisaligned { addr: 12 });
    }

    #[test]
    fn straight_line_code_validates_pcc_once() {
        // The sum-1..=10 loop retires dozens of instructions, branches
        // included, but never leaves the PCC's validated window: exactly
        // one full set_offset/check_access, at the first fetch.
        let code = vec![
            Instr::li(8, 0),
            Instr::li(9, 1),
            Instr::li(10, 10),
            Instr::r3(Op::Addu, 8, 8, 9),
            Instr::i2(Op::Addiu, 9, 9, 1),
            Instr::r3(Op::Slt, 11, 10, 9),
            Instr::new(Op::Beq, 0, 11, 0, 3),
            Instr::r3(Op::Addu, A0, 8, 0),
            Instr::syscall(sys::EXIT),
        ];
        let (s, _) = run_prog(code).unwrap();
        assert_eq!(s.code, 55);
        assert!(s.stats.instret > 40);
        assert_eq!(
            s.stats.fetch_checks, 1,
            "straight-line fetches must be range compares, not PCC checks"
        );
    }

    #[test]
    fn pcc_writes_invalidate_the_fetch_window() {
        // The cjalr call/return example: initial fetch + one revalidation
        // after CJALR + one after the returning CJR = 3 full checks.
        let code = vec![
            Instr::new(Op::CGetPcc, 5, 0, 0, 0),
            Instr::li(8, 5 * 8),
            Instr::cmod(Op::CSetOffset, 5, 5, 8),
            Instr::new(Op::CJalr, 6, 5, 0, 0),
            Instr::new(Op::J, 0, 0, 0, 7),
            Instr::li(A0, 77),
            Instr::new(Op::CJr, 0, 6, 0, 0),
            Instr::syscall(sys::EXIT),
        ];
        let (s, _) = run_prog(code).unwrap();
        assert_eq!(s.code, 77);
        assert_eq!(s.stats.fetch_checks, 3);
    }

    #[test]
    fn narrowed_pcc_window_still_confines_execution() {
        // Jump into a PCC restricted to instructions [4, 6): the run cache
        // must not let the pc walk past the window's end.
        let code = vec![
            Instr::new(Op::CGetPcc, 5, 0, 0, 0),
            Instr::li(8, 4 * 8),
            Instr::cmod(Op::CSetOffset, 5, 5, 8), // offset = 4*8
            Instr::new(Op::CJr, 0, 5, 0, 0),      // enter narrowed window
            Instr::li(A0, 1),                     // pc 4
            Instr::i2(Op::Addiu, A0, A0, 1),      // pc 5; pc 6 is out
            Instr::syscall(sys::EXIT),            // pc 6: never reached...
            Instr::syscall(sys::EXIT),
        ];
        // Narrow the capability in c5 before the jump: base 4*8, len 16.
        let mut p = Program::new();
        p.code = code;
        let mut vm = Vm::new(p, VmConfig::functional());
        // Run to just before the CJr, then narrow c5 by hand.
        for _ in 0..3 {
            vm.step().unwrap();
        }
        let narrowed = vm.cap(5).set_bounds(16).unwrap();
        vm.set_cap(5, narrowed);
        let err = vm.run(100).unwrap_err();
        assert!(
            matches!(err.cause, TrapCause::PccBounds { pc: 6 }),
            "got {:?}",
            err.cause
        );
        assert_eq!(vm.reg(cheri_isa::A0), 2, "both in-window instrs ran");
    }

    /// Representative programs (successful and trapping) behave identically
    /// under 256-bit and 128-bit capability storage.
    #[test]
    fn cap128_vm_matches_cap256_on_core_programs() {
        let programs: Vec<(&str, Vec<Instr>)> = vec![
            ("exit", vec![Instr::li(A0, 7), Instr::syscall(sys::EXIT)]),
            (
                "malloc_oob_load",
                vec![
                    Instr::li(A0, 8),
                    Instr::syscall(sys::MALLOC),
                    Instr::mem(Op::Cld, 9, cabi::CV0, 8),
                    Instr::syscall(sys::EXIT),
                ],
            ),
            (
                "cap_store_load",
                vec![
                    Instr::li(A0, 64),
                    Instr::syscall(sys::MALLOC),
                    Instr::li(9, 4242),
                    Instr::mem(Op::Csd, 9, cabi::CV0, 16),
                    Instr::mem(Op::Cld, 10, cabi::CV0, 16),
                    Instr::r3(Op::Addu, A0, 10, 0),
                    Instr::syscall(sys::EXIT),
                ],
            ),
            (
                "clc_csc_round_trip",
                vec![
                    Instr::li(A0, 64),
                    Instr::syscall(sys::MALLOC),
                    Instr::mem(Op::Csc, cabi::CV0, cabi::CSP, -64),
                    Instr::mem(Op::Clc, 5, cabi::CSP, -64),
                    Instr::li(9, 9),
                    Instr::mem(Op::Csd, 9, 5, 0),
                    Instr::mem(Op::Cld, 10, 5, 0),
                    Instr::r3(Op::Addu, A0, 10, 0),
                    Instr::syscall(sys::EXIT),
                ],
            ),
            (
                "forged_cap_traps",
                vec![
                    Instr::li(A0, 64),
                    Instr::syscall(sys::MALLOC),
                    Instr::mem(Op::Csc, cabi::CV0, cabi::CSP, -64),
                    Instr::li(9, 0x4141),
                    Instr::mem(Op::Csd, 9, cabi::CSP, -64),
                    Instr::mem(Op::Clc, 5, cabi::CSP, -64),
                    Instr::mem(Op::Cld, 10, 5, 0),
                    Instr::syscall(sys::EXIT),
                ],
            ),
            (
                "cjalr_call_return",
                vec![
                    Instr::new(Op::CGetPcc, 5, 0, 0, 0),
                    Instr::li(8, 5 * 8),
                    Instr::cmod(Op::CSetOffset, 5, 5, 8),
                    Instr::new(Op::CJalr, 6, 5, 0, 0),
                    Instr::new(Op::J, 0, 0, 0, 7),
                    Instr::li(A0, 77),
                    Instr::new(Op::CJr, 0, 6, 0, 0),
                    Instr::syscall(sys::EXIT),
                ],
            ),
            (
                "null_guard",
                vec![
                    Instr::li(8, 0),
                    Instr::mem(Op::Ld, 9, 8, 16),
                    Instr::syscall(sys::EXIT),
                ],
            ),
            (
                "bad_free",
                vec![
                    Instr::li(A0, 0x1234),
                    Instr::syscall(sys::FREE),
                    Instr::syscall(sys::EXIT),
                ],
            ),
        ];
        let cap128 = VmConfig::functional().with_cap_format(CapFormat::Cap128);
        for (name, code) in programs {
            let a = run_prog(code.clone()).map(|(s, vm)| (s.code, vm.output_string()));
            let b = run_prog_with(code, cap128).map(|(s, vm)| (s.code, vm.output_string()));
            assert_eq!(a, b, "{name}: Cap128 diverged from Cap256");
        }
    }

    #[test]
    fn cap128_vm_tracks_compression_stats() {
        let code = vec![
            Instr::li(A0, 64),
            Instr::syscall(sys::MALLOC),
            Instr::mem(Op::Csc, cabi::CV0, cabi::CSP, -64),
            Instr::li(A0, 0),
            Instr::syscall(sys::EXIT),
        ];
        let cap128 = VmConfig::functional().with_cap_format(CapFormat::Cap128);
        let (s, _) = run_prog_with(code.clone(), cap128).unwrap();
        let comp = s.stats.compression.expect("Cap128 machines report stats");
        assert_eq!((comp.attempts, comp.successes), (1, 1));
        let (s, _) = run_prog(code).unwrap();
        assert!(s.stats.compression.is_none(), "Cap256 machines do not");
    }

    #[test]
    fn output_collects_text() {
        let code = vec![
            Instr::li(A0, 'h' as i32),
            Instr::syscall(sys::PUTCHAR),
            Instr::li(A0, 'i' as i32),
            Instr::syscall(sys::PUTCHAR),
            Instr::li(A0, 42),
            Instr::syscall(sys::PUTINT),
            Instr::li(A0, 0),
            Instr::syscall(sys::EXIT),
        ];
        let (_, vm) = run_prog(code).unwrap();
        assert_eq!(vm.output_string(), "hi42");
    }

    #[test]
    fn fuel_exhaustion_is_a_trap() {
        let mut p = Program::new();
        p.code = vec![Instr::new(Op::J, 0, 0, 0, 0)]; // spin
        let mut vm = Vm::new(p, VmConfig::functional());
        let err = vm.run(100).unwrap_err();
        assert_eq!(err.cause, TrapCause::OutOfFuel);
    }

    #[test]
    fn pc_escape_is_caught() {
        let code = vec![Instr::new(Op::J, 0, 0, 0, 1000)];
        let err = run_prog(code).unwrap_err();
        assert!(matches!(err.cause, TrapCause::PccBounds { .. }));
    }

    #[test]
    fn malloc_of_minus_one_returns_null() {
        // malloc((size_t)-1) must fail cleanly, not panic the host while
        // padding the request.
        for cfg in [
            VmConfig::functional(),
            VmConfig::functional().with_cap_format(CapFormat::Cap128),
        ] {
            let code = vec![
                Instr::li(A0, -1),
                Instr::syscall(sys::MALLOC),
                Instr::r3(Op::Addu, A0, V0, 0),
                Instr::syscall(sys::EXIT),
            ];
            let (s, vm) = run_prog_with(code, cfg).unwrap();
            assert_eq!(s.code, 0);
            assert!(vm.cap(cabi::CV0).is_null());
        }
    }

    #[test]
    fn free_of_garbage_traps() {
        let code = vec![
            Instr::li(A0, 0x1234),
            Instr::syscall(sys::FREE),
            Instr::syscall(sys::EXIT),
        ];
        let err = run_prog(code).unwrap_err();
        assert!(matches!(err.cause, TrapCause::Memory(_)));
    }

    #[test]
    fn stats_count_ops_and_cycles() {
        let (s, _) = run_prog(vec![
            Instr::li(A0, 1),
            Instr::li(A0, 2),
            Instr::syscall(sys::EXIT),
        ])
        .unwrap();
        assert_eq!(s.stats.instret, 3);
        assert_eq!(s.stats.op_count(Op::Li), 2);
        assert!(s.stats.cycles >= 3);
        assert_eq!(s.stats.capability_instructions(), 0);
    }

    /// Everything observable about a finished machine, for comparing the
    /// block dispatcher against single-stepping.
    fn fingerprint(vm: &Vm) -> (u64, u64, u64, Vec<u64>, Vec<u64>, String) {
        let s = vm.stats();
        let ops: Vec<u64> = Op::ALL.iter().map(|&o| s.op_count(o)).collect();
        let regs: Vec<u64> = (0..32).map(|r| vm.reg(r)).collect();
        (
            s.instret,
            s.cycles,
            s.fetch_checks,
            ops,
            regs,
            vm.output_string(),
        )
    }

    /// Replicates the pre-superinstruction `run` loop exactly.
    fn run_by_stepping(vm: &mut Vm, fuel: u64) -> Result<i64, VmTrap> {
        for _ in 0..fuel {
            if let Some(code) = vm.halted {
                return Ok(code);
            }
            vm.step()?;
        }
        if let Some(code) = vm.halted {
            return Ok(code);
        }
        Err(VmTrap {
            pc: vm.pc,
            cause: TrapCause::OutOfFuel,
        })
    }

    /// The tentpole warranty: block dispatch retires the same
    /// instructions, charges the same cycles, takes the same traps and
    /// counts the same per-op statistics as the per-instruction
    /// interpreter — including fuel exhaustion mid-block and traps
    /// mid-block, with and without the cache model.
    #[test]
    fn block_dispatch_is_bit_identical_to_single_stepping() {
        let sum_loop = vec![
            Instr::li(8, 0),
            Instr::li(9, 1),
            Instr::li(10, 1000),
            Instr::r3(Op::Addu, 8, 8, 9),
            Instr::i2(Op::Addiu, 9, 9, 1),
            Instr::r3(Op::Slt, 11, 10, 9),
            Instr::new(Op::Beq, 0, 11, 0, 3),
            Instr::r3(Op::Addu, A0, 8, 0),
            Instr::syscall(sys::EXIT),
        ];
        let call_return = vec![
            Instr::new(Op::CGetPcc, 5, 0, 0, 0),
            Instr::li(8, 5 * 8),
            Instr::cmod(Op::CSetOffset, 5, 5, 8),
            Instr::new(Op::CJalr, 6, 5, 0, 0),
            Instr::new(Op::J, 0, 0, 0, 7),
            Instr::li(A0, 77),
            Instr::new(Op::CJr, 0, 6, 0, 0),
            Instr::syscall(sys::EXIT),
        ];
        let trap_mid_block = vec![
            Instr::li(8, i32::MAX),
            Instr::i2(Op::Sll, 8, 8, 32),
            Instr::i2(Op::Addiu, 9, 9, 3),
            Instr::r3(Op::Add, 8, 8, 8), // overflows
            Instr::syscall(sys::EXIT),
        ];
        let memory_and_caps = vec![
            Instr::li(A0, 64),
            Instr::syscall(sys::MALLOC),
            Instr::li(9, 4242),
            Instr::mem(Op::Csd, 9, cabi::CV0, 16),
            Instr::mem(Op::Cld, 10, cabi::CV0, 16),
            Instr::mem(Op::Csc, cabi::CV0, cabi::CSP, -64),
            Instr::mem(Op::Clc, 5, cabi::CSP, -64),
            Instr::li(8, 0x8000),
            Instr::mem(Op::Sd, 10, 8, 0),
            Instr::mem(Op::Ld, 11, 8, 0),
            Instr::r3(Op::Addu, A0, 11, 0),
            Instr::syscall(sys::EXIT),
        ];
        let div_by_zero = vec![
            Instr::li(8, 1),
            Instr::li(9, 0),
            Instr::r3(Op::Div, 8, 8, 9),
            Instr::syscall(sys::EXIT),
        ];
        let spin = vec![Instr::i2(Op::Addiu, 8, 8, 1), Instr::new(Op::J, 0, 0, 0, 0)];
        let straight = {
            let mut v = vec![Instr::i2(Op::Addiu, 8, 8, 1); 100];
            v.push(Instr::syscall(sys::EXIT));
            v
        };
        let cases: Vec<(&str, Vec<Instr>, VmConfig, u64)> = vec![
            (
                "sum_loop",
                sum_loop.clone(),
                VmConfig::functional(),
                100_000,
            ),
            ("sum_loop_fpga", sum_loop, VmConfig::fpga(), 100_000),
            ("call_return", call_return, VmConfig::functional(), 100_000),
            (
                "trap_mid_block",
                trap_mid_block.clone(),
                VmConfig::functional(),
                100_000,
            ),
            (
                "trap_mid_block_fpga",
                trap_mid_block,
                VmConfig::fpga(),
                100_000,
            ),
            (
                "memory_and_caps",
                memory_and_caps.clone(),
                VmConfig::fpga(),
                100_000,
            ),
            (
                "memory_and_caps_128",
                memory_and_caps.clone(),
                VmConfig::fpga().with_cap_format(CapFormat::Cap128),
                100_000,
            ),
            (
                "memory_and_caps_16b_line",
                memory_and_caps.clone(),
                VmConfig::fpga().with_l1_line_bytes(16),
                100_000,
            ),
            (
                "memory_and_caps_128_16b_line",
                memory_and_caps,
                VmConfig::fpga()
                    .with_cap_format(CapFormat::Cap128)
                    .with_l1_line_bytes(16),
                100_000,
            ),
            ("div_by_zero", div_by_zero, VmConfig::functional(), 100_000),
            ("fuel_exhaustion", spin.clone(), VmConfig::functional(), 17),
            ("fuel_mid_block", straight, VmConfig::functional(), 50),
            ("fuel_zero", spin, VmConfig::functional(), 0),
        ];
        for (name, code, cfg, fuel) in cases {
            let mut p = Program::new();
            p.code = code;
            let mut blocked = Vm::new(p.clone(), cfg);
            let ra = blocked.run(fuel).map(|s| s.code);
            let mut stepped = Vm::new(p, cfg);
            let rb = run_by_stepping(&mut stepped, fuel);
            assert_eq!(ra, rb, "{name}: outcome diverged");
            assert_eq!(blocked.pc, stepped.pc, "{name}: final pc diverged");
            assert_eq!(
                fingerprint(&blocked),
                fingerprint(&stepped),
                "{name}: stats diverged"
            );
            if let Some(h) = &blocked.cache {
                // CacheStats equality covers the per-edge traffic ledger.
                assert_eq!(
                    h.stats(),
                    stepped.cache.as_ref().unwrap().stats(),
                    "{name}: cache stats diverged"
                );
            }
        }
    }

    #[test]
    fn zero_length_memcpy_charges_no_cache_access() {
        // memcpy(dst, src, 0) must not touch the cache model at all.
        let code = vec![
            Instr::li(cheri_isa::A0, 0x8000),
            Instr::li(cheri_isa::A1, 0x9000),
            Instr::li(cheri_isa::A2, 0),
            Instr::syscall(sys::MEMCPY),
            Instr::li(cheri_isa::A0, 0),
            Instr::syscall(sys::EXIT),
        ];
        let (s, _) = run_prog_with(code, VmConfig::fpga()).unwrap();
        let cache = s.stats.cache.expect("fpga config has a cache model");
        assert_eq!(cache.l1_hits + cache.l1_misses, 0);
        assert_eq!(cache.cycles, 0);
    }

    #[test]
    fn traffic_ledger_reaches_vm_stats() {
        // A cold load drags one L2 line from DRAM and one L1 line from L2;
        // the per-edge ledger must surface through VmStats.
        let code = vec![
            Instr::li(8, 0x8000),
            Instr::mem(Op::Ld, 9, 8, 0),
            Instr::li(A0, 0),
            Instr::syscall(sys::EXIT),
        ];
        let (s, _) = run_prog_with(code, VmConfig::fpga()).unwrap();
        let cache = s.stats.cache.expect("fpga config has a cache model");
        let cfg = VmConfig::fpga().cache.unwrap();
        assert_eq!(cache.traffic.l2_dram.fill_bytes, cfg.l2.line_bytes);
        assert_eq!(cache.traffic.l1_l2.fill_bytes, cfg.l1.line_bytes);
        assert_eq!(cache.traffic.l2_dram.writeback_bytes, 0);
    }

    #[test]
    fn narrow_l1_line_halves_cap128_store_traffic() {
        // One CSC on a cold line: with 16-byte L1 lines a 16-byte Cap128
        // store fills one line where the 32-byte Cap256 store fills two —
        // the line-granularity rounding the bandwidth model removes.
        let code = vec![
            Instr::mem(Op::Csc, cabi::CSP, cabi::CSP, -64),
            Instr::li(A0, 0),
            Instr::syscall(sys::EXIT),
        ];
        let fills = |format: CapFormat| {
            let cfg = VmConfig::fpga()
                .with_cap_format(format)
                .with_l1_line_bytes(16);
            let (s, _) = run_prog_with(code.clone(), cfg).unwrap();
            s.stats.cache.unwrap().traffic.l1_l2.fill_bytes
        };
        let wide = fills(CapFormat::Cap256);
        let narrow = fills(CapFormat::Cap128);
        assert_eq!(wide - narrow, 16, "Cap128 spills one fewer 16-byte line");
    }

    #[test]
    fn cache_model_charges_more_for_cold_misses() {
        let mut p = Program::new();
        p.code = vec![
            Instr::li(8, 0x8000),
            Instr::mem(Op::Ld, 9, 8, 0),
            Instr::li(A0, 0),
            Instr::syscall(sys::EXIT),
        ];
        let mut cold = Vm::new(p.clone(), VmConfig::fpga());
        let cold_cycles = cold.run(100).unwrap().stats.cycles;
        let mut flat = Vm::new(p, VmConfig::functional());
        let flat_cycles = flat.run(100).unwrap().stats.cycles;
        assert!(cold_cycles > flat_cycles);
    }
}
