//! A minimal x86-64 assembler and the per-block code generator.
//!
//! [`emit_block`] lowers one straight-line block of [`FlatOp`] micro-ops
//! to System-V x86-64 machine code with the ABI described in
//! [`super::jit`]: `fn(regs: *mut u64, vm: *mut Vm, ctx: *mut TrapCtx) ->
//! u64` where the return value is the next pc, or [`super::jit::SENTINEL`]
//! with the trap parked in `ctx`. Guest registers live in the `regs`
//! array; reads of `r0` materialize zero and writes to it are skipped at
//! emit time, mirroring `Vm::reg`/`Vm::set_reg`.
//!
//! Two prologue shapes are emitted. A block with no trampolined op keeps
//! the incoming argument registers live (`rdi` = guest register file,
//! `rdx` = trap context) and clobbers only caller-saved scratch — the hot
//! ALU/branch loop bodies pay no stack traffic at all. A block that calls
//! the interpreter shim pins the three pointers in callee-saved `r12`
//! (regs), `r13` (vm) and `r14` (ctx) so they survive the calls.
//!
//! Everything here writes plain bytes into a `Vec<u8>`; nothing in this
//! module is `unsafe`. Making the bytes executable (and calling them) is
//! [`super::jit`]'s job.

use crate::ir::FlatOp;

// Register numbers (the low 3 bits of modrm/SIB fields; bit 3 goes in
// the REX prefix).
const RAX: u8 = 0;
const RCX: u8 = 1;
const RDX: u8 = 2;
const RSI: u8 = 6;
const RDI: u8 = 7;
const R11: u8 = 11;
const R12: u8 = 12;
const R13: u8 = 13;
const R14: u8 = 14;

// Condition codes (the low nibble of `0F 9x` setcc / `0F 4x` cmovcc /
// `0F 8x` jcc).
const CC_NO: u8 = 0x1;
const CC_B: u8 = 0x2;
const CC_E: u8 = 0x4;
const CC_NE: u8 = 0x5;
const CC_L: u8 = 0xC;
const CC_GE: u8 = 0xD;
const CC_LE: u8 = 0xE;
const CC_G: u8 = 0xF;

// `81 /ext` ALU immediate-form extensions and the matching `r/m64, r64`
// opcodes.
const EXT_ADD: u8 = 0;
const EXT_OR: u8 = 1;
const EXT_AND: u8 = 4;
const EXT_XOR: u8 = 6;
const EXT_CMP: u8 = 7;
const OP_ADD: u8 = 0x01;
const OP_OR: u8 = 0x09;
const OP_AND: u8 = 0x21;
const OP_SUB: u8 = 0x29;
const OP_XOR: u8 = 0x31;
const OP_CMP: u8 = 0x39;
const OP_TEST: u8 = 0x85;

// `C1`/`D3 /ext` shift extensions.
const SH_SHL: u8 = 4;
const SH_SHR: u8 = 5;
const SH_SAR: u8 = 7;

/// Byte buffer plus the fixup list for forward jumps to the epilogue.
struct Asm {
    buf: Vec<u8>,
    /// Offsets of 4-byte rel32 placeholders that must land on the
    /// epilogue.
    epi_fixups: Vec<usize>,
}

impl Asm {
    fn new() -> Asm {
        Asm {
            buf: Vec::with_capacity(128),
            epi_fixups: Vec::new(),
        }
    }

    fn imm32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn imm64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// REX.W prefix with the R (modrm reg) and B (modrm rm / opcode reg)
    /// extension bits.
    fn rex(&mut self, reg: u8, rm: u8) {
        self.buf
            .push(0x48 | (u8::from(reg >= 8) << 2) | u8::from(rm >= 8));
    }

    /// modrm byte for a register-direct (mode 11) operand.
    fn modrm_rr(&mut self, reg: u8, rm: u8) {
        self.buf.push(0xC0 | ((reg & 7) << 3) | (rm & 7));
    }

    /// modrm (+SIB) + displacement for a `[base + disp]` operand.
    fn modrm_mem(&mut self, reg: u8, base: u8, disp: i32) {
        let short = (-128..=127).contains(&disp);
        let mode = if short { 0x40 } else { 0x80 };
        self.buf.push(mode | ((reg & 7) << 3) | (base & 7));
        if base & 7 == 4 {
            // rsp/r12 as base needs a SIB byte (index = none).
            self.buf.push(0x24);
        }
        if short {
            self.buf.push(disp as u8);
        } else {
            self.imm32(disp);
        }
    }

    /// `mov dst, qword [base + disp]`
    fn load(&mut self, dst: u8, base: u8, disp: i32) {
        self.rex(dst, base);
        self.buf.push(0x8B);
        self.modrm_mem(dst, base, disp);
    }

    /// `mov qword [base + disp], src`
    fn store(&mut self, base: u8, disp: i32, src: u8) {
        self.rex(src, base);
        self.buf.push(0x89);
        self.modrm_mem(src, base, disp);
    }

    /// `mov qword [base + disp], imm32` (sign-extended)
    fn store_imm32(&mut self, base: u8, disp: i32, v: i32) {
        self.rex(0, base);
        self.buf.push(0xC7);
        self.modrm_mem(0, base, disp);
        self.imm32(v);
    }

    /// `mov dst, src`
    fn mov_rr(&mut self, dst: u8, src: u8) {
        self.rex(src, dst);
        self.buf.push(0x89);
        self.modrm_rr(src, dst);
    }

    /// `mov dst, imm` in the shortest encoding. Never touches FLAGS, so
    /// it is safe between a compare and its cmov.
    fn mov_imm(&mut self, dst: u8, v: u64) {
        if u32::try_from(v).is_ok() {
            // mov r32, imm32 zero-extends.
            if dst >= 8 {
                self.buf.push(0x41);
            }
            self.buf.push(0xB8 + (dst & 7));
            self.imm32(v as u32 as i32);
        } else if let Ok(s) = i32::try_from(v as i64) {
            // mov r/m64, imm32 sign-extends.
            self.rex(0, dst);
            self.buf.push(0xC7);
            self.modrm_rr(0, dst);
            self.imm32(s);
        } else {
            // movabs r64, imm64.
            self.buf.push(0x48 | u8::from(dst >= 8));
            self.buf.push(0xB8 + (dst & 7));
            self.imm64(v);
        }
    }

    /// `op dst, src` for the `r/m64, r64` ALU opcodes ([`OP_ADD`]…).
    fn alu_rr(&mut self, opcode: u8, dst: u8, src: u8) {
        self.rex(src, dst);
        self.buf.push(opcode);
        self.modrm_rr(src, dst);
    }

    /// `op dst, imm32` via `81/83 /ext` (imm always sign-extended to 64
    /// bits, which reproduces the operand exactly whenever it fits i32).
    fn alu_imm(&mut self, ext: u8, dst: u8, v: i32) {
        self.rex(0, dst);
        if (-128..=127).contains(&v) {
            self.buf.push(0x83);
            self.modrm_rr(ext, dst);
            self.buf.push(v as u8);
        } else {
            self.buf.push(0x81);
            self.modrm_rr(ext, dst);
            self.imm32(v);
        }
    }

    /// `imul dst, src` (64-bit low half — exactly `wrapping_mul`).
    fn imul(&mut self, dst: u8, src: u8) {
        self.rex(dst, src);
        self.buf.extend_from_slice(&[0x0F, 0xAF]);
        self.modrm_rr(dst, src);
    }

    /// `not dst`
    fn not(&mut self, dst: u8) {
        self.rex(0, dst);
        self.buf.push(0xF7);
        self.modrm_rr(2, dst);
    }

    /// `shl/shr/sar dst, cl` (count masked to 63 by hardware, matching
    /// the interpreter's `& 63`).
    fn shift_cl(&mut self, ext: u8, dst: u8) {
        self.rex(0, dst);
        self.buf.push(0xD3);
        self.modrm_rr(ext, dst);
    }

    /// `shl/shr/sar dst, imm8`
    fn shift_imm(&mut self, ext: u8, dst: u8, n: u8) {
        self.rex(0, dst);
        self.buf.push(0xC1);
        self.modrm_rr(ext, dst);
        self.buf.push(n & 63);
    }

    /// `setcc dst` — `dst` must be rax or rcx (al/cl need no REX).
    fn setcc(&mut self, cc: u8, dst: u8) {
        debug_assert!(dst <= RCX);
        self.buf.extend_from_slice(&[0x0F, 0x90 + cc]);
        self.modrm_rr(0, dst);
    }

    /// `movzx dst, src8` — `src` must be rax or rcx.
    fn movzx8(&mut self, dst: u8, src: u8) {
        debug_assert!(src <= RCX);
        self.rex(dst, src);
        self.buf.extend_from_slice(&[0x0F, 0xB6]);
        self.modrm_rr(dst, src);
    }

    /// `cmovcc dst, src`
    fn cmov(&mut self, cc: u8, dst: u8, src: u8) {
        self.rex(dst, src);
        self.buf.extend_from_slice(&[0x0F, 0x40 + cc]);
        self.modrm_rr(dst, src);
    }

    fn push(&mut self, r: u8) {
        if r >= 8 {
            self.buf.push(0x41);
        }
        self.buf.push(0x50 + (r & 7));
    }

    fn pop(&mut self, r: u8) {
        if r >= 8 {
            self.buf.push(0x41);
        }
        self.buf.push(0x58 + (r & 7));
    }

    /// `call r`
    fn call(&mut self, r: u8) {
        if r >= 8 {
            self.buf.push(0x41);
        }
        self.buf.push(0xFF);
        self.modrm_rr(2, r);
    }

    fn ret(&mut self) {
        self.buf.push(0xC3);
    }

    /// `jcc rel32` with the target patched later; returns the placeholder
    /// offset.
    fn jcc_local(&mut self, cc: u8) -> usize {
        self.buf.extend_from_slice(&[0x0F, 0x80 + cc]);
        let pos = self.buf.len();
        self.imm32(0);
        pos
    }

    /// `jcc rel32` to the (not yet emitted) epilogue.
    fn jcc_epilogue(&mut self, cc: u8) {
        let pos = self.jcc_local(cc);
        self.epi_fixups.push(pos);
    }

    /// `jmp rel32` to the epilogue.
    fn jmp_epilogue(&mut self) {
        self.buf.push(0xE9);
        let pos = self.buf.len();
        self.imm32(0);
        self.epi_fixups.push(pos);
    }

    /// Points the rel32 placeholder at `pos` to the current position.
    fn patch_here(&mut self, pos: usize) {
        let rel = (self.buf.len() - (pos + 4)) as i32;
        self.buf[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
    }
}

/// Does this op go through the interpreter shim instead of inline code?
/// The list of inline ops mirrors the template tier's `bind()` exactly,
/// minus loads/stores and division (which bind to handlers there but
/// trampoline here so the memory system and two-cause trap logic stay
/// single-sourced).
pub(super) fn trampolined(op: &FlatOp) -> bool {
    !matches!(
        op,
        FlatOp::Nop
            | FlatOp::Add { .. }
            | FlatOp::Sub { .. }
            | FlatOp::Addi { .. }
            | FlatOp::Addu { .. }
            | FlatOp::Subu { .. }
            | FlatOp::And { .. }
            | FlatOp::Or { .. }
            | FlatOp::Xor { .. }
            | FlatOp::Nor { .. }
            | FlatOp::Slt { .. }
            | FlatOp::Sltu { .. }
            | FlatOp::Sllv { .. }
            | FlatOp::Srlv { .. }
            | FlatOp::Srav { .. }
            | FlatOp::Mul { .. }
            | FlatOp::Addiu { .. }
            | FlatOp::Andi { .. }
            | FlatOp::Ori { .. }
            | FlatOp::Xori { .. }
            | FlatOp::Slti { .. }
            | FlatOp::Sltiu { .. }
            | FlatOp::Li { .. }
            | FlatOp::Sll { .. }
            | FlatOp::Srl { .. }
            | FlatOp::Sra { .. }
            | FlatOp::Beq { .. }
            | FlatOp::Bne { .. }
            | FlatOp::Blez { .. }
            | FlatOp::Bgtz { .. }
            | FlatOp::Bltz { .. }
            | FlatOp::Bgez { .. }
            | FlatOp::J { .. }
            | FlatOp::Jal { .. }
            | FlatOp::Jr { .. }
            | FlatOp::Jalr { .. }
            | FlatOp::FusedCmpBranch { .. }
    )
}

/// Ops that leave the next pc in `rax` themselves (control transfers and
/// shim calls); everything else falls through and, when terminal, needs
/// `rax = pc + 1` materialized.
fn sets_next(op: &FlatOp) -> bool {
    trampolined(op)
        || matches!(
            op,
            FlatOp::Beq { .. }
                | FlatOp::Bne { .. }
                | FlatOp::Blez { .. }
                | FlatOp::Bgtz { .. }
                | FlatOp::Bltz { .. }
                | FlatOp::Bgez { .. }
                | FlatOp::J { .. }
                | FlatOp::Jal { .. }
                | FlatOp::Jr { .. }
                | FlatOp::Jalr { .. }
                | FlatOp::FusedCmpBranch { .. }
        )
}

/// Emit-time environment: where the pinned pointers live for this block
/// shape, plus the shim address for trampolined ops.
struct Env {
    /// Guest register file base (`rdi`, or `r12` when pinned).
    regs: u8,
    /// Trap context pointer (`rdx`, or `r14` when pinned).
    ctx: u8,
    /// `Some((vm_reg, shim_addr))` in pinned blocks.
    shim: Option<(u8, usize)>,
}

/// `dst = guest reg r` — reads of r0 materialize zero (clobbers FLAGS).
fn ld(a: &mut Asm, e: &Env, dst: u8, r: u8) {
    if r == 0 {
        a.alu_rr(OP_XOR, dst, dst);
    } else {
        a.load(dst, e.regs, i32::from(r) * 8);
    }
}

/// `guest reg r = src` — writes to r0 are dropped at emit time.
fn st(a: &mut Asm, e: &Env, r: u8, src: u8) {
    if r != 0 {
        a.store(e.regs, i32::from(r) * 8, src);
    }
}

/// `op rax, imm` picking the imm32 form when the value survives the
/// sign-extension round trip, else materializing through rcx.
fn alu_rax_imm(a: &mut Asm, opcode: u8, ext: u8, v: u64) {
    if let Ok(s) = i32::try_from(v as i64) {
        a.alu_imm(ext, RAX, s);
    } else {
        a.mov_imm(RCX, v);
        a.alu_rr(opcode, RAX, RCX);
    }
}

/// `rd = (rs <cc> rt) ? 1 : 0` for the compare family.
fn cmp_set(a: &mut Asm, e: &Env, cc: u8, rd: u8, rs: u8, rt: u8) {
    ld(a, e, RAX, rs);
    ld(a, e, RCX, rt);
    a.alu_rr(OP_CMP, RAX, RCX);
    a.setcc(cc, RAX);
    a.movzx8(RAX, RAX);
    st(a, e, rd, RAX);
}

/// `rax = cc ? target : fall` off already-latched FLAGS.
fn pick_next(a: &mut Asm, cc: u8, target: u64, fall: u64) {
    a.mov_imm(RAX, fall);
    a.mov_imm(RCX, target);
    a.cmov(cc, RAX, RCX);
}

/// The overflow check after a trapping add/sub: on OF, park
/// `(pc, IntegerOverflow)` in the trap context and return the sentinel.
fn trap_on_overflow(a: &mut Asm, e: &Env, pc: u64) {
    let ok = a.jcc_local(CC_NO);
    a.mov_imm(RCX, pc);
    a.store(e.ctx, 0, RCX); // ctx.trap_pc
    a.store_imm32(e.ctx, 8, 1); // ctx.inline_cause = overflow
    a.mov_imm(RAX, u64::MAX); // SENTINEL
    a.jmp_epilogue();
    a.patch_here(ok);
}

/// Call the interpreter shim for one trampolined op. On a mid-block op
/// the sentinel return short-circuits to the epilogue; a terminal op's
/// return value (next pc or sentinel) falls through as the block result.
fn call_shim(a: &mut Asm, e: &Env, op: &FlatOp, pc: u64, last: bool) {
    let (vm, shim) = e.shim.expect("trampolined op outside a pinned block");
    a.mov_rr(RDI, vm);
    a.mov_imm(RSI, op as *const FlatOp as u64);
    a.mov_imm(RDX, pc);
    a.mov_rr(RCX, e.ctx);
    a.mov_imm(R11, shim as u64);
    a.call(R11);
    if !last {
        a.alu_imm(EXT_CMP, RAX, -1);
        a.jcc_epilogue(CC_E);
    }
}

fn emit_op(a: &mut Asm, e: &Env, op: &FlatOp, pc: u64, last: bool) {
    use FlatOp::*;
    match *op {
        Nop => {}
        Addu { rd, rs, rt } => bin(a, e, OP_ADD, rd, rs, rt),
        Subu { rd, rs, rt } => bin(a, e, OP_SUB, rd, rs, rt),
        And { rd, rs, rt } => bin(a, e, OP_AND, rd, rs, rt),
        Or { rd, rs, rt } => bin(a, e, OP_OR, rd, rs, rt),
        Xor { rd, rs, rt } => bin(a, e, OP_XOR, rd, rs, rt),
        Nor { rd, rs, rt } => {
            ld(a, e, RAX, rs);
            ld(a, e, RCX, rt);
            a.alu_rr(OP_OR, RAX, RCX);
            a.not(RAX);
            st(a, e, rd, RAX);
        }
        Slt { rd, rs, rt } => cmp_set(a, e, CC_L, rd, rs, rt),
        Sltu { rd, rs, rt } => cmp_set(a, e, CC_B, rd, rs, rt),
        Sllv { rd, rs, rt } => shift_var(a, e, SH_SHL, rd, rs, rt),
        Srlv { rd, rs, rt } => shift_var(a, e, SH_SHR, rd, rs, rt),
        Srav { rd, rs, rt } => shift_var(a, e, SH_SAR, rd, rs, rt),
        Mul { rd, rs, rt } => {
            ld(a, e, RAX, rs);
            ld(a, e, RCX, rt);
            a.imul(RAX, RCX);
            st(a, e, rd, RAX);
        }
        Add { rd, rs, rt } => {
            ld(a, e, RAX, rs);
            ld(a, e, RCX, rt);
            a.alu_rr(OP_ADD, RAX, RCX);
            trap_on_overflow(a, e, pc);
            st(a, e, rd, RAX);
        }
        Sub { rd, rs, rt } => {
            ld(a, e, RAX, rs);
            ld(a, e, RCX, rt);
            a.alu_rr(OP_SUB, RAX, RCX);
            trap_on_overflow(a, e, pc);
            st(a, e, rd, RAX);
        }
        Addi { rd, rs, imm } => {
            ld(a, e, RAX, rs);
            alu_rax_imm(a, OP_ADD, EXT_ADD, imm as u64);
            trap_on_overflow(a, e, pc);
            st(a, e, rd, RAX);
        }
        Addiu { rd, rs, imm } => imm_alu(a, e, OP_ADD, EXT_ADD, rd, rs, imm),
        Andi { rd, rs, imm } => imm_alu(a, e, OP_AND, EXT_AND, rd, rs, imm),
        Ori { rd, rs, imm } => imm_alu(a, e, OP_OR, EXT_OR, rd, rs, imm),
        Xori { rd, rs, imm } => imm_alu(a, e, OP_XOR, EXT_XOR, rd, rs, imm),
        Slti { rd, rs, imm } => {
            ld(a, e, RAX, rs);
            alu_rax_imm(a, OP_CMP, EXT_CMP, imm as u64);
            a.setcc(CC_L, RAX);
            a.movzx8(RAX, RAX);
            st(a, e, rd, RAX);
        }
        Sltiu { rd, rs, imm } => {
            ld(a, e, RAX, rs);
            alu_rax_imm(a, OP_CMP, EXT_CMP, imm);
            a.setcc(CC_B, RAX);
            a.movzx8(RAX, RAX);
            st(a, e, rd, RAX);
        }
        Li { rd, v } => {
            if rd != 0 {
                a.mov_imm(RAX, v);
                st(a, e, rd, RAX);
            }
        }
        Sll { rd, rs, sh } => shift_const(a, e, SH_SHL, rd, rs, sh),
        Srl { rd, rs, sh } => shift_const(a, e, SH_SHR, rd, rs, sh),
        Sra { rd, rs, sh } => shift_const(a, e, SH_SAR, rd, rs, sh),
        Beq { rs, rt, target } => reg_branch(a, e, CC_E, rs, rt, target, pc),
        Bne { rs, rt, target } => reg_branch(a, e, CC_NE, rs, rt, target, pc),
        Blez { rs, target } => zero_branch(a, e, CC_LE, rs, target, pc),
        Bgtz { rs, target } => zero_branch(a, e, CC_G, rs, target, pc),
        Bltz { rs, target } => zero_branch(a, e, CC_L, rs, target, pc),
        Bgez { rs, target } => zero_branch(a, e, CC_GE, rs, target, pc),
        J { target } => a.mov_imm(RAX, target),
        Jal { target } => {
            a.mov_imm(RCX, pc + 1);
            st(a, e, cheri_isa::RA, RCX);
            a.mov_imm(RAX, target);
        }
        Jr { rs } => ld(a, e, RAX, rs),
        Jalr { rd, rs } => {
            // Read the target before writing the link: `jalr r, r` must
            // jump to the register's old value.
            ld(a, e, RAX, rs);
            a.mov_imm(RCX, pc + 1);
            st(a, e, rd, RCX);
        }
        FusedCmpBranch {
            rd,
            rs,
            rt,
            imm,
            signed,
            imm_form,
            branch_if,
            target,
        } => {
            ld(a, e, RAX, rs);
            if imm_form {
                alu_rax_imm(a, OP_CMP, EXT_CMP, imm as u64);
            } else {
                ld(a, e, RCX, rt);
                a.alu_rr(OP_CMP, RAX, RCX);
            }
            a.setcc(if signed { CC_L } else { CC_B }, RAX);
            a.movzx8(RAX, RAX);
            st(a, e, rd, RAX);
            a.alu_rr(OP_TEST, RAX, RAX);
            // The fused pair covers two source instructions: fall = pc+2.
            pick_next(a, if branch_if { CC_NE } else { CC_E }, target, pc + 2);
        }
        // Division, loads/stores, capability ops, syscalls and the rest
        // of the long tail: one interpreter round trip.
        _ => call_shim(a, e, op, pc, last),
    }
    if last && !sets_next(op) {
        a.mov_imm(RAX, pc + 1);
    }
}

/// `rd = rs <op> rt` for the wrapping/logical register ALU family.
fn bin(a: &mut Asm, e: &Env, opcode: u8, rd: u8, rs: u8, rt: u8) {
    ld(a, e, RAX, rs);
    ld(a, e, RCX, rt);
    a.alu_rr(opcode, RAX, RCX);
    st(a, e, rd, RAX);
}

/// `rd = rs <op> imm` for the immediate ALU family.
fn imm_alu(a: &mut Asm, e: &Env, opcode: u8, ext: u8, rd: u8, rs: u8, imm: u64) {
    ld(a, e, RAX, rs);
    alu_rax_imm(a, opcode, ext, imm);
    st(a, e, rd, RAX);
}

/// `rd = rs <shift> (rt & 63)` — the hardware masks cl to 6 bits for
/// 64-bit shifts, exactly the interpreter's semantics.
fn shift_var(a: &mut Asm, e: &Env, ext: u8, rd: u8, rs: u8, rt: u8) {
    ld(a, e, RAX, rs);
    ld(a, e, RCX, rt);
    a.shift_cl(ext, RAX);
    st(a, e, rd, RAX);
}

/// `rd = rs <shift> sh` with a constant count.
fn shift_const(a: &mut Asm, e: &Env, ext: u8, rd: u8, rs: u8, sh: u32) {
    ld(a, e, RAX, rs);
    a.shift_imm(ext, RAX, sh as u8);
    st(a, e, rd, RAX);
}

/// Two-register conditional branch terminal.
fn reg_branch(a: &mut Asm, e: &Env, cc: u8, rs: u8, rt: u8, target: u64, pc: u64) {
    ld(a, e, RAX, rs);
    ld(a, e, RCX, rt);
    a.alu_rr(OP_CMP, RAX, RCX);
    pick_next(a, cc, target, pc + 1);
}

/// Compare-against-zero conditional branch terminal.
fn zero_branch(a: &mut Asm, e: &Env, cc: u8, rs: u8, target: u64, pc: u64) {
    ld(a, e, RAX, rs);
    a.alu_imm(EXT_CMP, RAX, 0);
    pick_next(a, cc, target, pc + 1);
}

/// Lowers one block to machine code. `ops` must be the final (stable)
/// storage of the micro-ops: trampolined ops embed their element's
/// address into the emitted code. `shim` is the address of
/// [`super::jit::flat_shim`].
pub(super) fn emit_block(ops: &[FlatOp], start: u64, shim: usize) -> Vec<u8> {
    let pinned = ops.iter().any(trampolined);
    let mut a = Asm::new();
    let e = if pinned {
        // Calls clobber the argument registers, so park the three
        // pointers in callee-saved registers. Three pushes also restore
        // the 16-byte stack alignment the SysV ABI requires at each call.
        a.push(R12);
        a.push(R13);
        a.push(R14);
        a.mov_rr(R12, RDI);
        a.mov_rr(R13, RSI);
        a.mov_rr(R14, RDX);
        Env {
            regs: R12,
            ctx: R14,
            shim: Some((R13, shim)),
        }
    } else {
        Env {
            regs: RDI,
            ctx: RDX,
            shim: None,
        }
    };
    let n = ops.len();
    for (i, op) in ops.iter().enumerate() {
        emit_op(&mut a, &e, op, start + i as u64, i + 1 == n);
    }
    // Epilogue: every early-out lands here with the result in rax.
    let epi_fixups = std::mem::take(&mut a.epi_fixups);
    for pos in epi_fixups {
        a.patch_here(pos);
    }
    if pinned {
        a.pop(R14);
        a.pop(R13);
        a.pop(R12);
    }
    a.ret();
    a.buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trampoline_classification_matches_the_template_tier() {
        // Inline: the whole integer ALU/branch matrix `bind()` binds.
        assert!(!trampolined(&FlatOp::Addu {
            rd: 1,
            rs: 2,
            rt: 3
        }));
        assert!(!trampolined(&FlatOp::Li { rd: 1, v: 7 }));
        assert!(!trampolined(&FlatOp::J { target: 3 }));
        // Trampolined: division and memory ops (bound in the template
        // tier, interpreted here) plus the `Other` long tail.
        assert!(trampolined(&FlatOp::Div {
            rd: 1,
            rs: 2,
            rt: 3
        }));
        assert!(trampolined(&FlatOp::Load {
            rd: 1,
            base: 2,
            off: 0,
            width: 8,
            signed: false,
            via_cap: false,
        }));
    }

    #[test]
    fn pure_blocks_have_no_prologue_and_end_in_ret() {
        let code = emit_block(&[FlatOp::Li { rd: 8, v: 42 }], 0, 0);
        // mov eax, 42; mov [rdi+64], rax; mov eax, 1; ret
        assert_eq!(code.first(), Some(&0xB8), "starts with mov eax, imm32");
        assert_eq!(code.last(), Some(&0xC3), "ends with ret");
        assert!(!code.starts_with(&[0x41, 0x54]), "no push r12 prologue");
    }

    #[test]
    fn shim_blocks_pin_callee_saved_registers() {
        let code = emit_block(
            &[FlatOp::Div {
                rd: 1,
                rs: 2,
                rt: 3,
            }],
            0,
            0x1000,
        );
        assert!(code.starts_with(&[0x41, 0x54, 0x41, 0x55, 0x41, 0x56]));
        assert_eq!(code.last(), Some(&0xC3));
    }
}
