//! The executable-memory allocator and the native block body.
//!
//! # ABI
//!
//! Every emitted block body is an `extern "C"` function
//!
//! ```text
//! fn(regs: *mut u64, vm: *mut Vm, ctx: *mut TrapCtx) -> u64
//! ```
//!
//! returning the next pc after the terminal, or [`SENTINEL`] after a trap
//! with the trapping pc and cause parked in `ctx`. Inline code touches
//! only the guest register file through `regs`; trampolined ops call
//! [`flat_shim`], which reconstitutes `&mut Vm` and runs the single
//! interpreter arm (`exec_flat`) every other backend shares.
//!
//! # W^X lifecycle
//!
//! [`CodeBuf`] bump-allocates blocks into dual-mapped chunks: each chunk
//! is an anonymous `memfd` mapped twice, once `PROT_READ|PROT_WRITE` (the
//! write view the assembler copies finished blocks into) and once
//! `PROT_READ|PROT_EXEC` (the execute view block bodies run from). No
//! mapping is ever writable and executable at once, and neither view's
//! protections ever change — W^X holds with zero syscalls per compiled
//! block, which is what keeps engine boot cheap enough for per-request
//! sandbox VMs (protection flipping costs a page-table update per block
//! on every boot). Cloning an engine (VM snapshot/fork) *seals* the
//! buffer: the original retires its current chunk and opens a fresh one
//! for future blocks, so bytes a clone may be executing on another thread
//! are never rewritten. Chunks are reference-counted by the bodies
//! compiled into them; when the last body drops — and with it the last
//! pointer into the chunk — the chunk is parked in a small process-wide
//! pool for the next engine, or unmapped when the pool is full.

use super::emit;
use crate::backend::BlockRepr;
use crate::ir::FlatOp;
use crate::machine::Vm;
use crate::trap::TrapCause;
use std::arch::asm;
use std::fmt;
use std::sync::{Arc, Mutex};

/// The "this block trapped" return value. Never a valid pc: pcs are
/// indices into the decoded code image.
pub(super) const SENTINEL: u64 = u64::MAX;

/// `TrapCtx::inline_cause` value for an inline overflow trap (the only
/// trap emitted code raises without going through the shim).
const INLINE_OVERFLOW: u64 = 1;

/// x86-64 Linux page size. Fixed (not queried): 4 KiB is the only base
/// page size the architecture's mmap grants on this platform.
const PAGE: usize = 4096;

/// Default chunk size; blocks are a few hundred bytes, so one chunk
/// serves a whole program in the common case.
const CHUNK_BYTES: usize = 256 * 1024;

/// Trap-exit scratch shared between emitted code, the shim and
/// [`NativeBody::exec`]. `#[repr(C)]` because emitted code stores to the
/// first two fields by byte offset (0 and 8).
#[repr(C)]
#[derive(Default)]
struct TrapCtx {
    trap_pc: u64,
    /// Non-zero when inline code raised the trap ([`INLINE_OVERFLOW`]);
    /// zero when `cause` was filled in by the shim.
    inline_cause: u64,
    cause: Option<TrapCause>,
}

type BlockFn = unsafe extern "C" fn(*mut u64, *mut Vm, *mut TrapCtx) -> u64;

// ---------------------------------------------------------------------
// Raw mapping syscalls. Written directly against the x86-64 Linux
// syscall ABI so the crate stays dependency-free.
// ---------------------------------------------------------------------

const PROT_READ: usize = 1;
const PROT_WRITE: usize = 2;
const PROT_EXEC: usize = 4;
const MAP_SHARED: usize = 0x01;
const MFD_CLOEXEC: usize = 1;
const SYS_CLOSE: usize = 3;
const SYS_MMAP: usize = 9;
const SYS_MUNMAP: usize = 11;
const SYS_FTRUNCATE: usize = 77;
const SYS_MEMFD_CREATE: usize = 319;

/// `mmap(NULL, len, prot, MAP_SHARED, fd, 0)` — one view of a memfd.
///
/// # Safety
///
/// `fd` must be a live memfd of at least `len` bytes. The returned
/// pointer carries no lifetime — the caller owns the view and must pair
/// it with [`munmap`].
unsafe fn mmap_fd(len: usize, prot: usize, fd: isize) -> *mut u8 {
    let ret: isize;
    // SAFETY: correct x86-64 Linux syscall clobber set (rcx/r11); mmap
    // reads no memory through its arguments.
    unsafe {
        asm!(
            "syscall",
            inlateout("rax") SYS_MMAP as isize => ret,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") prot,
            in("r10") MAP_SHARED,
            in("r8") fd,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    assert!(ret > 0, "mmap for JIT code buffer failed: errno {}", -ret);
    ret as *mut u8
}

/// Creates a `len`-byte chunk backing and maps it twice: a read+write
/// view for the assembler and a read+execute view for execution. The
/// backing memfd is closed before returning (the mappings keep the pages
/// alive), so no file descriptor outlives this call.
fn map_dual_views(len: usize) -> (*mut u8, *mut u8) {
    let fd: isize;
    // SAFETY: memfd_create reads the name as a NUL-terminated string; the
    // literal below is NUL-terminated and outlives the call. Correct
    // syscall clobber set.
    unsafe {
        asm!(
            "syscall",
            inlateout("rax") SYS_MEMFD_CREATE as isize => fd,
            in("rdi") c"cheri-jit".as_ptr(),
            in("rsi") MFD_CLOEXEC,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    assert!(
        fd >= 0,
        "memfd_create for JIT code buffer failed: errno {}",
        -fd
    );
    let ret: isize;
    // SAFETY: sizes the fresh memfd; correct clobber set.
    unsafe {
        asm!(
            "syscall",
            inlateout("rax") SYS_FTRUNCATE as isize => ret,
            in("rdi") fd,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    assert!(
        ret == 0,
        "ftruncate for JIT code buffer failed: errno {}",
        -ret
    );
    // SAFETY: `fd` is a live memfd of exactly `len` bytes; ownership of
    // both views passes to the caller.
    let (rw, rx) = unsafe {
        (
            mmap_fd(len, PROT_READ | PROT_WRITE, fd),
            mmap_fd(len, PROT_READ | PROT_EXEC, fd),
        )
    };
    // SAFETY: closing the memfd; the two mappings keep the pages alive.
    unsafe {
        asm!(
            "syscall",
            inlateout("rax") SYS_CLOSE as isize => _,
            in("rdi") fd,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    (rw, rx)
}

/// `munmap(addr, len)`
///
/// # Safety
///
/// `addr..addr+len` must be exactly a mapping from [`mmap_fd`] with no
/// live references (in particular, no executing code) into it.
unsafe fn munmap(addr: *mut u8, len: usize) {
    let ret: isize;
    // SAFETY: correct syscall clobber set; precondition is the caller's.
    unsafe {
        asm!(
            "syscall",
            inlateout("rax") SYS_MUNMAP as isize => ret,
            in("rdi") addr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    debug_assert!(ret == 0, "munmap failed: errno {}", -ret);
}

const fn page_round(n: usize) -> usize {
    (n + PAGE - 1) & !(PAGE - 1)
}

// ---------------------------------------------------------------------
// CodeBuf
// ---------------------------------------------------------------------

/// Retired standard-size chunks waiting for reuse as `(rw, rx)` view
/// pairs (their length is always [`CHUNK_BYTES`]). Mapping syscalls are
/// the dominant cost of booting an engine, so retiring a chunk parks its
/// views here — zero syscalls on retire, zero on reuse, and the pages
/// stay faulted in. Overwriting the stale code is safe: the last pointer
/// into it died with the retiring handle.
static POOL: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());

/// Upper bound on pooled chunks (1 MiB of parked backing pages).
const POOL_CAP: usize = 4;

/// One dual-view chunk of executable memory; on drop (i.e. when the last
/// compiled body in it is dropped) it is recycled through [`POOL`] or
/// unmapped.
struct Chunk {
    /// The write view: the assembler's copy target, never executable.
    rw: *mut u8,
    /// The execute view: where entry points live, never writable.
    rx: *mut u8,
    len: usize,
}

/// SAFETY: a `Chunk` is an owning handle to a pair of memfd views; the
/// addresses are valid from any thread, and all writing through `rw` is
/// serialized by the owning [`CodeBuf`]'s mutex (and stops entirely once
/// the chunk is sealed or retired).
unsafe impl Send for Chunk {}
/// SAFETY: see the `Send` impl; shared access only ever *executes*
/// through `rx`, and the bytes of already-compiled bodies are never
/// rewritten while any handle to the chunk survives.
unsafe impl Sync for Chunk {}

impl Drop for Chunk {
    fn drop(&mut self) {
        // The last handle is going away, so no entry pointer into the
        // chunk can survive — its pages may serve the next engine as-is.
        if self.len == CHUNK_BYTES {
            if let Ok(mut pool) = POOL.lock() {
                if pool.len() < POOL_CAP {
                    pool.push((self.rw as usize, self.rx as usize));
                    return;
                }
            }
        }
        // SAFETY: both views came from `map_dual_views` and the chunk is
        // not in the pool, so this is the sole surviving handle.
        unsafe {
            munmap(self.rw, self.len);
            munmap(self.rx, self.len);
        }
    }
}

impl fmt::Debug for Chunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Chunk(rw {:p}, rx {:p}, {} bytes)",
            self.rw, self.rx, self.len
        )
    }
}

#[derive(Debug, Default)]
struct BufState {
    current: Option<Arc<Chunk>>,
    /// Offset of the next free byte in `current`.
    bump: usize,
}

/// The per-engine W^X bump allocator for emitted code.
#[derive(Debug, Default)]
pub(crate) struct CodeBuf {
    inner: Mutex<BufState>,
}

impl CodeBuf {
    /// Copies `code` into executable memory and returns its entry address
    /// plus the keep-alive handle for the chunk holding it.
    fn alloc(&self, code: &[u8]) -> (usize, Arc<Chunk>) {
        let mut st = self.inner.lock().expect("CodeBuf lock");
        // 16-byte entry alignment.
        let need = (code.len() + 15) & !15;
        let fits = st.current.as_ref().is_some_and(|c| st.bump + need <= c.len);
        if !fits {
            let len = page_round(need.max(CHUNK_BYTES));
            let pooled = (len == CHUNK_BYTES)
                .then(|| POOL.lock().ok().and_then(|mut p| p.pop()))
                .flatten();
            let (rw, rx) = match pooled {
                Some((rw, rx)) => (rw as *mut u8, rx as *mut u8),
                None => map_dual_views(len),
            };
            st.current = Some(Arc::new(Chunk { rw, rx, len }));
            st.bump = 0;
        }
        let chunk = Arc::clone(st.current.as_ref().expect("chunk just ensured"));
        let at = st.bump;
        // SAFETY: `[at, at + code.len())` lies inside the chunk's write
        // view. The chunk is unsealed, so the only code pointers into it
        // belong to this engine's bodies — all at offsets below `at` —
        // and `at` only ever grows, so no byte an entry pointer can reach
        // is ever rewritten. (A recycled pooled chunk starts over at
        // offset 0, but it arrives with zero surviving pointers.)
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), chunk.rw.add(at), code.len());
        }
        st.bump = at + need;
        (chunk.rx as usize + at, chunk)
    }
}

impl Clone for CodeBuf {
    /// An engine clone (VM snapshot/fork) gets an empty buffer — and the
    /// original *seals* its current chunk, so pages the clone may now be
    /// executing on another thread are never flipped writable again.
    /// Already-compiled bodies keep their chunks alive through their own
    /// `Arc`s on both sides.
    fn clone(&self) -> CodeBuf {
        let mut st = self.inner.lock().expect("CodeBuf lock");
        st.current = None;
        st.bump = 0;
        CodeBuf::default()
    }
}

// ---------------------------------------------------------------------
// The shim and the body
// ---------------------------------------------------------------------

/// The interpreter trampoline: runs one micro-op through
/// [`Vm::exec_flat`], returning the next pc or parking the trap in `ctx`
/// and returning [`SENTINEL`].
///
/// # Safety
///
/// Called only from emitted block bodies, which guarantee: `vm` is the
/// live `*mut Vm` the body was entered with (reconstituting `&mut Vm` is
/// sound because the body holds no Rust reference across the call — the
/// pinned register-file pointer in `r12` is dormant while the shim runs);
/// `op` points into the body's own `Arc<[FlatOp]>` storage; `ctx` is the
/// body's stack-local [`TrapCtx`]. `exec_flat` never unwinds (all its
/// failure paths are `Result`s), so no panic crosses the `extern "C"`
/// boundary.
unsafe extern "C" fn flat_shim(vm: *mut Vm, op: *const FlatOp, pc: u64, ctx: *mut TrapCtx) -> u64 {
    // SAFETY: contract above.
    let (vm, op) = unsafe { (&mut *vm, &*op) };
    match vm.exec_flat(op, pc) {
        Ok(next) => next,
        Err(cause) => {
            // SAFETY: `ctx` is the caller's live stack slot.
            unsafe {
                (*ctx).trap_pc = pc;
                (*ctx).inline_cause = 0;
                (*ctx).cause = Some(cause);
            }
            SENTINEL
        }
    }
}

/// A block compiled to native code. Cheap to clone: clones share the
/// emitted code (kept alive by `_chunk`) and the micro-op storage the
/// code points into.
#[derive(Clone, Debug)]
pub(crate) struct NativeBody {
    entry: usize,
    /// Keeps the executable chunk mapped while any clone can run it.
    _chunk: Arc<Chunk>,
    /// The block's micro-ops; emitted code embeds `*const FlatOp`s into
    /// this allocation for the trampolined long tail.
    _ops: Arc<[FlatOp]>,
}

impl BlockRepr for NativeBody {
    type Cx = CodeBuf;

    fn compile(ops: &[FlatOp], start: u64, cx: &CodeBuf) -> NativeBody {
        // Pin the micro-ops to their final allocation *before* emitting:
        // the code embeds their addresses.
        let ops: Arc<[FlatOp]> = ops.into();
        let code = emit::emit_block(&ops, start, flat_shim as *const () as usize);
        let (entry, chunk) = cx.alloc(&code);
        NativeBody {
            entry,
            _chunk: chunk,
            _ops: ops,
        }
    }

    // `entry` is unused: the emitted code bakes the block's start pc into
    // every fall-through and trap-pc immediate at compile time.
    fn exec(&self, vm: &mut Vm, _entry: u64) -> Result<u64, (u64, TrapCause)> {
        let mut ctx = TrapCtx::default();
        let vm_ptr: *mut Vm = vm;
        // SAFETY: `entry` is the entry point `compile` received back from
        // the allocator for code emitted by `emit_block`, still mapped
        // read+execute (kept alive by `_chunk`). The emitted code obeys
        // the ABI at the top of this module: it dereferences only the
        // register file (derived from the same `*mut Vm` it is passed, so
        // the shim's reborrow cannot invalidate it), the trap context,
        // and its own `_ops` storage.
        let next = unsafe {
            let f: BlockFn = std::mem::transmute(self.entry);
            let regs = &raw mut (*vm_ptr).regs;
            f(regs.cast::<u64>(), vm_ptr, &mut ctx)
        };
        if next != SENTINEL {
            Ok(next)
        } else if ctx.inline_cause == INLINE_OVERFLOW {
            Err((ctx.trap_pc, TrapCause::IntegerOverflow))
        } else {
            let cause = ctx.cause.expect("shim parked a cause before the sentinel");
            Err((ctx.trap_pc, cause))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codebuf_allocates_executes_and_seals() {
        let buf = CodeBuf::default();
        // mov rax, rdi; ret — an identity function on the first argument.
        let (entry, _chunk) = buf.alloc(&[0x48, 0x89, 0xF8, 0xC3]);
        let f: unsafe extern "C" fn(u64) -> u64 = unsafe { std::mem::transmute(entry) };
        assert_eq!(unsafe { f(42) }, 42);

        // Bump allocation: a second block lands in the same chunk,
        // 16-byte aligned, and the first stays runnable.
        let (entry2, _c2) = buf.alloc(&[0x48, 0x89, 0xF8, 0x48, 0xFF, 0xC0, 0xC3]); // rax = rdi + 1
        assert_eq!(entry2 - entry, 16);
        let g: unsafe extern "C" fn(u64) -> u64 = unsafe { std::mem::transmute(entry2) };
        assert_eq!(unsafe { g(41) }, 42);
        assert_eq!(unsafe { f(7) }, 7);

        // Sealing on clone: the clone starts empty, the original opens a
        // fresh chunk, and old entries still run.
        let forked = buf.clone();
        let (entry3, _c3) = buf.alloc(&[0x48, 0x89, 0xF8, 0xC3]);
        assert!(
            entry3.abs_diff(entry) >= CHUNK_BYTES,
            "post-seal alloc must not reuse the sealed chunk"
        );
        let (fork_entry, _c4) = forked.alloc(&[0x48, 0x89, 0xF8, 0xC3]);
        let h: unsafe extern "C" fn(u64) -> u64 = unsafe { std::mem::transmute(fork_entry) };
        assert_eq!(unsafe { h(9) }, 9);
        assert_eq!(unsafe { f(7) }, 7, "sealed chunk still executable");
    }

    #[test]
    fn retired_chunks_recycle_writable() {
        // Drop every handle to a chunk, then allocate again: whether the
        // fresh buffer gets the recycled chunk (pool hit) or a new
        // mapping, its pages must be writable for the copy and executable
        // after the flip.
        for round in 0..3u64 {
            let buf = CodeBuf::default();
            let (entry, chunk) = buf.alloc(&[0x48, 0x89, 0xF8, 0xC3]); // mov rax, rdi; ret
            let f: unsafe extern "C" fn(u64) -> u64 = unsafe { std::mem::transmute(entry) };
            assert_eq!(unsafe { f(round) }, round);
            drop(buf);
            drop(chunk);
        }
    }
}
