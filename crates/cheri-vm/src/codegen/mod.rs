//! Native code generation for [`crate::config::BackendKind::Native`].
//!
//! The native tier is the last rung of the dispatch ladder: at block
//! compile time it walks the same micro-op × specialization matrix the
//! template tier's `bind()` enumerates and emits x86-64 machine code per
//! block into a W^X executable buffer. The split of labor is deliberate:
//!
//! * **Inline**: integer ALU ops, immediates, shifts, compares, branches,
//!   jumps, and the fused compare-and-branch compile to straight-line
//!   machine code operating on a pinned register-file pointer.
//! * **Trampolined**: capability ops, loads/stores, division, syscalls
//!   and the `Other` long tail call back through one `extern "C"` shim
//!   into [`crate::machine::Vm::exec_flat`], so the capability model (and
//!   every trap decision) stays interpreted and single-sourced.
//!
//! A block body is a function `fn(regs, vm, ctx) -> next_pc` returning
//! [`jit::SENTINEL`] on trap with the pc/cause parked in a stack-local
//! [`jit::TrapCtx`]; the generic engine then unwinds hoisted statistics
//! through the same `unwind_partial` path every other backend uses, which
//! is what keeps trap pcs, register snapshots, cycles, `fetch_checks` and
//! the traffic ledger bit-identical to the reference oracle.
//!
//! Code lives in [`jit::CodeBuf`] — per-engine chunks, each an anonymous
//! memfd mapped twice: a read+write view the assembler copies bodies
//! into and a read+execute view entry points come from, so no mapping is
//! ever writable and executable at once and a compiled block costs zero
//! syscalls. Retired chunk pairs recycle through a small process-wide
//! pool with their pages still faulted in. Hosts the emitter cannot
//! target (non-x86-64, non-Linux, miri) run the template tier under the
//! `Native` label instead; see [`supported`].

#[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
mod emit;
#[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
mod jit;

#[cfg(all(target_arch = "x86_64", target_os = "linux", not(miri)))]
pub(crate) use jit::NativeBody;

/// True when this build can emit and execute native block bodies. When
/// false, [`crate::backend::new_backend`] quietly substitutes the template
/// tier for `BackendKind::Native` (with a one-time logged note), so every
/// suite and driver stays green on every host.
pub(crate) fn supported() -> bool {
    cfg!(all(target_arch = "x86_64", target_os = "linux", not(miri)))
}
