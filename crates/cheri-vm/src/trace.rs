//! Basic-block superinstructions: the VM's block-level dispatch layer.
//!
//! At first execution of an entry pc the predecoded `Vec<Instr>` is grouped
//! into a straight-line **block** — the maximal run of instructions ending
//! at the first control transfer ([`Op::ends_block`]) or at the end of the
//! code image. Each instruction is *flattened* into a [`FlatOp`]: register
//! indices and immediates pre-resolved (sign/zero extension done once,
//! shift amounts masked, load/store width/signedness/addressing unified,
//! the `CPtrCmp` selector decoded), so the hot loop in
//! `machine::Vm::run_block` executes the whole block without per-step
//! fetch-window compares or per-op statistics.
//!
//! Statistics are hoisted to per-block counters: a completed block bumps
//! one execution counter and adds one precomputed base-cycle sum; the
//! per-opcode retirement counts that `VmStats` reports are reconstructed
//! from each block's opcode histogram times its execution count (plus the
//! residual counts accumulated by single-stepping and partial blocks).
//! Only *base* cycles are hoisted: cache-model costs — per-edge
//! latency + bandwidth charges and the `TrafficStats` byte ledger under
//! the bandwidth-aware hierarchy — are data-dependent and stay inside the
//! per-op memory helpers, so block dispatch drives the identical access
//! sequence through the identical model and the identity suites can pin
//! cycles, cache stats and the traffic ledger bit-for-bit against
//! single-stepping.
//!
//! Blocks hold only instruction *indices* and immutable code, so a PCC
//! write never makes a cached block wrong — it makes it *unreachable*
//! until revalidated. Validation rides the machine's cached fetch window:
//! writing the PCC empties the window, and the next block entry performs
//! the same one full `set_offset` + `check_access` the per-instruction
//! interpreter would, keeping `VmStats::fetch_checks` identical. A block
//! that no longer fits the (narrowed) window is not executed as a block;
//! the machine falls back to single-stepping, which traps at exactly the
//! pc the interpreter would.

use cheri_isa::{CmpOp, Instr, Op};
use std::sync::Arc;

/// One flattened micro-op. Field meanings mirror `machine::Vm::execute_at`
/// arm for arm; the flattening only moves operand decoding to build time.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FlatOp {
    Nop,
    // Trapping signed arithmetic (§3.1.1).
    Add {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Sub {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Addi {
        rd: u8,
        rs: u8,
        imm: i64,
    },
    // Wrapping / logical ALU.
    Addu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Subu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    And {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Or {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Xor {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Nor {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Slt {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Sltu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Sllv {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Srlv {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Srav {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Mul {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Div {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Divu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Rem {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Remu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    // Immediate ALU, extension pre-applied.
    Addiu {
        rd: u8,
        rs: u8,
        imm: u64,
    },
    Andi {
        rd: u8,
        rs: u8,
        imm: u64,
    },
    Ori {
        rd: u8,
        rs: u8,
        imm: u64,
    },
    Xori {
        rd: u8,
        rs: u8,
        imm: u64,
    },
    Slti {
        rd: u8,
        rs: u8,
        imm: i64,
    },
    Sltiu {
        rd: u8,
        rs: u8,
        imm: u64,
    },
    /// `li` and `lui` collapse to a pre-computed constant load.
    Li {
        rd: u8,
        v: u64,
    },
    Sll {
        rd: u8,
        rs: u8,
        sh: u32,
    },
    Srl {
        rd: u8,
        rs: u8,
        sh: u32,
    },
    Sra {
        rd: u8,
        rs: u8,
        sh: u32,
    },
    // Branches and jumps: absolute targets pre-cast to instruction
    // indices. These are always a block's terminal op.
    Beq {
        rs: u8,
        rt: u8,
        target: u64,
    },
    Bne {
        rs: u8,
        rt: u8,
        target: u64,
    },
    Blez {
        rs: u8,
        target: u64,
    },
    Bgtz {
        rs: u8,
        target: u64,
    },
    Bltz {
        rs: u8,
        target: u64,
    },
    Bgez {
        rs: u8,
        target: u64,
    },
    J {
        target: u64,
    },
    Jal {
        target: u64,
    },
    Jr {
        rs: u8,
    },
    Jalr {
        rd: u8,
        rs: u8,
    },
    /// All eleven legacy and seven capability-relative scalar loads,
    /// unified: width, signedness and addressing mode pre-resolved.
    Load {
        rd: u8,
        base: u8,
        off: i32,
        width: u8,
        signed: bool,
        via_cap: bool,
    },
    /// All legacy and capability-relative scalar stores, unified.
    Store {
        rv: u8,
        base: u8,
        off: i32,
        width: u8,
        via_cap: bool,
    },
    Clc {
        cd: u8,
        cb: u8,
        off: i32,
    },
    Csc {
        cs: u8,
        cb: u8,
        off: i32,
    },
    // The capability-manipulation core the compiled ABIs lean on.
    CIncOffset {
        cd: u8,
        cb: u8,
        rt: u8,
    },
    CIncOffsetImm {
        cd: u8,
        cb: u8,
        imm: i64,
    },
    CSetOffset {
        cd: u8,
        cb: u8,
        rt: u8,
    },
    CSetBounds {
        cd: u8,
        cb: u8,
        rt: u8,
    },
    CAndPerm {
        cd: u8,
        cb: u8,
        rt: u8,
    },
    CClearTag {
        cd: u8,
        cb: u8,
    },
    CMove {
        cd: u8,
        cb: u8,
    },
    CGetBase {
        rd: u8,
        cb: u8,
    },
    CGetLen {
        rd: u8,
        cb: u8,
    },
    CGetOffset {
        rd: u8,
        cb: u8,
    },
    CGetPerm {
        rd: u8,
        cb: u8,
    },
    CGetTag {
        rd: u8,
        cb: u8,
    },
    /// Pointer comparison with the selector decoded at build time.
    CPtrCmp {
        rd: u8,
        cb: u8,
        ct: u8,
        sel: CmpOp,
    },
    CToPtr {
        rd: u8,
        cb: u8,
        ct: u8,
    },
    /// The long tail (syscall, break, sealing, capability jumps, …)
    /// falls back to the interpreter's `execute_at`.
    Other(Instr),
}

/// Flattens one predecoded instruction. The extensions/masks here must
/// match `execute_at` exactly — the differential and bit-identity tests
/// hold the two dispatchers to the same answers.
fn flatten(i: Instr) -> FlatOp {
    let (rd, rs, rt, imm) = (i.rd, i.rs, i.rt, i.imm);
    let simm = imm as i64;
    match i.op {
        Op::Nop => FlatOp::Nop,
        Op::Add => FlatOp::Add { rd, rs, rt },
        Op::Sub => FlatOp::Sub { rd, rs, rt },
        Op::Addi => FlatOp::Addi { rd, rs, imm: simm },
        Op::Addu => FlatOp::Addu { rd, rs, rt },
        Op::Subu => FlatOp::Subu { rd, rs, rt },
        Op::And => FlatOp::And { rd, rs, rt },
        Op::Or => FlatOp::Or { rd, rs, rt },
        Op::Xor => FlatOp::Xor { rd, rs, rt },
        Op::Nor => FlatOp::Nor { rd, rs, rt },
        Op::Slt => FlatOp::Slt { rd, rs, rt },
        Op::Sltu => FlatOp::Sltu { rd, rs, rt },
        Op::Sllv => FlatOp::Sllv { rd, rs, rt },
        Op::Srlv => FlatOp::Srlv { rd, rs, rt },
        Op::Srav => FlatOp::Srav { rd, rs, rt },
        Op::Mul => FlatOp::Mul { rd, rs, rt },
        Op::Div => FlatOp::Div { rd, rs, rt },
        Op::Divu => FlatOp::Divu { rd, rs, rt },
        Op::Rem => FlatOp::Rem { rd, rs, rt },
        Op::Remu => FlatOp::Remu { rd, rs, rt },
        Op::Addiu => FlatOp::Addiu {
            rd,
            rs,
            imm: simm as u64,
        },
        Op::Andi => FlatOp::Andi {
            rd,
            rs,
            imm: imm as u32 as u64,
        },
        Op::Ori => FlatOp::Ori {
            rd,
            rs,
            imm: imm as u32 as u64,
        },
        Op::Xori => FlatOp::Xori {
            rd,
            rs,
            imm: imm as u32 as u64,
        },
        Op::Slti => FlatOp::Slti { rd, rs, imm: simm },
        Op::Sltiu => FlatOp::Sltiu {
            rd,
            rs,
            imm: simm as u64,
        },
        Op::Lui => FlatOp::Li {
            rd,
            v: (simm << 16) as u64,
        },
        Op::Li => FlatOp::Li { rd, v: simm as u64 },
        Op::Sll => FlatOp::Sll {
            rd,
            rs,
            sh: imm as u32 & 63,
        },
        Op::Srl => FlatOp::Srl {
            rd,
            rs,
            sh: imm as u32 & 63,
        },
        Op::Sra => FlatOp::Sra {
            rd,
            rs,
            sh: imm as u32 & 63,
        },
        Op::Beq => FlatOp::Beq {
            rs,
            rt,
            target: imm as u64,
        },
        Op::Bne => FlatOp::Bne {
            rs,
            rt,
            target: imm as u64,
        },
        Op::Blez => FlatOp::Blez {
            rs,
            target: imm as u64,
        },
        Op::Bgtz => FlatOp::Bgtz {
            rs,
            target: imm as u64,
        },
        Op::Bltz => FlatOp::Bltz {
            rs,
            target: imm as u64,
        },
        Op::Bgez => FlatOp::Bgez {
            rs,
            target: imm as u64,
        },
        Op::J => FlatOp::J { target: imm as u64 },
        Op::Jal => FlatOp::Jal { target: imm as u64 },
        Op::Jr => FlatOp::Jr { rs },
        Op::Jalr => FlatOp::Jalr { rd, rs },
        Op::Lb => load(i, 1, true, false),
        Op::Lbu => load(i, 1, false, false),
        Op::Lh => load(i, 2, true, false),
        Op::Lhu => load(i, 2, false, false),
        Op::Lw => load(i, 4, true, false),
        Op::Lwu => load(i, 4, false, false),
        Op::Ld => load(i, 8, false, false),
        Op::Sb => store(i, 1, false),
        Op::Sh => store(i, 2, false),
        Op::Sw => store(i, 4, false),
        Op::Sd => store(i, 8, false),
        Op::Clb => load(i, 1, true, true),
        Op::Clbu => load(i, 1, false, true),
        Op::Clh => load(i, 2, true, true),
        Op::Clhu => load(i, 2, false, true),
        Op::Clw => load(i, 4, true, true),
        Op::Clwu => load(i, 4, false, true),
        Op::Cld => load(i, 8, false, true),
        Op::Csb => store(i, 1, true),
        Op::Csh => store(i, 2, true),
        Op::Csw => store(i, 4, true),
        Op::Csd => store(i, 8, true),
        Op::Clc => FlatOp::Clc {
            cd: rd,
            cb: rs,
            off: imm,
        },
        Op::Csc => FlatOp::Csc {
            cs: rd,
            cb: rs,
            off: imm,
        },
        Op::CIncOffset => FlatOp::CIncOffset { cd: rd, cb: rs, rt },
        Op::CIncOffsetImm => FlatOp::CIncOffsetImm {
            cd: rd,
            cb: rs,
            imm: simm,
        },
        Op::CSetOffset => FlatOp::CSetOffset { cd: rd, cb: rs, rt },
        Op::CSetBounds => FlatOp::CSetBounds { cd: rd, cb: rs, rt },
        Op::CAndPerm => FlatOp::CAndPerm { cd: rd, cb: rs, rt },
        Op::CClearTag => FlatOp::CClearTag { cd: rd, cb: rs },
        Op::CMove => FlatOp::CMove { cd: rd, cb: rs },
        Op::CGetBase => FlatOp::CGetBase { rd, cb: rs },
        Op::CGetLen => FlatOp::CGetLen { rd, cb: rs },
        Op::CGetOffset => FlatOp::CGetOffset { rd, cb: rs },
        Op::CGetPerm => FlatOp::CGetPerm { rd, cb: rs },
        Op::CGetTag => FlatOp::CGetTag { rd, cb: rs },
        Op::CPtrCmp => FlatOp::CPtrCmp {
            rd,
            cb: rs,
            ct: rt,
            sel: CmpOp::from_u8(imm as u8).expect("validated at decode"),
        },
        Op::CToPtr => FlatOp::CToPtr { rd, cb: rs, ct: rt },
        Op::Syscall
        | Op::Break
        | Op::CIncBase
        | Op::CSetLen
        | Op::CFromPtr
        | Op::CSeal
        | Op::CUnseal
        | Op::CJr
        | Op::CJalr
        | Op::CGetPcc => FlatOp::Other(i),
    }
}

fn load(i: Instr, width: u8, signed: bool, via_cap: bool) -> FlatOp {
    FlatOp::Load {
        rd: i.rd,
        base: i.rs,
        off: i.imm,
        width,
        signed,
        via_cap,
    }
}

fn store(i: Instr, width: u8, via_cap: bool) -> FlatOp {
    FlatOp::Store {
        rv: i.rd,
        base: i.rs,
        off: i.imm,
        width,
        via_cap,
    }
}

/// One straight-line block: flattened ops plus everything needed to hoist
/// (and, on a mid-block trap, to reconstruct) per-instruction statistics.
#[derive(Debug)]
pub(crate) struct Block {
    /// Entry pc (instruction index).
    pub start: u64,
    /// The flattened instructions, terminal included.
    pub ops: Box<[FlatOp]>,
    /// The raw opcodes, for partial-execution stat accounting.
    pub raw: Box<[Op]>,
    /// Σ `base_cycles` over the whole block, charged in one add.
    pub base_cycles: u64,
    /// Opcode histogram; `VmStats` reconstructs per-op retirement counts
    /// as `Σ hist × execs` plus the single-step residual.
    pub hist: Box<[(Op, u32)]>,
}

/// One past the last instruction of the block entered at `pc`: the first
/// block-ender inclusive, clipped to the end of the code image. The single
/// source of truth for block extent — `Block::build` and the dispatch
/// loop's length precheck must never disagree.
fn block_end(pc: u64, code: &[Instr]) -> usize {
    let mut end = pc as usize;
    while end < code.len() {
        let ends = code[end].op.ends_block();
        end += 1;
        if ends {
            break;
        }
    }
    end
}

impl Block {
    /// Builds the block entered at `pc`: instructions up to and including
    /// the first block-ender, clipped to the end of the code image.
    fn build(pc: u64, code: &[Instr]) -> Block {
        let start = pc as usize;
        let end = block_end(pc, code);
        let raw: Box<[Op]> = code[start..end].iter().map(|i| i.op).collect();
        let ops: Box<[FlatOp]> = code[start..end].iter().map(|&i| flatten(i)).collect();
        let base_cycles = raw.iter().map(|o| o.base_cycles()).sum();
        let mut hist: Vec<(Op, u32)> = Vec::new();
        for &op in raw.iter() {
            match hist.iter_mut().find(|(o, _)| *o == op) {
                Some((_, n)) => *n += 1,
                None => hist.push((op, 1)),
            }
        }
        Block {
            start: pc,
            ops,
            raw,
            base_cycles,
            hist: hist.into_boxed_slice(),
        }
    }
}

/// The per-machine block cache: blocks are built lazily, keyed by entry
/// pc, shared immutably (so cloning a [`crate::Vm`] shares them), with a
/// per-block completed-execution counter for the stat hoisting.
#[derive(Clone, Debug, Default)]
pub(crate) struct TraceCache {
    /// `index[pc]` is the block built at entry `pc`, or `u32::MAX`.
    index: Vec<u32>,
    blocks: Vec<Arc<Block>>,
    /// Completed executions per block (partial executions account their
    /// prefix into the machine's residual counters instead).
    execs: Vec<u64>,
    /// Memo of the last terminal scan: every entry pc in
    /// `[scan_start, scan_end)` has its block end exactly at `scan_end`
    /// (no block-ender in between). Lets the dispatch loop ask for block
    /// *lengths* without building anything — one O(block) scan serves a
    /// whole single-stepped walk across a long straight-line region.
    scan_start: u64,
    scan_end: u64,
}

impl TraceCache {
    pub fn new(code_len: usize) -> TraceCache {
        TraceCache {
            index: vec![u32::MAX; code_len],
            blocks: Vec::new(),
            execs: Vec::new(),
            scan_start: 0,
            scan_end: 0,
        }
    }

    /// Length of the block entered at `pc`, without building it: cached
    /// block if one exists, memoized terminal scan otherwise.
    pub fn block_len_at(&mut self, pc: u64, code: &[Instr]) -> u64 {
        let id = self.index[pc as usize];
        if id != u32::MAX {
            return self.blocks[id as usize].ops.len() as u64;
        }
        if pc >= self.scan_start && pc < self.scan_end {
            return self.scan_end - pc;
        }
        let end = block_end(pc, code);
        self.scan_start = pc;
        self.scan_end = end as u64;
        end as u64 - pc
    }

    /// The block entered at `pc`, building (and caching) it on first use.
    pub fn block_at(&mut self, pc: u64, code: &[Instr]) -> (usize, Arc<Block>) {
        let slot = pc as usize;
        let id = self.index[slot];
        if id != u32::MAX {
            return (id as usize, self.blocks[id as usize].clone());
        }
        let block = Arc::new(Block::build(pc, code));
        let id = self.blocks.len();
        self.index[slot] = id as u32;
        self.blocks.push(block.clone());
        self.execs.push(0);
        (id, block)
    }

    /// Records one completed execution of block `id`.
    pub fn retire(&mut self, id: usize) {
        self.execs[id] += 1;
    }

    /// Folds every block's opcode histogram, weighted by its completed
    /// executions, into `counts`.
    pub fn add_op_counts(&self, counts: &mut [u64]) {
        for (block, &n) in self.blocks.iter().zip(&self.execs) {
            if n == 0 {
                continue;
            }
            for &(op, c) in block.hist.iter() {
                counts[op as usize] += u64::from(c) * n;
            }
        }
    }

    /// Blocks built so far (test introspection).
    #[cfg(test)]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code() -> Vec<Instr> {
        vec![
            Instr::li(8, 0),                 // 0
            Instr::li(9, 1),                 // 1
            Instr::r3(Op::Addu, 8, 8, 9),    // 2
            Instr::new(Op::Beq, 0, 8, 0, 2), // 3: terminal
            Instr::li(4, 0),                 // 4
            Instr::syscall(0),               // 5: terminal
        ]
    }

    #[test]
    fn blocks_end_at_control_transfers() {
        let code = code();
        let mut t = TraceCache::new(code.len());
        let (_, b) = t.block_at(0, &code);
        assert_eq!(b.start, 0);
        assert_eq!(b.ops.len(), 4, "block runs through the beq inclusive");
        assert_eq!(b.raw.last(), Some(&Op::Beq));
        let (_, b2) = t.block_at(4, &code);
        assert_eq!(b2.ops.len(), 2);
        assert_eq!(b2.raw.last(), Some(&Op::Syscall));
        assert_eq!(t.block_count(), 2);
    }

    #[test]
    fn mid_block_entry_builds_an_overlapping_block() {
        let code = code();
        let mut t = TraceCache::new(code.len());
        t.block_at(0, &code);
        let (_, b) = t.block_at(2, &code);
        assert_eq!(b.start, 2);
        assert_eq!(b.ops.len(), 2);
        assert_eq!(t.block_count(), 2);
        // Re-entry reuses the cached block.
        let before = t.block_count();
        t.block_at(2, &code);
        assert_eq!(t.block_count(), before);
    }

    #[test]
    fn block_without_terminal_clips_at_code_end() {
        let code = vec![Instr::nop(), Instr::nop()];
        let mut t = TraceCache::new(code.len());
        let (_, b) = t.block_at(0, &code);
        assert_eq!(b.ops.len(), 2);
    }

    #[test]
    fn block_len_at_agrees_with_built_blocks_and_builds_nothing() {
        // A long straight-line region: asking for lengths at every pc must
        // not build (or cache) any block, and each answer must match what
        // Block::build would produce. Sequential queries ride one memoized
        // scan.
        let mut code = vec![Instr::i2(Op::Addiu, 8, 8, 1); 64];
        code.push(Instr::syscall(0)); // 64: terminal
        code.push(Instr::li(4, 0)); // 65
        code.push(Instr::new(Op::J, 0, 0, 0, 0)); // 66: terminal
        let mut t = TraceCache::new(code.len());
        for pc in 0..code.len() as u64 {
            let len = t.block_len_at(pc, &code);
            let expect = {
                let mut end = pc as usize;
                while end < code.len() {
                    let ends = code[end].op.ends_block();
                    end += 1;
                    if ends {
                        break;
                    }
                }
                end as u64 - pc
            };
            assert_eq!(len, expect, "length at pc {pc}");
        }
        assert_eq!(t.block_count(), 0, "length queries must not build blocks");
        // Once a block is built, its cached length is served from it.
        let (_, b) = t.block_at(3, &code);
        assert_eq!(t.block_len_at(3, &code), b.ops.len() as u64);
    }

    #[test]
    fn histogram_and_cycles_sum_the_block() {
        let code = code();
        let mut t = TraceCache::new(code.len());
        let (id, b) = t.block_at(0, &code);
        assert_eq!(
            b.base_cycles,
            b.raw.iter().map(|o| o.base_cycles()).sum::<u64>()
        );
        let li = b.hist.iter().find(|(o, _)| *o == Op::Li).unwrap().1;
        assert_eq!(li, 2);
        t.retire(id);
        t.retire(id);
        let mut counts = vec![0u64; 256];
        t.add_op_counts(&mut counts);
        assert_eq!(counts[Op::Li as usize], 4);
        assert_eq!(counts[Op::Beq as usize], 2);
    }

    #[test]
    fn flatten_preresolves_immediates() {
        assert!(matches!(
            flatten(Instr::new(Op::Lui, 4, 0, 0, -1)),
            FlatOp::Li { rd: 4, v } if v == (-65536i64) as u64
        ));
        assert!(matches!(
            flatten(Instr::i2(Op::Sll, 4, 5, 200)),
            FlatOp::Sll { sh: 8, .. }
        ));
        assert!(matches!(
            flatten(Instr::c_ptr_cmp(2, 3, 4, CmpOp::Ltu)),
            FlatOp::CPtrCmp {
                sel: CmpOp::Ltu,
                ..
            }
        ));
        assert!(matches!(
            flatten(Instr::mem(Op::Clhu, 9, 3, -2)),
            FlatOp::Load {
                width: 2,
                signed: false,
                via_cap: true,
                off: -2,
                ..
            }
        ));
        assert!(matches!(flatten(Instr::syscall(3)), FlatOp::Other(_)));
    }
}
