//! The block IR: straight-line basic blocks of flattened micro-ops.
//!
//! At first execution of an entry pc the predecoded `Vec<Instr>` is grouped
//! into a straight-line **block** — the maximal run of instructions ending
//! at the first control transfer ([`Op::ends_block`]) or at the end of the
//! code image. Each instruction is *flattened* into a [`FlatOp`]: register
//! indices and immediates pre-resolved (sign/zero extension done once,
//! shift amounts masked, load/store width/signedness/addressing unified,
//! the `CPtrCmp` selector decoded), so a backend executes the whole block
//! without per-step fetch-window compares or per-op statistics.
//!
//! The IR is decoupled from dispatch: a [`Block`] carries everything any
//! backend needs — the micro-ops, the raw opcode array and histogram for
//! statistics reconstruction, the hoisted base-cycle sum, and a
//! [`BlockExit`] describing the static successor targets (which the
//! chained drivers use to jump block-to-block without re-entering the
//! dispatch match). The [`crate::opt`] peephole pass rewrites `ops` in
//! place; `raw`, `hist` and `base_cycles` always describe the *source*
//! instructions, which is what keeps retirement counts and cycle charges
//! bit-identical whether or not a rewrite fired.
//!
//! Statistics are hoisted to per-block counters: a completed block bumps
//! one execution counter and adds one precomputed base-cycle sum; the
//! per-opcode retirement counts that `VmStats` reports are reconstructed
//! from each block's opcode histogram times its execution count (plus the
//! residual counts accumulated by single-stepping and partial blocks).
//! Only *base* cycles are hoisted: cache-model costs — per-edge
//! latency + bandwidth charges and the `TrafficStats` byte ledger under
//! the bandwidth-aware hierarchy — are data-dependent and stay inside the
//! per-op memory helpers, so block dispatch drives the identical access
//! sequence through the identical model and the identity suites can pin
//! cycles, cache stats and the traffic ledger bit-for-bit against
//! single-stepping.
//!
//! Blocks hold only instruction *indices* and immutable code, so a PCC
//! write never makes a cached block wrong — it makes it *unreachable*
//! until revalidated. Validation rides the machine's cached fetch window:
//! writing the PCC empties the window, and the next block entry performs
//! the same one full `set_offset` + `check_access` the per-instruction
//! interpreter would, keeping `VmStats::fetch_checks` identical.

use cheri_isa::{CmpOp, ControlKind, Instr, Op};

/// One flattened micro-op. Field meanings mirror `machine::Vm::execute_at`
/// arm for arm; the flattening only moves operand decoding to build time.
/// [`FlatOp::FusedCmpBranch`] is the one op with no 1:1 source
/// instruction: the peephole pass synthesises it from a compare + branch
/// pair (see [`crate::opt`]).
#[derive(Clone, Copy, Debug)]
pub(crate) enum FlatOp {
    Nop,
    // Trapping signed arithmetic (§3.1.1).
    Add {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Sub {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Addi {
        rd: u8,
        rs: u8,
        imm: i64,
    },
    // Wrapping / logical ALU.
    Addu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Subu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    And {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Or {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Xor {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Nor {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Slt {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Sltu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Sllv {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Srlv {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Srav {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Mul {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Div {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Divu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Rem {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Remu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    // Immediate ALU, extension pre-applied.
    Addiu {
        rd: u8,
        rs: u8,
        imm: u64,
    },
    Andi {
        rd: u8,
        rs: u8,
        imm: u64,
    },
    Ori {
        rd: u8,
        rs: u8,
        imm: u64,
    },
    Xori {
        rd: u8,
        rs: u8,
        imm: u64,
    },
    Slti {
        rd: u8,
        rs: u8,
        imm: i64,
    },
    Sltiu {
        rd: u8,
        rs: u8,
        imm: u64,
    },
    /// `li` and `lui` collapse to a pre-computed constant load.
    Li {
        rd: u8,
        v: u64,
    },
    Sll {
        rd: u8,
        rs: u8,
        sh: u32,
    },
    Srl {
        rd: u8,
        rs: u8,
        sh: u32,
    },
    Sra {
        rd: u8,
        rs: u8,
        sh: u32,
    },
    // Branches and jumps: absolute targets pre-cast to instruction
    // indices. These are always a block's terminal op.
    Beq {
        rs: u8,
        rt: u8,
        target: u64,
    },
    Bne {
        rs: u8,
        rt: u8,
        target: u64,
    },
    Blez {
        rs: u8,
        target: u64,
    },
    Bgtz {
        rs: u8,
        target: u64,
    },
    Bltz {
        rs: u8,
        target: u64,
    },
    Bgez {
        rs: u8,
        target: u64,
    },
    J {
        target: u64,
    },
    Jal {
        target: u64,
    },
    Jr {
        rs: u8,
    },
    Jalr {
        rd: u8,
        rs: u8,
    },
    /// A compare feeding a terminal branch on its result, fused by the
    /// peephole pass into one micro-op covering *two* source
    /// instructions: `v = cmp(...)`; `rd = v`; branch when
    /// `(v != 0) == branch_if`. Neither component can trap, and the
    /// compare's register write is preserved, so the fusion is
    /// unobservable outside dispatch count. `target` is the taken pc; the
    /// fall-through is `pc + 2` (the op sits at the compare's slot).
    FusedCmpBranch {
        rd: u8,
        rs: u8,
        rt: u8,
        imm: i64,
        /// Signed (`slt`/`slti`) vs unsigned (`sltu`/`sltiu`) compare.
        signed: bool,
        /// Compare against `imm` instead of `reg(rt)`.
        imm_form: bool,
        /// Branch when the comparison result is 1 (`bne rd, r0`) vs 0
        /// (`beq rd, r0`).
        branch_if: bool,
        target: u64,
    },
    /// All eleven legacy and seven capability-relative scalar loads,
    /// unified: width, signedness and addressing mode pre-resolved.
    Load {
        rd: u8,
        base: u8,
        off: i32,
        width: u8,
        signed: bool,
        via_cap: bool,
    },
    /// All legacy and capability-relative scalar stores, unified.
    Store {
        rv: u8,
        base: u8,
        off: i32,
        width: u8,
        via_cap: bool,
    },
    Clc {
        cd: u8,
        cb: u8,
        off: i32,
    },
    Csc {
        cs: u8,
        cb: u8,
        off: i32,
    },
    // The capability-manipulation core the compiled ABIs lean on.
    CIncOffset {
        cd: u8,
        cb: u8,
        rt: u8,
    },
    CIncOffsetImm {
        cd: u8,
        cb: u8,
        imm: i64,
    },
    CSetOffset {
        cd: u8,
        cb: u8,
        rt: u8,
    },
    CSetBounds {
        cd: u8,
        cb: u8,
        rt: u8,
    },
    CAndPerm {
        cd: u8,
        cb: u8,
        rt: u8,
    },
    CClearTag {
        cd: u8,
        cb: u8,
    },
    CMove {
        cd: u8,
        cb: u8,
    },
    CGetBase {
        rd: u8,
        cb: u8,
    },
    CGetLen {
        rd: u8,
        cb: u8,
    },
    CGetOffset {
        rd: u8,
        cb: u8,
    },
    CGetPerm {
        rd: u8,
        cb: u8,
    },
    CGetTag {
        rd: u8,
        cb: u8,
    },
    /// Pointer comparison with the selector decoded at build time.
    CPtrCmp {
        rd: u8,
        cb: u8,
        ct: u8,
        sel: CmpOp,
    },
    CToPtr {
        rd: u8,
        cb: u8,
        ct: u8,
    },
    /// The long tail (syscall, break, sealing, capability jumps, …)
    /// falls back to the interpreter's `execute_at`.
    Other(Instr),
}

/// Flattens one predecoded instruction. The extensions/masks here must
/// match `execute_at` exactly — the differential and bit-identity tests
/// hold the two dispatchers to the same answers.
pub(crate) fn flatten(i: Instr) -> FlatOp {
    let (rd, rs, rt, imm) = (i.rd, i.rs, i.rt, i.imm);
    let simm = imm as i64;
    match i.op {
        Op::Nop => FlatOp::Nop,
        Op::Add => FlatOp::Add { rd, rs, rt },
        Op::Sub => FlatOp::Sub { rd, rs, rt },
        Op::Addi => FlatOp::Addi { rd, rs, imm: simm },
        Op::Addu => FlatOp::Addu { rd, rs, rt },
        Op::Subu => FlatOp::Subu { rd, rs, rt },
        Op::And => FlatOp::And { rd, rs, rt },
        Op::Or => FlatOp::Or { rd, rs, rt },
        Op::Xor => FlatOp::Xor { rd, rs, rt },
        Op::Nor => FlatOp::Nor { rd, rs, rt },
        Op::Slt => FlatOp::Slt { rd, rs, rt },
        Op::Sltu => FlatOp::Sltu { rd, rs, rt },
        Op::Sllv => FlatOp::Sllv { rd, rs, rt },
        Op::Srlv => FlatOp::Srlv { rd, rs, rt },
        Op::Srav => FlatOp::Srav { rd, rs, rt },
        Op::Mul => FlatOp::Mul { rd, rs, rt },
        Op::Div => FlatOp::Div { rd, rs, rt },
        Op::Divu => FlatOp::Divu { rd, rs, rt },
        Op::Rem => FlatOp::Rem { rd, rs, rt },
        Op::Remu => FlatOp::Remu { rd, rs, rt },
        Op::Addiu => FlatOp::Addiu {
            rd,
            rs,
            imm: simm as u64,
        },
        Op::Andi => FlatOp::Andi {
            rd,
            rs,
            imm: imm as u32 as u64,
        },
        Op::Ori => FlatOp::Ori {
            rd,
            rs,
            imm: imm as u32 as u64,
        },
        Op::Xori => FlatOp::Xori {
            rd,
            rs,
            imm: imm as u32 as u64,
        },
        Op::Slti => FlatOp::Slti { rd, rs, imm: simm },
        Op::Sltiu => FlatOp::Sltiu {
            rd,
            rs,
            imm: simm as u64,
        },
        Op::Lui => FlatOp::Li {
            rd,
            v: (simm << 16) as u64,
        },
        Op::Li => FlatOp::Li { rd, v: simm as u64 },
        Op::Sll => FlatOp::Sll {
            rd,
            rs,
            sh: imm as u32 & 63,
        },
        Op::Srl => FlatOp::Srl {
            rd,
            rs,
            sh: imm as u32 & 63,
        },
        Op::Sra => FlatOp::Sra {
            rd,
            rs,
            sh: imm as u32 & 63,
        },
        Op::Beq => FlatOp::Beq {
            rs,
            rt,
            target: imm as u64,
        },
        Op::Bne => FlatOp::Bne {
            rs,
            rt,
            target: imm as u64,
        },
        Op::Blez => FlatOp::Blez {
            rs,
            target: imm as u64,
        },
        Op::Bgtz => FlatOp::Bgtz {
            rs,
            target: imm as u64,
        },
        Op::Bltz => FlatOp::Bltz {
            rs,
            target: imm as u64,
        },
        Op::Bgez => FlatOp::Bgez {
            rs,
            target: imm as u64,
        },
        Op::J => FlatOp::J { target: imm as u64 },
        Op::Jal => FlatOp::Jal { target: imm as u64 },
        Op::Jr => FlatOp::Jr { rs },
        Op::Jalr => FlatOp::Jalr { rd, rs },
        Op::Lb => load(i, 1, true, false),
        Op::Lbu => load(i, 1, false, false),
        Op::Lh => load(i, 2, true, false),
        Op::Lhu => load(i, 2, false, false),
        Op::Lw => load(i, 4, true, false),
        Op::Lwu => load(i, 4, false, false),
        Op::Ld => load(i, 8, false, false),
        Op::Sb => store(i, 1, false),
        Op::Sh => store(i, 2, false),
        Op::Sw => store(i, 4, false),
        Op::Sd => store(i, 8, false),
        Op::Clb => load(i, 1, true, true),
        Op::Clbu => load(i, 1, false, true),
        Op::Clh => load(i, 2, true, true),
        Op::Clhu => load(i, 2, false, true),
        Op::Clw => load(i, 4, true, true),
        Op::Clwu => load(i, 4, false, true),
        Op::Cld => load(i, 8, false, true),
        Op::Csb => store(i, 1, true),
        Op::Csh => store(i, 2, true),
        Op::Csw => store(i, 4, true),
        Op::Csd => store(i, 8, true),
        Op::Clc => FlatOp::Clc {
            cd: rd,
            cb: rs,
            off: imm,
        },
        Op::Csc => FlatOp::Csc {
            cs: rd,
            cb: rs,
            off: imm,
        },
        Op::CIncOffset => FlatOp::CIncOffset { cd: rd, cb: rs, rt },
        Op::CIncOffsetImm => FlatOp::CIncOffsetImm {
            cd: rd,
            cb: rs,
            imm: simm,
        },
        Op::CSetOffset => FlatOp::CSetOffset { cd: rd, cb: rs, rt },
        Op::CSetBounds => FlatOp::CSetBounds { cd: rd, cb: rs, rt },
        Op::CAndPerm => FlatOp::CAndPerm { cd: rd, cb: rs, rt },
        Op::CClearTag => FlatOp::CClearTag { cd: rd, cb: rs },
        Op::CMove => FlatOp::CMove { cd: rd, cb: rs },
        Op::CGetBase => FlatOp::CGetBase { rd, cb: rs },
        Op::CGetLen => FlatOp::CGetLen { rd, cb: rs },
        Op::CGetOffset => FlatOp::CGetOffset { rd, cb: rs },
        Op::CGetPerm => FlatOp::CGetPerm { rd, cb: rs },
        Op::CGetTag => FlatOp::CGetTag { rd, cb: rs },
        Op::CPtrCmp => FlatOp::CPtrCmp {
            rd,
            cb: rs,
            ct: rt,
            sel: CmpOp::from_u8(imm as u8).expect("validated at decode"),
        },
        Op::CToPtr => FlatOp::CToPtr { rd, cb: rs, ct: rt },
        Op::Syscall
        | Op::Break
        | Op::CIncBase
        | Op::CSetLen
        | Op::CFromPtr
        | Op::CSeal
        | Op::CUnseal
        | Op::CJr
        | Op::CJalr
        | Op::CGetPcc => FlatOp::Other(i),
    }
}

fn load(i: Instr, width: u8, signed: bool, via_cap: bool) -> FlatOp {
    FlatOp::Load {
        rd: i.rd,
        base: i.rs,
        off: i.imm,
        width,
        signed,
        via_cap,
    }
}

fn store(i: Instr, width: u8, via_cap: bool) -> FlatOp {
    FlatOp::Store {
        rv: i.rd,
        base: i.rs,
        off: i.imm,
        width,
        via_cap,
    }
}

/// A block's successor structure, derived from its terminal's
/// [`ControlKind`]. Chained drivers follow [`BlockExit::Branch`] and
/// [`BlockExit::Jump`] edges directly; everything else returns to the
/// dispatch loop (indirect targets are dynamic, capability jumps
/// invalidate the fetch window, effects may halt, and a clipped block
/// falls off the code image).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockExit {
    /// Conditional branch: taken target plus fall-through.
    Branch { taken: u64, fall: u64 },
    /// Unconditional direct jump (`j`/`jal`).
    Jump { target: u64 },
    /// Indirect jump through an integer register (`jr`/`jalr`).
    Indirect,
    /// Capability jump (`cjr`/`cjalr`): rewrites the PCC.
    CapJump,
    /// `syscall`/`break`.
    Effect,
    /// Clipped at the end of the code image (no terminal).
    FallOff,
}

/// One straight-line block: flattened ops plus everything needed to hoist
/// (and, on a mid-block trap, to reconstruct) per-instruction statistics,
/// plus the static successor targets for chained dispatch.
#[derive(Clone, Debug)]
pub(crate) struct Block {
    /// Entry pc (instruction index).
    pub start: u64,
    /// The executable micro-ops. 1:1 with `raw` as built; the peephole
    /// pass may rewrite slots in place and may drop the terminal slot
    /// when it fuses the compare + branch pair.
    pub ops: Box<[FlatOp]>,
    /// The raw opcodes, always 1:1 with the source instructions — the
    /// basis for instruction counts and partial-execution accounting.
    pub raw: Box<[Op]>,
    /// Σ `base_cycles` over the whole block, charged in one add.
    pub base_cycles: u64,
    /// Opcode histogram; `VmStats` reconstructs per-op retirement counts
    /// as `Σ hist × execs` plus the single-step residual.
    pub hist: Box<[(Op, u32)]>,
    /// Static successor targets.
    pub exit: BlockExit,
}

/// One past the last instruction of the block entered at `pc`: the first
/// block-ender inclusive, clipped to the end of the code image. The single
/// source of truth for block extent — `Block::build` and the dispatch
/// loop's length precheck must never disagree.
pub(crate) fn block_end(pc: u64, code: &[Instr]) -> usize {
    let mut end = pc as usize;
    while end < code.len() {
        let ends = code[end].op.ends_block();
        end += 1;
        if ends {
            break;
        }
    }
    end
}

impl Block {
    /// Builds the block entered at `pc`: instructions up to and including
    /// the first block-ender, clipped to the end of the code image.
    pub fn build(pc: u64, code: &[Instr]) -> Block {
        let start = pc as usize;
        let end = block_end(pc, code);
        let raw: Box<[Op]> = code[start..end].iter().map(|i| i.op).collect();
        let ops: Box<[FlatOp]> = code[start..end].iter().map(|&i| flatten(i)).collect();
        let base_cycles = raw.iter().map(|o| o.base_cycles()).sum();
        let mut hist: Vec<(Op, u32)> = Vec::new();
        for &op in raw.iter() {
            match hist.iter_mut().find(|(o, _)| *o == op) {
                Some((_, n)) => *n += 1,
                None => hist.push((op, 1)),
            }
        }
        let terminal = code[end - 1];
        let exit = match terminal.op.control_kind() {
            ControlKind::Branch => BlockExit::Branch {
                taken: terminal.imm as u64,
                fall: end as u64,
            },
            ControlKind::Jump => BlockExit::Jump {
                target: terminal.imm as u64,
            },
            ControlKind::IndirectJump => BlockExit::Indirect,
            ControlKind::CapJump => BlockExit::CapJump,
            ControlKind::Effect => BlockExit::Effect,
            ControlKind::None => BlockExit::FallOff,
        };
        Block {
            start: pc,
            ops,
            raw,
            base_cycles,
            hist: hist.into_boxed_slice(),
            exit,
        }
    }

    /// Source instructions covered by this block. `ops.len()` can be one
    /// shorter after terminal fusion; instruction counts always come from
    /// here.
    pub fn instr_len(&self) -> u64 {
        self.raw.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code() -> Vec<Instr> {
        vec![
            Instr::li(8, 0),                 // 0
            Instr::li(9, 1),                 // 1
            Instr::r3(Op::Addu, 8, 8, 9),    // 2
            Instr::new(Op::Beq, 0, 8, 0, 2), // 3: terminal
            Instr::li(4, 0),                 // 4
            Instr::syscall(0),               // 5: terminal
        ]
    }

    #[test]
    fn blocks_end_at_control_transfers() {
        let code = code();
        let b = Block::build(0, &code);
        assert_eq!(b.start, 0);
        assert_eq!(b.ops.len(), 4, "block runs through the beq inclusive");
        assert_eq!(b.raw.last(), Some(&Op::Beq));
        let b2 = Block::build(4, &code);
        assert_eq!(b2.ops.len(), 2);
        assert_eq!(b2.raw.last(), Some(&Op::Syscall));
    }

    #[test]
    fn mid_block_entry_builds_an_overlapping_block() {
        let code = code();
        let b = Block::build(2, &code);
        assert_eq!(b.start, 2);
        assert_eq!(b.ops.len(), 2);
    }

    #[test]
    fn block_without_terminal_clips_at_code_end() {
        let code = vec![Instr::nop(), Instr::nop()];
        let b = Block::build(0, &code);
        assert_eq!(b.ops.len(), 2);
        assert_eq!(b.exit, BlockExit::FallOff);
    }

    #[test]
    fn exits_record_static_successors() {
        let code = code();
        assert_eq!(
            Block::build(0, &code).exit,
            BlockExit::Branch { taken: 2, fall: 4 }
        );
        assert_eq!(Block::build(4, &code).exit, BlockExit::Effect);
        let jumps = vec![
            Instr::new(Op::J, 0, 0, 0, 7),
            Instr::new(Op::Jal, 0, 0, 0, 3),
            Instr::new(Op::Jr, 0, 8, 0, 0),
            Instr::new(Op::CJr, 0, 6, 0, 0),
        ];
        assert_eq!(Block::build(0, &jumps).exit, BlockExit::Jump { target: 7 });
        assert_eq!(Block::build(1, &jumps).exit, BlockExit::Jump { target: 3 });
        assert_eq!(Block::build(2, &jumps).exit, BlockExit::Indirect);
        assert_eq!(Block::build(3, &jumps).exit, BlockExit::CapJump);
    }

    #[test]
    fn histogram_and_cycles_sum_the_block() {
        let code = code();
        let b = Block::build(0, &code);
        assert_eq!(
            b.base_cycles,
            b.raw.iter().map(|o| o.base_cycles()).sum::<u64>()
        );
        let li = b.hist.iter().find(|(o, _)| *o == Op::Li).unwrap().1;
        assert_eq!(li, 2);
        assert_eq!(b.instr_len(), 4);
    }

    #[test]
    fn flatten_preresolves_immediates() {
        assert!(matches!(
            flatten(Instr::new(Op::Lui, 4, 0, 0, -1)),
            FlatOp::Li { rd: 4, v } if v == (-65536i64) as u64
        ));
        assert!(matches!(
            flatten(Instr::i2(Op::Sll, 4, 5, 200)),
            FlatOp::Sll { sh: 8, .. }
        ));
        assert!(matches!(
            flatten(Instr::c_ptr_cmp(2, 3, 4, CmpOp::Ltu)),
            FlatOp::CPtrCmp {
                sel: CmpOp::Ltu,
                ..
            }
        ));
        assert!(matches!(
            flatten(Instr::mem(Op::Clhu, 9, 3, -2)),
            FlatOp::Load {
                width: 2,
                signed: false,
                via_cap: true,
                off: -2,
                ..
            }
        ));
        assert!(matches!(flatten(Instr::syscall(3)), FlatOp::Other(_)));
    }
}
