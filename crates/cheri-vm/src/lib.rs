//! A cycle-approximate emulator for the CHERI ISA.
//!
//! This crate stands in for the paper's CHERI softcore processor
//! (synthesized at 100 MHz on a Stratix IV FPGA, §4): it executes
//! [`cheri_isa`] programs over [`cheri_mem::TaggedMemory`], enforcing the
//! capability model on every access and charging cycles through a
//! [`cheri_cache::Hierarchy`] configured like the paper's 16 KB L1 / 64 KB
//! L2.
//!
//! Design points taken from the paper:
//!
//! * Memory is reached three ways (§4): instruction fetch via **PCC**,
//!   legacy MIPS loads/stores via the **default data capability** (DDC,
//!   `c0`), and explicit capability loads/stores.
//! * `add`/`sub`/`addi` trap on signed overflow, the hardware-assisted
//!   As-if-Infinitely-Ranged behaviour sketched in §3.1.1.
//! * A low guard page is unmapped so that PDP-11-style null dereferences
//!   fault, modelling conventional page protection.
//!
//! # Example
//!
//! ```
//! use cheri_isa::{Instr, Op, Program};
//! use cheri_vm::{Vm, VmConfig};
//!
//! let mut p = Program::new();
//! p.code = vec![
//!     Instr::li(4, 41),                       // a0 = 41
//!     Instr::i2(Op::Addiu, 4, 4, 1),          // a0 += 1
//!     Instr::r3(Op::Addu, 2, 4, 0),           // v0 = a0
//!     Instr::syscall(0),                      // exit(v0)
//! ];
//! let mut vm = Vm::new(p, VmConfig::default());
//! let exit = vm.run(1_000).unwrap();
//! assert_eq!(exit.code, 42);
//! ```

mod backend;
mod codegen;
mod config;
mod ir;
mod machine;
mod opt;
mod trap;

pub use config::{BackendKind, OptLevel, VmConfig, NULL_GUARD_SIZE};
pub use machine::{ExitStatus, Vm, VmSnapshot, VmStats};
pub use trap::{TrapCause, VmTrap};

// Re-exported so a VM can be configured without naming cheri-cap/cheri-mem,
// and so multi-core hosts can share a memory system without naming
// cheri-cache.
pub use cheri_cache::{CacheStats, SharedHierarchy};
pub use cheri_cap::CapFormat;
pub use cheri_mem::UnrepresentablePolicy;

/// Syscall numbers understood by the emulator's tiny runtime.
pub mod sys {
    /// `exit(a0)` — halt with exit code.
    pub const EXIT: i32 = 0;
    /// `putchar(a0)` — append one byte to the console.
    pub const PUTCHAR: i32 = 1;
    /// `putint(a0)` — print a signed decimal and no newline.
    pub const PUTINT: i32 = 2;
    /// `malloc(a0) -> v0` (address) and `c1` (bounded capability).
    pub const MALLOC: i32 = 3;
    /// `free(a0)`.
    pub const FREE: i32 = 4;
    /// `clock() -> v0` — cycles so far.
    pub const CLOCK: i32 = 5;
    /// `memcpy(dst, src, len)` — tag-preserving copy, as the hardware's
    /// capability-oblivious `memcpy` behaves (paper §4). Capability ABIs
    /// pass bounded capabilities in `c3`/`c4` (checked); the MIPS ABI
    /// passes addresses in `a0`/`a1`.
    pub const MEMCPY: i32 = 6;
}
