//! Machine configuration and memory layout.

use cheri_cache::HierarchyConfig;
use cheri_cap::CapFormat;
use cheri_mem::UnrepresentablePolicy;

/// Size of the unmapped low guard page. Legacy (DDC-relative) accesses
/// below this address fault, modelling the page-protection behaviour that
/// makes null-pointer dereferences crash on conventional machines.
pub const NULL_GUARD_SIZE: u64 = 0x1000;

/// Which execution backend drives [`crate::Vm::run`]. Every backend is
/// bit-identical in architectural state and statistics (simulated cycles,
/// traps, `fetch_checks`, the traffic ledger); they differ only in host
/// wall-clock speed. See the README's "Execution backends" section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The basic-block superinstruction interpreter, one block per
    /// dispatch — the reference semantics every other backend is
    /// differenced against.
    Reference,
    /// The block interpreter with block chaining: a direct branch/jump
    /// terminal transfers straight to the already-compiled successor.
    Chained,
    /// The template tier: each micro-op pre-bound to a monomorphized
    /// handler at block compile time, plus chaining.
    Template,
    /// The native tier: each block JIT-compiled to host machine code in a
    /// W^X buffer (x86-64 only; other hosts silently run the template
    /// tier under this label), plus chaining. Capability ops, memory ops
    /// and syscalls trampoline into the interpreter.
    Native,
}

impl BackendKind {
    /// All backends, reference first (differential-suite order).
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Reference,
        BackendKind::Chained,
        BackendKind::Template,
        BackendKind::Native,
    ];

    /// Driver-facing name (`fig1 -- <scale> template`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Reference => "reference",
            BackendKind::Chained => "chained",
            BackendKind::Template => "template",
            BackendKind::Native => "native",
        }
    }

    /// Parses a driver-facing name.
    pub fn from_name(s: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// IR optimization level applied when a block is compiled. Gated so the
/// unoptimized path stays available as the differential baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// Flatten only; execute the micro-ops exactly as decoded.
    None,
    /// The peephole pass: constant folding into immediates,
    /// redundant-write elision, fused compare-and-branch.
    Peephole,
}

/// Configuration for a [`crate::Vm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VmConfig {
    /// Bytes of physical memory (default 16 MiB).
    pub mem_size: u64,
    /// Data cache model; `None` charges a flat cycle per access.
    pub cache: Option<HierarchyConfig>,
    /// Load address of the data segment.
    pub data_base: u64,
    /// Bytes reserved for the stack at the top of memory.
    pub stack_size: u64,
    /// Bytes of heap handed to the allocator between data and stack.
    pub heap_size: u64,
    /// In-memory capability representation: full 256-bit or low-fat
    /// 128-bit compressed. Affects `TaggedMemory` stores, the allocator's
    /// block shaping and the cache bytes charged by `CLC`/`CSC`.
    pub cap_format: CapFormat,
    /// What a Cap128 capability store does when the capability is not
    /// representable (ignored under [`CapFormat::Cap256`]).
    pub cap128_policy: UnrepresentablePolicy,
    /// Which execution backend drives the machine. All backends are
    /// bit-identical in everything but host speed.
    pub backend: BackendKind,
    /// IR optimization level applied when blocks are compiled.
    pub opt: OptLevel,
    /// Charge instruction fetch through the cache hierarchy, one
    /// transaction per superinstruction block entry (amortized exactly
    /// like the block's base cycles). Off by default: the data-side cost
    /// model stays byte-identical to earlier eras, and fetch traffic
    /// stays out of the ledger. No effect on cache-less configs.
    pub fetch_charging: bool,
}

impl VmConfig {
    /// The paper's softcore-like machine: 16 MiB memory, FPGA cache model,
    /// full 256-bit capabilities.
    pub fn fpga() -> VmConfig {
        VmConfig {
            mem_size: 16 << 20,
            cache: Some(HierarchyConfig::fpga_softcore()),
            data_base: 0x1_0000,
            stack_size: 1 << 20,
            heap_size: 8 << 20,
            cap_format: CapFormat::Cap256,
            cap128_policy: UnrepresentablePolicy::SideTable,
            backend: BackendKind::Template,
            opt: OptLevel::Peephole,
            fetch_charging: false,
        }
    }

    /// A fast functional-only machine (no cache model) for tests.
    pub fn functional() -> VmConfig {
        VmConfig {
            cache: None,
            ..VmConfig::fpga()
        }
    }

    /// The same machine with a `bytes` physical-memory quota. The stack
    /// stays at the top of the (smaller) memory and the heap shrinks to
    /// whatever fits between data segment and stack — the per-tenant
    /// memory-quota knob of the sandbox service.
    pub fn with_mem_size(mut self, bytes: u64) -> VmConfig {
        self.mem_size = bytes;
        self
    }

    /// The same machine with `format` capability storage.
    pub fn with_cap_format(mut self, format: CapFormat) -> VmConfig {
        self.cap_format = format;
        self
    }

    /// The same machine with `cache` as its cache/traffic model.
    pub fn with_cache(mut self, cache: HierarchyConfig) -> VmConfig {
        self.cache = Some(cache);
        self
    }

    /// The same machine with the L1 line narrowed to `bytes` (the 16- or
    /// 32-byte sub-block geometry that stops line rounding from absorbing
    /// the half-width Cap128 stores). No-op on cache-less configs.
    pub fn with_l1_line_bytes(mut self, bytes: u64) -> VmConfig {
        self.cache = self.cache.map(|c| c.with_l1_line_bytes(bytes));
        self
    }

    /// The same machine with `policy` for unrepresentable Cap128 stores.
    pub fn with_cap128_policy(mut self, policy: UnrepresentablePolicy) -> VmConfig {
        self.cap128_policy = policy;
        self
    }

    /// The same machine driven by `backend`.
    pub fn with_backend(mut self, backend: BackendKind) -> VmConfig {
        self.backend = backend;
        self
    }

    /// The same machine with blocks compiled at `opt`.
    pub fn with_opt_level(mut self, opt: OptLevel) -> VmConfig {
        self.opt = opt;
        self
    }

    /// The same machine with instruction fetch charged through the cache
    /// hierarchy (see [`VmConfig::fetch_charging`]).
    pub fn with_fetch_charging(mut self, on: bool) -> VmConfig {
        self.fetch_charging = on;
        self
    }
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig::fpga()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_are_consistent() {
        let c = VmConfig::default();
        assert!(c.data_base >= NULL_GUARD_SIZE);
        assert!(c.heap_size + c.stack_size + c.data_base <= c.mem_size);
        assert!(VmConfig::functional().cache.is_none());
        assert!(VmConfig::fpga().cache.is_some());
    }

    #[test]
    fn builders_set_cache_geometry() {
        let c = VmConfig::fpga().with_l1_line_bytes(16);
        let cache = c.cache.expect("fpga config has a cache model");
        assert_eq!(cache.l1.line_bytes, 16);
        assert!(cache.validate().is_ok());
        assert!(VmConfig::functional()
            .with_l1_line_bytes(16)
            .cache
            .is_none());
        let again = VmConfig::functional().with_cache(HierarchyConfig::desktop());
        assert_eq!(again.cache, Some(HierarchyConfig::desktop()));
    }

    #[test]
    fn builder_sets_memory_quota() {
        let c = VmConfig::functional().with_mem_size(4 << 20);
        assert_eq!(c.mem_size, 4 << 20);
        // The quota leaves the layout consistent: stack fits, heap shrinks.
        assert!(c.data_base + c.stack_size <= c.mem_size);
    }

    #[test]
    fn builders_set_capability_format() {
        let c = VmConfig::functional()
            .with_cap_format(CapFormat::Cap128)
            .with_cap128_policy(UnrepresentablePolicy::Trap);
        assert_eq!(c.cap_format, CapFormat::Cap128);
        assert_eq!(c.cap128_policy, UnrepresentablePolicy::Trap);
        assert_eq!(VmConfig::default().cap_format, CapFormat::Cap256);
    }

    #[test]
    fn builders_select_backend_and_opt_level() {
        assert_eq!(VmConfig::default().backend, BackendKind::Template);
        assert_eq!(VmConfig::default().opt, OptLevel::Peephole);
        let c = VmConfig::functional()
            .with_backend(BackendKind::Reference)
            .with_opt_level(OptLevel::None);
        assert_eq!((c.backend, c.opt), (BackendKind::Reference, OptLevel::None));
        assert!(!c.fetch_charging, "fetch charging defaults off");
        assert!(c.with_fetch_charging(true).fetch_charging);
        for k in BackendKind::ALL {
            assert_eq!(BackendKind::from_name(k.name()), Some(k));
        }
        assert_eq!(BackendKind::from_name("jit"), None);
    }
}
