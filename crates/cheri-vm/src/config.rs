//! Machine configuration and memory layout.

use cheri_cache::HierarchyConfig;
use cheri_cap::CapFormat;
use cheri_mem::UnrepresentablePolicy;

/// Size of the unmapped low guard page. Legacy (DDC-relative) accesses
/// below this address fault, modelling the page-protection behaviour that
/// makes null-pointer dereferences crash on conventional machines.
pub const NULL_GUARD_SIZE: u64 = 0x1000;

/// Configuration for a [`crate::Vm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VmConfig {
    /// Bytes of physical memory (default 16 MiB).
    pub mem_size: u64,
    /// Data cache model; `None` charges a flat cycle per access.
    pub cache: Option<HierarchyConfig>,
    /// Load address of the data segment.
    pub data_base: u64,
    /// Bytes reserved for the stack at the top of memory.
    pub stack_size: u64,
    /// Bytes of heap handed to the allocator between data and stack.
    pub heap_size: u64,
    /// In-memory capability representation: full 256-bit or low-fat
    /// 128-bit compressed. Affects `TaggedMemory` stores, the allocator's
    /// block shaping and the cache bytes charged by `CLC`/`CSC`.
    pub cap_format: CapFormat,
    /// What a Cap128 capability store does when the capability is not
    /// representable (ignored under [`CapFormat::Cap256`]).
    pub cap128_policy: UnrepresentablePolicy,
}

impl VmConfig {
    /// The paper's softcore-like machine: 16 MiB memory, FPGA cache model,
    /// full 256-bit capabilities.
    pub fn fpga() -> VmConfig {
        VmConfig {
            mem_size: 16 << 20,
            cache: Some(HierarchyConfig::fpga_softcore()),
            data_base: 0x1_0000,
            stack_size: 1 << 20,
            heap_size: 8 << 20,
            cap_format: CapFormat::Cap256,
            cap128_policy: UnrepresentablePolicy::SideTable,
        }
    }

    /// A fast functional-only machine (no cache model) for tests.
    pub fn functional() -> VmConfig {
        VmConfig {
            cache: None,
            ..VmConfig::fpga()
        }
    }

    /// The same machine with `format` capability storage.
    pub fn with_cap_format(mut self, format: CapFormat) -> VmConfig {
        self.cap_format = format;
        self
    }

    /// The same machine with `cache` as its cache/traffic model.
    pub fn with_cache(mut self, cache: HierarchyConfig) -> VmConfig {
        self.cache = Some(cache);
        self
    }

    /// The same machine with the L1 line narrowed to `bytes` (the 16- or
    /// 32-byte sub-block geometry that stops line rounding from absorbing
    /// the half-width Cap128 stores). No-op on cache-less configs.
    pub fn with_l1_line_bytes(mut self, bytes: u64) -> VmConfig {
        self.cache = self.cache.map(|c| c.with_l1_line_bytes(bytes));
        self
    }

    /// The same machine with `policy` for unrepresentable Cap128 stores.
    pub fn with_cap128_policy(mut self, policy: UnrepresentablePolicy) -> VmConfig {
        self.cap128_policy = policy;
        self
    }
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig::fpga()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_are_consistent() {
        let c = VmConfig::default();
        assert!(c.data_base >= NULL_GUARD_SIZE);
        assert!(c.heap_size + c.stack_size + c.data_base <= c.mem_size);
        assert!(VmConfig::functional().cache.is_none());
        assert!(VmConfig::fpga().cache.is_some());
    }

    #[test]
    fn builders_set_cache_geometry() {
        let c = VmConfig::fpga().with_l1_line_bytes(16);
        let cache = c.cache.expect("fpga config has a cache model");
        assert_eq!(cache.l1.line_bytes, 16);
        assert!(cache.validate().is_ok());
        assert!(VmConfig::functional()
            .with_l1_line_bytes(16)
            .cache
            .is_none());
        let again = VmConfig::functional().with_cache(HierarchyConfig::desktop());
        assert_eq!(again.cache, Some(HierarchyConfig::desktop()));
    }

    #[test]
    fn builders_set_capability_format() {
        let c = VmConfig::functional()
            .with_cap_format(CapFormat::Cap128)
            .with_cap128_policy(UnrepresentablePolicy::Trap);
        assert_eq!(c.cap_format, CapFormat::Cap128);
        assert_eq!(c.cap128_policy, UnrepresentablePolicy::Trap);
        assert_eq!(VmConfig::default().cap_format, CapFormat::Cap256);
    }
}
