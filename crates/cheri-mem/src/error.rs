//! Memory-system error conditions.

use std::error::Error;
use std::fmt;

/// A memory operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemError {
    /// The access touched bytes outside the backing store.
    OutOfRange {
        /// First byte of the attempted access.
        addr: u64,
        /// Width of the attempted access in bytes.
        len: u64,
    },
    /// A capability load or store used an address not aligned to the
    /// 32-byte capability granule.
    Misaligned {
        /// The misaligned address.
        addr: u64,
    },
    /// `free` was called on an address with no live allocation.
    BadFree {
        /// The offending address.
        addr: u64,
    },
    /// The allocator could not satisfy the request.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
    },
    /// A tagged capability could not be stored because it is not
    /// representable in the configured 128-bit compressed format and the
    /// memory's policy is to trap rather than escape to the side table.
    Unrepresentable {
        /// The store's target address.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, len } => {
                write!(f, "access of {len} bytes at {addr:#x} is outside memory")
            }
            MemError::Misaligned { addr } => {
                write!(f, "capability access at {addr:#x} is not 32-byte aligned")
            }
            MemError::BadFree { addr } => write!(f, "free of {addr:#x} which is not allocated"),
            MemError::OutOfMemory { requested } => {
                write!(f, "allocator cannot satisfy request for {requested} bytes")
            }
            MemError::Unrepresentable { addr } => {
                write!(
                    f,
                    "capability stored at {addr:#x} is not representable in 128 bits"
                )
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MemError::OutOfRange { addr: 0x10, len: 8 }
            .to_string()
            .contains("0x10"));
        assert!(MemError::Misaligned { addr: 3 }
            .to_string()
            .contains("aligned"));
        assert!(MemError::BadFree { addr: 1 }.to_string().contains("free"));
        assert!(MemError::OutOfMemory { requested: 9 }
            .to_string()
            .contains('9'));
    }
}
