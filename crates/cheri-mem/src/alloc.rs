//! A free-list allocator that speaks capabilities.
//!
//! The paper observes (§2) that `malloc()` is *outside* the C abstract
//! machine: the memory not yet returned by `malloc` is not yet part of the
//! abstract machine, and "it is the responsibility of the allocator ... to
//! correctly set the length on capabilities. Once set, it is impossible to
//! use the resulting capability to gain access to memory outside the
//! object." (§4)
//!
//! [`Allocator`] is a first-fit free-list allocator with coalescing over a
//! fixed heap region. [`Allocator::alloc_cap`] returns a capability bounded
//! to the *requested* size (byte-granularity protection) even though the
//! underlying block is padded to the 32-byte capability granule.

use crate::{MemError, MemResult};
use cheri_cap::{
    representable_align, CapFormat, Capability, CompressedCapability, Perms, CAP_ALIGN,
};
use std::collections::HashMap;

/// Allocation statistics, for tests and the evaluation harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated (padded block sizes).
    pub in_use: u64,
    /// High-water mark of `in_use`.
    pub peak: u64,
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of frees.
    pub frees: u64,
}

/// First-fit free-list allocator with address-ordered coalescing.
///
/// # Example
///
/// ```
/// use cheri_mem::Allocator;
/// use cheri_cap::Perms;
///
/// let mut heap = Allocator::new(0x10000, 0x8000);
/// let c = heap.alloc_cap(100, Perms::data())?;
/// assert_eq!(c.length(), 100);
/// assert_eq!(c.base() % 32, 0);
/// heap.free(c.base())?;
/// # Ok::<(), cheri_mem::MemError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Allocator {
    /// Free blocks as (base, size), sorted by base.
    free: Vec<(u64, u64)>,
    /// Live allocations: base -> padded size.
    live: HashMap<u64, u64>,
    base: u64,
    size: u64,
    format: CapFormat,
    stats: AllocStats,
}

impl Allocator {
    /// Creates an allocator managing `[base, base + size)`. The region is
    /// aligned inward to the 32-byte capability granule. Allocations are
    /// shaped for full 256-bit capabilities (no representability padding).
    pub fn new(base: u64, size: u64) -> Allocator {
        Allocator::with_format(base, size, CapFormat::Cap256)
    }

    /// Creates an allocator whose blocks are shaped for `format`.
    ///
    /// In [`CapFormat::Cap128`] mode every block's base and padded size are
    /// aligned to the `2^E` the block's size demands
    /// ([`cheri_cap::representable_align`]), so the capability handed out
    /// by [`Allocator::alloc_cap`] — and any in-bounds cursor derived from
    /// it — is always representable in the low-fat 128-bit format. This is
    /// the allocator-side half of the paper's compressed-capability story:
    /// "a real allocator pads allocations to make them representable".
    pub fn with_format(base: u64, size: u64, format: CapFormat) -> Allocator {
        let aligned_base = base.next_multiple_of(CAP_ALIGN);
        let end = (base + size) / CAP_ALIGN * CAP_ALIGN;
        let size = end.saturating_sub(aligned_base);
        Allocator {
            free: vec![(aligned_base, size)],
            live: HashMap::new(),
            base: aligned_base,
            size,
            format,
            stats: AllocStats::default(),
        }
    }

    /// The capability format this allocator shapes blocks for.
    pub fn format(&self) -> CapFormat {
        self.format
    }

    /// The managed region's base address.
    pub fn heap_base(&self) -> u64 {
        self.base
    }

    /// The managed region's size in bytes.
    pub fn heap_size(&self) -> u64 {
        self.size
    }

    /// Current statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Allocates `size` bytes (32-byte aligned, padded to a whole granule),
    /// returning the block's base address.
    ///
    /// Zero-byte requests consume one granule, so every allocation has a
    /// distinct address, as C requires.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] if no free block is large enough.
    pub fn alloc(&mut self, size: u64) -> MemResult<u64> {
        // Guest-controlled sizes reach this via the MALLOC syscall: padding
        // near-u64::MAX requests must report exhaustion, not overflow.
        let oom = MemError::OutOfMemory { requested: size };
        let mut padded = size.max(1).checked_next_multiple_of(CAP_ALIGN).ok_or(oom)?;
        let align = match self.format {
            CapFormat::Cap256 => CAP_ALIGN,
            // Low-fat mode: base and size must be multiples of the 2^E the
            // size demands, or the resulting capability's bounds are not
            // encodable. Padding can itself raise E at the mantissa
            // boundaries (lengths in (0xFFFF << E, 0x10000 << E]), so
            // iterate align→pad to a fixpoint; m << E with m <= 0xFFFF is
            // stable, so this terminates after at most a few rounds.
            CapFormat::Cap128 => loop {
                let a = representable_align(padded).max(CAP_ALIGN);
                let p = padded.checked_next_multiple_of(a).ok_or(oom)?;
                if p == padded {
                    break a;
                }
                padded = p;
            },
        };
        // First fit at the required alignment: the gap between the block's
        // base and the aligned base stays on the free list.
        let slot = self
            .free
            .iter()
            .position(|&(b, sz)| {
                let start = b.next_multiple_of(align);
                start - b <= sz && sz - (start - b) >= padded
            })
            .ok_or(MemError::OutOfMemory { requested: size })?;
        let (blk_base, blk_size) = self.free[slot];
        let start = blk_base.next_multiple_of(align);
        let lead = start - blk_base;
        let tail = blk_size - lead - padded;
        match (lead > 0, tail > 0) {
            (false, false) => {
                self.free.remove(slot);
            }
            (false, true) => self.free[slot] = (start + padded, tail),
            (true, false) => self.free[slot] = (blk_base, lead),
            (true, true) => {
                self.free[slot] = (blk_base, lead);
                self.free.insert(slot + 1, (start + padded, tail));
            }
        }
        self.live.insert(start, padded);
        self.stats.allocs += 1;
        self.stats.in_use += padded;
        self.stats.peak = self.stats.peak.max(self.stats.in_use);
        Ok(start)
    }

    /// Allocates `size` bytes and wraps the result in a capability whose
    /// bounds are exactly `[base, base + size)` with permissions `perms` —
    /// byte-granularity protection. In [`CapFormat::Cap128`] mode, a `size`
    /// whose exact bounds the compressed format cannot encode (only
    /// possible beyond the 16-bit mantissa, i.e. > 64 KiB) is widened to
    /// the block's padded, representable bounds instead: the low-fat
    /// trade-off the paper describes.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`].
    pub fn alloc_cap(&mut self, size: u64, perms: Perms) -> MemResult<Capability> {
        let base = self.alloc(size)?;
        let exact = Capability::new_mem(base, size, perms);
        if self.format == CapFormat::Cap128 && CompressedCapability::compress(&exact).is_none() {
            let padded = self.live[&base];
            return Ok(Capability::new_mem(base, padded, perms));
        }
        Ok(exact)
    }

    /// Returns the block at `addr` to the free list, coalescing neighbours.
    ///
    /// # Errors
    ///
    /// [`MemError::BadFree`] if `addr` is not the base of a live allocation
    /// (catches double frees and frees of interior pointers).
    pub fn free(&mut self, addr: u64) -> MemResult<()> {
        let size = self.live.remove(&addr).ok_or(MemError::BadFree { addr })?;
        self.stats.frees += 1;
        self.stats.in_use -= size;
        let pos = self.free.partition_point(|&(b, _)| b < addr);
        self.free.insert(pos, (addr, size));
        // Coalesce with successor, then predecessor.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
        Ok(())
    }

    /// Whether `addr` is the base of a live allocation, and its padded size.
    pub fn lookup(&self, addr: u64) -> Option<u64> {
        self.live.get(&addr).copied()
    }

    /// Iterates over `(base, padded_size)` of all live allocations.
    pub fn live_blocks(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.live.iter().map(|(&b, &s)| (b, s))
    }

    /// Finds the live allocation containing `addr`, if any. This is the
    /// object-table lookup the *Relaxed* interpreter model performs to
    /// rebuild a pointer from an integer (paper §5.1).
    pub fn block_containing(&self, addr: u64) -> Option<(u64, u64)> {
        self.live
            .iter()
            .find(|&(&b, &s)| addr >= b && addr < b + s)
            .map(|(&b, &s)| (b, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_is_aligned_and_bounded() {
        let mut a = Allocator::new(0x1000, 0x1000);
        let c = a.alloc_cap(100, Perms::data()).unwrap();
        assert_eq!(c.base() % CAP_ALIGN, 0);
        assert_eq!(c.length(), 100);
        assert!(c.tag());
    }

    #[test]
    fn zero_sized_allocations_are_distinct() {
        let mut a = Allocator::new(0, 0x1000);
        let x = a.alloc(0).unwrap();
        let y = a.alloc(0).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn exhaustion_reports_oom() {
        let mut a = Allocator::new(0, 64);
        a.alloc(64).unwrap();
        assert!(matches!(a.alloc(1), Err(MemError::OutOfMemory { .. })));
    }

    #[test]
    fn near_max_sizes_report_oom_not_overflow() {
        // malloc(-1) from a guest: padding must not wrap (release) or
        // panic (debug) — it must report exhaustion.
        for format in [CapFormat::Cap256, CapFormat::Cap128] {
            let mut a = Allocator::with_format(0, 0x1000, format);
            for size in [u64::MAX, u64::MAX - 30, 0xFFFF_FFFF_FFFF_FFE0] {
                assert!(
                    matches!(a.alloc(size), Err(MemError::OutOfMemory { .. })),
                    "{format:?}/{size:#x}"
                );
            }
            assert!(a.alloc(32).is_ok(), "heap still usable");
        }
    }

    #[test]
    fn free_and_reuse() {
        let mut a = Allocator::new(0, 0x100);
        let x = a.alloc(0x100).unwrap();
        assert!(a.alloc(1).is_err());
        a.free(x).unwrap();
        assert_eq!(a.alloc(0x100).unwrap(), x);
    }

    #[test]
    fn double_free_is_caught() {
        let mut a = Allocator::new(0, 0x1000);
        let x = a.alloc(32).unwrap();
        a.free(x).unwrap();
        assert_eq!(a.free(x).unwrap_err(), MemError::BadFree { addr: x });
    }

    #[test]
    fn free_of_interior_pointer_is_caught() {
        let mut a = Allocator::new(0, 0x1000);
        let x = a.alloc(64).unwrap();
        assert!(matches!(a.free(x + 8), Err(MemError::BadFree { .. })));
    }

    #[test]
    fn coalescing_reassembles_heap() {
        let mut a = Allocator::new(0, 0x300);
        let xs: Vec<u64> = (0..3).map(|_| a.alloc(0x100).unwrap()).collect();
        // Free out of order; coalescing should rebuild one block.
        a.free(xs[1]).unwrap();
        a.free(xs[0]).unwrap();
        a.free(xs[2]).unwrap();
        assert_eq!(a.alloc(0x300).unwrap(), xs[0]);
    }

    #[test]
    fn block_containing_finds_interior() {
        let mut a = Allocator::new(0x40, 0x1000);
        let x = a.alloc(100).unwrap();
        assert_eq!(a.block_containing(x + 50), Some((x, 128)));
        assert_eq!(a.block_containing(x + 128), None);
    }

    #[test]
    fn stats_track_usage() {
        let mut a = Allocator::new(0, 0x1000);
        let x = a.alloc(33).unwrap(); // pads to 64
        assert_eq!(a.stats().in_use, 64);
        assert_eq!(a.stats().peak, 64);
        a.free(x).unwrap();
        assert_eq!(a.stats().in_use, 0);
        assert_eq!(a.stats().peak, 64);
        assert_eq!(a.stats().allocs, 1);
        assert_eq!(a.stats().frees, 1);
    }

    #[test]
    fn unaligned_region_is_trimmed() {
        let a = Allocator::new(0x11, 0x100);
        assert_eq!(a.heap_base() % CAP_ALIGN, 0);
        assert!(a.heap_base() >= 0x11);
        assert!(a.heap_base() + a.heap_size() <= 0x111);
    }

    #[test]
    fn cap128_small_allocations_keep_byte_granularity() {
        let mut a = Allocator::with_format(0x1000, 0x10000, CapFormat::Cap128);
        let c = a.alloc_cap(100, Perms::data()).unwrap();
        assert_eq!(c.length(), 100, "byte-granular bounds below the mantissa");
        assert!(CompressedCapability::compress(&c).is_some());
    }

    #[test]
    fn cap128_large_allocations_get_representable_bounds() {
        let mut a = Allocator::with_format(0x20, 4 << 20, CapFormat::Cap128);
        // 0x12345 > 64 KiB needs E = 2: base and bounds must be 4-aligned.
        let c = a.alloc_cap(0x12345, Perms::data()).unwrap();
        assert!(c.length() >= 0x12345);
        assert_eq!(c.length() % 4, 0);
        assert!(CompressedCapability::compress(&c).is_some());
        // Every in-bounds cursor stays representable.
        for off in [0u64, 1, 0x12345, c.length()] {
            let p = c.set_offset(off).unwrap();
            assert!(
                CompressedCapability::compress(&p).is_some(),
                "offset {off:#x}"
            );
        }
        // free() still accepts the block base.
        a.free(c.base()).unwrap();
    }

    #[test]
    fn cap128_mantissa_boundary_sizes_stay_representable() {
        // Sizes just under 0x10000 << E pad up ACROSS the boundary, so the
        // exponent (and with it the required alignment) rises: the
        // align→pad fixpoint must catch that. 0x3FFFD0 pads to 0x40_0000,
        // which needs E = 7, not the E = 6 its pre-padding size suggests.
        let mut a = Allocator::with_format(0x40, 16 << 20, CapFormat::Cap128);
        for size in [0x3FFFD0u64, (0xFFFFu64 << 1) + 1, (0xFFFFu64 << 6) + 33] {
            let c = a.alloc_cap(size, Perms::data()).unwrap();
            assert!(
                CompressedCapability::compress(&c).is_some(),
                "size {size:#x} -> {c}"
            );
            a.free(c.base()).unwrap();
        }
    }

    #[test]
    fn cap256_allocator_is_unchanged_by_the_knob() {
        let mut a = Allocator::new(0, 0x1000);
        assert_eq!(a.format(), CapFormat::Cap256);
        let x = a.alloc(33).unwrap();
        assert_eq!(a.stats().in_use, 64);
        a.free(x).unwrap();
    }

    proptest! {
        /// Cap128 allocations always yield representable capabilities, and
        /// the heap survives alloc/free churn at mixed alignments. The
        /// size strategy deliberately hugs the mantissa boundaries
        /// (0x10000 << E), where padding interacts with the exponent.
        #[test]
        fn cap128_blocks_always_compress(
            sizes in proptest::collection::vec(
                prop_oneof![
                    1u64..200_000,
                    (0u32..8, -64i64..64).prop_map(|(e, d)| {
                        (0x1_0000u64 << e).saturating_add_signed(d).max(1)
                    }),
                ],
                1..12,
            )
        ) {
            let mut a = Allocator::with_format(0x40, 64 << 20, CapFormat::Cap128);
            let mut held = Vec::new();
            for s in sizes {
                let c = a.alloc_cap(s, Perms::data()).unwrap();
                prop_assert!(CompressedCapability::compress(&c).is_some(), "size {s:#x}");
                held.push(c.base());
            }
            for b in held {
                a.free(b).unwrap();
            }
            prop_assert_eq!(a.stats().in_use, 0);
        }

        /// Live blocks never overlap and always lie within the heap.
        #[test]
        fn blocks_are_disjoint(ops in proptest::collection::vec((0u64..200, any::<bool>()), 1..60)) {
            let mut a = Allocator::new(0x100, 0x4000);
            let mut held: Vec<u64> = Vec::new();
            for (sz, do_free) in ops {
                if do_free && !held.is_empty() {
                    let x = held.swap_remove(sz as usize % held.len());
                    a.free(x).unwrap();
                } else if let Ok(x) = a.alloc(sz) {
                    held.push(x);
                }
            }
            let mut blocks: Vec<(u64, u64)> = a.live_blocks().collect();
            blocks.sort_unstable();
            for w in blocks.windows(2) {
                prop_assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {:?}", w);
            }
            for &(b, s) in &blocks {
                prop_assert!(b >= a.heap_base());
                prop_assert!(b + s <= a.heap_base() + a.heap_size());
            }
        }

        /// Free + coalesce always allows reallocating the whole heap.
        #[test]
        fn full_free_restores_capacity(sizes in proptest::collection::vec(1u64..100, 1..30)) {
            let mut a = Allocator::new(0, 0x8000);
            let blocks: Vec<u64> = sizes.iter().filter_map(|&s| a.alloc(s).ok()).collect();
            for b in blocks {
                a.free(b).unwrap();
            }
            prop_assert!(a.alloc(a.heap_size()).is_ok());
        }
    }
}
