//! A free-list allocator that speaks capabilities.
//!
//! The paper observes (§2) that `malloc()` is *outside* the C abstract
//! machine: the memory not yet returned by `malloc` is not yet part of the
//! abstract machine, and "it is the responsibility of the allocator ... to
//! correctly set the length on capabilities. Once set, it is impossible to
//! use the resulting capability to gain access to memory outside the
//! object." (§4)
//!
//! [`Allocator`] is a first-fit free-list allocator with coalescing over a
//! fixed heap region. [`Allocator::alloc_cap`] returns a capability bounded
//! to the *requested* size (byte-granularity protection) even though the
//! underlying block is padded to the 32-byte capability granule.

use crate::{MemError, MemResult};
use cheri_cap::{Capability, Perms, CAP_ALIGN};
use std::collections::HashMap;

/// Allocation statistics, for tests and the evaluation harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated (padded block sizes).
    pub in_use: u64,
    /// High-water mark of `in_use`.
    pub peak: u64,
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of frees.
    pub frees: u64,
}

/// First-fit free-list allocator with address-ordered coalescing.
///
/// # Example
///
/// ```
/// use cheri_mem::Allocator;
/// use cheri_cap::Perms;
///
/// let mut heap = Allocator::new(0x10000, 0x8000);
/// let c = heap.alloc_cap(100, Perms::data())?;
/// assert_eq!(c.length(), 100);
/// assert_eq!(c.base() % 32, 0);
/// heap.free(c.base())?;
/// # Ok::<(), cheri_mem::MemError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Allocator {
    /// Free blocks as (base, size), sorted by base.
    free: Vec<(u64, u64)>,
    /// Live allocations: base -> padded size.
    live: HashMap<u64, u64>,
    base: u64,
    size: u64,
    stats: AllocStats,
}

impl Allocator {
    /// Creates an allocator managing `[base, base + size)`. The region is
    /// aligned inward to the 32-byte capability granule.
    pub fn new(base: u64, size: u64) -> Allocator {
        let aligned_base = base.next_multiple_of(CAP_ALIGN);
        let end = (base + size) / CAP_ALIGN * CAP_ALIGN;
        let size = end.saturating_sub(aligned_base);
        Allocator {
            free: vec![(aligned_base, size)],
            live: HashMap::new(),
            base: aligned_base,
            size,
            stats: AllocStats::default(),
        }
    }

    /// The managed region's base address.
    pub fn heap_base(&self) -> u64 {
        self.base
    }

    /// The managed region's size in bytes.
    pub fn heap_size(&self) -> u64 {
        self.size
    }

    /// Current statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Allocates `size` bytes (32-byte aligned, padded to a whole granule),
    /// returning the block's base address.
    ///
    /// Zero-byte requests consume one granule, so every allocation has a
    /// distinct address, as C requires.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] if no free block is large enough.
    pub fn alloc(&mut self, size: u64) -> MemResult<u64> {
        let padded = size.max(1).next_multiple_of(CAP_ALIGN);
        let slot = self
            .free
            .iter()
            .position(|&(_, sz)| sz >= padded)
            .ok_or(MemError::OutOfMemory { requested: size })?;
        let (blk_base, blk_size) = self.free[slot];
        if blk_size == padded {
            self.free.remove(slot);
        } else {
            self.free[slot] = (blk_base + padded, blk_size - padded);
        }
        self.live.insert(blk_base, padded);
        self.stats.allocs += 1;
        self.stats.in_use += padded;
        self.stats.peak = self.stats.peak.max(self.stats.in_use);
        Ok(blk_base)
    }

    /// Allocates `size` bytes and wraps the result in a capability whose
    /// bounds are exactly `[base, base + size)` with permissions `perms`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`].
    pub fn alloc_cap(&mut self, size: u64, perms: Perms) -> MemResult<Capability> {
        let base = self.alloc(size)?;
        Ok(Capability::new_mem(base, size, perms))
    }

    /// Returns the block at `addr` to the free list, coalescing neighbours.
    ///
    /// # Errors
    ///
    /// [`MemError::BadFree`] if `addr` is not the base of a live allocation
    /// (catches double frees and frees of interior pointers).
    pub fn free(&mut self, addr: u64) -> MemResult<()> {
        let size = self.live.remove(&addr).ok_or(MemError::BadFree { addr })?;
        self.stats.frees += 1;
        self.stats.in_use -= size;
        let pos = self.free.partition_point(|&(b, _)| b < addr);
        self.free.insert(pos, (addr, size));
        // Coalesce with successor, then predecessor.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
        Ok(())
    }

    /// Whether `addr` is the base of a live allocation, and its padded size.
    pub fn lookup(&self, addr: u64) -> Option<u64> {
        self.live.get(&addr).copied()
    }

    /// Iterates over `(base, padded_size)` of all live allocations.
    pub fn live_blocks(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.live.iter().map(|(&b, &s)| (b, s))
    }

    /// Finds the live allocation containing `addr`, if any. This is the
    /// object-table lookup the *Relaxed* interpreter model performs to
    /// rebuild a pointer from an integer (paper §5.1).
    pub fn block_containing(&self, addr: u64) -> Option<(u64, u64)> {
        self.live
            .iter()
            .find(|&(&b, &s)| addr >= b && addr < b + s)
            .map(|(&b, &s)| (b, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_is_aligned_and_bounded() {
        let mut a = Allocator::new(0x1000, 0x1000);
        let c = a.alloc_cap(100, Perms::data()).unwrap();
        assert_eq!(c.base() % CAP_ALIGN, 0);
        assert_eq!(c.length(), 100);
        assert!(c.tag());
    }

    #[test]
    fn zero_sized_allocations_are_distinct() {
        let mut a = Allocator::new(0, 0x1000);
        let x = a.alloc(0).unwrap();
        let y = a.alloc(0).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn exhaustion_reports_oom() {
        let mut a = Allocator::new(0, 64);
        a.alloc(64).unwrap();
        assert!(matches!(a.alloc(1), Err(MemError::OutOfMemory { .. })));
    }

    #[test]
    fn free_and_reuse() {
        let mut a = Allocator::new(0, 0x100);
        let x = a.alloc(0x100).unwrap();
        assert!(a.alloc(1).is_err());
        a.free(x).unwrap();
        assert_eq!(a.alloc(0x100).unwrap(), x);
    }

    #[test]
    fn double_free_is_caught() {
        let mut a = Allocator::new(0, 0x1000);
        let x = a.alloc(32).unwrap();
        a.free(x).unwrap();
        assert_eq!(a.free(x).unwrap_err(), MemError::BadFree { addr: x });
    }

    #[test]
    fn free_of_interior_pointer_is_caught() {
        let mut a = Allocator::new(0, 0x1000);
        let x = a.alloc(64).unwrap();
        assert!(matches!(a.free(x + 8), Err(MemError::BadFree { .. })));
    }

    #[test]
    fn coalescing_reassembles_heap() {
        let mut a = Allocator::new(0, 0x300);
        let xs: Vec<u64> = (0..3).map(|_| a.alloc(0x100).unwrap()).collect();
        // Free out of order; coalescing should rebuild one block.
        a.free(xs[1]).unwrap();
        a.free(xs[0]).unwrap();
        a.free(xs[2]).unwrap();
        assert_eq!(a.alloc(0x300).unwrap(), xs[0]);
    }

    #[test]
    fn block_containing_finds_interior() {
        let mut a = Allocator::new(0x40, 0x1000);
        let x = a.alloc(100).unwrap();
        assert_eq!(a.block_containing(x + 50), Some((x, 128)));
        assert_eq!(a.block_containing(x + 128), None);
    }

    #[test]
    fn stats_track_usage() {
        let mut a = Allocator::new(0, 0x1000);
        let x = a.alloc(33).unwrap(); // pads to 64
        assert_eq!(a.stats().in_use, 64);
        assert_eq!(a.stats().peak, 64);
        a.free(x).unwrap();
        assert_eq!(a.stats().in_use, 0);
        assert_eq!(a.stats().peak, 64);
        assert_eq!(a.stats().allocs, 1);
        assert_eq!(a.stats().frees, 1);
    }

    #[test]
    fn unaligned_region_is_trimmed() {
        let a = Allocator::new(0x11, 0x100);
        assert_eq!(a.heap_base() % CAP_ALIGN, 0);
        assert!(a.heap_base() >= 0x11);
        assert!(a.heap_base() + a.heap_size() <= 0x111);
    }

    proptest! {
        /// Live blocks never overlap and always lie within the heap.
        #[test]
        fn blocks_are_disjoint(ops in proptest::collection::vec((0u64..200, any::<bool>()), 1..60)) {
            let mut a = Allocator::new(0x100, 0x4000);
            let mut held: Vec<u64> = Vec::new();
            for (sz, do_free) in ops {
                if do_free && !held.is_empty() {
                    let x = held.swap_remove(sz as usize % held.len());
                    a.free(x).unwrap();
                } else if let Ok(x) = a.alloc(sz) {
                    held.push(x);
                }
            }
            let mut blocks: Vec<(u64, u64)> = a.live_blocks().collect();
            blocks.sort_unstable();
            for w in blocks.windows(2) {
                prop_assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {:?}", w);
            }
            for &(b, s) in &blocks {
                prop_assert!(b >= a.heap_base());
                prop_assert!(b + s <= a.heap_base() + a.heap_size());
            }
        }

        /// Free + coalesce always allows reallocating the whole heap.
        #[test]
        fn full_free_restores_capacity(sizes in proptest::collection::vec(1u64..100, 1..30)) {
            let mut a = Allocator::new(0, 0x8000);
            let blocks: Vec<u64> = sizes.iter().filter_map(|&s| a.alloc(s).ok()).collect();
            for b in blocks {
                a.free(b).unwrap();
            }
            prop_assert!(a.alloc(a.heap_size()).is_ok());
        }
    }
}
