//! Tagged memory: the substrate that makes capabilities unforgeable.
//!
//! CHERI capabilities "reside either in a dedicated register file or can be
//! spilled to memory, where their integrity is preserved by hardware-managed
//! tagged memory. Capabilities must be naturally aligned and there is a
//! single tag bit per 256 bits of memory. Conventional stores to an
//! in-memory capability cause the tag bit to be cleared, invalidating the
//! capability." (paper §4)
//!
//! This crate provides:
//!
//! * [`TaggedMemory`] — a flat virtual memory with the out-of-band tag bits
//!   and the store-clears-tag rule, plus a capability-oblivious
//!   [`TaggedMemory::memcpy`] that preserves tags exactly when hardware
//!   would (the `memcpy`/union requirement that motivated CHERIv2, §4).
//! * [`Allocator`] — a free-list allocator that hands out capabilities
//!   bounded to the allocation, modelling the paper's observation that
//!   `malloc` sits *below* the C abstract machine.
//!
//! # Example
//!
//! ```
//! use cheri_cap::{Capability, Perms};
//! use cheri_mem::TaggedMemory;
//!
//! let mut mem = TaggedMemory::new(0x10000);
//! let c = Capability::new_mem(0x40, 64, Perms::data());
//! mem.write_cap(0x80, &c)?;
//! assert!(mem.read_cap(0x80)?.tag());
//! // A plain data store over the capability strips its tag: forgery fails.
//! mem.write_u8(0x90, 0xFF)?;
//! assert!(!mem.read_cap(0x80)?.tag());
//! # Ok::<(), cheri_mem::MemError>(())
//! ```

mod alloc;
mod error;
mod tagged;

pub use alloc::{AllocStats, Allocator};
pub use error::MemError;
pub use tagged::{MemSnapshot, TaggedMemory, UnrepresentablePolicy};

// Re-exported so memory-format configuration needs only this crate.
pub use cheri_cap::CapFormat;

/// Result alias for memory operations.
pub type MemResult<T> = Result<T, MemError>;
