//! The tagged flat memory.

use crate::{MemError, MemResult};
use cheri_cap::{
    decode_capability, encode_capability, CapFormat, Capability, CompressedCapability,
    CompressionStats, CAP128_SIZE_BYTES, CAP_ALIGN, CAP_SIZE_BYTES,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Retired backing stores, reused by [`TaggedMemory::with_format`] so a
/// hot loop constructing machines (the fig benches build a fresh 16 MiB
/// memory per run) re-zeroes only the chunks the previous run dirtied
/// instead of memsetting the whole store. Only memories of at least
/// [`POOL_MIN_BYTES`] are pooled, bounded by [`POOL_MAX_ENTRIES`] *and*
/// [`POOL_MAX_BYTES`] of total resident capacity (so one giant or many
/// odd-sized memories cannot pin unbounded host memory);
/// [`TaggedMemory::reset`] guarantees a reused store is indistinguishable
/// from a fresh one.
static POOL: Mutex<Vec<TaggedMemory>> = Mutex::new(Vec::new());
const POOL_MIN_BYTES: u64 = 1 << 20;
const POOL_MAX_ENTRIES: usize = 8;
const POOL_MAX_BYTES: u64 = 256 << 20;

/// What [`TaggedMemory::write_cap`] does in [`CapFormat::Cap128`] mode with
/// a capability the low-fat format cannot represent exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum UnrepresentablePolicy {
    /// Store the full 256-bit form in a side table and mark the granule
    /// with an escape pattern — semantics stay identical to
    /// [`CapFormat::Cap256`] at the cost of one side-table entry. This
    /// models an implementation that reserves a small region of full-width
    /// capability storage for the (rare) irregular capabilities.
    #[default]
    SideTable,
    /// Refuse the store of a *tagged* unrepresentable capability with
    /// [`MemError::Unrepresentable`] — the strict-hardware behaviour.
    /// Untagged unrepresentable bit patterns are plain data and still
    /// escape to the side table so their bytes survive.
    Trap,
}

/// Escape pattern marking a Cap128 slot whose real content lives in the
/// side table. The metadata word's top bit is never produced by
/// [`CompressedCapability::compress`] (it uses bits 0..55), so a genuine
/// compressed capability can never collide with the marker.
const CAP128_ESCAPE: [u8; CAP128_SIZE_BYTES] = [
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x80,
];

/// A flat, byte-addressable virtual memory with one out-of-band tag bit per
/// 32-byte granule.
///
/// Invariants maintained:
///
/// * a granule's tag is set **only** by [`TaggedMemory::write_cap`] storing
///   a tagged capability at that granule;
/// * any plain data store overlapping a granule clears its tag;
/// * [`TaggedMemory::memcpy`] preserves a destination granule's tag exactly
///   when the copy is granule-to-granule aligned and the source granule was
///   tagged — the behaviour that lets `memcpy` and unions move capabilities
///   without knowing they are there (paper §4).
#[derive(Clone, Debug)]
pub struct TaggedMemory {
    bytes: Vec<u8>,
    tags: Vec<bool>,
    /// One bit per [`DIRTY_CHUNK`]-byte chunk that has been written since
    /// construction or the last [`TaggedMemory::reset`]. Lets `reset` re-zero
    /// only the touched chunks instead of the whole backing store, which is
    /// what makes pooling memories across interpreter runs cheap.
    dirty: Vec<u64>,
    format: CapFormat,
    policy: UnrepresentablePolicy,
    /// Full 256-bit escape storage for Cap128 granules whose capability the
    /// low-fat format cannot represent, keyed by granule base address.
    side: HashMap<u64, [u8; CAP_SIZE_BYTES]>,
    comp_stats: CompressionStats,
}

/// Dirty-tracking granularity: 64 KiB chunks (a multiple of [`CAP_ALIGN`]).
const DIRTY_CHUNK: u64 = 64 * 1024;

impl TaggedMemory {
    /// Creates a zeroed memory of `size` bytes (rounded up to a whole number
    /// of 32-byte granules), all tags clear, storing full 256-bit
    /// capabilities.
    pub fn new(size: u64) -> TaggedMemory {
        TaggedMemory::with_format(size, CapFormat::Cap256, UnrepresentablePolicy::SideTable)
    }

    /// Creates a zeroed memory whose capability stores use `format`.
    ///
    /// In [`CapFormat::Cap128`] mode every [`TaggedMemory::write_cap`]
    /// compresses the capability to the low-fat 16-byte form; `policy`
    /// decides what happens to the capabilities that format cannot
    /// represent. `policy` is irrelevant in [`CapFormat::Cap256`] mode.
    pub fn with_format(
        size: u64,
        format: CapFormat,
        policy: UnrepresentablePolicy,
    ) -> TaggedMemory {
        let granules = size.div_ceil(CAP_ALIGN);
        let size = granules * CAP_ALIGN;
        if size >= POOL_MIN_BYTES {
            let reused = {
                let mut pool = POOL.lock().expect("memory pool poisoned");
                pool.iter()
                    .position(|m| m.size() == size)
                    .map(|i| pool.swap_remove(i))
            };
            if let Some(mut m) = reused {
                m.reset();
                m.format = format;
                m.policy = policy;
                return m;
            }
        }
        let chunks = size.div_ceil(DIRTY_CHUNK);
        TaggedMemory {
            bytes: vec![0; size as usize],
            tags: vec![false; granules as usize],
            dirty: vec![0; chunks.div_ceil(64) as usize],
            format,
            policy,
            side: HashMap::new(),
            comp_stats: CompressionStats::default(),
        }
    }

    /// The capability storage format this memory was built with.
    pub fn format(&self) -> CapFormat {
        self.format
    }

    /// Compression statistics accumulated by Cap128 capability stores:
    /// attempts count tagged capabilities offered to the compressor,
    /// successes those that fit the 128-bit format exactly. Always zero in
    /// [`CapFormat::Cap256`] mode.
    pub fn compression_stats(&self) -> CompressionStats {
        self.comp_stats
    }

    /// Live escape-table entries (Cap128 granules storing their full
    /// 256-bit form out of line).
    pub fn side_table_len(&self) -> usize {
        self.side.len()
    }

    /// Bytes of capability storage currently in use: one slot of
    /// [`CapFormat::stored_bytes`] per tagged granule, plus the full-width
    /// side-table entries. This is the number behind the paper's
    /// memory-footprint claim for 128-bit capabilities.
    pub fn cap_footprint_bytes(&self) -> u64 {
        let tagged = self.tags.iter().filter(|&&t| t).count() as u64;
        tagged * self.format.stored_bytes() + self.side.len() as u64 * CAP_SIZE_BYTES as u64
    }

    /// Marks `[addr, addr+len)` dirty. Callers have already bounds-checked.
    fn mark_dirty(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr / DIRTY_CHUNK;
        let last = (addr + len - 1) / DIRTY_CHUNK;
        for c in first..=last {
            self.dirty[(c / 64) as usize] |= 1 << (c % 64);
        }
    }

    /// Restores the memory to its freshly-constructed state — all bytes
    /// zero, all tags clear — touching only the chunks dirtied since the
    /// last reset. Cost is proportional to the footprint actually written,
    /// not to the memory's size.
    pub fn reset(&mut self) {
        self.side.clear();
        self.comp_stats = CompressionStats::default();
        for w in 0..self.dirty.len() {
            let mut bits = self.dirty[w];
            self.dirty[w] = 0;
            while bits != 0 {
                let b = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                let start = (w as u64 * 64 + b) * DIRTY_CHUNK;
                let end = (start + DIRTY_CHUNK).min(self.size());
                self.bytes[start as usize..end as usize].fill(0);
                let g0 = (start / CAP_ALIGN) as usize;
                let g1 = (end.div_ceil(CAP_ALIGN) as usize).min(self.tags.len());
                self.tags[g0..g1].fill(false);
            }
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn check(&self, addr: u64, len: u64) -> MemResult<usize> {
        if addr.checked_add(len).is_none_or(|end| end > self.size()) {
            return Err(MemError::OutOfRange { addr, len });
        }
        Ok(addr as usize)
    }

    fn clear_tags_over(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = (addr / CAP_ALIGN) as usize;
        let last = (((addr + len - 1) / CAP_ALIGN) as usize).min(self.tags.len() - 1);
        for t in &mut self.tags[first..=last] {
            *t = false;
        }
    }

    /// Forgets the side-table entries of every granule `[addr, addr+len)`
    /// touches — a plain data write has scribbled over the escape slot, so
    /// the out-of-line full-width copy no longer describes the bytes.
    fn drop_side_over(&mut self, addr: u64, len: u64) {
        if self.side.is_empty() || len == 0 {
            return;
        }
        let first = addr / CAP_ALIGN * CAP_ALIGN;
        let last = (addr + len - 1) / CAP_ALIGN * CAP_ALIGN;
        // Walk whichever is smaller: the written range or the (typically
        // tiny) side table — a heap-sized memset must not do a HashMap
        // probe per granule.
        if ((last - first) / CAP_ALIGN + 1) as usize <= self.side.len() {
            let mut g = first;
            while g <= last {
                self.side.remove(&g);
                g += CAP_ALIGN;
            }
        } else {
            self.side.retain(|&g, _| g < first || g > last);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range leaves the backing store.
    pub fn read_bytes(&self, addr: u64, len: u64) -> MemResult<&[u8]> {
        let a = self.check(addr, len)?;
        Ok(&self.bytes[a..a + len as usize])
    }

    /// Writes `data` at `addr`, clearing the tags of every granule touched.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range leaves the backing store.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> MemResult<()> {
        let a = self.check(addr, data.len() as u64)?;
        self.bytes[a..a + data.len()].copy_from_slice(data);
        self.clear_tags_over(addr, data.len() as u64);
        self.drop_side_over(addr, data.len() as u64);
        self.mark_dirty(addr, data.len() as u64);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn read_u8(&self, addr: u64) -> MemResult<u8> {
        Ok(self.read_bytes(addr, 1)?[0])
    }

    /// Reads a little-endian 16-bit value.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn read_u16(&self, addr: u64) -> MemResult<u16> {
        let b = self.read_bytes(addr, 2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian 32-bit value.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn read_u32(&self, addr: u64) -> MemResult<u32> {
        let b = self.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian 64-bit value.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn read_u64(&self, addr: u64) -> MemResult<u64> {
        let b = self.read_bytes(addr, 8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes one byte (clears the granule's tag).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn write_u8(&mut self, addr: u64, v: u8) -> MemResult<()> {
        self.write_bytes(addr, &[v])
    }

    /// Writes a little-endian 16-bit value (clears overlapping tags).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn write_u16(&mut self, addr: u64, v: u16) -> MemResult<()> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian 32-bit value (clears overlapping tags).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn write_u32(&mut self, addr: u64, v: u32) -> MemResult<()> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian 64-bit value (clears overlapping tags).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn write_u64(&mut self, addr: u64, v: u64) -> MemResult<()> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Reads a little-endian value of `width` ∈ {1, 2, 4, 8} bytes,
    /// zero-extended.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn read_uint(&self, addr: u64, width: u8) -> MemResult<u64> {
        match width {
            1 => self.read_u8(addr).map(u64::from),
            2 => self.read_u16(addr).map(u64::from),
            4 => self.read_u32(addr).map(u64::from),
            8 => self.read_u64(addr),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// Writes the low `width` ∈ {1, 2, 4, 8} bytes of `v`, little-endian.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: u64, v: u64, width: u8) -> MemResult<()> {
        match width {
            1 => self.write_u8(addr, v as u8),
            2 => self.write_u16(addr, v as u16),
            4 => self.write_u32(addr, v as u32),
            8 => self.write_u64(addr, v),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// `CLC`: loads the capability stored at `addr` (32-byte aligned),
    /// together with its tag.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfRange`].
    pub fn read_cap(&self, addr: u64) -> MemResult<Capability> {
        if addr % CAP_ALIGN != 0 {
            return Err(MemError::Misaligned { addr });
        }
        let a = self.check(addr, CAP_SIZE_BYTES as u64)?;
        let tag = self.tags[(addr / CAP_ALIGN) as usize];
        match self.format {
            CapFormat::Cap256 => {
                let mut buf = [0u8; CAP_SIZE_BYTES];
                buf.copy_from_slice(&self.bytes[a..a + CAP_SIZE_BYTES]);
                Ok(decode_capability(&buf, tag))
            }
            CapFormat::Cap128 => {
                let mut buf = [0u8; CAP128_SIZE_BYTES];
                buf.copy_from_slice(&self.bytes[a..a + CAP128_SIZE_BYTES]);
                if buf == CAP128_ESCAPE {
                    if let Some(full) = self.side.get(&addr) {
                        return Ok(decode_capability(full, tag));
                    }
                    // Plain data that happens to spell the escape pattern:
                    // fall through and decode it as a (necessarily
                    // untagged) compressed slot.
                }
                Ok(CompressedCapability::from_bytes(&buf).decompress_with_tag(tag))
            }
        }
    }

    /// `CSC`: stores `cap` at `addr` (32-byte aligned), setting the
    /// granule's tag to the capability's tag.
    ///
    /// This is the **only** operation that can set a tag bit.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfRange`].
    pub fn write_cap(&mut self, addr: u64, cap: &Capability) -> MemResult<()> {
        if addr % CAP_ALIGN != 0 {
            return Err(MemError::Misaligned { addr });
        }
        let a = self.check(addr, CAP_SIZE_BYTES as u64)?;
        match self.format {
            CapFormat::Cap256 => {
                self.bytes[a..a + CAP_SIZE_BYTES].copy_from_slice(&encode_capability(cap));
            }
            CapFormat::Cap128 => {
                let z = if cap.tag() {
                    self.comp_stats.try_compress(cap)
                } else {
                    CompressedCapability::compress(cap)
                };
                let slot = match z {
                    Some(z) => {
                        self.side.remove(&addr);
                        z.to_bytes()
                    }
                    None if cap.tag() && self.policy == UnrepresentablePolicy::Trap => {
                        return Err(MemError::Unrepresentable { addr });
                    }
                    None => {
                        self.side.insert(addr, encode_capability(cap));
                        CAP128_ESCAPE
                    }
                };
                self.bytes[a..a + CAP128_SIZE_BYTES].copy_from_slice(&slot);
                // The rest of the reserved granule is architectural zero —
                // the 128-bit store only moves half the bytes.
                self.bytes[a + CAP128_SIZE_BYTES..a + CAP_SIZE_BYTES].fill(0);
            }
        }
        self.tags[(addr / CAP_ALIGN) as usize] = cap.tag();
        self.mark_dirty(addr, CAP_SIZE_BYTES as u64);
        Ok(())
    }

    /// The tag of the granule containing `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn tag_at(&self, addr: u64) -> MemResult<bool> {
        self.check(addr, 1)?;
        Ok(self.tags[(addr / CAP_ALIGN) as usize])
    }

    /// Clears the tag of the granule containing `addr` (e.g. the collector
    /// invalidating a stale capability).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn clear_tag_at(&mut self, addr: u64) -> MemResult<()> {
        self.check(addr, 1)?;
        self.tags[(addr / CAP_ALIGN) as usize] = false;
        Ok(())
    }

    /// Iterates over the addresses of all tagged granules — the precise
    /// root/heap scan the tag-accurate garbage collector performs.
    pub fn tagged_granules(&self) -> impl Iterator<Item = u64> + '_ {
        self.tags
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| i as u64 * CAP_ALIGN)
    }

    /// A capability-oblivious copy, as the hardware performs it: bytes are
    /// copied, and a destination granule receives the source granule's tag
    /// exactly when both are whole, mutually aligned granules within the
    /// copy; every other touched destination granule has its tag cleared.
    ///
    /// This is what lets `memcpy` move structures containing pointers
    /// without being aware of them — and what guarantees that a *misaligned*
    /// copy of a capability yields untagged (harmless) bytes.
    ///
    /// Overlapping ranges behave like `memmove`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if either range leaves the backing store.
    pub fn memcpy(&mut self, dst: u64, src: u64, len: u64) -> MemResult<()> {
        let s = self.check(src, len)?;
        let d = self.check(dst, len)?;
        // Record which destination granules should inherit a set tag, and
        // (Cap128) which should inherit a side-table escape entry — the
        // escape slot is only meaningful together with its out-of-line
        // bytes, so the two travel as one.
        let mut inherit = Vec::new();
        let mut side_moves = Vec::new();
        if dst % CAP_ALIGN == src % CAP_ALIGN {
            let mut a = src;
            // First whole granule inside [src, src+len).
            if a % CAP_ALIGN != 0 {
                a = (a / CAP_ALIGN + 1) * CAP_ALIGN;
            }
            while a + CAP_ALIGN <= src + len {
                if self.tags[(a / CAP_ALIGN) as usize] {
                    inherit.push(dst + (a - src));
                }
                if !self.side.is_empty() {
                    if let Some(full) = self.side.get(&a) {
                        side_moves.push((dst + (a - src), *full));
                    }
                }
                a += CAP_ALIGN;
            }
        }
        self.bytes.copy_within(s..s + len as usize, d);
        self.clear_tags_over(dst, len);
        self.drop_side_over(dst, len);
        for a in inherit {
            self.tags[(a / CAP_ALIGN) as usize] = true;
        }
        for (a, full) in side_moves {
            self.side.insert(a, full);
        }
        self.mark_dirty(dst, len);
        Ok(())
    }

    /// Fills `[addr, addr+len)` with `value`, clearing tags (like `memset`).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn fill(&mut self, addr: u64, len: u64, value: u8) -> MemResult<()> {
        let a = self.check(addr, len)?;
        self.bytes[a..a + len as usize].fill(value);
        self.clear_tags_over(addr, len);
        self.drop_side_over(addr, len);
        self.mark_dirty(addr, len);
        Ok(())
    }

    /// Captures the warm footprint of this memory — every chunk dirtied
    /// since construction (or the last [`TaggedMemory::reset`]) with its
    /// bytes and tags, plus the Cap128 side table and compression counters
    /// — as a shareable [`MemSnapshot`].
    ///
    /// The snapshot relies on the dirty bitmap being a complete record of
    /// mutation: a clean chunk is all-zero with clear tags. That invariant
    /// holds for every `TaggedMemory` built through the public API —
    /// construction yields a zeroed store (pooled stores are reset) and
    /// every mutating operation marks the chunks it touches.
    pub fn snapshot(&self) -> MemSnapshot {
        let mut warm = Vec::new();
        for (w, &word) in self.dirty.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                let start = (w as u64 * 64 + b) * DIRTY_CHUNK;
                let end = (start + DIRTY_CHUNK).min(self.size());
                let g0 = (start / CAP_ALIGN) as usize;
                let g1 = (end.div_ceil(CAP_ALIGN) as usize).min(self.tags.len());
                warm.push(WarmChunk {
                    start,
                    bytes: self.bytes[start as usize..end as usize].to_vec(),
                    tags: self.tags[g0..g1].to_vec(),
                });
            }
        }
        MemSnapshot {
            inner: Arc::new(SnapInner {
                size: self.size(),
                format: self.format,
                policy: self.policy,
                dirty: self.dirty.clone(),
                warm,
                side: self.side.clone(),
                comp_stats: self.comp_stats,
            }),
        }
    }
}

/// One dirty chunk captured by [`TaggedMemory::snapshot`]: its byte image
/// and the tags of the granules it covers. Only the last chunk of a memory
/// may be short.
#[derive(Debug)]
struct WarmChunk {
    start: u64,
    bytes: Vec<u8>,
    tags: Vec<bool>,
}

#[derive(Debug)]
struct SnapInner {
    size: u64,
    format: CapFormat,
    policy: UnrepresentablePolicy,
    dirty: Vec<u64>,
    warm: Vec<WarmChunk>,
    side: HashMap<u64, [u8; CAP_SIZE_BYTES]>,
    comp_stats: CompressionStats,
}

/// An immutable, cheaply shareable image of a [`TaggedMemory`]'s warm
/// footprint, used to fork a warmed-up machine per request instead of
/// re-initializing (and re-executing into) a fresh one.
///
/// Copy-on-write is applied at fork time and at dirty-chunk granularity:
/// [`MemSnapshot::fork`] obtains a zeroed backing store from the memory
/// pool (whose `reset` already re-zeroes only previously-dirty chunks) and
/// copies in *only* the chunks the snapshot recorded as warm. Cost is
/// proportional to the guest's actual footprint, not the memory size, and
/// the forked memory shares no mutable state with the snapshot — so the
/// hot read path (`read_bytes` returning borrowed slices) stays exactly as
/// it is, with no per-access indirection to a base image.
///
/// Cloning a `MemSnapshot` clones an [`Arc`]; snapshots can be shared
/// freely across worker threads.
#[derive(Clone, Debug)]
pub struct MemSnapshot {
    inner: Arc<SnapInner>,
}

impl MemSnapshot {
    /// Materializes a new [`TaggedMemory`] identical (bytes, tags, side
    /// table, compression counters, dirty bitmap) to the memory the
    /// snapshot was taken from.
    pub fn fork(&self) -> TaggedMemory {
        let s = &*self.inner;
        let mut m = TaggedMemory::with_format(s.size, s.format, s.policy);
        for chunk in &s.warm {
            let a = chunk.start as usize;
            m.bytes[a..a + chunk.bytes.len()].copy_from_slice(&chunk.bytes);
            let g0 = (chunk.start / CAP_ALIGN) as usize;
            m.tags[g0..g0 + chunk.tags.len()].copy_from_slice(&chunk.tags);
        }
        m.dirty.copy_from_slice(&s.dirty);
        m.side = s.side.clone();
        m.comp_stats = s.comp_stats;
        m
    }

    /// Total size of the memory the snapshot describes, in bytes.
    pub fn size(&self) -> u64 {
        self.inner.size
    }

    /// Bytes of warm (captured) chunk data — the amount [`MemSnapshot::fork`]
    /// actually copies.
    pub fn warm_bytes(&self) -> u64 {
        self.inner.warm.iter().map(|c| c.bytes.len() as u64).sum()
    }
}

impl Drop for TaggedMemory {
    /// Retires a large backing store into the reuse pool (dirty bits kept,
    /// so the next [`TaggedMemory::with_format`] of the same size pays
    /// only a dirty-chunk re-zero).
    fn drop(&mut self) {
        if self.size() < POOL_MIN_BYTES {
            return;
        }
        let Ok(mut pool) = POOL.lock() else { return };
        let resident: u64 = pool.iter().map(TaggedMemory::size).sum();
        if pool.len() >= POOL_MAX_ENTRIES || resident + self.size() > POOL_MAX_BYTES {
            return;
        }
        let retired = TaggedMemory {
            bytes: std::mem::take(&mut self.bytes),
            tags: std::mem::take(&mut self.tags),
            dirty: std::mem::take(&mut self.dirty),
            format: self.format,
            policy: self.policy,
            side: std::mem::take(&mut self.side),
            comp_stats: self.comp_stats,
        };
        pool.push(retired);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::Perms;
    use proptest::prelude::*;

    fn mem() -> TaggedMemory {
        TaggedMemory::new(0x1000)
    }

    fn a_cap() -> Capability {
        Capability::new_mem(0x100, 0x40, Perms::data())
    }

    #[test]
    fn size_rounds_to_granules() {
        assert_eq!(TaggedMemory::new(33).size(), 64);
        assert_eq!(TaggedMemory::new(0).size(), 0);
    }

    #[test]
    fn scalar_round_trips() {
        let mut m = mem();
        m.write_u8(1, 0xAB).unwrap();
        m.write_u16(2, 0xBEEF).unwrap();
        m.write_u32(4, 0xDEADBEEF).unwrap();
        m.write_u64(8, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(m.read_u8(1).unwrap(), 0xAB);
        assert_eq!(m.read_u16(2).unwrap(), 0xBEEF);
        assert_eq!(m.read_u32(4).unwrap(), 0xDEADBEEF);
        assert_eq!(m.read_u64(8).unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn widths_dispatch() {
        let mut m = mem();
        for w in [1u8, 2, 4, 8] {
            m.write_uint(64, 0x1122_3344_5566_7788, w).unwrap();
            let v = m.read_uint(64, w).unwrap();
            let mask = if w == 8 {
                u64::MAX
            } else {
                (1u64 << (w * 8)) - 1
            };
            assert_eq!(v, 0x1122_3344_5566_7788 & mask);
        }
    }

    #[test]
    fn out_of_range_is_reported() {
        let m = mem();
        assert!(matches!(
            m.read_u64(0xFFF + 1),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            m.read_u64(u64::MAX - 3),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn cap_round_trip_preserves_tag() {
        let mut m = mem();
        let c = a_cap();
        m.write_cap(0x40, &c).unwrap();
        assert_eq!(m.read_cap(0x40).unwrap(), c);
        assert!(m.tag_at(0x45).unwrap());
    }

    #[test]
    fn cap_access_requires_alignment() {
        let mut m = mem();
        assert!(matches!(m.read_cap(0x41), Err(MemError::Misaligned { .. })));
        assert!(matches!(
            m.write_cap(0x08, &a_cap()),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn plain_store_clears_tag() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.write_u8(0x50, 0).unwrap(); // anywhere in the granule
        let c = m.read_cap(0x40).unwrap();
        assert!(!c.tag());
        // The data bytes are otherwise intact except the one written.
        assert_eq!(c.base(), a_cap().base());
    }

    #[test]
    fn reset_is_equivalent_to_fresh() {
        // Dirty several distinct chunks through every mutation path, then
        // reset and compare against a freshly constructed memory.
        let size = 8 * 64 * 1024;
        let mut m = TaggedMemory::new(size);
        m.write_u64(8, 0xDEAD_BEEF).unwrap();
        m.write_bytes(64 * 1024 + 3, b"hello").unwrap();
        m.write_cap(2 * 64 * 1024, &a_cap()).unwrap();
        m.fill(5 * 64 * 1024 - 16, 64, 0xAA).unwrap(); // straddles chunks
        m.memcpy(7 * 64 * 1024, 0, 128).unwrap();
        m.reset();
        let fresh = TaggedMemory::new(size);
        assert_eq!(
            m.read_bytes(0, size).unwrap(),
            fresh.read_bytes(0, size).unwrap()
        );
        assert_eq!(m.tagged_granules().count(), 0);
        // The memory is fully reusable afterwards.
        m.write_cap(2 * 64 * 1024, &a_cap()).unwrap();
        assert!(m.read_cap(2 * 64 * 1024).unwrap().tag());
    }

    #[test]
    fn pooled_backing_store_comes_back_fresh() {
        // Large memories are recycled through the drop pool; a reused
        // store must be indistinguishable from a freshly zeroed one.
        let size = 2 * POOL_MIN_BYTES;
        let mut m = TaggedMemory::new(size);
        m.write_bytes(0x100, b"leftovers").unwrap();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.fill(size - 64, 64, 0xEE).unwrap();
        drop(m);
        let m = TaggedMemory::new(size);
        assert_eq!(m.read_bytes(0x100, 16).unwrap(), &[0u8; 16]);
        assert_eq!(m.read_u8(size - 1).unwrap(), 0);
        assert_eq!(m.tagged_granules().count(), 0);
        assert_eq!(m.side_table_len(), 0);
        assert_eq!(m.compression_stats(), CompressionStats::default());
    }

    #[test]
    fn straddling_store_clears_both_tags() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.write_cap(0x60, &a_cap()).unwrap();
        m.write_u64(0x5C, 0).unwrap(); // straddles granules 2 and 3
        assert!(!m.tag_at(0x40).unwrap());
        assert!(!m.tag_at(0x60).unwrap());
    }

    #[test]
    fn storing_untagged_cap_clears_tag() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.write_cap(0x40, &a_cap().clear_tag()).unwrap();
        assert!(!m.tag_at(0x40).unwrap());
    }

    #[test]
    fn aligned_memcpy_preserves_tags() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.write_u64(0x60, 77).unwrap();
        m.memcpy(0x80, 0x40, 64).unwrap();
        assert_eq!(m.read_cap(0x80).unwrap(), a_cap());
        assert_eq!(m.read_u64(0xA0).unwrap(), 77);
        assert!(!m.tag_at(0xA0).unwrap());
    }

    #[test]
    fn misaligned_memcpy_strips_tags_but_copies_bytes() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.memcpy(0x81, 0x40, 32).unwrap();
        assert!(!m.tag_at(0x81).unwrap());
        assert_eq!(
            m.read_bytes(0x81, 32).unwrap(),
            encode_capability(&a_cap()).as_slice()
        );
    }

    #[test]
    fn partial_granule_copy_strips_tag() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        // Same alignment, but only half the granule is copied.
        m.memcpy(0xC0, 0x40, 16).unwrap();
        assert!(!m.tag_at(0xC0).unwrap());
    }

    #[test]
    fn overlapping_memcpy_is_memmove() {
        let mut m = mem();
        for i in 0..64 {
            m.write_u8(0x100 + i, i as u8).unwrap();
        }
        m.memcpy(0x108, 0x100, 56).unwrap();
        for i in 0..56 {
            assert_eq!(m.read_u8(0x108 + i).unwrap(), i as u8);
        }
    }

    #[test]
    fn fill_clears_tags() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.fill(0x40, 64, 0xAA).unwrap();
        assert!(!m.tag_at(0x40).unwrap());
        assert_eq!(m.read_u8(0x7F).unwrap(), 0xAA);
    }

    #[test]
    fn tagged_granules_enumerates_exactly() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.write_cap(0x200, &a_cap()).unwrap();
        let got: Vec<u64> = m.tagged_granules().collect();
        assert_eq!(got, vec![0x40, 0x200]);
    }

    /// Every observable facet of two memories is identical.
    fn assert_mem_identical(a: &TaggedMemory, b: &TaggedMemory) {
        assert_eq!(a.size(), b.size());
        assert_eq!(a.format(), b.format());
        assert_eq!(
            a.read_bytes(0, a.size()).unwrap(),
            b.read_bytes(0, b.size()).unwrap()
        );
        assert_eq!(
            a.tagged_granules().collect::<Vec<_>>(),
            b.tagged_granules().collect::<Vec<_>>()
        );
        assert_eq!(a.side_table_len(), b.side_table_len());
        assert_eq!(a.compression_stats(), b.compression_stats());
        assert_eq!(a.dirty, b.dirty);
    }

    #[test]
    fn snapshot_fork_reproduces_the_memory() {
        let size = 8 * DIRTY_CHUNK;
        let mut m = TaggedMemory::new(size);
        m.write_u64(8, 0xDEAD_BEEF).unwrap();
        m.write_bytes(DIRTY_CHUNK + 3, b"warm data").unwrap();
        m.write_cap(2 * DIRTY_CHUNK, &a_cap()).unwrap();
        m.fill(5 * DIRTY_CHUNK - 16, 64, 0xAA).unwrap(); // straddles chunks
        let snap = m.snapshot();
        let fork = snap.fork();
        assert_mem_identical(&m, &fork);
        // The fork copied only the warm footprint, not the whole store.
        assert!(snap.warm_bytes() < size);
        assert_eq!(snap.warm_bytes() % DIRTY_CHUNK, 0);
        // Forks are independent of the source and of each other.
        let mut fork2 = snap.fork();
        fork2.write_u8(0x20, 0x55).unwrap();
        assert_eq!(m.read_u8(0x20).unwrap(), 0);
        assert_eq!(fork.read_u8(0x20).unwrap(), 0);
    }

    #[test]
    fn snapshot_fork_carries_cap128_side_table() {
        let mut m = TaggedMemory::with_format(
            0x10_0000,
            CapFormat::Cap128,
            UnrepresentablePolicy::SideTable,
        );
        m.write_cap(0x40, &unrep_cap()).unwrap();
        m.write_cap(0x80, &a_cap()).unwrap();
        let fork = m.snapshot().fork();
        assert_mem_identical(&m, &fork);
        assert_eq!(fork.read_cap(0x40).unwrap(), unrep_cap());
        assert_eq!(fork.read_cap(0x80).unwrap(), a_cap());
    }

    #[test]
    fn forked_memory_resets_and_pools_like_a_fresh_one() {
        let size = 2 * POOL_MIN_BYTES;
        let mut m = TaggedMemory::new(size);
        m.write_bytes(0x100, b"snapshot me").unwrap();
        let snap = m.snapshot();
        let mut fork = snap.fork();
        fork.write_cap(0x40, &a_cap()).unwrap();
        fork.reset();
        let fresh = TaggedMemory::new(size);
        assert_eq!(
            fork.read_bytes(0, size).unwrap(),
            fresh.read_bytes(0, size).unwrap()
        );
        assert_eq!(fork.tagged_granules().count(), 0);
    }

    fn mem128() -> TaggedMemory {
        TaggedMemory::with_format(0x1000, CapFormat::Cap128, UnrepresentablePolicy::SideTable)
    }

    /// A capability the 128-bit format cannot represent: the length demands
    /// E >= 1 but the base is odd.
    fn unrep_cap() -> Capability {
        Capability::new_mem(0x10001, 0x2_0000, Perms::data())
    }

    #[test]
    fn cap128_representable_round_trip() {
        let mut m = mem128();
        let c = a_cap().set_offset(0x13).unwrap();
        m.write_cap(0x40, &c).unwrap();
        assert_eq!(m.read_cap(0x40).unwrap(), c);
        assert!(m.tag_at(0x40).unwrap());
        assert_eq!(m.side_table_len(), 0);
        let stats = m.compression_stats();
        assert_eq!((stats.attempts, stats.successes), (1, 1));
    }

    #[test]
    fn cap128_unrepresentable_escapes_to_side_table() {
        let mut m = TaggedMemory::with_format(
            0x10_0000,
            CapFormat::Cap128,
            UnrepresentablePolicy::SideTable,
        );
        let c = unrep_cap();
        m.write_cap(0x40, &c).unwrap();
        assert_eq!(m.side_table_len(), 1);
        assert_eq!(m.read_cap(0x40).unwrap(), c);
        let stats = m.compression_stats();
        assert_eq!((stats.attempts, stats.successes), (1, 0));
        // A representable overwrite retires the escape entry.
        m.write_cap(0x40, &a_cap()).unwrap();
        assert_eq!(m.side_table_len(), 0);
        assert_eq!(m.read_cap(0x40).unwrap(), a_cap());
    }

    #[test]
    fn cap128_trap_policy_refuses_tagged_unrepresentable() {
        let mut m =
            TaggedMemory::with_format(0x10_0000, CapFormat::Cap128, UnrepresentablePolicy::Trap);
        assert_eq!(
            m.write_cap(0x40, &unrep_cap()),
            Err(MemError::Unrepresentable { addr: 0x40 })
        );
        assert!(!m.tag_at(0x40).unwrap());
        // Untagged unrepresentable bytes are plain data: still stored.
        let data = unrep_cap().clear_tag();
        m.write_cap(0x40, &data).unwrap();
        assert_eq!(m.read_cap(0x40).unwrap(), data);
    }

    #[test]
    fn cap128_plain_store_clears_tag_and_side_entry() {
        let mut m = TaggedMemory::with_format(
            0x10_0000,
            CapFormat::Cap128,
            UnrepresentablePolicy::SideTable,
        );
        m.write_cap(0x40, &unrep_cap()).unwrap();
        m.write_u8(0x50, 0xAA).unwrap();
        assert!(!m.tag_at(0x40).unwrap());
        assert_eq!(m.side_table_len(), 0);
        // In-format caps behave like Cap256: scribble clears the tag only.
        m.write_cap(0x80, &a_cap()).unwrap();
        m.write_u8(0x90, 0).unwrap();
        assert!(!m.read_cap(0x80).unwrap().tag());
    }

    #[test]
    fn cap128_memcpy_moves_escaped_capabilities() {
        let mut m = TaggedMemory::with_format(
            0x10_0000,
            CapFormat::Cap128,
            UnrepresentablePolicy::SideTable,
        );
        let c = unrep_cap();
        m.write_cap(0x40, &c).unwrap();
        m.memcpy(0x100, 0x40, 32).unwrap();
        assert_eq!(m.read_cap(0x100).unwrap(), c);
        assert_eq!(m.side_table_len(), 2);
        // A misaligned copy of the escape slot must not resurrect the
        // capability: no tag, and the stale side entry is gone.
        m.memcpy(0x201, 0x40, 32).unwrap();
        assert!(!m.tag_at(0x201).unwrap());
    }

    #[test]
    fn cap128_footprint_is_half_of_cap256() {
        let mut m256 = mem();
        let mut m128 = mem128();
        for g in 0..4u64 {
            m256.write_cap(0x40 + g * 32, &a_cap()).unwrap();
            m128.write_cap(0x40 + g * 32, &a_cap()).unwrap();
        }
        assert_eq!(m256.cap_footprint_bytes(), 4 * 32);
        assert_eq!(m128.cap_footprint_bytes(), 4 * 16);
    }

    #[test]
    fn cap128_reset_clears_side_table_and_stats() {
        let mut m = TaggedMemory::with_format(
            0x10_0000,
            CapFormat::Cap128,
            UnrepresentablePolicy::SideTable,
        );
        m.write_cap(0x40, &unrep_cap()).unwrap();
        m.reset();
        assert_eq!(m.side_table_len(), 0);
        assert_eq!(m.compression_stats(), CompressionStats::default());
        assert_eq!(m.cap_footprint_bytes(), 0);
        assert!(!m.read_cap(0x40).unwrap().tag());
    }

    proptest! {
        /// Capability store→load round-trips byte- and tag-identically in
        /// BOTH formats (SideTable policy), for representable and
        /// unrepresentable shapes alike.
        #[test]
        fn cap_round_trip_identical_in_both_formats(
            base in 0u64..1 << 40,
            len in 0u64..1 << 30,
            off in any::<u64>(),
            tag in any::<bool>(),
            seal in any::<bool>(),
        ) {
            let c = Capability::new_mem(base, len, Perms::data())
                .set_offset(off).unwrap();
            let c = if seal {
                let sealer = Capability::new_mem(7, 1, Perms::all());
                c.seal(&sealer).unwrap()
            } else {
                c
            };
            let c = if tag { c } else { c.clear_tag() };
            for mut m in [TaggedMemory::new(0x1000), mem128()] {
                m.write_cap(0x40, &c).unwrap();
                prop_assert_eq!(m.read_cap(0x40).unwrap(), c);
                prop_assert_eq!(m.tag_at(0x40).unwrap(), c.tag());
            }
        }

        /// No sequence of plain writes can ever set a tag.
        #[test]
        fn plain_writes_never_set_tags(writes in proptest::collection::vec((0u64..0xF00, any::<u64>()), 1..40)) {
            let mut m = mem();
            for (addr, v) in writes {
                m.write_u64(addr, v).unwrap();
            }
            prop_assert_eq!(m.tagged_granules().count(), 0);
        }

        /// memcpy never *creates* tags that weren't in the source.
        #[test]
        fn memcpy_never_mints_tags(dst in 0u64..0x800, src in 0u64..0x800, len in 0u64..0x100) {
            let mut m = mem();
            m.write_cap(0x40, &a_cap()).unwrap();
            m.memcpy(dst, src, len).unwrap();
            for g in m.tagged_granules() {
                // Every tagged granule decodes to the original capability's bytes.
                let c = m.read_cap(g).unwrap();
                prop_assert_eq!(c.base(), a_cap().base());
                prop_assert_eq!(c.length(), a_cap().length());
            }
        }

        /// Overlapping copies behave like `memmove`: bytes, tags and (in
        /// Cap128 mode) side-table entries end up exactly where a copy
        /// through a disjoint scratch region would put them, in both copy
        /// directions, with no tag duplication or loss at the overlap seam.
        #[test]
        fn overlapping_memcpy_matches_memmove(
            fwd in any::<bool>(),        // dst > src (backward-overlapping) or dst < src
            shift in 1u64..96,           // overlap distance, crosses granule seams
            len in 64u64..256,
            cap128 in any::<bool>(),
            seed_caps in proptest::collection::vec(0u64..6, 1..4),
        ) {
            let total = 0x1000u64;
            let make = |cap128: bool| if cap128 {
                TaggedMemory::with_format(total, CapFormat::Cap128, UnrepresentablePolicy::SideTable)
            } else {
                TaggedMemory::new(total)
            };
            let region = 0x400u64;
            let (src, dst) = if fwd { (region + shift, region) } else { (region, region + shift) };
            // Seed the source range with data, in-format capabilities and
            // (Cap128) an unrepresentable escape capability.
            let mut seeded = make(cap128);
            for i in 0..(len + shift) {
                seeded.write_u8(region + i, (i * 7 + 3) as u8).unwrap();
            }
            for &g in &seed_caps {
                let addr = region / CAP_ALIGN * CAP_ALIGN + g * CAP_ALIGN;
                seeded.write_cap(addr, &a_cap()).unwrap();
            }
            if cap128 {
                let addr = region / CAP_ALIGN * CAP_ALIGN + 6 * CAP_ALIGN;
                seeded.write_cap(addr, &unrep_cap()).unwrap();
            }
            // Reference: the same copy through a disjoint scratch region.
            let mut reference = seeded.clone();
            let scratch = 0x900u64;
            reference.memcpy(scratch, src, len).unwrap();
            reference.memcpy(dst, scratch, len).unwrap();
            // Overlapping copy under test.
            let mut m = seeded;
            m.memcpy(dst, src, len).unwrap();
            prop_assert_eq!(
                m.read_bytes(dst, len).unwrap(),
                reference.read_bytes(dst, len).unwrap(),
                "bytes diverge from memmove semantics"
            );
            let mut a = dst / CAP_ALIGN * CAP_ALIGN;
            while a < dst + len {
                prop_assert_eq!(
                    m.tag_at(a).unwrap(),
                    reference.tag_at(a).unwrap(),
                    "tag at granule {:#x} diverges", a
                );
                prop_assert_eq!(
                    m.read_cap(a).unwrap(),
                    reference.read_cap(a).unwrap(),
                    "capability at granule {:#x} diverges", a
                );
                a += CAP_ALIGN;
            }
        }
    }
}
