//! The tagged flat memory.

use crate::{MemError, MemResult};
use cheri_cap::{decode_capability, encode_capability, Capability, CAP_ALIGN, CAP_SIZE_BYTES};

/// A flat, byte-addressable virtual memory with one out-of-band tag bit per
/// 32-byte granule.
///
/// Invariants maintained:
///
/// * a granule's tag is set **only** by [`TaggedMemory::write_cap`] storing
///   a tagged capability at that granule;
/// * any plain data store overlapping a granule clears its tag;
/// * [`TaggedMemory::memcpy`] preserves a destination granule's tag exactly
///   when the copy is granule-to-granule aligned and the source granule was
///   tagged — the behaviour that lets `memcpy` and unions move capabilities
///   without knowing they are there (paper §4).
#[derive(Clone, Debug)]
pub struct TaggedMemory {
    bytes: Vec<u8>,
    tags: Vec<bool>,
    /// One bit per [`DIRTY_CHUNK`]-byte chunk that has been written since
    /// construction or the last [`TaggedMemory::reset`]. Lets `reset` re-zero
    /// only the touched chunks instead of the whole backing store, which is
    /// what makes pooling memories across interpreter runs cheap.
    dirty: Vec<u64>,
}

/// Dirty-tracking granularity: 64 KiB chunks (a multiple of [`CAP_ALIGN`]).
const DIRTY_CHUNK: u64 = 64 * 1024;

impl TaggedMemory {
    /// Creates a zeroed memory of `size` bytes (rounded up to a whole number
    /// of 32-byte granules), all tags clear.
    pub fn new(size: u64) -> TaggedMemory {
        let granules = size.div_ceil(CAP_ALIGN);
        let size = granules * CAP_ALIGN;
        let chunks = size.div_ceil(DIRTY_CHUNK);
        TaggedMemory {
            bytes: vec![0; size as usize],
            tags: vec![false; granules as usize],
            dirty: vec![0; chunks.div_ceil(64) as usize],
        }
    }

    /// Marks `[addr, addr+len)` dirty. Callers have already bounds-checked.
    fn mark_dirty(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr / DIRTY_CHUNK;
        let last = (addr + len - 1) / DIRTY_CHUNK;
        for c in first..=last {
            self.dirty[(c / 64) as usize] |= 1 << (c % 64);
        }
    }

    /// Restores the memory to its freshly-constructed state — all bytes
    /// zero, all tags clear — touching only the chunks dirtied since the
    /// last reset. Cost is proportional to the footprint actually written,
    /// not to the memory's size.
    pub fn reset(&mut self) {
        for w in 0..self.dirty.len() {
            let mut bits = self.dirty[w];
            self.dirty[w] = 0;
            while bits != 0 {
                let b = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                let start = (w as u64 * 64 + b) * DIRTY_CHUNK;
                let end = (start + DIRTY_CHUNK).min(self.size());
                self.bytes[start as usize..end as usize].fill(0);
                let g0 = (start / CAP_ALIGN) as usize;
                let g1 = (end.div_ceil(CAP_ALIGN) as usize).min(self.tags.len());
                self.tags[g0..g1].fill(false);
            }
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn check(&self, addr: u64, len: u64) -> MemResult<usize> {
        if addr.checked_add(len).is_none_or(|end| end > self.size()) {
            return Err(MemError::OutOfRange { addr, len });
        }
        Ok(addr as usize)
    }

    fn clear_tags_over(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = (addr / CAP_ALIGN) as usize;
        let last = (((addr + len - 1) / CAP_ALIGN) as usize).min(self.tags.len() - 1);
        for t in &mut self.tags[first..=last] {
            *t = false;
        }
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range leaves the backing store.
    pub fn read_bytes(&self, addr: u64, len: u64) -> MemResult<&[u8]> {
        let a = self.check(addr, len)?;
        Ok(&self.bytes[a..a + len as usize])
    }

    /// Writes `data` at `addr`, clearing the tags of every granule touched.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range leaves the backing store.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> MemResult<()> {
        let a = self.check(addr, data.len() as u64)?;
        self.bytes[a..a + data.len()].copy_from_slice(data);
        self.clear_tags_over(addr, data.len() as u64);
        self.mark_dirty(addr, data.len() as u64);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn read_u8(&self, addr: u64) -> MemResult<u8> {
        Ok(self.read_bytes(addr, 1)?[0])
    }

    /// Reads a little-endian 16-bit value.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn read_u16(&self, addr: u64) -> MemResult<u16> {
        let b = self.read_bytes(addr, 2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian 32-bit value.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn read_u32(&self, addr: u64) -> MemResult<u32> {
        let b = self.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian 64-bit value.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn read_u64(&self, addr: u64) -> MemResult<u64> {
        let b = self.read_bytes(addr, 8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes one byte (clears the granule's tag).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn write_u8(&mut self, addr: u64, v: u8) -> MemResult<()> {
        self.write_bytes(addr, &[v])
    }

    /// Writes a little-endian 16-bit value (clears overlapping tags).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn write_u16(&mut self, addr: u64, v: u16) -> MemResult<()> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian 32-bit value (clears overlapping tags).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn write_u32(&mut self, addr: u64, v: u32) -> MemResult<()> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian 64-bit value (clears overlapping tags).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn write_u64(&mut self, addr: u64, v: u64) -> MemResult<()> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Reads a little-endian value of `width` ∈ {1, 2, 4, 8} bytes,
    /// zero-extended.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn read_uint(&self, addr: u64, width: u8) -> MemResult<u64> {
        match width {
            1 => self.read_u8(addr).map(u64::from),
            2 => self.read_u16(addr).map(u64::from),
            4 => self.read_u32(addr).map(u64::from),
            8 => self.read_u64(addr),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// Writes the low `width` ∈ {1, 2, 4, 8} bytes of `v`, little-endian.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: u64, v: u64, width: u8) -> MemResult<()> {
        match width {
            1 => self.write_u8(addr, v as u8),
            2 => self.write_u16(addr, v as u16),
            4 => self.write_u32(addr, v as u32),
            8 => self.write_u64(addr, v),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// `CLC`: loads the capability stored at `addr` (32-byte aligned),
    /// together with its tag.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfRange`].
    pub fn read_cap(&self, addr: u64) -> MemResult<Capability> {
        if addr % CAP_ALIGN != 0 {
            return Err(MemError::Misaligned { addr });
        }
        let a = self.check(addr, CAP_SIZE_BYTES as u64)?;
        let mut buf = [0u8; CAP_SIZE_BYTES];
        buf.copy_from_slice(&self.bytes[a..a + CAP_SIZE_BYTES]);
        Ok(decode_capability(
            &buf,
            self.tags[(addr / CAP_ALIGN) as usize],
        ))
    }

    /// `CSC`: stores `cap` at `addr` (32-byte aligned), setting the
    /// granule's tag to the capability's tag.
    ///
    /// This is the **only** operation that can set a tag bit.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfRange`].
    pub fn write_cap(&mut self, addr: u64, cap: &Capability) -> MemResult<()> {
        if addr % CAP_ALIGN != 0 {
            return Err(MemError::Misaligned { addr });
        }
        let a = self.check(addr, CAP_SIZE_BYTES as u64)?;
        self.bytes[a..a + CAP_SIZE_BYTES].copy_from_slice(&encode_capability(cap));
        self.tags[(addr / CAP_ALIGN) as usize] = cap.tag();
        self.mark_dirty(addr, CAP_SIZE_BYTES as u64);
        Ok(())
    }

    /// The tag of the granule containing `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn tag_at(&self, addr: u64) -> MemResult<bool> {
        self.check(addr, 1)?;
        Ok(self.tags[(addr / CAP_ALIGN) as usize])
    }

    /// Clears the tag of the granule containing `addr` (e.g. the collector
    /// invalidating a stale capability).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn clear_tag_at(&mut self, addr: u64) -> MemResult<()> {
        self.check(addr, 1)?;
        self.tags[(addr / CAP_ALIGN) as usize] = false;
        Ok(())
    }

    /// Iterates over the addresses of all tagged granules — the precise
    /// root/heap scan the tag-accurate garbage collector performs.
    pub fn tagged_granules(&self) -> impl Iterator<Item = u64> + '_ {
        self.tags
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| i as u64 * CAP_ALIGN)
    }

    /// A capability-oblivious copy, as the hardware performs it: bytes are
    /// copied, and a destination granule receives the source granule's tag
    /// exactly when both are whole, mutually aligned granules within the
    /// copy; every other touched destination granule has its tag cleared.
    ///
    /// This is what lets `memcpy` move structures containing pointers
    /// without being aware of them — and what guarantees that a *misaligned*
    /// copy of a capability yields untagged (harmless) bytes.
    ///
    /// Overlapping ranges behave like `memmove`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if either range leaves the backing store.
    pub fn memcpy(&mut self, dst: u64, src: u64, len: u64) -> MemResult<()> {
        let s = self.check(src, len)?;
        let d = self.check(dst, len)?;
        // Record which destination granules should inherit a set tag.
        let mut inherit = Vec::new();
        if dst % CAP_ALIGN == src % CAP_ALIGN {
            let mut a = src;
            // First whole granule inside [src, src+len).
            if a % CAP_ALIGN != 0 {
                a = (a / CAP_ALIGN + 1) * CAP_ALIGN;
            }
            while a + CAP_ALIGN <= src + len {
                if self.tags[(a / CAP_ALIGN) as usize] {
                    inherit.push(dst + (a - src));
                }
                a += CAP_ALIGN;
            }
        }
        self.bytes.copy_within(s..s + len as usize, d);
        self.clear_tags_over(dst, len);
        for a in inherit {
            self.tags[(a / CAP_ALIGN) as usize] = true;
        }
        self.mark_dirty(dst, len);
        Ok(())
    }

    /// Fills `[addr, addr+len)` with `value`, clearing tags (like `memset`).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn fill(&mut self, addr: u64, len: u64, value: u8) -> MemResult<()> {
        let a = self.check(addr, len)?;
        self.bytes[a..a + len as usize].fill(value);
        self.clear_tags_over(addr, len);
        self.mark_dirty(addr, len);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::Perms;
    use proptest::prelude::*;

    fn mem() -> TaggedMemory {
        TaggedMemory::new(0x1000)
    }

    fn a_cap() -> Capability {
        Capability::new_mem(0x100, 0x40, Perms::data())
    }

    #[test]
    fn size_rounds_to_granules() {
        assert_eq!(TaggedMemory::new(33).size(), 64);
        assert_eq!(TaggedMemory::new(0).size(), 0);
    }

    #[test]
    fn scalar_round_trips() {
        let mut m = mem();
        m.write_u8(1, 0xAB).unwrap();
        m.write_u16(2, 0xBEEF).unwrap();
        m.write_u32(4, 0xDEADBEEF).unwrap();
        m.write_u64(8, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(m.read_u8(1).unwrap(), 0xAB);
        assert_eq!(m.read_u16(2).unwrap(), 0xBEEF);
        assert_eq!(m.read_u32(4).unwrap(), 0xDEADBEEF);
        assert_eq!(m.read_u64(8).unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn widths_dispatch() {
        let mut m = mem();
        for w in [1u8, 2, 4, 8] {
            m.write_uint(64, 0x1122_3344_5566_7788, w).unwrap();
            let v = m.read_uint(64, w).unwrap();
            let mask = if w == 8 {
                u64::MAX
            } else {
                (1u64 << (w * 8)) - 1
            };
            assert_eq!(v, 0x1122_3344_5566_7788 & mask);
        }
    }

    #[test]
    fn out_of_range_is_reported() {
        let m = mem();
        assert!(matches!(
            m.read_u64(0xFFF + 1),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            m.read_u64(u64::MAX - 3),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn cap_round_trip_preserves_tag() {
        let mut m = mem();
        let c = a_cap();
        m.write_cap(0x40, &c).unwrap();
        assert_eq!(m.read_cap(0x40).unwrap(), c);
        assert!(m.tag_at(0x45).unwrap());
    }

    #[test]
    fn cap_access_requires_alignment() {
        let mut m = mem();
        assert!(matches!(m.read_cap(0x41), Err(MemError::Misaligned { .. })));
        assert!(matches!(
            m.write_cap(0x08, &a_cap()),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn plain_store_clears_tag() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.write_u8(0x50, 0).unwrap(); // anywhere in the granule
        let c = m.read_cap(0x40).unwrap();
        assert!(!c.tag());
        // The data bytes are otherwise intact except the one written.
        assert_eq!(c.base(), a_cap().base());
    }

    #[test]
    fn reset_is_equivalent_to_fresh() {
        // Dirty several distinct chunks through every mutation path, then
        // reset and compare against a freshly constructed memory.
        let size = 8 * 64 * 1024;
        let mut m = TaggedMemory::new(size);
        m.write_u64(8, 0xDEAD_BEEF).unwrap();
        m.write_bytes(64 * 1024 + 3, b"hello").unwrap();
        m.write_cap(2 * 64 * 1024, &a_cap()).unwrap();
        m.fill(5 * 64 * 1024 - 16, 64, 0xAA).unwrap(); // straddles chunks
        m.memcpy(7 * 64 * 1024, 0, 128).unwrap();
        m.reset();
        let fresh = TaggedMemory::new(size);
        assert_eq!(
            m.read_bytes(0, size).unwrap(),
            fresh.read_bytes(0, size).unwrap()
        );
        assert_eq!(m.tagged_granules().count(), 0);
        // The memory is fully reusable afterwards.
        m.write_cap(2 * 64 * 1024, &a_cap()).unwrap();
        assert!(m.read_cap(2 * 64 * 1024).unwrap().tag());
    }

    #[test]
    fn straddling_store_clears_both_tags() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.write_cap(0x60, &a_cap()).unwrap();
        m.write_u64(0x5C, 0).unwrap(); // straddles granules 2 and 3
        assert!(!m.tag_at(0x40).unwrap());
        assert!(!m.tag_at(0x60).unwrap());
    }

    #[test]
    fn storing_untagged_cap_clears_tag() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.write_cap(0x40, &a_cap().clear_tag()).unwrap();
        assert!(!m.tag_at(0x40).unwrap());
    }

    #[test]
    fn aligned_memcpy_preserves_tags() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.write_u64(0x60, 77).unwrap();
        m.memcpy(0x80, 0x40, 64).unwrap();
        assert_eq!(m.read_cap(0x80).unwrap(), a_cap());
        assert_eq!(m.read_u64(0xA0).unwrap(), 77);
        assert!(!m.tag_at(0xA0).unwrap());
    }

    #[test]
    fn misaligned_memcpy_strips_tags_but_copies_bytes() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.memcpy(0x81, 0x40, 32).unwrap();
        assert!(!m.tag_at(0x81).unwrap());
        assert_eq!(
            m.read_bytes(0x81, 32).unwrap(),
            encode_capability(&a_cap()).as_slice()
        );
    }

    #[test]
    fn partial_granule_copy_strips_tag() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        // Same alignment, but only half the granule is copied.
        m.memcpy(0xC0, 0x40, 16).unwrap();
        assert!(!m.tag_at(0xC0).unwrap());
    }

    #[test]
    fn overlapping_memcpy_is_memmove() {
        let mut m = mem();
        for i in 0..64 {
            m.write_u8(0x100 + i, i as u8).unwrap();
        }
        m.memcpy(0x108, 0x100, 56).unwrap();
        for i in 0..56 {
            assert_eq!(m.read_u8(0x108 + i).unwrap(), i as u8);
        }
    }

    #[test]
    fn fill_clears_tags() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.fill(0x40, 64, 0xAA).unwrap();
        assert!(!m.tag_at(0x40).unwrap());
        assert_eq!(m.read_u8(0x7F).unwrap(), 0xAA);
    }

    #[test]
    fn tagged_granules_enumerates_exactly() {
        let mut m = mem();
        m.write_cap(0x40, &a_cap()).unwrap();
        m.write_cap(0x200, &a_cap()).unwrap();
        let got: Vec<u64> = m.tagged_granules().collect();
        assert_eq!(got, vec![0x40, 0x200]);
    }

    proptest! {
        /// No sequence of plain writes can ever set a tag.
        #[test]
        fn plain_writes_never_set_tags(writes in proptest::collection::vec((0u64..0xF00, any::<u64>()), 1..40)) {
            let mut m = mem();
            for (addr, v) in writes {
                m.write_u64(addr, v).unwrap();
            }
            prop_assert_eq!(m.tagged_granules().count(), 0);
        }

        /// memcpy never *creates* tags that weren't in the source.
        #[test]
        fn memcpy_never_mints_tags(dst in 0u64..0x800, src in 0u64..0x800, len in 0u64..0x100) {
            let mut m = mem();
            m.write_cap(0x40, &a_cap()).unwrap();
            m.memcpy(dst, src, len).unwrap();
            for g in m.tagged_granules() {
                // Every tagged granule decodes to the original capability's bytes.
                let c = m.read_cap(g).unwrap();
                prop_assert_eq!(c.base(), a_cap().base());
                prop_assert_eq!(c.length(), a_cap().length());
            }
        }
    }
}
