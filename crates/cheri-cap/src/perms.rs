//! Capability permission bits.
//!
//! Permissions make capabilities usable as *tokens granting rights* to the
//! referenced memory (paper §4.1): a capability may, for example, permit
//! loading data but not capabilities, which is the building block for the
//! `__input` / `__output` qualifiers and for confining untrusted code to the
//! transitive closure of its capability registers.

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// A set of capability permissions.
///
/// Modelled as a bit set (paper §4: "the permissions field permits additional
/// hardware-checked constraints"). Operations on capabilities may only
/// *clear* permission bits ([`crate::Capability::and_perms`]); there is no
/// architectural way to add one back, which is what makes a capability an
/// unforgeable token.
///
/// # Example
///
/// ```
/// use cheri_cap::Perms;
/// let p = Perms::data();
/// assert!(p.contains(Perms::LOAD));
/// let read_only = p & !Perms::STORE & !Perms::STORE_CAP;
/// assert!(!read_only.contains(Perms::STORE));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u16);

impl Perms {
    /// Permission to execute instructions via this capability (PCC).
    pub const EXECUTE: Perms = Perms(1 << 0);
    /// Permission to load data.
    pub const LOAD: Perms = Perms(1 << 1);
    /// Permission to store data.
    pub const STORE: Perms = Perms(1 << 2);
    /// Permission to load capabilities (with their tags) through this one.
    pub const LOAD_CAP: Perms = Perms(1 << 3);
    /// Permission to store capabilities (with their tags) through this one.
    pub const STORE_CAP: Perms = Perms(1 << 4);
    /// Permission to seal other capabilities using this one's address as the
    /// object type (extension; see paper §4.2's discussion of higher-level
    /// security features built from permissions).
    pub const SEAL: Perms = Perms(1 << 5);
    /// Permission for the garbage collector to relocate the referent.
    /// Clearing it pins the object (cf. the paper's §6 discussion of
    /// "pinned" pointers in managed environments).
    pub const GC_MOVABLE: Perms = Perms(1 << 6);

    /// The empty permission set.
    pub const NONE: Perms = Perms(0);

    /// Every permission bit set. This is the authority of the initial default
    /// data capability covering the whole address space.
    pub fn all() -> Perms {
        Perms(0x7f)
    }

    /// Permissions appropriate for ordinary data objects returned by an
    /// allocator: load/store of both data and capabilities, movable by the
    /// collector, but not executable.
    pub fn data() -> Perms {
        Perms::LOAD | Perms::STORE | Perms::LOAD_CAP | Perms::STORE_CAP | Perms::GC_MOVABLE
    }

    /// Permissions for executable code capabilities (PCC): execute + load
    /// (for PC-relative constant pools) only.
    pub fn code() -> Perms {
        Perms::EXECUTE | Perms::LOAD
    }

    /// Read-only data: the hardware-enforced `__input` qualifier from the
    /// paper (§4.1). A `__input` pointer can be passed across a
    /// security-domain boundary with the guarantee that the callee cannot
    /// write through it.
    pub fn input() -> Perms {
        Perms::LOAD | Perms::LOAD_CAP | Perms::GC_MOVABLE
    }

    /// Write-only data: the hardware-enforced `__output` qualifier (§4.1).
    pub fn output() -> Perms {
        Perms::STORE | Perms::STORE_CAP | Perms::GC_MOVABLE
    }

    /// Returns `true` if every bit of `other` is present in `self`.
    pub fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if no permission bit is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw bit representation, as packed into the 256-bit format.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Reconstructs a permission set from raw bits, masking unknown bits.
    pub fn from_bits(bits: u16) -> Perms {
        Perms(bits & Perms::all().0)
    }
}

impl BitOr for Perms {
    type Output = Perms;
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitAnd for Perms {
    type Output = Perms;
    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl Not for Perms {
    type Output = Perms;
    fn not(self) -> Perms {
        Perms(!self.0 & Perms::all().0)
    }
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: [(Perms, &str); 7] = [
            (Perms::EXECUTE, "X"),
            (Perms::LOAD, "R"),
            (Perms::STORE, "W"),
            (Perms::LOAD_CAP, "r"),
            (Perms::STORE_CAP, "w"),
            (Perms::SEAL, "S"),
            (Perms::GC_MOVABLE, "m"),
        ];
        write!(f, "Perms(")?;
        for (p, n) in names {
            if self.contains(p) {
                write!(f, "{n}")?;
            } else {
                write!(f, "-")?;
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_everything() {
        for p in [
            Perms::EXECUTE,
            Perms::LOAD,
            Perms::STORE,
            Perms::LOAD_CAP,
            Perms::STORE_CAP,
            Perms::SEAL,
            Perms::GC_MOVABLE,
        ] {
            assert!(Perms::all().contains(p));
        }
    }

    #[test]
    fn data_is_not_executable() {
        assert!(!Perms::data().contains(Perms::EXECUTE));
        assert!(Perms::data().contains(Perms::LOAD | Perms::STORE));
    }

    #[test]
    fn input_removes_store() {
        let p = Perms::input();
        assert!(p.contains(Perms::LOAD));
        assert!(!p.contains(Perms::STORE));
        assert!(!p.contains(Perms::STORE_CAP));
    }

    #[test]
    fn output_removes_load() {
        let p = Perms::output();
        assert!(p.contains(Perms::STORE));
        assert!(!p.contains(Perms::LOAD));
    }

    #[test]
    fn not_masks_to_known_bits() {
        let p = !Perms::NONE;
        assert_eq!(p, Perms::all());
        assert_eq!(p.bits() & !0x7f, 0);
    }

    #[test]
    fn from_bits_masks_unknown() {
        let p = Perms::from_bits(0xffff);
        assert_eq!(p, Perms::all());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Perms::NONE).is_empty());
        assert_eq!(format!("{:?}", Perms::data()), "Perms(-RWrw-m)");
    }

    #[test]
    fn bit_ops_behave_like_sets() {
        let a = Perms::LOAD | Perms::STORE;
        let b = Perms::STORE | Perms::EXECUTE;
        assert_eq!(a & b, Perms::STORE);
        assert!((a | b).contains(Perms::EXECUTE));
        assert!(!(a & !Perms::STORE).contains(Perms::STORE));
    }
}
