//! The 256-bit in-memory capability format.
//!
//! CHERIv2/v3 capabilities are "loosely packed into a 256-bit value" (paper
//! §4) and must be naturally aligned; the validity tag lives *out of band*,
//! one bit per 32-byte granule, maintained by the tagged-memory substrate.
//!
//! Layout (little-endian 64-bit words):
//!
//! | word | contents                                   |
//! |------|--------------------------------------------|
//! | 0    | `perms` (bits 0..16), `otype` (bits 32..64) |
//! | 1    | `offset`                                   |
//! | 2    | `base`                                     |
//! | 3    | `length`                                   |

use crate::{Capability, Perms};

/// Size of the in-memory capability representation in bytes.
pub const CAP_SIZE_BYTES: usize = 32;

/// Required alignment for capability loads and stores.
pub const CAP_ALIGN: u64 = 32;

/// Packs a capability's 256 architectural bits (everything except the tag)
/// into `CAP_SIZE_BYTES` bytes.
///
/// # Example
///
/// ```
/// use cheri_cap::{encode_capability, decode_capability, Capability, Perms};
/// let c = Capability::new_mem(0x1000, 64, Perms::data());
/// let bytes = encode_capability(&c);
/// let back = decode_capability(&bytes, true);
/// assert_eq!(back, c);
/// ```
pub fn encode_capability(cap: &Capability) -> [u8; CAP_SIZE_BYTES] {
    let mut out = [0u8; CAP_SIZE_BYTES];
    let word0 = (cap.perms().bits() as u64) | ((cap.otype_raw() as u64) << 32);
    out[0..8].copy_from_slice(&word0.to_le_bytes());
    out[8..16].copy_from_slice(&cap.offset().to_le_bytes());
    out[16..24].copy_from_slice(&cap.base().to_le_bytes());
    out[24..32].copy_from_slice(&cap.length().to_le_bytes());
    out
}

/// Reconstructs a capability from its 256 architectural bits plus the
/// out-of-band tag supplied by the memory system.
///
/// Decoding never fails: untagged bit patterns are legal data (e.g. a union
/// member written as bytes), they merely refuse to be dereferenced.
pub fn decode_capability(bytes: &[u8; CAP_SIZE_BYTES], tag: bool) -> Capability {
    let w = |i: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
        u64::from_le_bytes(b)
    };
    let word0 = w(0);
    Capability::from_raw_parts(
        tag,
        w(2),
        w(3),
        w(1),
        Perms::from_bits(word0 as u16),
        (word0 >> 32) as u32,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn null_encodes_to_mostly_zero() {
        let bytes = encode_capability(&Capability::null());
        // The otype field of an unsealed cap is the sentinel; all other
        // bytes are zero.
        assert!(bytes[8..].iter().all(|&b| b == 0));
        assert_eq!(&bytes[0..2], &[0, 0]);
    }

    #[test]
    fn tag_is_out_of_band() {
        let c = Capability::new_mem(0x1000, 64, Perms::data());
        let bytes = encode_capability(&c);
        let untagged = decode_capability(&bytes, false);
        assert!(!untagged.tag());
        assert_eq!(untagged.base(), c.base());
    }

    #[test]
    fn sealed_state_survives_encoding() {
        let sealer = Capability::new_mem(0x7, 1, Perms::all());
        let c = Capability::new_mem(0x1000, 64, Perms::data())
            .seal(&sealer)
            .unwrap();
        let back = decode_capability(&encode_capability(&c), true);
        assert_eq!(back, c);
        assert!(back.is_sealed());
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary_caps(
            base in 0u64..u64::MAX / 2,
            len in 0u64..u64::MAX / 4,
            off in any::<u64>(),
            perm_bits in any::<u16>(),
            tag in any::<bool>(),
        ) {
            let c = Capability::new_mem(base, len, Perms::from_bits(perm_bits))
                .set_offset(off).unwrap();
            let c = if tag { c } else { c.clear_tag() };
            let back = decode_capability(&encode_capability(&c), tag);
            prop_assert_eq!(back, c);
        }

        #[test]
        fn intcap_round_trip(v in any::<u64>()) {
            let c = Capability::from_int(v);
            let back = decode_capability(&encode_capability(&c), false);
            prop_assert_eq!(back.offset(), v);
            prop_assert!(!back.tag());
        }
    }
}
