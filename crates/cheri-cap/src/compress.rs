//! A 128-bit compressed capability format in the style of "low-fat
//! pointers" (Kwon et al., CCS 2013), cited by the paper as the kind of
//! efficient representation that breaking the **Mask** idiom's
//! known-representation assumption enables (§2).
//!
//! The full CHERIv2/v3 format spends 256 bits per capability. Low-fat
//! schemes store the pointer in full and the bounds as floating-point-style
//! mantissas relative to the pointer's high bits:
//!
//! * word 0 — the 64-bit address (`base + offset`).
//! * word 1 — `perms` (16 bits), exponent `E` (6 bits), base mantissa `B`
//!   (16 bits), top mantissa `T` (16 bits), tag (1 bit).
//!
//! The trade-off, demonstrated by the `ablation_substrate` bench, is that
//! not every `(base, length, offset)` triple is representable: bounds must
//! be `2^E`-aligned and the pointer must stay within the representable
//! window around the object. [`CompressedCapability::compress`] returns
//! `None` for unrepresentable capabilities — a real allocator pads
//! allocations to make them representable.

use crate::{Capability, Perms};

/// Width of the in-memory capability representation.
///
/// [`CapFormat::Cap256`] is the paper's loosely-packed 256-bit format
/// (`cheri_cap::encode_capability`); [`CapFormat::Cap128`] is the low-fat
/// 128-bit format implemented by [`CompressedCapability`], halving the
/// memory and cache footprint of every stored capability at the cost of
/// `2^E`-representable bounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CapFormat {
    /// Full 256-bit capabilities: every `(base, length, offset)` triple is
    /// representable exactly.
    #[default]
    Cap256,
    /// Compressed 128-bit capabilities: bounds must be `2^E`-aligned for
    /// the exponent the length demands.
    Cap128,
}

impl CapFormat {
    /// Bytes one stored capability occupies in this format (the granule
    /// reservation stays [`crate::CAP_SIZE_BYTES`]; this is the footprint
    /// that actually travels through the cache hierarchy).
    pub fn stored_bytes(self) -> u64 {
        match self {
            CapFormat::Cap256 => crate::CAP_SIZE_BYTES as u64,
            CapFormat::Cap128 => CAP128_SIZE_BYTES as u64,
        }
    }
}

/// Size of the compressed in-memory capability representation in bytes.
pub const CAP128_SIZE_BYTES: usize = 16;

/// A capability packed into 128 bits.
///
/// # Example
///
/// ```
/// use cheri_cap::{Capability, CompressedCapability, Perms};
/// let c = Capability::new_mem(0x10000, 0x2000, Perms::data());
/// let z = CompressedCapability::compress(&c).expect("aligned region is representable");
/// assert_eq!(z.decompress(), c);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressedCapability {
    address: u64,
    meta: u64,
}

const MANTISSA_BITS: u32 = 16;
const MANTISSA_MASK: u64 = (1 << MANTISSA_BITS) - 1;

impl CompressedCapability {
    /// Attempts to compress `cap` into the 128-bit format.
    ///
    /// Returns `None` when the capability is not representable: sealed
    /// capabilities, bounds that are not `2^E`-aligned for the exponent the
    /// length demands, or a pointer too far outside the object for the
    /// window arithmetic to recover the bounds.
    pub fn compress(cap: &Capability) -> Option<CompressedCapability> {
        if cap.is_sealed() {
            return None;
        }
        let base = cap.base();
        let top = cap.top();
        let length = cap.length();
        let e = exponent_for_length(length);
        if e > 47 {
            return None;
        }
        let align = (1u64 << e) - 1;
        if base & align != 0 || top & align != 0 {
            return None; // bounds not exactly representable at this exponent
        }
        let b = (base >> e) & MANTISSA_MASK;
        let t = (top >> e) & MANTISSA_MASK;
        let meta = (cap.perms().bits() as u64)
            | ((e as u64) << 16)
            | (b << 22)
            | (t << 38)
            | ((cap.tag() as u64) << 54);
        let z = CompressedCapability {
            address: cap.address(),
            meta,
        };
        // Correct-by-construction: only report success when the round trip
        // is exact. This filters pointers outside the representable window.
        if z.decompress() == *cap {
            Some(z)
        } else {
            None
        }
    }

    /// Expands back to the full representation.
    pub fn decompress(&self) -> Capability {
        let perms = Perms::from_bits(self.meta as u16);
        let e = ((self.meta >> 16) & 0x3f) as u32;
        let b = (self.meta >> 22) & MANTISSA_MASK;
        let t = (self.meta >> 38) & MANTISSA_MASK;
        let tag = (self.meta >> 54) & 1 == 1;
        let a = self.address;
        // `compress` never emits e > 47, but `decompress` also runs on
        // arbitrary *untagged* memory bytes (a `CLC` of plain data), whose
        // exponent field can spell anything up to 63 — the shift must not
        // overflow the host on garbage encodings.
        let a_top = a.checked_shr(e + MANTISSA_BITS).unwrap_or(0);
        let a_mid = (a >> e) & MANTISSA_MASK;
        // Window correction: if the pointer's mid bits are below the base
        // mantissa, the base lives in the previous 2^(E+16) window; if the
        // top mantissa is below the mid bits, the top is in the next one.
        let cb = u64::from(a_mid < b);
        let ct = u64::from(t < a_mid || (t == a_mid && t < b));
        let base = ((a_top.wrapping_sub(cb) << MANTISSA_BITS) | b) << e;
        let top = ((a_top.wrapping_add(ct) << MANTISSA_BITS) | t) << e;
        let length = top.wrapping_sub(base);
        let offset = a.wrapping_sub(base);

        Capability::from_raw_parts(tag, base, length, offset, perms, u32::MAX)
    }

    /// Expands back to the full representation, overriding the encoded tag
    /// bit with `tag` — the out-of-band tag maintained by tagged memory is
    /// authoritative over whatever bits happen to sit in the slot.
    pub fn decompress_with_tag(&self, tag: bool) -> Capability {
        let c = self.decompress();
        Capability::from_raw_parts(
            tag,
            c.base(),
            c.length(),
            c.offset(),
            c.perms(),
            c.otype_raw(),
        )
    }

    /// The 16-byte little-endian in-memory form: address word then
    /// metadata word.
    pub fn to_bytes(&self) -> [u8; CAP128_SIZE_BYTES] {
        let mut out = [0u8; CAP128_SIZE_BYTES];
        out[0..8].copy_from_slice(&self.address.to_le_bytes());
        out[8..16].copy_from_slice(&self.meta.to_le_bytes());
        out
    }

    /// Reconstructs the packed form from its 16 in-memory bytes. Never
    /// fails: untagged bit patterns are legal data, exactly as for the
    /// 256-bit decoder.
    pub fn from_bytes(bytes: &[u8; CAP128_SIZE_BYTES]) -> CompressedCapability {
        let mut a = [0u8; 8];
        let mut m = [0u8; 8];
        a.copy_from_slice(&bytes[0..8]);
        m.copy_from_slice(&bytes[8..16]);
        CompressedCapability {
            address: u64::from_le_bytes(a),
            meta: u64::from_le_bytes(m),
        }
    }

    /// The stored 64-bit address.
    pub fn address(&self) -> u64 {
        self.address
    }
}

/// The smallest exponent `E` whose 16-bit mantissa can express `length`.
fn exponent_for_length(length: u64) -> u32 {
    let mut e = 0u32;
    while (length >> e) > MANTISSA_MASK {
        e += 1;
    }
    e
}

/// The `2^E` bound alignment the 128-bit format demands of a region of
/// `length` bytes. A low-fat-aware allocator pads every block so its base
/// and size are multiples of this; the resulting capability (and every
/// in-bounds cursor derived from it) is then guaranteed representable —
/// see the `aligned_allocations_always_compress` property below.
///
/// Beware the mantissa boundaries: for lengths in
/// `(0xFFFF << E, 0x10000 << E]`, rounding up to the next multiple of
/// `2^E` can itself raise the exponent (e.g. `0x3FFFE0` has `E = 6`, but
/// padding to 64 yields `0x40_0000`, which needs `E = 7`). Callers padding
/// for representability must iterate align→pad to a fixpoint; it
/// converges quickly because a length of the form `m << E` with
/// `m <= 0xFFFF` is stable.
pub fn representable_align(length: u64) -> u64 {
    1u64 << exponent_for_length(length)
}

/// Running tally of compression attempts, for the representability ablation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompressionStats {
    /// Total capabilities offered to the compressor.
    pub attempts: u64,
    /// How many were exactly representable in 128 bits.
    pub successes: u64,
}

impl CompressionStats {
    /// Records one attempt, returning the compressed form if representable.
    pub fn try_compress(&mut self, cap: &Capability) -> Option<CompressedCapability> {
        self.attempts += 1;
        let r = CompressedCapability::compress(cap);
        if r.is_some() {
            self.successes += 1;
        }
        r
    }

    /// Fraction of capabilities that compressed, in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decompress_of_garbage_bytes_never_panics() {
        // An untagged Cap128 granule can hold any bit pattern and `CLC`
        // still decodes it. Exponent fields of 48..=63 (unreachable via
        // `compress`, trivially reachable via plain data stores) used to
        // overflow the host's shift in debug builds.
        for fill in [0x00u8, 0x03, 0x7F, 0xFF] {
            let bytes = [fill; CAP128_SIZE_BYTES];
            let c = CompressedCapability::from_bytes(&bytes).decompress_with_tag(false);
            assert!(!c.tag());
        }
        // Directly exercise the maximal exponent field.
        let z = CompressedCapability {
            address: u64::MAX,
            meta: 0x3F << 16,
        };
        let _ = z.decompress();
    }

    #[test]
    fn small_aligned_regions_round_trip() {
        for (base, len) in [(0x1000u64, 0x40u64), (0, 16), (0xFFFF_0000, 0x100)] {
            let c = Capability::new_mem(base, len, Perms::data());
            let z = CompressedCapability::compress(&c).unwrap();
            assert_eq!(z.decompress(), c);
        }
    }

    #[test]
    fn in_bounds_offsets_round_trip() {
        let c = Capability::new_mem(0x2000, 0x800, Perms::data());
        for off in [0u64, 1, 0x7ff, 0x800] {
            let p = c.set_offset(off).unwrap();
            let z = CompressedCapability::compress(&p).expect("in-bounds pointer");
            assert_eq!(z.decompress(), p);
        }
    }

    #[test]
    fn misaligned_large_region_is_unrepresentable() {
        // Length needs E >= 1 but base is odd -> not representable.
        let c = Capability::new_mem(0x10001, 0x2_0000, Perms::data());
        assert_eq!(CompressedCapability::compress(&c), None);
    }

    #[test]
    fn sealed_is_unrepresentable() {
        let sealer = Capability::new_mem(7, 1, Perms::all());
        let c = Capability::new_mem(0x1000, 64, Perms::data())
            .seal(&sealer)
            .unwrap();
        assert_eq!(CompressedCapability::compress(&c), None);
    }

    #[test]
    fn far_out_of_bounds_pointer_is_unrepresentable() {
        let c = Capability::new_mem(0x10000, 0x100, Perms::data());
        let far = c.set_offset(1 << 40).unwrap();
        assert_eq!(CompressedCapability::compress(&far), None);
    }

    #[test]
    fn byte_form_round_trips() {
        let c = Capability::new_mem(0x2000, 0x800, Perms::data())
            .set_offset(0x123)
            .unwrap();
        let z = CompressedCapability::compress(&c).unwrap();
        let back = CompressedCapability::from_bytes(&z.to_bytes());
        assert_eq!(back, z);
        assert_eq!(back.decompress(), c);
    }

    #[test]
    fn out_of_band_tag_overrides_encoded_bit() {
        let c = Capability::new_mem(0x2000, 0x800, Perms::data());
        let z = CompressedCapability::compress(&c).unwrap();
        let stripped = z.decompress_with_tag(false);
        assert!(!stripped.tag());
        assert_eq!(stripped.base(), c.base());
        assert_eq!(stripped.length(), c.length());
    }

    #[test]
    fn representable_align_tracks_length() {
        assert_eq!(representable_align(0), 1);
        assert_eq!(representable_align(0xFFFF), 1);
        assert_eq!(representable_align(0x1_0000), 2);
        assert_eq!(representable_align(8 << 20), 256);
    }

    #[test]
    fn padding_at_mantissa_boundaries_raises_the_exponent() {
        // The trap the doc comment warns about: lengths just under
        // 0x10000 << E pad up across the boundary and need E + 1.
        for e in [1u32, 6, 10] {
            let len = (0xFFFFu64 << e) + 1;
            let a = representable_align(len);
            assert_eq!(a, 1 << e);
            let padded = len.next_multiple_of(a);
            assert_eq!(padded, 0x1_0000u64 << e);
            assert_eq!(representable_align(padded), 2 << e, "E must rise");
            // One more align→pad round reaches the fixpoint.
            assert_eq!(padded.next_multiple_of(2 << e), padded);
        }
    }

    #[test]
    fn format_reports_stored_bytes() {
        assert_eq!(CapFormat::Cap256.stored_bytes(), 32);
        assert_eq!(CapFormat::Cap128.stored_bytes(), 16);
        assert_eq!(CapFormat::default(), CapFormat::Cap256);
    }

    #[test]
    fn stats_track_rate() {
        let mut stats = CompressionStats::default();
        let good = Capability::new_mem(0x1000, 64, Perms::data());
        let bad = Capability::new_mem(0x10001, 0x2_0000, Perms::data());
        stats.try_compress(&good);
        stats.try_compress(&bad);
        assert_eq!(stats.attempts, 2);
        assert_eq!(stats.successes, 1);
        assert!((stats.success_rate() - 0.5).abs() < 1e-9);
    }

    proptest! {
        /// Whenever compression claims success, the round trip is exact —
        /// compressed capabilities never gain authority.
        #[test]
        fn compression_is_exact_or_refused(
            base in 0u64..1 << 40,
            len in 0u64..1 << 30,
            off_in in any::<u32>(),
            tag in any::<bool>(),
        ) {
            let c = Capability::new_mem(base, len, Perms::data())
                .set_offset(off_in as u64 % (len + 1)).unwrap();
            let c = if tag { c } else { c.clear_tag() };
            if let Some(z) = CompressedCapability::compress(&c) {
                prop_assert_eq!(z.decompress(), c);
            }
        }

        /// 2^E-aligned allocations with in-bounds cursors always compress —
        /// this is the contract a low-fat-aware allocator relies on.
        #[test]
        fn aligned_allocations_always_compress(
            block in 1u64..1 << 20,
            off_frac in 0u64..100,
        ) {
            // Construct a region whose base and length share alignment.
            let len = block * 16;
            let mut e = 0;
            while (len >> e) > 0xFFFF { e += 1; }
            let align = 1u64 << e;
            let base = ((block * 37) & ((1 << 30) - 1)) / align * align;
            let top_pad = (align - (len % align)) % align;
            let c = Capability::new_mem(base, len + top_pad, Perms::data());
            let p = c.set_offset((len + top_pad) * off_frac / 100).unwrap();
            prop_assert!(CompressedCapability::compress(&p).is_some());
        }
    }
}
