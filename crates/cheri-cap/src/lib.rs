//! The CHERI capability model: hardware-enforced, unforgeable references to
//! regions of memory.
//!
//! This crate implements the capability semantics described in *Beyond the
//! PDP-11: Architectural support for a memory-safe C abstract machine*
//! (Chisnall et al., ASPLOS 2015). Two generations of the model are provided:
//!
//! * **CHERIv2** — capabilities are `(base, length, permissions)` triplets.
//!   Pointer arithmetic moves `base` (via [`Capability::inc_base`]) and is
//!   therefore *monotonic*: rights can only shrink, and pointer subtraction is
//!   unrepresentable.
//! * **CHERIv3** — the paper's contribution: capabilities gain an *offset*
//!   field, `(base, length, offset, permissions)`, turning them into
//!   hardware-integrity-protected **fat pointers**. The offset may roam
//!   anywhere in the address space (including out of bounds); bounds and
//!   permissions are enforced only at dereference.
//!
//! The in-memory representation is 256 bits (32 bytes), naturally aligned,
//! with a single out-of-band tag bit per 32-byte granule maintained by the
//! tagged-memory substrate (`cheri-mem`).
//!
//! # Example
//!
//! ```
//! use cheri_cap::{Capability, Perms};
//!
//! // An allocator returns a capability exactly bounding a 64-byte object.
//! let obj = Capability::new_mem(0x1000, 64, Perms::data());
//! // CHERIv3 pointer arithmetic: move the offset, even past the end...
//! let past = obj.inc_offset(100).unwrap();
//! assert!(past.check_access(1, Perms::LOAD).is_err()); // ...but cannot load there
//! // Move back in bounds and the access succeeds.
//! let back = past.inc_offset(-40).unwrap();
//! assert!(back.check_access(1, Perms::LOAD).is_ok());
//! ```

mod cap;
mod compress;
mod encoding;
mod error;
mod perms;
mod ptrcmp;

pub use cap::{Capability, SealedState, OTYPE_MAX};
pub use compress::{
    representable_align, CapFormat, CompressedCapability, CompressionStats, CAP128_SIZE_BYTES,
};
pub use encoding::{decode_capability, encode_capability, CAP_ALIGN, CAP_SIZE_BYTES};
pub use error::CapError;
pub use perms::Perms;
pub use ptrcmp::{ptr_cmp, PtrCmpOrdering};

/// Result alias for fallible capability operations.
pub type CapResult<T> = Result<T, CapError>;
