//! The capability type and its CHERIv2 / CHERIv3 operations.

use crate::{CapError, CapResult, Perms};
use std::fmt;

/// Maximum object type usable for sealing (24-bit space, as in CHERI ISAv3).
pub const OTYPE_MAX: u32 = (1 << 24) - 1;

/// Sentinel in the packed representation meaning "unsealed".
const OTYPE_UNSEALED: u32 = u32::MAX;

/// Whether a capability is sealed, and with which object type.
///
/// Sealing makes a capability immutable and non-dereferenceable until
/// unsealed with a matching authority; it is the mechanism behind
/// `CJALR`-based protected calls (paper §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SealedState {
    /// The capability can be dereferenced and manipulated normally.
    Unsealed,
    /// The capability is sealed with the given object type.
    Sealed(u32),
}

/// A CHERI memory capability: an unforgeable, bounds-carrying reference.
///
/// The CHERIv3 representation from the paper:
/// `(base, length, offset, permissions)` plus a validity *tag* and an
/// optional seal. The *address* the capability refers to is
/// `base + offset` (wrapping); the dereferenceable region is
/// `[base, base + length)`.
///
/// Two families of operations mirror the two ISA generations:
///
/// * CHERIv2-style: [`Capability::inc_base`], [`Capability::set_length`],
///   [`Capability::and_perms`] — all strictly monotonic (rights only shrink).
/// * CHERIv3 additions (Table 2 of the paper): [`Capability::inc_offset`]
///   (`CIncOffset`), [`Capability::set_offset`] (`CSetOffset`),
///   [`Capability::offset`] (`CGetOffset`), plus [`Capability::to_ptr`]
///   (`CToPtr`), [`Capability::from_ptr`] (`CFromPtr`) and
///   [`crate::ptr_cmp`] (`CPtrCmp`).
///
/// Untagged capabilities double as the `intcap_t` type: an integer stored in
/// the offset of the canonical [`Capability::null`] capability.
///
/// # Example
///
/// ```
/// use cheri_cap::{Capability, Perms};
/// let c = Capability::new_mem(0x4000, 256, Perms::data());
/// let p = c.inc_offset(16).unwrap();
/// assert_eq!(p.address(), 0x4010);
/// assert_eq!(p.length(), 256); // CHERIv3: bounds unchanged by arithmetic
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capability {
    tag: bool,
    base: u64,
    length: u64,
    offset: u64,
    perms: Perms,
    otype: u32,
}

impl Capability {
    /// The canonical null capability: all fields zero, tag clear.
    ///
    /// Produced by `CFromPtr(ddc, 0)` to honour C's null-pointer semantics
    /// (paper §4.2). Because it is untagged it can never become a valid
    /// capability, but arithmetic on its offset is permitted — this is how
    /// `mmap()` can return `-1` and how `intcap_t` holds integers.
    pub fn null() -> Capability {
        Capability {
            tag: false,
            base: 0,
            length: 0,
            offset: 0,
            perms: Perms::NONE,
            otype: OTYPE_UNSEALED,
        }
    }

    /// Creates a tagged, unsealed capability for `[base, base + length)`.
    ///
    /// This models the authority handed out by the memory allocator, linker,
    /// or stack-capability derivation — the only sources of fresh tagged
    /// capabilities in a CHERI system.
    ///
    /// # Panics
    ///
    /// Panics if `base + length` overflows the 64-bit address space; real
    /// allocators never hand out such regions and the invariant
    /// `base + length <= 2^64` is relied upon by bounds checking.
    pub fn new_mem(base: u64, length: u64, perms: Perms) -> Capability {
        assert!(
            base.checked_add(length).is_some(),
            "capability region [{base:#x}, {base:#x} + {length:#x}) overflows the address space"
        );
        Capability {
            tag: true,
            base,
            length,
            offset: 0,
            perms,
            otype: OTYPE_UNSEALED,
        }
    }

    /// An `intcap_t` value: the integer `value` stored in the offset of the
    /// canonical null capability. Never tagged, never dereferenceable, and
    /// never equal (under [`crate::ptr_cmp`]) to any valid capability.
    pub fn from_int(value: u64) -> Capability {
        let mut c = Capability::null();
        c.offset = value;
        c
    }

    /// Reconstructs a capability from raw fields, e.g. when decoding the
    /// 256-bit in-memory representation. No invariant is enforced beyond
    /// masking the seal field: untagged garbage is representable by design
    /// (a plain store may have scribbled over a capability, clearing its
    /// tag but leaving arbitrary bytes).
    pub(crate) fn from_raw_parts(
        tag: bool,
        base: u64,
        length: u64,
        offset: u64,
        perms: Perms,
        otype: u32,
    ) -> Capability {
        Capability {
            tag,
            base,
            length,
            offset,
            perms,
            otype,
        }
    }

    // --- Field accessors (CGetBase / CGetLen / CGetOffset / CGetPerm / CGetTag) ---

    /// The region's first byte (`CGetBase`).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The region's size in bytes (`CGetLen`).
    pub fn length(&self) -> u64 {
        self.length
    }

    /// The pointer's offset from `base` (`CGetOffset`, new in CHERIv3).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The permissions this capability grants (`CGetPerm`).
    pub fn perms(&self) -> Perms {
        self.perms
    }

    /// The validity tag (`CGetTag`). Clear means "just data".
    pub fn tag(&self) -> bool {
        self.tag
    }

    /// The virtual address the capability currently points at:
    /// `base + offset`, wrapping. The CHERIv3 pipeline computes this in the
    /// address-calculation stage (paper §4.1: "the virtual address
    /// calculation ... is now done by adding the offset to the pointer").
    pub fn address(&self) -> u64 {
        self.base.wrapping_add(self.offset)
    }

    /// One past the last byte of the dereferenceable region.
    pub fn top(&self) -> u64 {
        // new_mem guarantees no overflow for capabilities we construct;
        // saturate for decoded garbage.
        self.base.saturating_add(self.length)
    }

    /// `true` if this is exactly the canonical null capability.
    pub fn is_null(&self) -> bool {
        !self.tag
            && self.base == 0
            && self.length == 0
            && self.offset == 0
            && self.perms.is_empty()
            && self.otype == OTYPE_UNSEALED
    }

    /// The sealing state.
    pub fn sealed_state(&self) -> SealedState {
        if self.otype == OTYPE_UNSEALED {
            SealedState::Unsealed
        } else {
            SealedState::Sealed(self.otype)
        }
    }

    /// `true` if the capability is sealed.
    pub fn is_sealed(&self) -> bool {
        self.otype != OTYPE_UNSEALED
    }

    /// The raw seal field as stored in memory (used by the encoder).
    pub(crate) fn otype_raw(&self) -> u32 {
        self.otype
    }

    // --- Monotonic (CHERIv2-era) manipulations ---

    /// `CIncBase`: advance `base` by `delta`, shrinking `length` to match.
    ///
    /// This is how a CHERIv2 compiler lowers `p + n`: the resulting
    /// capability's rights are a strict subset, so the operation is
    /// monotonic — and `p - n` is consequently unrepresentable.
    /// Per the paper (§4.1) the offset, where present, is preserved, so the
    /// address moves with the base.
    ///
    /// # Errors
    ///
    /// * [`CapError::TagViolation`] if untagged.
    /// * [`CapError::SealViolation`] if sealed.
    /// * [`CapError::MonotonicityViolation`] if `delta > length` (the base
    ///   may never pass the top).
    pub fn inc_base(&self, delta: u64) -> CapResult<Capability> {
        self.require_unsealed_tagged()?;
        if delta > self.length {
            return Err(CapError::MonotonicityViolation);
        }
        let mut c = *self;
        c.base += delta; // cannot overflow: base + delta <= base + length <= 2^64 - 1 checked at new_mem
        c.length -= delta;
        Ok(c)
    }

    /// `CSetLen`: shrink the region to `new_length` bytes.
    ///
    /// # Errors
    ///
    /// * [`CapError::TagViolation`] / [`CapError::SealViolation`] as usual.
    /// * [`CapError::MonotonicityViolation`] if `new_length > length`.
    pub fn set_length(&self, new_length: u64) -> CapResult<Capability> {
        self.require_unsealed_tagged()?;
        if new_length > self.length {
            return Err(CapError::MonotonicityViolation);
        }
        let mut c = *self;
        c.length = new_length;
        Ok(c)
    }

    /// `CAndPerm`: intersect the permission set with `mask`.
    ///
    /// Used to derive `__input` (drop [`Perms::STORE`]) and `__output`
    /// (drop [`Perms::LOAD`]) views of an object, and to strip
    /// [`Perms::STORE_CAP`] before sharing memory with an untrusted domain.
    ///
    /// # Errors
    ///
    /// [`CapError::TagViolation`] / [`CapError::SealViolation`].
    pub fn and_perms(&self, mask: Perms) -> CapResult<Capability> {
        self.require_unsealed_tagged()?;
        let mut c = *self;
        c.perms = c.perms & mask;
        Ok(c)
    }

    // --- CHERIv3 fat-pointer manipulations (Table 2) ---

    /// `CIncOffset`: add `delta` (signed, wrapping) to the offset.
    ///
    /// The heart of the CHERIv3 refinement: pointer arithmetic no longer
    /// consumes rights, so invalid *intermediate* results (idiom **II**) and
    /// pointer subtraction (idiom **Sub**) just work; safety is enforced at
    /// dereference by [`Capability::check_access`].
    ///
    /// Permitted on untagged capabilities too — that is precisely how
    /// `intcap_t` arithmetic (idiom **IA**) is carried out without ever
    /// minting a forged pointer.
    ///
    /// # Errors
    ///
    /// [`CapError::SealViolation`] if the capability is tagged *and* sealed
    /// (sealed capabilities are immutable).
    pub fn inc_offset(&self, delta: i64) -> CapResult<Capability> {
        if self.tag && self.is_sealed() {
            return Err(CapError::SealViolation);
        }
        let mut c = *self;
        c.offset = c.offset.wrapping_add(delta as u64);
        Ok(c)
    }

    /// `CSetOffset`: replace the offset outright.
    ///
    /// # Errors
    ///
    /// [`CapError::SealViolation`] if tagged and sealed.
    pub fn set_offset(&self, offset: u64) -> CapResult<Capability> {
        if self.tag && self.is_sealed() {
            return Err(CapError::SealViolation);
        }
        let mut c = *self;
        c.offset = offset;
        Ok(c)
    }

    /// Sets bounds to `[address(), address() + length)`, i.e. re-derives a
    /// tighter object capability at the current cursor (`CSetBounds` — used
    /// by allocators and by the compiler for stack allocations).
    ///
    /// # Errors
    ///
    /// * Usual tag/seal violations.
    /// * [`CapError::BoundsViolation`] if the requested region is not
    ///   contained in the current one (monotonicity).
    pub fn set_bounds(&self, length: u64) -> CapResult<Capability> {
        self.require_unsealed_tagged()?;
        let addr = self.address();
        let new_top = addr
            .checked_add(length)
            .ok_or(CapError::ArithmeticOverflow)?;
        if addr < self.base || new_top > self.top() {
            return Err(CapError::BoundsViolation { addr, len: length });
        }
        let mut c = *self;
        c.base = addr;
        c.length = length;
        c.offset = 0;
        Ok(c)
    }

    /// `CClearTag`: forget that this is a capability, keeping the bits.
    pub fn clear_tag(&self) -> Capability {
        let mut c = *self;
        c.tag = false;
        c
    }

    // --- Sealing (extension exercised by CJALR protected calls) ---

    /// Seals this capability with the object type named by `authority`'s
    /// address. The result is immutable and non-dereferenceable until
    /// unsealed with a matching authority.
    ///
    /// # Errors
    ///
    /// * Tag/seal violations on either operand.
    /// * [`CapError::PermissionViolation`] if `authority` lacks
    ///   [`Perms::SEAL`].
    /// * [`CapError::BoundsViolation`] if the authority's address exceeds
    ///   [`OTYPE_MAX`].
    pub fn seal(&self, authority: &Capability) -> CapResult<Capability> {
        self.require_unsealed_tagged()?;
        authority.require_unsealed_tagged()?;
        if !authority.perms.contains(Perms::SEAL) {
            return Err(CapError::PermissionViolation(Perms::SEAL));
        }
        let otype = authority.address();
        if otype > OTYPE_MAX as u64 {
            return Err(CapError::BoundsViolation {
                addr: otype,
                len: 1,
            });
        }
        let mut c = *self;
        c.otype = otype as u32;
        Ok(c)
    }

    /// Unseals a sealed capability whose object type matches `authority`'s
    /// address.
    ///
    /// # Errors
    ///
    /// * [`CapError::SealViolation`] if `self` is not sealed or the types
    ///   do not match.
    /// * Permission/tag errors on `authority` as for [`Capability::seal`].
    pub fn unseal(&self, authority: &Capability) -> CapResult<Capability> {
        if !self.tag {
            return Err(CapError::TagViolation);
        }
        let SealedState::Sealed(otype) = self.sealed_state() else {
            return Err(CapError::SealViolation);
        };
        authority.require_unsealed_tagged()?;
        if !authority.perms.contains(Perms::SEAL) {
            return Err(CapError::PermissionViolation(Perms::SEAL));
        }
        if authority.address() != otype as u64 {
            return Err(CapError::SealViolation);
        }
        let mut c = *self;
        c.otype = OTYPE_UNSEALED;
        Ok(c)
    }

    // --- Hybrid interoperability (CFromPtr / CToPtr) ---

    /// `CFromPtr`: derive a capability from an integer pointer `ptr`
    /// interpreted relative to `base_cap` (usually the default data
    /// capability).
    ///
    /// The special case `ptr == 0` yields the canonical null capability, to
    /// adhere to C's null-pointer semantics (paper §4.2).
    ///
    /// # Errors
    ///
    /// Tag/seal violations on `base_cap`.
    pub fn from_ptr(base_cap: &Capability, ptr: u64) -> CapResult<Capability> {
        if ptr == 0 {
            return Ok(Capability::null());
        }
        base_cap.require_unsealed_tagged()?;
        base_cap.set_offset(ptr)
    }

    /// `CToPtr`: the capability's address as an offset from `base_cap`, or
    /// `0` if this capability is untagged or points outside `base_cap`'s
    /// region.
    ///
    /// Bounds information is *not* carried by the result — this is the
    /// lossy, hybrid-environment direction, to be used carefully (paper
    /// §4.2).
    pub fn to_ptr(&self, base_cap: &Capability) -> u64 {
        if !self.tag {
            return 0;
        }
        let addr = self.address();
        if addr >= base_cap.base() && addr <= base_cap.top() {
            addr - base_cap.base()
        } else {
            0
        }
    }

    // --- Dereference checking ---

    /// Validates an access of `len` bytes at the current address requiring
    /// `required` permissions, returning the absolute address on success.
    ///
    /// This is the check the load/store pipeline stage performs in parallel
    /// with the cache fetch: resulting address against base *and* top
    /// (paper §4.1: "extended in length by one OR operation").
    ///
    /// # Errors
    ///
    /// * [`CapError::TagViolation`] — forged or integer-typed value.
    /// * [`CapError::SealViolation`] — sealed capabilities cannot be
    ///   dereferenced.
    /// * [`CapError::PermissionViolation`] — missing permission.
    /// * [`CapError::BoundsViolation`] — any byte outside
    ///   `[base, base + length)`.
    pub fn check_access(&self, len: u64, required: Perms) -> CapResult<u64> {
        if !self.tag {
            return Err(CapError::TagViolation);
        }
        if self.is_sealed() {
            return Err(CapError::SealViolation);
        }
        if !self.perms.contains(required) {
            return Err(CapError::PermissionViolation(required));
        }
        let addr = self.address();
        // offset may have wrapped; the access is valid iff it lies entirely
        // within [base, top). Work in u128 to dodge overflow corner cases.
        let off = self.offset as u128;
        if off.checked_add(len as u128).is_none()
            || off + len as u128 > self.length as u128
            || addr < self.base
        {
            return Err(CapError::BoundsViolation { addr, len });
        }
        Ok(addr)
    }

    fn require_unsealed_tagged(&self) -> CapResult<()> {
        if !self.tag {
            return Err(CapError::TagViolation);
        }
        if self.is_sealed() {
            return Err(CapError::SealViolation);
        }
        Ok(())
    }
}

impl Default for Capability {
    /// The default capability is the canonical null capability.
    fn default() -> Capability {
        Capability::null()
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cap{{t:{} b:{:#x} l:{:#x} o:{:#x} {:?}{}}}",
            u8::from(self.tag),
            self.base,
            self.length,
            self.offset,
            self.perms,
            match self.sealed_state() {
                SealedState::Unsealed => String::new(),
                SealedState::Sealed(ty) => format!(" sealed:{ty:#x}"),
            }
        )
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> Capability {
        Capability::new_mem(0x1000, 0x100, Perms::data())
    }

    #[test]
    fn null_is_untagged_zero() {
        let n = Capability::null();
        assert!(!n.tag());
        assert!(n.is_null());
        assert_eq!(n.address(), 0);
        assert_eq!(Capability::default(), n);
    }

    #[test]
    fn new_mem_is_tagged_unsealed() {
        let c = cap();
        assert!(c.tag());
        assert!(!c.is_sealed());
        assert_eq!(c.base(), 0x1000);
        assert_eq!(c.length(), 0x100);
        assert_eq!(c.offset(), 0);
        assert_eq!(c.top(), 0x1100);
    }

    #[test]
    #[should_panic(expected = "overflows the address space")]
    fn new_mem_rejects_overflowing_region() {
        let _ = Capability::new_mem(u64::MAX - 4, 16, Perms::data());
    }

    #[test]
    fn inc_offset_moves_address_not_bounds() {
        let c = cap().inc_offset(0x20).unwrap();
        assert_eq!(c.address(), 0x1020);
        assert_eq!(c.base(), 0x1000);
        assert_eq!(c.length(), 0x100);
    }

    #[test]
    fn inc_offset_negative_supports_pointer_subtraction() {
        let c = cap().inc_offset(0x40).unwrap().inc_offset(-0x30).unwrap();
        assert_eq!(c.offset(), 0x10);
    }

    #[test]
    fn out_of_bounds_intermediate_is_allowed_then_checked() {
        // Idiom II: intermediate outside the object, final access inside.
        let c = cap().inc_offset(0x1000).unwrap(); // way past the end
        assert!(c.check_access(1, Perms::LOAD).is_err());
        let back = c.inc_offset(-0xFF0).unwrap();
        assert!(back.check_access(1, Perms::LOAD).is_ok());
    }

    #[test]
    fn inc_base_is_monotonic() {
        let c = cap().inc_base(0x10).unwrap();
        assert_eq!(c.base(), 0x1010);
        assert_eq!(c.length(), 0xF0);
        assert_eq!(
            cap().inc_base(0x101).unwrap_err(),
            CapError::MonotonicityViolation
        );
    }

    #[test]
    fn set_length_cannot_grow() {
        let c = cap().set_length(0x10).unwrap();
        assert_eq!(c.length(), 0x10);
        assert_eq!(
            c.set_length(0x11).unwrap_err(),
            CapError::MonotonicityViolation
        );
    }

    #[test]
    fn and_perms_only_clears() {
        let c = cap().and_perms(Perms::LOAD).unwrap();
        assert_eq!(c.perms(), Perms::LOAD);
        // A second and_perms cannot bring STORE back.
        let c2 = c.and_perms(Perms::all()).unwrap();
        assert_eq!(c2.perms(), Perms::LOAD);
    }

    #[test]
    fn set_bounds_narrows_at_cursor() {
        let c = cap().inc_offset(0x40).unwrap().set_bounds(0x20).unwrap();
        assert_eq!(c.base(), 0x1040);
        assert_eq!(c.length(), 0x20);
        assert_eq!(c.offset(), 0);
        // Cannot exceed parent region.
        let err = cap()
            .inc_offset(0xF0)
            .unwrap()
            .set_bounds(0x20)
            .unwrap_err();
        assert!(matches!(err, CapError::BoundsViolation { .. }));
    }

    #[test]
    fn check_access_enforces_bounds_exactly() {
        let c = cap();
        assert_eq!(c.check_access(0x100, Perms::LOAD).unwrap(), 0x1000);
        assert!(c.check_access(0x101, Perms::LOAD).is_err());
        let end = c.inc_offset(0xFF).unwrap();
        assert!(end.check_access(1, Perms::LOAD).is_ok());
        assert!(end.check_access(2, Perms::LOAD).is_err());
        // One-past-the-end pointers are representable but not dereferenceable.
        let past = c.inc_offset(0x100).unwrap();
        assert!(past.check_access(1, Perms::LOAD).is_err());
        assert!(past.check_access(0, Perms::LOAD).is_ok());
    }

    #[test]
    fn check_access_requires_permission() {
        let ro = cap().and_perms(Perms::input()).unwrap();
        assert!(ro.check_access(4, Perms::LOAD).is_ok());
        assert_eq!(
            ro.check_access(4, Perms::STORE).unwrap_err(),
            CapError::PermissionViolation(Perms::STORE)
        );
    }

    #[test]
    fn untagged_never_dereferences() {
        let c = cap().clear_tag();
        assert_eq!(
            c.check_access(1, Perms::LOAD).unwrap_err(),
            CapError::TagViolation
        );
    }

    #[test]
    fn intcap_arithmetic_works_untagged() {
        // Idiom IA: arbitrary arithmetic on an integer held in a capability.
        let i = Capability::from_int(0x1234);
        let j = i.inc_offset(0x10).unwrap();
        assert_eq!(j.offset(), 0x1244);
        assert!(!j.tag());
        assert!(j.check_access(1, Perms::LOAD).is_err());
    }

    #[test]
    fn wrapped_offset_cannot_sneak_into_bounds() {
        // offset chosen so base + offset wraps around to base + 8.
        let c = cap().set_offset(u64::MAX - 0xFF7).unwrap();
        assert_eq!(c.address(), 0x1000u64.wrapping_add(u64::MAX - 0xFF7));
        assert!(c.check_access(1, Perms::LOAD).is_err());
    }

    #[test]
    fn from_ptr_zero_is_null() {
        let ddc = Capability::new_mem(0, u64::MAX, Perms::all());
        assert!(Capability::from_ptr(&ddc, 0).unwrap().is_null());
        let p = Capability::from_ptr(&ddc, 0x2000).unwrap();
        assert!(p.tag());
        assert_eq!(p.address(), 0x2000);
    }

    #[test]
    fn to_ptr_round_trips_within_base_cap() {
        let ddc = Capability::new_mem(0, u64::MAX, Perms::all());
        let c = cap().inc_offset(4).unwrap();
        assert_eq!(c.to_ptr(&ddc), 0x1004);
        assert_eq!(Capability::null().to_ptr(&ddc), 0);
        // Out of the base capability's range -> 0.
        let small = Capability::new_mem(0x10, 0x10, Perms::data());
        assert_eq!(c.to_ptr(&small), 0);
    }

    #[test]
    fn seal_unseal_round_trip() {
        let sealer = Capability::new_mem(0x42, 0x10, Perms::all());
        let c = cap().seal(&sealer).unwrap();
        assert!(c.is_sealed());
        assert_eq!(c.sealed_state(), SealedState::Sealed(0x42));
        assert_eq!(
            c.check_access(1, Perms::LOAD).unwrap_err(),
            CapError::SealViolation
        );
        assert_eq!(c.inc_offset(1).unwrap_err(), CapError::SealViolation);
        let u = c.unseal(&sealer).unwrap();
        assert!(!u.is_sealed());
        assert!(u.check_access(1, Perms::LOAD).is_ok());
    }

    #[test]
    fn seal_requires_permission_and_range() {
        let no_perm = Capability::new_mem(0x42, 0x10, Perms::data());
        assert_eq!(
            cap().seal(&no_perm).unwrap_err(),
            CapError::PermissionViolation(Perms::SEAL)
        );
        let too_big = Capability::new_mem(1 << 30, 0x10, Perms::all());
        assert!(matches!(
            cap().seal(&too_big).unwrap_err(),
            CapError::BoundsViolation { .. }
        ));
    }

    #[test]
    fn unseal_wrong_authority_fails() {
        let sealer = Capability::new_mem(0x42, 0x10, Perms::all());
        let other = Capability::new_mem(0x43, 0x10, Perms::all());
        let c = cap().seal(&sealer).unwrap();
        assert_eq!(c.unseal(&other).unwrap_err(), CapError::SealViolation);
    }

    #[test]
    fn debug_mentions_fields() {
        let s = format!("{:?}", cap());
        assert!(s.contains("0x1000"));
        assert!(s.contains("0x100"));
    }
}
