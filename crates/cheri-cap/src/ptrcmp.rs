//! `CPtrCmp`: comparing capabilities *as C pointers*.
//!
//! The paper adds this instruction "to avoid accidentally leaking virtual
//! addresses into integer registers" (§4.1): without it, comparing two
//! pointers would require `CToPtr` into integer registers, exposing raw
//! addresses. `CPtrCmp` compares `base + offset` of two capabilities as if
//! they were pointers, ordering **all tagged capabilities after all untagged
//! capabilities** so that integers stored in capabilities (`intcap_t`) never
//! compare equal to any valid pointer.

use crate::Capability;
use std::cmp::Ordering;

/// The result of a `CPtrCmp` comparison, wrapping [`Ordering`] with the
/// extra bit of information of whether the operands were in different tag
/// classes (useful to diagnostics and to the garbage collector, which must
/// not treat an address-equal integer as an alias of a pointer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PtrCmpOrdering {
    /// The total order used for `<`, `<=`, `==` at the C level.
    pub ordering: Ordering,
    /// `true` if one operand was tagged and the other untagged.
    pub cross_tag: bool,
}

impl PtrCmpOrdering {
    /// Convenience: equality under the pointer ordering.
    pub fn is_eq(self) -> bool {
        self.ordering == Ordering::Equal
    }
}

/// Compares two capabilities as C pointers.
///
/// Order: untagged < tagged; within a tag class, by address
/// (`base + offset`). Two tagged capabilities with the same address compare
/// equal even if derived from different objects — exactly the C-level
/// behaviour of comparing the pointers' values.
///
/// # Example
///
/// ```
/// use cheri_cap::{ptr_cmp, Capability, Perms};
/// use std::cmp::Ordering;
/// let obj = Capability::new_mem(0x1000, 16, Perms::data());
/// let int = Capability::from_int(0x1000); // same numeric address
/// // An intcap_t never compares equal to a valid capability:
/// assert_eq!(ptr_cmp(&int, &obj).ordering, Ordering::Less);
/// assert!(ptr_cmp(&int, &obj).cross_tag);
/// ```
pub fn ptr_cmp(a: &Capability, b: &Capability) -> PtrCmpOrdering {
    let cross_tag = a.tag() != b.tag();
    let ordering = a.tag().cmp(&b.tag()).then(a.address().cmp(&b.address()));
    PtrCmpOrdering {
        ordering,
        cross_tag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Perms;
    use proptest::prelude::*;

    #[test]
    fn same_object_orders_by_address() {
        let c = Capability::new_mem(0x1000, 0x100, Perms::data());
        let p = c.inc_offset(8).unwrap();
        let q = c.inc_offset(16).unwrap();
        assert_eq!(ptr_cmp(&p, &q).ordering, Ordering::Less);
        assert_eq!(ptr_cmp(&q, &p).ordering, Ordering::Greater);
        assert!(ptr_cmp(&p, &p).is_eq());
        assert!(!ptr_cmp(&p, &q).cross_tag);
    }

    #[test]
    fn untagged_sorts_before_tagged() {
        let c = Capability::new_mem(0x10, 0x10, Perms::data());
        let i = Capability::from_int(u64::MAX);
        assert_eq!(ptr_cmp(&i, &c).ordering, Ordering::Less);
    }

    #[test]
    fn null_compares_equal_to_null() {
        assert!(ptr_cmp(&Capability::null(), &Capability::null()).is_eq());
    }

    #[test]
    fn same_address_different_object_compares_equal() {
        // C compares pointer *values*; two one-past-the-end / adjacent-object
        // pointers with the same address are equal at the language level.
        let a = Capability::new_mem(0x1000, 0x10, Perms::data())
            .inc_offset(0x10)
            .unwrap();
        let b = Capability::new_mem(0x1010, 0x10, Perms::data());
        assert!(ptr_cmp(&a, &b).is_eq());
    }

    #[test]
    fn intcap_never_equals_valid_cap() {
        let c = Capability::new_mem(0x1000, 0x100, Perms::data());
        let i = Capability::from_int(c.address());
        let r = ptr_cmp(&i, &c);
        assert!(!r.is_eq());
        assert!(r.cross_tag);
    }

    proptest! {
        #[test]
        fn ordering_is_antisymmetric(a_base in 1u64..1 << 40, b_base in 1u64..1 << 40,
                                     a_off in any::<u32>(), b_off in any::<u32>()) {
            let a = Capability::new_mem(a_base, 64, Perms::data())
                .set_offset(a_off as u64).unwrap();
            let b = Capability::new_mem(b_base, 64, Perms::data())
                .set_offset(b_off as u64).unwrap();
            let ab = ptr_cmp(&a, &b).ordering;
            let ba = ptr_cmp(&b, &a).ordering;
            prop_assert_eq!(ab, ba.reverse());
        }

        #[test]
        fn ordering_is_transitive(xs in proptest::collection::vec((1u64..1 << 30, any::<u16>()), 3)) {
            let caps: Vec<Capability> = xs.iter()
                .map(|&(b, o)| Capability::new_mem(b, 64, Perms::data()).set_offset(o as u64).unwrap())
                .collect();
            let (a, b, c) = (&caps[0], &caps[1], &caps[2]);
            if ptr_cmp(a, b).ordering != Ordering::Greater
                && ptr_cmp(b, c).ordering != Ordering::Greater {
                prop_assert_ne!(ptr_cmp(a, c).ordering, Ordering::Greater);
            }
        }
    }
}
