//! Capability exception conditions.
//!
//! On the hardware these raise a CP2 exception; in this reproduction they
//! surface as `Err(CapError)` from capability operations, and the VM converts
//! them into traps.

use crate::Perms;
use std::error::Error;
use std::fmt;

/// An attempted capability operation violated the capability model.
///
/// Each variant corresponds to an exception cause the CHERI hardware can
/// raise. The distinction matters for the evaluation: e.g. a *tag* violation
/// is what a forged pointer produces (a plain store cleared the granule tag),
/// while a *bounds* violation is what an out-of-bounds dereference produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CapError {
    /// The capability's tag bit was clear: it is data, not a capability.
    TagViolation,
    /// The capability is sealed and the operation requires an unsealed one.
    SealViolation,
    /// A required permission bit was missing.
    PermissionViolation(Perms),
    /// The access at `addr .. addr + len` fell outside `[base, base+length)`.
    BoundsViolation {
        /// First byte of the attempted access (absolute virtual address).
        addr: u64,
        /// Width of the attempted access in bytes.
        len: u64,
    },
    /// An operation attempted to *increase* rights (grow bounds, add
    /// permissions); forbidden by capability monotonicity.
    MonotonicityViolation,
    /// A capability load or store used an address that is not 32-byte
    /// aligned. Capabilities must be naturally aligned (paper §4).
    AlignmentViolation {
        /// The misaligned address.
        addr: u64,
    },
    /// CHERIv2 cannot represent this operation at all (e.g. pointer
    /// subtraction, which would move `base` backwards).
    Unrepresentable(&'static str),
    /// Arithmetic on the capability's fields overflowed 64 bits.
    ArithmeticOverflow,
}

impl fmt::Display for CapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapError::TagViolation => write!(f, "tag violation: value is not a valid capability"),
            CapError::SealViolation => write!(f, "seal violation: capability is sealed"),
            CapError::PermissionViolation(p) => {
                write!(f, "permission violation: missing {p:?}")
            }
            CapError::BoundsViolation { addr, len } => {
                write!(f, "bounds violation: access of {len} bytes at {addr:#x}")
            }
            CapError::MonotonicityViolation => {
                write!(f, "monotonicity violation: operation would increase rights")
            }
            CapError::AlignmentViolation { addr } => {
                write!(f, "alignment violation: capability access at {addr:#x}")
            }
            CapError::Unrepresentable(what) => {
                write!(
                    f,
                    "operation unrepresentable in this capability model: {what}"
                )
            }
            CapError::ArithmeticOverflow => write!(f, "capability field arithmetic overflowed"),
        }
    }
}

impl Error for CapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CapError::BoundsViolation {
            addr: 0x1000,
            len: 4,
        };
        let s = e.to_string();
        assert!(s.contains("0x1000"));
        assert!(s.contains("4 bytes"));
        assert!(CapError::TagViolation.to_string().contains("tag"));
        assert!(CapError::Unrepresentable("pointer subtraction")
            .to_string()
            .contains("pointer subtraction"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CapError>();
    }
}
