//! Table 2 of the paper: "New CHERI instructions to better support C".
//!
//! The table is generated from ISA metadata rather than hard-coded prose so
//! it can never drift from the implementation.

use crate::instr::Op;

/// One row of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table2Row {
    /// Instruction mnemonic as printed in the paper.
    pub instruction: &'static str,
    /// The paper's "USE" column.
    pub usage: &'static str,
    /// The opcode implementing it here.
    pub op: Op,
}

/// The six CHERIv3 instructions, in the paper's order.
pub fn rows() -> Vec<Table2Row> {
    let rows = vec![
        Table2Row {
            instruction: "CIncOffset",
            usage: "Adds an integer to the offset",
            op: Op::CIncOffset,
        },
        Table2Row {
            instruction: "CSetOffset",
            usage: "Sets the offset",
            op: Op::CSetOffset,
        },
        Table2Row {
            instruction: "CGetOffset",
            usage: "Returns the current offset",
            op: Op::CGetOffset,
        },
        Table2Row {
            instruction: "CPtrCmp",
            usage: "Compares two capabilities",
            op: Op::CPtrCmp,
        },
        Table2Row {
            instruction: "CFromPtr",
            usage: "Converts a MIPS pointer to a capability",
            op: Op::CFromPtr,
        },
        Table2Row {
            instruction: "CToPtr",
            usage: "Converts capability to a MIPS pointer",
            op: Op::CToPtr,
        },
    ];
    debug_assert!(rows.iter().all(|r| r.op.is_cheriv3_new()));
    rows
}

/// Renders the table as aligned text, ready for the `table2` harness binary.
pub fn render() -> String {
    let mut out = format!("{:<12}  {}\n", "INSTRUCTION", "USE");
    for r in rows() {
        out.push_str(&format!("{:<12}  {}\n", r.instruction, r.usage));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_the_papers_six() {
        let rs = rows();
        assert_eq!(rs.len(), 6);
        let names: Vec<&str> = rs.iter().map(|r| r.instruction).collect();
        assert_eq!(
            names,
            [
                "CIncOffset",
                "CSetOffset",
                "CGetOffset",
                "CPtrCmp",
                "CFromPtr",
                "CToPtr"
            ]
        );
    }

    #[test]
    fn rows_match_isa_metadata() {
        for r in rows() {
            assert!(
                r.op.is_cheriv3_new(),
                "{} not flagged v3-new",
                r.instruction
            );
            assert_eq!(
                r.op.name(),
                r.instruction.to_lowercase(),
                "mnemonic mismatch"
            );
        }
        // And conversely: every v3-new opcode appears in the table.
        let table_ops: Vec<Op> = rows().iter().map(|r| r.op).collect();
        for &op in Op::ALL {
            if op.is_cheriv3_new() {
                assert!(table_ops.contains(&op));
            }
        }
    }

    #[test]
    fn render_contains_usage_text() {
        let t = render();
        assert!(t.contains("Adds an integer to the offset"));
        assert!(t.contains("CToPtr"));
    }
}
