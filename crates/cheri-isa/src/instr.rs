//! Instructions: opcodes, operands, encoding and disassembly.

use crate::regs::{cap_reg_name, reg_name};
use std::error::Error;
use std::fmt;

/// Comparison selector for `CPtrCmp` (paper Table 2: "Compares two
/// capabilities").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CmpOp {
    /// Equal.
    Eq = 0,
    /// Not equal.
    Ne = 1,
    /// Signed less-than.
    Lt = 2,
    /// Signed less-or-equal.
    Le = 3,
    /// Unsigned less-than.
    Ltu = 4,
    /// Unsigned less-or-equal.
    Leu = 5,
}

impl CmpOp {
    /// Decodes the selector from its immediate encoding.
    pub fn from_u8(v: u8) -> Option<CmpOp> {
        Some(match v {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Ltu,
            5 => CmpOp::Leu,
            _ => return None,
        })
    }
}

/// Operand shape of an opcode, used by the disassembler and by generic
/// tooling (e.g. the Table 2 generator).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// No operands (`nop`, `break`).
    None,
    /// System call; `imm` is the call number.
    Sys,
    /// Integer three-register: `op rd, rs, rt`.
    R3,
    /// Integer register-immediate: `op rd, rs, imm`.
    I2,
    /// Register plus immediate only: `op rd, imm`.
    I1,
    /// Compare-and-branch: `op rs, rt, imm`.
    B2,
    /// Test-and-branch: `op rs, imm`.
    B1,
    /// Absolute jump: `op imm`.
    J,
    /// Jump register: `op rs`.
    Jr,
    /// Jump-and-link register: `op rd, rs`.
    Jalr,
    /// Legacy load: `op rd, imm(rs)` via the default data capability.
    Load,
    /// Legacy store: `op rd, imm(rs)` via the default data capability.
    Store,
    /// Capability-relative load: `op rd, imm(c_rs)`.
    CLoad,
    /// Capability-relative store: `op rd, imm(c_rs)`.
    CStore,
    /// Capability load/store of a capability: `op c_rd, imm(c_rs)`.
    CMemCap,
    /// Capability modify by register: `op c_rd, c_rs, rt`.
    CModR,
    /// Capability modify by immediate: `op c_rd, c_rs, imm`.
    CModI,
    /// Capability-to-capability move-like: `op c_rd, c_rs`.
    CMove2,
    /// Capability field query: `op rd, c_rs`.
    CGet,
    /// Pointer comparison: `op rd, c_rs, c_rt` with a [`CmpOp`] in `imm`.
    CCmp,
    /// Three capability registers: `op c_rd, c_rs, c_rt`.
    C3,
    /// `CToPtr`: `op rd, c_rs, c_rt`.
    CToPtrK,
    /// Capability jump: `op c_rs`.
    CJr,
    /// Capability jump-and-link: `op c_rd, c_rs`.
    CJalr,
    /// Write PCC to a capability register: `op c_rd`.
    CGetPcc,
}

macro_rules! define_ops {
    ($( $variant:ident = $code:literal, $name:literal, $cycles:literal, $kind:ident; )*) => {
        /// An opcode. The `C`-prefixed opcodes are the CHERI extension; the
        /// remainder is the MIPS-like base ISA.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Op {
            $(
                #[doc = $name]
                $variant = $code,
            )*
        }

        impl Op {
            /// Every defined opcode, in encoding order.
            pub const ALL: &'static [Op] = &[$(Op::$variant),*];

            /// The assembler mnemonic.
            pub fn name(self) -> &'static str {
                match self { $(Op::$variant => $name),* }
            }

            /// Pipeline cycles charged before any cache cost.
            pub fn base_cycles(self) -> u64 {
                match self { $(Op::$variant => $cycles),* }
            }

            /// The operand shape.
            pub fn kind(self) -> OpKind {
                match self { $(Op::$variant => OpKind::$kind),* }
            }

            /// Decodes an opcode byte.
            pub fn from_u8(b: u8) -> Option<Op> {
                match b {
                    $($code => Some(Op::$variant),)*
                    _ => None,
                }
            }
        }
    };
}

define_ops! {
    Nop      = 0x00, "nop",     1, None;
    Syscall  = 0x01, "syscall", 4, Sys;
    Break    = 0x02, "break",   1, None;

    // Integer ALU, three-register. `add`/`sub` trap on signed overflow
    // (MIPS precedent cited in paper §3.1.1 for cheap AIR-style trapping).
    Add      = 0x10, "add",     1, R3;
    Addu     = 0x11, "addu",    1, R3;
    Sub      = 0x12, "sub",     1, R3;
    Subu     = 0x13, "subu",    1, R3;
    And      = 0x14, "and",     1, R3;
    Or       = 0x15, "or",      1, R3;
    Xor      = 0x16, "xor",     1, R3;
    Nor      = 0x17, "nor",     1, R3;
    Slt      = 0x18, "slt",     1, R3;
    Sltu     = 0x19, "sltu",    1, R3;
    Sllv     = 0x1A, "sllv",    1, R3;
    Srlv     = 0x1B, "srlv",    1, R3;
    Srav     = 0x1C, "srav",    1, R3;
    Mul      = 0x1D, "mul",     3, R3;
    Div      = 0x1E, "div",    12, R3;
    Divu     = 0x1F, "divu",   12, R3;
    Rem      = 0x20, "rem",    12, R3;
    Remu     = 0x21, "remu",   12, R3;

    // Integer ALU, immediate.
    Addi     = 0x22, "addi",    1, I2;
    Addiu    = 0x23, "addiu",   1, I2;
    Andi     = 0x24, "andi",    1, I2;
    Ori      = 0x25, "ori",     1, I2;
    Xori     = 0x26, "xori",    1, I2;
    Slti     = 0x27, "slti",    1, I2;
    Sltiu    = 0x28, "sltiu",   1, I2;
    Lui      = 0x29, "lui",     1, I1;
    Li       = 0x2A, "li",      1, I1;
    Sll      = 0x2B, "sll",     1, I2;
    Srl      = 0x2C, "srl",     1, I2;
    Sra      = 0x2D, "sra",     1, I2;

    // Branches; `imm` is an absolute instruction index (assembler-resolved).
    Beq      = 0x30, "beq",     1, B2;
    Bne      = 0x31, "bne",     1, B2;
    Blez     = 0x32, "blez",    1, B1;
    Bgtz     = 0x33, "bgtz",    1, B1;
    Bltz     = 0x34, "bltz",    1, B1;
    Bgez     = 0x35, "bgez",    1, B1;

    // Jumps.
    J        = 0x38, "j",       1, J;
    Jal      = 0x39, "jal",     1, J;
    Jr       = 0x3A, "jr",      1, Jr;
    Jalr     = 0x3B, "jalr",    1, Jalr;

    // Legacy MIPS loads/stores, indirected via the default data capability.
    Lb       = 0x40, "lb",      1, Load;
    Lbu      = 0x41, "lbu",     1, Load;
    Lh       = 0x42, "lh",      1, Load;
    Lhu      = 0x43, "lhu",     1, Load;
    Lw       = 0x44, "lw",      1, Load;
    Lwu      = 0x45, "lwu",     1, Load;
    Ld       = 0x46, "ld",      1, Load;
    Sb       = 0x48, "sb",      1, Store;
    Sh       = 0x49, "sh",      1, Store;
    Sw       = 0x4A, "sw",      1, Store;
    Sd       = 0x4B, "sd",      1, Store;

    // Capability-relative loads/stores (explicit capability operand).
    Clb      = 0x50, "clb",     1, CLoad;
    Clbu     = 0x51, "clbu",    1, CLoad;
    Clh      = 0x52, "clh",     1, CLoad;
    Clhu     = 0x53, "clhu",    1, CLoad;
    Clw      = 0x54, "clw",     1, CLoad;
    Clwu     = 0x55, "clwu",    1, CLoad;
    Cld      = 0x56, "cld",     1, CLoad;
    Csb      = 0x58, "csb",     1, CStore;
    Csh      = 0x59, "csh",     1, CStore;
    Csw      = 0x5A, "csw",     1, CStore;
    Csd      = 0x5B, "csd",     1, CStore;
    Clc      = 0x5C, "clc",     1, CMemCap;
    Csc      = 0x5D, "csc",     1, CMemCap;

    // Capability manipulation. Only rights-reducing operations exist.
    CIncBase = 0x60, "cincbase",   1, CModR;
    CSetLen  = 0x61, "csetlen",    1, CModR;
    CAndPerm = 0x62, "candperm",   1, CModR;
    CIncOffset = 0x63, "cincoffset", 1, CModR;
    CSetOffset = 0x64, "csetoffset", 1, CModR;
    CSetBounds = 0x65, "csetbounds", 1, CModR;
    CClearTag  = 0x66, "ccleartag",  1, CMove2;
    CMove      = 0x67, "cmove",      1, CMove2;
    CGetBase   = 0x68, "cgetbase",   1, CGet;
    CGetLen    = 0x69, "cgetlen",    1, CGet;
    CGetOffset = 0x6A, "cgetoffset", 1, CGet;
    CGetPerm   = 0x6B, "cgetperm",   1, CGet;
    CGetTag    = 0x6C, "cgettag",    1, CGet;
    CPtrCmp    = 0x6D, "cptrcmp",    1, CCmp;
    CFromPtr   = 0x6E, "cfromptr",   1, CModR;
    CToPtr     = 0x6F, "ctoptr",     1, CToPtrK;
    CSeal      = 0x70, "cseal",      1, C3;
    CUnseal    = 0x71, "cunseal",    1, C3;
    CJr        = 0x72, "cjr",        1, CJr;
    CJalr      = 0x73, "cjalr",      1, CJalr;
    CGetPcc    = 0x74, "cgetpcc",    1, CGetPcc;
    CIncOffsetImm = 0x75, "cincoffsetimm", 1, CModI;
}

/// How an opcode transfers control, from the perspective of a basic-block
/// builder: the shape of the successor set, not the condition itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlKind {
    /// Falls through to `pc + 1`; never ends a block.
    None,
    /// Conditional branch: two static successors, the encoded target and
    /// the fall-through.
    Branch,
    /// Unconditional direct jump (`j`/`jal`): one static successor.
    Jump,
    /// Indirect jump through an integer register (`jr`/`jalr`): the
    /// successor is dynamic but stays under the current PCC.
    IndirectJump,
    /// Capability jump (`cjr`/`cjalr`): rewrites the PCC itself, so any
    /// cached fetch window is invalidated.
    CapJump,
    /// `syscall`/`break`: may halt the machine, trap, or mutate state the
    /// dispatch loop must observe before the next instruction.
    Effect,
}

impl Op {
    /// `true` for opcodes introduced by the CHERI extension.
    pub fn is_capability_op(self) -> bool {
        self as u8 >= 0x50
    }

    /// The control-flow shape of this opcode. The emulator's block IR uses
    /// this both to cut blocks and to record each block's static successor
    /// targets for chained dispatch.
    pub fn control_kind(self) -> ControlKind {
        match self {
            Op::Beq | Op::Bne | Op::Blez | Op::Bgtz | Op::Bltz | Op::Bgez => ControlKind::Branch,
            Op::J | Op::Jal => ControlKind::Jump,
            Op::Jr | Op::Jalr => ControlKind::IndirectJump,
            Op::CJr | Op::CJalr => ControlKind::CapJump,
            Op::Syscall | Op::Break => ControlKind::Effect,
            _ => ControlKind::None,
        }
    }

    /// `true` for opcodes that end a basic block: everything that can
    /// transfer control away from the fall-through path (branches, jumps,
    /// capability jumps), plus `syscall` (which can halt the machine or
    /// mutate state the dispatch loop must observe before the next
    /// instruction) and `break` (which always traps). The emulator's
    /// superinstruction builder cuts straight-line blocks at these.
    pub fn ends_block(self) -> bool {
        self.control_kind() != ControlKind::None
    }

    /// `true` for the six instructions the paper's Table 2 adds in CHERIv3.
    pub fn is_cheriv3_new(self) -> bool {
        matches!(
            self,
            Op::CIncOffset
                | Op::CSetOffset
                | Op::CGetOffset
                | Op::CPtrCmp
                | Op::CFromPtr
                | Op::CToPtr
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One instruction: an opcode plus uniformly-shaped operand fields.
///
/// Which fields are meaningful depends on [`Op::kind`]; for capability
/// opcodes the register fields name capability registers. The uniform shape
/// keeps encoding trivial (`op:8 | rd:8 | rs:8 | rt:8 | imm:32`) and the
/// emulator's dispatch a single match.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instr {
    /// The opcode.
    pub op: Op,
    /// Destination register (integer or capability, per [`Op::kind`]).
    pub rd: u8,
    /// First source register.
    pub rs: u8,
    /// Second source register.
    pub rt: u8,
    /// Immediate operand (offset, shift amount, jump target, selector…).
    pub imm: i32,
}

impl Instr {
    /// Builds an instruction from explicit fields.
    pub fn new(op: Op, rd: u8, rs: u8, rt: u8, imm: i32) -> Instr {
        Instr {
            op,
            rd,
            rs,
            rt,
            imm,
        }
    }

    /// `nop`.
    pub fn nop() -> Instr {
        Instr::new(Op::Nop, 0, 0, 0, 0)
    }

    /// Three-register integer shape: `op rd, rs, rt`.
    pub fn r3(op: Op, rd: u8, rs: u8, rt: u8) -> Instr {
        Instr::new(op, rd, rs, rt, 0)
    }

    /// Register-immediate shape: `op rd, rs, imm`.
    pub fn i2(op: Op, rd: u8, rs: u8, imm: i32) -> Instr {
        Instr::new(op, rd, rs, 0, imm)
    }

    /// `li rd, imm` (sign-extended to 64 bits at execution).
    pub fn li(rd: u8, imm: i32) -> Instr {
        Instr::new(Op::Li, rd, 0, 0, imm)
    }

    /// Memory shape (legacy or capability-relative): `op rd, imm(rs)`.
    pub fn mem(op: Op, rd: u8, base: u8, off: i32) -> Instr {
        Instr::new(op, rd, base, 0, off)
    }

    /// Capability modify shape: `op c_rd, c_rs, rt`.
    pub fn cmod(op: Op, cd: u8, cb: u8, rt: u8) -> Instr {
        Instr::new(op, cd, cb, rt, 0)
    }

    /// `cincoffset cd, cb, rt` — the Table 2 workhorse.
    pub fn c_inc_offset(cd: u8, cb: u8, rt: u8) -> Instr {
        Instr::cmod(Op::CIncOffset, cd, cb, rt)
    }

    /// `cptrcmp rd, cb, ct` with comparison `op`.
    pub fn c_ptr_cmp(rd: u8, cb: u8, ct: u8, op: CmpOp) -> Instr {
        Instr::new(Op::CPtrCmp, rd, cb, ct, op as i32)
    }

    /// `syscall n`.
    pub fn syscall(n: i32) -> Instr {
        Instr::new(Op::Syscall, 0, 0, 0, n)
    }

    /// Disassembles to assembler syntax.
    pub fn disasm(&self) -> String {
        let r = reg_name;
        let c = cap_reg_name;
        let (rd, rs, rt, imm) = (self.rd, self.rs, self.rt, self.imm);
        match self.op.kind() {
            OpKind::None => self.op.name().to_string(),
            OpKind::Sys => format!("{} {}", self.op, imm),
            OpKind::R3 => format!("{} {}, {}, {}", self.op, r(rd), r(rs), r(rt)),
            OpKind::I2 => format!("{} {}, {}, {}", self.op, r(rd), r(rs), imm),
            OpKind::I1 => format!("{} {}, {}", self.op, r(rd), imm),
            OpKind::B2 => format!("{} {}, {}, @{}", self.op, r(rs), r(rt), imm),
            OpKind::B1 => format!("{} {}, @{}", self.op, r(rs), imm),
            OpKind::J => format!("{} @{}", self.op, imm),
            OpKind::Jr => format!("{} {}", self.op, r(rs)),
            OpKind::Jalr => format!("{} {}, {}", self.op, r(rd), r(rs)),
            OpKind::Load | OpKind::Store => {
                format!("{} {}, {}({})", self.op, r(rd), imm, r(rs))
            }
            OpKind::CLoad | OpKind::CStore => {
                format!("{} {}, {}({})", self.op, r(rd), imm, c(rs))
            }
            OpKind::CMemCap => format!("{} {}, {}({})", self.op, c(rd), imm, c(rs)),
            OpKind::CModR => format!("{} {}, {}, {}", self.op, c(rd), c(rs), r(rt)),
            OpKind::CModI => format!("{} {}, {}, {}", self.op, c(rd), c(rs), imm),
            OpKind::CMove2 => format!("{} {}, {}", self.op, c(rd), c(rs)),
            OpKind::CGet => format!("{} {}, {}", self.op, r(rd), c(rs)),
            OpKind::CCmp => format!(
                "{} {}, {}, {} ({:?})",
                self.op,
                r(rd),
                c(rs),
                c(rt),
                CmpOp::from_u8(imm as u8).unwrap_or(CmpOp::Eq)
            ),
            OpKind::C3 => format!("{} {}, {}, {}", self.op, c(rd), c(rs), c(rt)),
            OpKind::CToPtrK => format!("{} {}, {}, {}", self.op, r(rd), c(rs), c(rt)),
            OpKind::CJr => format!("{} {}", self.op, c(rs)),
            OpKind::CJalr => format!("{} {}, {}", self.op, c(rd), c(rs)),
            OpKind::CGetPcc => format!("{} {}", self.op, c(rd)),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disasm())
    }
}

/// A word failed to decode into an instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte is not assigned.
    BadOpcode(u8),
    /// A register field exceeds 31.
    BadRegister(u8),
    /// A `CPtrCmp` selector immediate is not a valid [`CmpOp`].
    BadCmpSelector(i32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "unassigned opcode {b:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "register field {r} out of range"),
            DecodeError::BadCmpSelector(s) => write!(f, "invalid cptrcmp selector {s}"),
        }
    }
}

impl Error for DecodeError {}

/// Packs an instruction into its 64-bit encoding.
pub fn encode(i: &Instr) -> u64 {
    (i.op as u64)
        | ((i.rd as u64) << 8)
        | ((i.rs as u64) << 16)
        | ((i.rt as u64) << 24)
        | ((i.imm as u32 as u64) << 32)
}

/// Unpacks a 64-bit word into an instruction.
///
/// # Errors
///
/// [`DecodeError`] for unassigned opcodes, out-of-range register fields, or
/// an invalid `CPtrCmp` selector.
pub fn decode(word: u64) -> Result<Instr, DecodeError> {
    let opb = word as u8;
    let op = Op::from_u8(opb).ok_or(DecodeError::BadOpcode(opb))?;
    let rd = (word >> 8) as u8;
    let rs = (word >> 16) as u8;
    let rt = (word >> 24) as u8;
    for r in [rd, rs, rt] {
        if r >= 32 {
            return Err(DecodeError::BadRegister(r));
        }
    }
    let imm = (word >> 32) as u32 as i32;
    if op == Op::CPtrCmp && CmpOp::from_u8(imm as u8).is_none() {
        return Err(DecodeError::BadCmpSelector(imm));
    }
    Ok(Instr {
        op,
        rd,
        rs,
        rt,
        imm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_opcodes_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for &op in Op::ALL {
            assert!(seen.insert(op as u8), "duplicate opcode {:?}", op);
        }
    }

    #[test]
    fn from_u8_round_trips() {
        for &op in Op::ALL {
            assert_eq!(Op::from_u8(op as u8), Some(op));
        }
        assert_eq!(Op::from_u8(0xFF), None);
    }

    #[test]
    fn table2_instructions_are_flagged() {
        let new: Vec<&str> = Op::ALL
            .iter()
            .filter(|o| o.is_cheriv3_new())
            .map(|o| o.name())
            .collect();
        assert_eq!(
            new,
            [
                "cincoffset",
                "csetoffset",
                "cgetoffset",
                "cptrcmp",
                "cfromptr",
                "ctoptr"
            ]
        );
    }

    #[test]
    fn capability_ops_are_classified() {
        assert!(Op::Clc.is_capability_op());
        assert!(Op::CJalr.is_capability_op());
        assert!(!Op::Addu.is_capability_op());
        assert!(!Op::Ld.is_capability_op());
    }

    #[test]
    fn block_enders_match_operand_shapes() {
        // The classification must agree with the operand shapes: every
        // branch/jump shape ends a block, plus syscall and break; nothing
        // that merely computes or accesses memory does.
        use OpKind::*;
        for &op in Op::ALL {
            let control = matches!(op.kind(), B1 | B2 | J | Jr | Jalr | CJr | CJalr | Sys);
            let expected = control || op == Op::Break;
            assert_eq!(op.ends_block(), expected, "{op:?}");
        }
        assert!(Op::Beq.ends_block());
        assert!(Op::CJalr.ends_block());
        assert!(Op::Syscall.ends_block());
        assert!(!Op::Addu.ends_block());
        assert!(!Op::Cld.ends_block());
        assert!(!Op::Csc.ends_block());
        assert!(!Op::CSetBounds.ends_block());
    }

    #[test]
    fn control_kinds_partition_the_block_enders() {
        // `control_kind` refines `ends_block`: `None` exactly on the ops
        // that fall through, and the successor shapes sort by opcode family.
        for &op in Op::ALL {
            assert_eq!(
                op.control_kind() == ControlKind::None,
                !op.ends_block(),
                "{op:?}"
            );
        }
        assert_eq!(Op::Bne.control_kind(), ControlKind::Branch);
        assert_eq!(Op::J.control_kind(), ControlKind::Jump);
        assert_eq!(Op::Jal.control_kind(), ControlKind::Jump);
        assert_eq!(Op::Jalr.control_kind(), ControlKind::IndirectJump);
        assert_eq!(Op::CJr.control_kind(), ControlKind::CapJump);
        assert_eq!(Op::Syscall.control_kind(), ControlKind::Effect);
        assert_eq!(Op::Break.control_kind(), ControlKind::Effect);
        assert_eq!(Op::Addu.control_kind(), ControlKind::None);
    }

    #[test]
    fn encode_decode_round_trip_examples() {
        let cases = [
            Instr::nop(),
            Instr::li(4, -7),
            Instr::r3(Op::Addu, 2, 4, 5),
            Instr::mem(Op::Ld, 8, 29, -16),
            Instr::mem(Op::Clc, 3, 1, 64),
            Instr::c_inc_offset(2, 2, 9),
            Instr::c_ptr_cmp(2, 3, 4, CmpOp::Ltu),
            Instr::syscall(1),
        ];
        for i in cases {
            assert_eq!(decode(encode(&i)).unwrap(), i);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(decode(0xEE), Err(DecodeError::BadOpcode(0xEE))));
        let bad_reg = encode(&Instr::nop()) | (40 << 8) | 0x11;
        assert!(matches!(decode(bad_reg), Err(DecodeError::BadRegister(40))));
        let bad_sel = encode(&Instr::c_ptr_cmp(1, 2, 3, CmpOp::Eq)) | (9u64 << 32);
        assert!(matches!(
            decode(bad_sel),
            Err(DecodeError::BadCmpSelector(9))
        ));
    }

    #[test]
    fn disasm_is_readable() {
        assert_eq!(Instr::r3(Op::Addu, 2, 4, 5).disasm(), "addu v0, a0, a1");
        assert_eq!(Instr::mem(Op::Ld, 8, 29, -16).disasm(), "ld t0, -16(sp)");
        assert_eq!(Instr::mem(Op::Clc, 3, 0, 32).disasm(), "clc c3, 32(ddc)");
        assert_eq!(
            Instr::c_inc_offset(2, 2, 9).disasm(),
            "cincoffset c2, c2, t1"
        );
        assert!(Instr::c_ptr_cmp(2, 3, 4, CmpOp::Ltu)
            .disasm()
            .contains("Ltu"));
    }

    #[test]
    fn cycles_reflect_cost_classes() {
        assert_eq!(Op::Addu.base_cycles(), 1);
        assert!(Op::Div.base_cycles() > Op::Mul.base_cycles());
        assert!(Op::Mul.base_cycles() > Op::Addu.base_cycles());
    }

    proptest! {
        #[test]
        fn encode_decode_round_trips(
            op_idx in 0..Op::ALL.len(),
            rd in 0u8..32, rs in 0u8..32, rt in 0u8..32,
            imm in any::<i32>(),
        ) {
            let op = Op::ALL[op_idx];
            let imm = if op == Op::CPtrCmp { imm.rem_euclid(6) } else { imm };
            let i = Instr::new(op, rd, rs, rt, imm);
            prop_assert_eq!(decode(encode(&i)).unwrap(), i);
        }

        #[test]
        fn disasm_never_panics(
            op_idx in 0..Op::ALL.len(),
            rd in 0u8..32, rs in 0u8..32, rt in 0u8..32,
            imm in any::<i32>(),
        ) {
            let i = Instr::new(Op::ALL[op_idx], rd, rs, rt, imm);
            prop_assert!(!i.disasm().is_empty());
        }
    }
}
