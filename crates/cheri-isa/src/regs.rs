//! Register naming conventions.
//!
//! Thirty-two 64-bit general-purpose registers with the MIPS o64 calling
//! convention, and thirty-two capability registers. Capability register 0
//! is the **default data capability** (DDC) through which legacy MIPS loads
//! and stores are indirected (paper §4).

/// Always-zero general-purpose register.
pub const ZERO: u8 = 0;
/// First integer return-value register.
pub const V0: u8 = 2;
/// Second integer return-value register.
pub const V1: u8 = 3;
/// First integer argument register.
pub const A0: u8 = 4;
/// Second integer argument register.
pub const A1: u8 = 5;
/// Third integer argument register.
pub const A2: u8 = 6;
/// Fourth integer argument register.
pub const A3: u8 = 7;
/// First caller-saved temporary.
pub const T0: u8 = 8;
/// Second caller-saved temporary.
pub const T1: u8 = 9;
/// Third caller-saved temporary.
pub const T2: u8 = 10;
/// Fourth caller-saved temporary.
pub const T3: u8 = 11;
/// Global pointer.
pub const GP: u8 = 28;
/// Stack pointer.
pub const SP: u8 = 29;
/// Frame pointer.
pub const FP: u8 = 30;
/// Return address.
pub const RA: u8 = 31;

/// Capability register 0: the default data capability.
pub const DDC: u8 = 0;

/// Conventional disassembly name for general-purpose register `r`.
pub fn reg_name(r: u8) -> String {
    match r {
        0 => "zero".into(),
        1 => "at".into(),
        2 => "v0".into(),
        3 => "v1".into(),
        4..=7 => format!("a{}", r - 4),
        8..=15 => format!("t{}", r - 8),
        16..=23 => format!("s{}", r - 16),
        24 => "t8".into(),
        25 => "t9".into(),
        26 | 27 => format!("k{}", r - 26),
        28 => "gp".into(),
        29 => "sp".into(),
        30 => "fp".into(),
        31 => "ra".into(),
        _ => format!("r{r}?"),
    }
}

/// Conventional disassembly name for capability register `c`.
pub fn cap_reg_name(c: u8) -> String {
    match c {
        0 => "ddc".into(),
        _ => format!("c{c}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_conventional() {
        assert_eq!(reg_name(ZERO), "zero");
        assert_eq!(reg_name(SP), "sp");
        assert_eq!(reg_name(RA), "ra");
        assert_eq!(reg_name(A0), "a0");
        assert_eq!(reg_name(T0), "t0");
        assert_eq!(cap_reg_name(DDC), "ddc");
        assert_eq!(cap_reg_name(3), "c3");
    }

    #[test]
    fn out_of_range_is_flagged() {
        assert!(reg_name(40).contains('?'));
    }
}
