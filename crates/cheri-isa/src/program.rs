//! Loadable program images.

use crate::instr::{decode, encode, DecodeError, Instr};
use std::fmt;

/// A named address in a program image, chiefly function entry points.
///
/// Function symbols carry a size so the loader can derive a per-function
/// code capability for `CJALR` (paper §4.2: "it is possible to use a code
/// capability for every function").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name (function or global).
    pub name: String,
    /// Instruction index (functions) or data-segment offset (globals).
    pub value: u64,
    /// Extent in instructions or bytes.
    pub size: u64,
    /// `true` for function symbols.
    pub is_func: bool,
}

/// A complete program image: code, initialized data, entry point and
/// symbols.
///
/// # Example
///
/// ```
/// use cheri_isa::{Instr, Op, Program};
///
/// let mut p = Program::new();
/// p.code.push(Instr::li(2, 42));
/// p.code.push(Instr::syscall(0)); // exit
/// assert_eq!(Program::from_words(&p.to_words()).unwrap().code, p.code);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Instruction stream; the program counter indexes into this.
    pub code: Vec<Instr>,
    /// Initialized data segment contents.
    pub data: Vec<u8>,
    /// Load address of the data segment.
    pub data_base: u64,
    /// Entry instruction index.
    pub entry: u64,
    /// Symbol table.
    pub symbols: Vec<Symbol>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Serializes the instruction stream to 64-bit words.
    pub fn to_words(&self) -> Vec<u64> {
        self.code.iter().map(encode).collect()
    }

    /// Rebuilds an instruction stream from 64-bit words (no data segment).
    ///
    /// # Errors
    ///
    /// Propagates the first [`DecodeError`].
    pub fn from_words(words: &[u64]) -> Result<Program, DecodeError> {
        let code = words.iter().map(|&w| decode(w)).collect::<Result<_, _>>()?;
        Ok(Program {
            code,
            ..Program::default()
        })
    }

    /// Total size of the instruction stream in bytes (8 bytes/instruction).
    pub fn code_bytes(&self) -> u64 {
        self.code.len() as u64 * 8
    }

    /// A full listing with function labels, for debugging code generation.
    ///
    /// Function symbols are pre-indexed by entry address, so the listing is
    /// O(code + symbols) instead of rescanning the whole symbol table for
    /// every instruction.
    pub fn disassemble(&self) -> String {
        let mut by_addr: std::collections::HashMap<u64, Vec<&str>> =
            std::collections::HashMap::new();
        for s in &self.symbols {
            if s.is_func {
                by_addr.entry(s.value).or_default().push(&s.name);
            }
        }
        let mut out = String::new();
        for (idx, instr) in self.code.iter().enumerate() {
            if let Some(names) = by_addr.get(&(idx as u64)) {
                for name in names {
                    out.push_str(&format!("{name}:\n"));
                }
            }
            out.push_str(&format!("  {idx:5}  {instr}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Op;

    fn sample() -> Program {
        let mut p = Program::new();
        p.code = vec![
            Instr::li(4, 10),
            Instr::r3(Op::Addu, 2, 4, 0),
            Instr::syscall(0),
        ];
        p.symbols.push(Symbol {
            name: "main".into(),
            value: 0,
            size: 3,
            is_func: true,
        });
        p
    }

    #[test]
    fn words_round_trip() {
        let p = sample();
        let q = Program::from_words(&p.to_words()).unwrap();
        assert_eq!(q.code, p.code);
    }

    #[test]
    fn bad_words_error() {
        assert!(Program::from_words(&[0xEE]).is_err());
    }

    #[test]
    fn symbols_resolve() {
        let p = sample();
        assert_eq!(p.symbol("main").unwrap().value, 0);
        assert!(p.symbol("missing").is_none());
    }

    #[test]
    fn disassembly_labels_functions() {
        let text = sample().disassemble();
        assert!(text.contains("main:"));
        assert!(text.contains("li a0, 10"));
        assert!(text.contains("syscall 0"));
    }

    #[test]
    fn code_bytes_counts_words() {
        assert_eq!(sample().code_bytes(), 24);
    }

    #[test]
    fn disassembly_labels_every_function_at_its_entry() {
        let mut p = sample();
        p.symbols.push(Symbol {
            name: "tail".into(),
            value: 2,
            size: 1,
            is_func: true,
        });
        // Data symbols must not produce labels even when their offset
        // collides with an instruction index.
        p.symbols.push(Symbol {
            name: "blob".into(),
            value: 1,
            size: 8,
            is_func: false,
        });
        let text = p.disassemble();
        let main_at = text.find("main:").unwrap();
        let tail_at = text.find("tail:").unwrap();
        assert!(main_at < tail_at);
        assert!(!text.contains("blob:"));
        assert_eq!(text.lines().filter(|l| l.ends_with(':')).count(), 2);
    }
}
