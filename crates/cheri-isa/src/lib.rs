//! The CHERI instruction-set architecture.
//!
//! A 64-bit MIPS-IV-like RISC integer ISA ("the CHERI ISA is a superset of
//! MIPS IV ... and can run unmodified MIPS code", paper §4) supplemented
//! with the CHERI capability instructions, including the six CHERIv3
//! additions of the paper's Table 2 ([`table2`]).
//!
//! Memory is reached three ways, exactly as in the paper:
//!
//! 1. instruction fetches are relative to the **program counter capability**
//!    (PCC);
//! 2. legacy MIPS loads/stores are relative to the **default data
//!    capability** (DDC, capability register 0 by convention);
//! 3. explicit capability loads/stores ([`Op::Clb`] … [`Op::Csc`]) take a
//!    capability register operand.
//!
//! For emulator convenience each instruction encodes into one 64-bit word
//! (`op:8 | rd:8 | rs:8 | rt:8 | imm:32`) rather than MIPS's 32-bit format;
//! the program counter therefore advances by 8. This changes no semantics
//! the paper depends on.
//!
//! # Example
//!
//! ```
//! use cheri_isa::{Instr, Op, decode, encode};
//!
//! let i = Instr::c_inc_offset(3, 3, 9); // c3 = c3 + r9 (CIncOffset, Table 2)
//! assert_eq!(decode(encode(&i)).unwrap(), i);
//! assert_eq!(i.op, Op::CIncOffset);
//! ```

mod instr;
mod program;
mod regs;
pub mod table2;

pub use instr::{decode, encode, CmpOp, ControlKind, DecodeError, Instr, Op, OpKind};
pub use program::{Program, Symbol};
pub use regs::{
    cap_reg_name, reg_name, A0, A1, A2, A3, DDC, FP, GP, RA, SP, T0, T1, T2, T3, V0, V1, ZERO,
};
