//! The two-level hierarchy: configuration, validation, and the
//! transaction engine that charges cycles and keeps the byte ledger.

use crate::level::{Level, LevelSpec, Lookup, Victim};
use crate::mshr::{MshrFile, PrefetchPolicy, Prefetcher, StoreBuffer};
use crate::shared::SharedHierarchy;
use crate::traffic::CacheStats;
use std::fmt;

/// Timing of the DRAM edge (L2↔DRAM): every L2-line fill or drain charges
/// `latency_cycles + ceil(l2.line_bytes / bytes_per_cycle)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramSpec {
    /// Fixed cycles per DRAM transfer (row activation, controller).
    pub latency_cycles: u64,
    /// DRAM burst bandwidth in bytes per cycle.
    pub bytes_per_cycle: u64,
}

/// A [`LevelSpec`] or [`HierarchyConfig`] that cannot be simulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheConfigError {
    /// A size, line size, way count, bandwidth or MSHR count is zero.
    ZeroField(&'static str),
    /// `line_bytes` is not a power of two.
    LineNotPowerOfTwo(u64),
    /// The capacity does not split into a power-of-two number of sets of
    /// `ways` lines.
    BadGeometry {
        /// Capacity in bytes.
        size_bytes: u64,
        /// Line size in bytes.
        line_bytes: u64,
        /// Ways per set.
        ways: u64,
    },
    /// The L1 line is wider than the L2 line (an L1 fill could not come
    /// from a single L2 line).
    L1LineWiderThanL2 {
        /// L1 line size in bytes.
        l1: u64,
        /// L2 line size in bytes.
        l2: u64,
    },
    /// More than 64 L1-line-sized sectors fit in an L2 line (the
    /// per-sector dirty mask is 64 bits wide).
    TooManySectors {
        /// L1 line size in bytes.
        l1: u64,
        /// L2 line size in bytes.
        l2: u64,
    },
    /// The store buffer has more entries than the MSHR file that would
    /// track their drains.
    StoreBufferExceedsMshrs {
        /// Store-buffer entries requested.
        store_buffer: u64,
        /// MSHRs available.
        mshrs: u64,
    },
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::ZeroField(which) => write!(f, "{which} must be non-zero"),
            CacheConfigError::LineNotPowerOfTwo(n) => {
                write!(f, "line_bytes must be a power of two, got {n}")
            }
            CacheConfigError::BadGeometry {
                size_bytes,
                line_bytes,
                ways,
            } => write!(
                f,
                "{size_bytes} bytes of {line_bytes}-byte lines do not form a \
                 power-of-two number of {ways}-way sets"
            ),
            CacheConfigError::L1LineWiderThanL2 { l1, l2 } => {
                write!(f, "L1 line ({l1} bytes) wider than L2 line ({l2} bytes)")
            }
            CacheConfigError::TooManySectors { l1, l2 } => write!(
                f,
                "L2 line ({l2} bytes) holds more than 64 L1-line ({l1} bytes) \
                 sectors; the dirty mask is 64 bits"
            ),
            CacheConfigError::StoreBufferExceedsMshrs {
                store_buffer,
                mshrs,
            } => write!(
                f,
                "store buffer ({store_buffer} entries) larger than the MSHR \
                 file ({mshrs}) that tracks its drains"
            ),
        }
    }
}

impl std::error::Error for CacheConfigError {}

/// Configuration of the full hierarchy: two cache levels plus the DRAM
/// edge, and the prefetch policy layered over them. The flat per-level
/// cycle constants of the old model survive only as values derived from
/// `latency + ceil(line / bandwidth)` inside the presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: LevelSpec,
    /// L2 cache.
    pub l2: LevelSpec,
    /// The DRAM edge below L2.
    pub dram: DramSpec,
    /// The prefetcher watching L1 demand misses (default off).
    pub prefetch: PrefetchPolicy,
}

impl HierarchyConfig {
    /// The paper's FPGA softcore: 16 KB L1, 64 KB L2, 64-byte lines.
    /// The derived per-line costs reproduce the pre-bandwidth model
    /// exactly: an L1 hit is 1 cycle (port), an L1 fill from L2 adds
    /// `5 + 64/16 = 9`, a DRAM transfer adds `22 + 64/8 = 30` — DRAM
    /// "less costly than on most modern processors". One MSHR and no
    /// store buffer: every miss serializes, as the legacy model charged.
    pub fn fpga_softcore() -> HierarchyConfig {
        HierarchyConfig {
            l1: LevelSpec {
                size_bytes: 16 * 1024,
                line_bytes: 64,
                ways: 4,
                latency_cycles: 0,
                bytes_per_cycle: 64,
                mshrs: 1,
                store_buffer: 0,
            },
            l2: LevelSpec {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                ways: 8,
                latency_cycles: 5,
                bytes_per_cycle: 16,
                mshrs: 1,
                store_buffer: 0,
            },
            dram: DramSpec {
                latency_cycles: 22,
                bytes_per_cycle: 8,
            },
            prefetch: PrefetchPolicy::Off,
        }
    }

    /// A modern-desktop-like hierarchy for the substrate ablation bench
    /// (bigger caches, relatively slower DRAM): L2 serves a line in
    /// `4 + 64/8 = 12` cycles, DRAM in `184 + 64/4 = 200`.
    pub fn desktop() -> HierarchyConfig {
        HierarchyConfig {
            l1: LevelSpec {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
                latency_cycles: 0,
                bytes_per_cycle: 64,
                mshrs: 1,
                store_buffer: 0,
            },
            l2: LevelSpec {
                size_bytes: 512 * 1024,
                line_bytes: 64,
                ways: 8,
                latency_cycles: 4,
                bytes_per_cycle: 8,
                mshrs: 1,
                store_buffer: 0,
            },
            dram: DramSpec {
                latency_cycles: 184,
                bytes_per_cycle: 4,
            },
            prefetch: PrefetchPolicy::Off,
        }
    }

    /// The same hierarchy with a narrower L1 line (16 or 32 bytes): the
    /// geometry that lets half-width capability stores touch half the
    /// bytes instead of rounding up to a 64-byte line.
    pub fn with_l1_line_bytes(mut self, line_bytes: u64) -> HierarchyConfig {
        self.l1.line_bytes = line_bytes;
        self
    }

    /// The same hierarchy with `mshrs` miss handlers at both levels:
    /// bursts of up to `mshrs` independent misses overlap per edge.
    pub fn with_mshrs(mut self, mshrs: u64) -> HierarchyConfig {
        self.l1.mshrs = mshrs;
        self.l2.mshrs = mshrs;
        self
    }

    /// The same hierarchy with `entries` store-buffer slots at both
    /// levels: that many dirty write-backs drain off the critical path.
    /// Must not exceed the MSHR count (see [`LevelSpec::validate`]).
    pub fn with_store_buffer(mut self, entries: u64) -> HierarchyConfig {
        self.l1.store_buffer = entries;
        self.l2.store_buffer = entries;
        self
    }

    /// The same hierarchy under `policy` prefetching.
    pub fn with_prefetch(mut self, policy: PrefetchPolicy) -> HierarchyConfig {
        self.prefetch = policy;
        self
    }

    /// Checks both levels and their relationship (the L1 line must divide
    /// into the L2 line so a fill comes from one L2 line).
    ///
    /// # Errors
    ///
    /// The first [`CacheConfigError`] found.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        self.l1.validate()?;
        self.l2.validate()?;
        if self.dram.bytes_per_cycle == 0 {
            return Err(CacheConfigError::ZeroField("dram.bytes_per_cycle"));
        }
        if self.l1.line_bytes > self.l2.line_bytes {
            return Err(CacheConfigError::L1LineWiderThanL2 {
                l1: self.l1.line_bytes,
                l2: self.l2.line_bytes,
            });
        }
        if self.l2.line_bytes / self.l1.line_bytes > 64 {
            return Err(CacheConfigError::TooManySectors {
                l1: self.l1.line_bytes,
                l2: self.l2.line_bytes,
            });
        }
        Ok(())
    }

    /// Cycles the CPU port charges for `bytes` within one L1 line.
    pub fn port_cycles(&self, bytes: u64) -> u64 {
        self.l1.latency_cycles + bytes.div_ceil(self.l1.bytes_per_cycle)
    }

    /// Cycles one L1-line transfer on the L1↔L2 edge costs (fill or
    /// write-back) when fully serialized.
    pub fn l1_l2_transfer_cycles(&self) -> u64 {
        self.l2.latency_cycles + self.l1.line_bytes.div_ceil(self.l2.bytes_per_cycle)
    }

    /// Cycles one full-L2-line transfer on the L2↔DRAM edge costs (a
    /// demand fill, or a drain whose every sector is dirty) when fully
    /// serialized.
    pub fn l2_dram_transfer_cycles(&self) -> u64 {
        self.dram.latency_cycles + self.l2.line_bytes.div_ceil(self.dram.bytes_per_cycle)
    }

    /// Cycles a sub-blocked drain of `sectors` dirty L1-line-sized
    /// sectors costs on the L2↔DRAM edge (one DRAM latency, then the
    /// burst).
    pub fn l2_drain_cycles(&self, sectors: u64) -> u64 {
        self.dram.latency_cycles
            + (sectors * self.l1.line_bytes).div_ceil(self.dram.bytes_per_cycle)
    }
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig::fpga_softcore()
    }
}

/// A two-level write-back, write-allocate, inclusive cache hierarchy with
/// LRU replacement, charging latency + bandwidth cycles per transfer and
/// keeping a per-edge byte ledger.
///
/// Since the transaction refactor every charge is a *transaction* against
/// the level's MSHR file, store buffer and (optionally) a shared edge:
/// with the default knobs (`mshrs = 1`, `store_buffer = 0`, prefetch off,
/// no shared edges) every transaction degenerates to the serialized
/// legacy charge, bit for bit.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: Level,
    l2: Level,
    stats: CacheStats,
    /// Port cycles when one transfer covers any in-line access
    /// (`bytes_per_cycle >= line_bytes`, true of every preset), so the
    /// hot hit path does no division.
    port_flat: Option<u64>,
    /// Precomputed `l1_l2_transfer_cycles`.
    l1_fill_cycles: u64,
    /// The bandwidth (non-latency) part of the above — what a transfer
    /// occupies its edge for, and what an overlapped miss charges.
    l1_transfer: u64,
    dram_transfer: u64,
    /// The hierarchy's clock: cumulative cycles charged, advanced to the
    /// caller's clock by `access_at`/`access_fetch`. Transactions use it
    /// to decide overlap; under legacy knobs it influences nothing.
    now: u64,
    /// L1's miss handlers (overlap on the L1↔L2 edge).
    l1_mshr: MshrFile,
    /// L2's miss handlers (overlap on the DRAM edge).
    l2_mshr: MshrFile,
    /// L1's write-back buffer (dirty victims toward L2).
    l1_store_buffer: StoreBuffer,
    /// L2's write-back buffer (dirty drains toward DRAM).
    l2_store_buffer: StoreBuffer,
    prefetcher: Prefetcher,
    /// Contended multi-core edges, when attached.
    shared: Option<SharedHierarchy>,
    /// The local clock at the moment the shared edges were attached.
    /// Reservations use `shared_join + (now - shared_base)`, so a core
    /// enters the contention window at the edges' current horizon no
    /// matter how long its private history (e.g. a tenant's warm-up) was.
    shared_base: u64,
    /// Window time at which this core joined the shared edges: the
    /// larger of the two horizons at attach. Joining at the horizon
    /// instead of 0 means a late-joining core is never charged for bus
    /// history that completed before it arrived.
    shared_join: u64,
}

impl Hierarchy {
    /// Builds the hierarchy for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`HierarchyConfig::validate`]; use
    /// [`Hierarchy::try_new`] to get the error instead.
    pub fn new(cfg: HierarchyConfig) -> Hierarchy {
        Hierarchy::try_new(cfg).unwrap_or_else(|e| panic!("invalid cache config: {e}"))
    }

    /// Builds the hierarchy for `cfg`, reporting invalid geometry as an
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// The [`CacheConfigError`] from [`HierarchyConfig::validate`].
    pub fn try_new(cfg: HierarchyConfig) -> Result<Hierarchy, CacheConfigError> {
        cfg.validate()?;
        Ok(Hierarchy {
            l1: Level::new(cfg.l1, cfg.l1.line_bytes),
            l2: Level::new(cfg.l2, cfg.l1.line_bytes),
            stats: CacheStats::default(),
            port_flat: (cfg.l1.bytes_per_cycle >= cfg.l1.line_bytes)
                .then(|| cfg.l1.latency_cycles + 1),
            l1_fill_cycles: cfg.l1_l2_transfer_cycles(),
            l1_transfer: cfg.l1.line_bytes.div_ceil(cfg.l2.bytes_per_cycle),
            dram_transfer: cfg.l2.line_bytes.div_ceil(cfg.dram.bytes_per_cycle),
            now: 0,
            l1_mshr: MshrFile::new(cfg.l1.mshrs, cfg.l2.latency_cycles),
            l2_mshr: MshrFile::new(cfg.l2.mshrs, cfg.dram.latency_cycles),
            l1_store_buffer: StoreBuffer::new(cfg.l1.store_buffer),
            l2_store_buffer: StoreBuffer::new(cfg.l2.store_buffer),
            prefetcher: Prefetcher::new(cfg.prefetch),
            shared: None,
            shared_base: 0,
            shared_join: 0,
            cfg,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> HierarchyConfig {
        self.cfg
    }

    /// Attaches this hierarchy (one core) to `shared` contended edges.
    /// Every subsequent transfer also reserves bandwidth there, and
    /// demand fills are charged the queueing delay as
    /// [`CacheStats::contention_cycles`].
    pub fn attach_shared(&mut self, shared: SharedHierarchy) {
        self.shared_base = self.now;
        // Join at the edges' current frontier: traffic that drained
        // before this core arrived is history, not contention. Cores
        // attached to a fresh window (or to one before anybody ran) all
        // join at 0 and contend from the first transfer.
        self.shared_join = shared.l1_l2.horizon().max(shared.l2_dram.horizon());
        self.shared = Some(shared);
    }

    /// This core's clock within the shared contention window: its
    /// progress since joining (compute, transfers and charged waits),
    /// offset by where the window was when it joined. Charged waits
    /// feeding back into the clock is what keeps the queue stable: a
    /// core that just waited out the bus arrives later next time, so the
    /// backlog drains instead of growing without bound.
    fn shared_now(&self) -> u64 {
        self.shared_join + self.now.saturating_sub(self.shared_base)
    }

    /// Simulates an access of `len` bytes at `addr` (split across L1 lines
    /// as the hardware would), returning the cycles charged. Zero-length
    /// accesses (e.g. `memcpy(d, s, 0)`) touch no line and cost nothing.
    pub fn access(&mut self, addr: u64, len: u64, write: bool) -> u64 {
        if len == 0 {
            return 0;
        }
        let line = self.cfg.l1.line_bytes;
        let mut cycles = 0;
        let mut a = addr;
        let end = addr.saturating_add(len);
        while a < end {
            let line_addr = a & !(line - 1);
            // The last line of the address space has no successor; stepping
            // past it would wrap and walk the whole space again.
            let next = line_addr.checked_add(line);
            let piece = next.map_or(end, |n| n.min(end)) - a;
            let c = self.access_line(line_addr, piece, write);
            self.now += c;
            cycles += c;
            match next {
                Some(n) => a = n,
                None => break,
            }
        }
        self.stats.cycles += cycles;
        cycles
    }

    /// [`Hierarchy::access`] issued at the caller's clock `now` (e.g. the
    /// VM's cycle counter): the hierarchy clock is advanced to it first,
    /// so compute gaps between accesses close transaction burst windows.
    /// Charges are unaffected under the legacy knobs.
    pub fn access_at(&mut self, now: u64, addr: u64, len: u64, write: bool) -> u64 {
        self.now = self.now.max(now);
        self.access(addr, len, write)
    }

    /// An instruction-fetch transaction of `len` code bytes at `addr`,
    /// issued at the caller's clock — one per superinstruction block
    /// entry. Identical to a read access except that it is also tallied
    /// in the [`crate::FetchStats`] ledger.
    pub fn access_fetch(&mut self, now: u64, addr: u64, len: u64) -> u64 {
        self.now = self.now.max(now);
        let misses_before = self.stats.l1_misses;
        let cycles = self.access(addr, len, false);
        self.stats.fetch.blocks += 1;
        self.stats.fetch.bytes += len;
        self.stats.fetch.l1_misses += self.stats.l1_misses - misses_before;
        self.stats.fetch.cycles += cycles;
        cycles
    }

    fn access_line(&mut self, line_addr: u64, bytes: u64, write: bool) -> u64 {
        // The CPU port is charged for every access, hit or miss.
        let port = match self.port_flat {
            Some(p) => p,
            None => self.cfg.port_cycles(bytes),
        };
        match self.l1.access(line_addr, write) {
            Lookup::Hit => {
                self.stats.l1_hits += 1;
                port
            }
            Lookup::Miss(victim) => {
                self.stats.l1_misses += 1;
                // The miss transaction's clock in the shared window. Each
                // reservation inside the transaction advances it past the
                // frontier it just waited for, so a later stage that hits a
                // second contended edge arrives already past the common
                // skew and pays only the *max* of the edges' backlogs, not
                // their sum — overshooting the frontier is what would make
                // interleaved cores leapfrog each other and diverge.
                let mut at = self.shared_now();
                let mut cycles = port;
                // Drain the dirty L1 victim first: inclusion guarantees its
                // containing L2 line is still resident *before* the demand
                // fill below may evict it.
                if let Some(v) = victim {
                    if v.dirty != 0 {
                        cycles += self.writeback_l1_line(v.line_addr, &mut at);
                    }
                }
                // Demand path: the containing L2 line, from L2 or DRAM.
                match self.l2.access(line_addr, write) {
                    Lookup::Hit => self.stats.l2_hits += 1,
                    Lookup::Miss(l2_victim) => {
                        self.stats.l2_misses += 1;
                        self.stats.traffic.l2_dram.fill_lines += 1;
                        self.stats.traffic.l2_dram.fill_bytes += self.cfg.l2.line_bytes;
                        cycles += self.charge_dram_fill(&mut at);
                        if let Some(v) = l2_victim {
                            cycles += self.evict_l2_line(v, true, &mut at);
                        }
                    }
                }
                // The L1 fill itself: one L1 line over the L1<->L2 edge.
                self.stats.traffic.l1_l2.fill_lines += 1;
                self.stats.traffic.l1_l2.fill_bytes += self.cfg.l1.line_bytes;
                cycles += self.charge_l1_fill(&mut at);
                // Let the prefetcher chase the miss stream.
                if let Some(target) = self.prefetcher.observe(line_addr, self.cfg.l1.line_bytes) {
                    self.prefetch_into_l2(target, &mut at);
                }
                cycles
            }
        }
    }

    /// A demand L1 fill: an L1↔L2 transaction against L1's MSHR file and
    /// (when shared) the contended L2 port.
    fn charge_l1_fill(&mut self, at: &mut u64) -> u64 {
        let mut cycles = self.l1_mshr.charge(self.now, self.l1_transfer);
        if let Some(sh) = &self.shared {
            let wait = sh.l1_l2.reserve(*at, self.l1_transfer);
            *at += wait + self.l1_transfer;
            self.stats.contention_cycles += wait;
            cycles += wait;
        }
        cycles
    }

    /// A demand L2 fill from DRAM: a DRAM-edge transaction against L2's
    /// MSHR file and (when shared) the contended DRAM edge.
    fn charge_dram_fill(&mut self, at: &mut u64) -> u64 {
        let mut cycles = self.l2_mshr.charge(self.now, self.dram_transfer);
        if let Some(sh) = &self.shared {
            let wait = sh.l2_dram.reserve(*at, self.dram_transfer);
            *at += wait + self.dram_transfer;
            self.stats.contention_cycles += wait;
            cycles += wait;
        }
        cycles
    }

    /// Writes a dirty L1 line back into its containing L2 line, through
    /// L1's store buffer. Inclusion means the L2 line is resident (every
    /// L1 line filled through L2 and L2 evictions back-invalidate), so
    /// this never allocates.
    fn writeback_l1_line(&mut self, line_addr: u64, at: &mut u64) -> u64 {
        self.stats.writebacks += 1;
        self.stats.traffic.l1_l2.writeback_lines += 1;
        self.stats.traffic.l1_l2.writeback_bytes += self.cfg.l1.line_bytes;
        let hit = self.l2.touch_dirty(line_addr);
        debug_assert!(hit, "inclusion: a dirty L1 line's L2 container is resident");
        if let Some(sh) = &self.shared {
            // Write-backs occupy the shared edge (other cores queue behind
            // them) but their own queueing is absorbed by the buffer.
            let wait = sh.l1_l2.reserve(*at, self.l1_transfer);
            *at += wait + self.l1_transfer;
        }
        self.l1_store_buffer.charge(self.now, self.l1_fill_cycles)
    }

    /// Handles an L2 eviction: back-invalidates the victim's L1 sub-lines
    /// (merging dirty data across the L1↔L2 edge), then drains the dirty
    /// sectors to DRAM through L2's store buffer. Sub-blocking is what
    /// lets a half-width capability store put half the bytes on the DRAM
    /// write-back stream when the L1 line is narrower than the L2 line.
    /// Evictions triggered by prefetch fills (`charged == false`) move
    /// the same bytes but cost the CPU nothing.
    fn evict_l2_line(&mut self, v: Victim, charged: bool, at: &mut u64) -> u64 {
        let mut cycles = 0;
        let mut dirty = v.dirty;
        let sub = self.cfg.l1.line_bytes;
        let mut a = v.line_addr;
        let end = v.line_addr + self.cfg.l2.line_bytes;
        while a < end {
            if self.l1.invalidate(a).is_some_and(|m| m != 0) {
                self.stats.writebacks += 1;
                self.stats.traffic.l1_l2.writeback_lines += 1;
                self.stats.traffic.l1_l2.writeback_bytes += sub;
                if let Some(sh) = &self.shared {
                    let wait = sh.l1_l2.reserve(*at, self.l1_transfer);
                    *at += wait + self.l1_transfer;
                }
                cycles += self.l1_store_buffer.charge(self.now, self.l1_fill_cycles);
                dirty |= self.l2.sector_bit(a);
            }
            a += sub;
        }
        if dirty != 0 {
            let sectors = u64::from(dirty.count_ones());
            self.stats.writebacks += 1;
            self.stats.traffic.l2_dram.writeback_lines += sectors;
            self.stats.traffic.l2_dram.writeback_bytes += sectors * sub;
            if let Some(sh) = &self.shared {
                let c = (sectors * sub).div_ceil(self.cfg.dram.bytes_per_cycle);
                let wait = sh.l2_dram.reserve(*at, c);
                *at += wait + c;
            }
            cycles += self
                .l2_store_buffer
                .charge(self.now, self.cfg.l2_drain_cycles(sectors));
        }
        if charged {
            cycles
        } else {
            0
        }
    }

    /// Brings the L2 line containing `target` (an L1-line address) in
    /// from DRAM speculatively. Charges the CPU nothing; the fill's
    /// bandwidth occupies the DRAM edge (and the shared edge, when
    /// attached) so demand misses queue behind it, and its bytes are
    /// tagged as prefetch traffic in the ledger.
    fn prefetch_into_l2(&mut self, target: u64, at: &mut u64) {
        if self.l2.probe(target) {
            return;
        }
        let victim = match self.l2.access(target, false) {
            Lookup::Miss(v) => v,
            Lookup::Hit => unreachable!("probe said absent"),
        };
        self.stats.traffic.l2_dram.prefetch_lines += 1;
        self.stats.traffic.l2_dram.prefetch_bytes += self.cfg.l2.line_bytes;
        self.l2_mshr.occupy(self.now, self.dram_transfer);
        if let Some(sh) = &self.shared {
            let wait = sh.l2_dram.reserve(*at, self.dram_transfer);
            *at += wait + self.dram_transfer;
        }
        if let Some(v) = victim {
            self.evict_l2_line(v, false, at);
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Empties both levels (counting dirty lines in
    /// [`CacheStats::writebacks`] but moving no modelled traffic) and
    /// keeps statistics. Used between benchmark phases.
    pub fn flush(&mut self) {
        self.stats.writebacks += self.l1.flush() + self.l2.flush();
    }

    /// Resets statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

impl Default for Hierarchy {
    fn default() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::default())
    }
}
