//! Multi-core sharing: a contended edge whose bandwidth is arbitrated
//! between cores through an atomic cycle ledger.
//!
//! A [`SharedHierarchy`] is a pair of [`SharedEdge`]s (L1↔L2 and L2↔DRAM)
//! handed to several [`crate::Hierarchy`] instances — one per simulated
//! core, each keeping its private L1/L2 tag state — via
//! [`crate::Hierarchy::attach_shared`]. Every transfer a core charges
//! also *reserves* its bandwidth cycles on the shared edge; a reservation
//! that lands while the edge is still busy with other cores' traffic
//! queues behind it, and the queueing delay is charged to the requesting
//! core as [`crate::CacheStats::contention_cycles`].
//!
//! Time is *window time*: each core's hierarchy clock rebased so the
//! core enters the window at the later of 0 and the edges' current
//! [`SharedEdge::horizon`] (see [`crate::Hierarchy::attach_shared`]).
//! Joining at the horizon means a core is never billed for bus history
//! that completed before it arrived — queueing reflects only genuine
//! overlap with other cores' traffic, and the `max(now, bus_free)`
//! arbitration reproduces the qualitative behavior of a shared bus: a
//! lone core sees no waits, and N memory-bound cores slow down by at
//! most N (full serialization). Two properties keep that bound tight:
//! charged waits advance the payer's clock (a core that just queued
//! arrives later next time, so the backlog drains), and all the
//! reservations of one miss transaction chain through a single arrival
//! time (after waiting out one edge's backlog the transaction is already
//! past the common skew on the next edge, so it pays the *max* of the
//! backlogs, never the sum). Reservation order follows execution order,
//! so runs that interleave cores differently (true multi-threaded
//! serving) may attribute waits differently; interleave cores
//! deterministically (e.g. round-robin fuel slices on one thread) when
//! exact numbers matter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One contended inter-level edge: an atomic "busy until" cycle ledger.
#[derive(Debug, Default)]
pub struct SharedEdge {
    /// Absolute (per-core hierarchy clock) time the edge frees.
    bus_free: AtomicU64,
    /// Total queueing cycles charged across all cores.
    contended: AtomicU64,
    /// Total bandwidth cycles reserved across all cores.
    reserved: AtomicU64,
}

impl SharedEdge {
    /// The window time at which the edge next frees — the frontier a
    /// late-joining core starts its window clock from (see
    /// [`crate::Hierarchy::attach_shared`]).
    pub fn horizon(&self) -> u64 {
        self.bus_free.load(Ordering::Acquire)
    }

    /// Reserves `cycles` of edge bandwidth at local time `now`, returning
    /// the queueing delay (0 when the edge is idle).
    pub fn reserve(&self, now: u64, cycles: u64) -> u64 {
        self.reserved.fetch_add(cycles, Ordering::Relaxed);
        loop {
            let cur = self.bus_free.load(Ordering::Acquire);
            let start = cur.max(now);
            if self
                .bus_free
                .compare_exchange_weak(cur, start + cycles, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let wait = start - now;
                if wait > 0 {
                    self.contended.fetch_add(wait, Ordering::Relaxed);
                }
                return wait;
            }
        }
    }

    /// Total queueing cycles all cores were charged on this edge.
    pub fn contended_cycles(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Total bandwidth cycles all cores reserved on this edge.
    pub fn reserved_cycles(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }
}

/// The shared side of a multi-core memory system: one contended L1↔L2
/// edge (the L2's service port) and one contended L2↔DRAM edge, shared by
/// every core the same instance is attached to. Clones share the edges.
#[derive(Clone, Debug, Default)]
pub struct SharedHierarchy {
    /// The L2 service port all cores' L1 fills and write-backs share.
    pub l1_l2: Arc<SharedEdge>,
    /// The DRAM edge all cores' L2 fills and drains share.
    pub l2_dram: Arc<SharedEdge>,
}

impl SharedHierarchy {
    /// A fresh pair of idle edges (one contention window).
    pub fn new() -> SharedHierarchy {
        SharedHierarchy::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_core_never_waits() {
        let e = SharedEdge::default();
        let mut now = 0;
        for _ in 0..10 {
            assert_eq!(e.reserve(now, 8), 0, "a monotone clock stays ahead");
            now += 20; // the core always does other work too
        }
        assert_eq!(e.contended_cycles(), 0);
        assert_eq!(e.reserved_cycles(), 80);
    }

    #[test]
    fn second_core_queues_behind_the_first() {
        let e = SharedEdge::default();
        // Core A saturates the edge from t=0.
        assert_eq!(e.reserve(0, 100), 0);
        // Core B, also at t=0, queues behind all of it.
        assert_eq!(e.reserve(0, 10), 100);
        assert_eq!(e.contended_cycles(), 100);
    }

    #[test]
    fn shared_hierarchy_clones_share_the_edges() {
        let sh = SharedHierarchy::new();
        let other = sh.clone();
        sh.l2_dram.reserve(0, 50);
        assert_eq!(other.l2_dram.reserve(0, 10), 50);
    }
}
