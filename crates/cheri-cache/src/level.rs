//! One cache level: its geometry/timing specification ([`LevelSpec`]) and
//! the tag/LRU state machine ([`Level`]) the hierarchy drives.

use crate::hierarchy::CacheConfigError;

/// Geometry and timing of one cache level.
///
/// `bytes_per_cycle` is the bandwidth of the edge this level *serves*:
/// for L1 that is the CPU load/store port (each access charges
/// `latency_cycles + ceil(bytes / bytes_per_cycle)`), for L2 it is the
/// L1↔L2 edge over which L1 lines fill and write back.
///
/// `mshrs` and `store_buffer` configure the transaction model for the
/// *misses of this level*: `mshrs` is how many of this level's outstanding
/// misses may overlap (1 = the legacy fully-serialized model), and
/// `store_buffer` is how many of this level's dirty write-backs may drain
/// off the critical path (0 = write-backs charge synchronously, the
/// legacy model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelSpec {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u64,
    /// Fixed cycles per transfer served by this level.
    pub latency_cycles: u64,
    /// Bandwidth of this level's service port, in bytes per cycle.
    pub bytes_per_cycle: u64,
    /// Miss status holding registers: outstanding misses of this level
    /// that may overlap. 1 serializes every miss (the pre-transaction
    /// model, bit-identical); N lets a burst of independent misses cost
    /// `latency + N·transfer` instead of `N·(latency + transfer)`.
    pub mshrs: u64,
    /// Write-back buffer entries: dirty write-backs of this level that
    /// drain off the critical path. 0 charges every write-back
    /// synchronously (the pre-transaction model, bit-identical). Must not
    /// exceed `mshrs`.
    pub store_buffer: u64,
}

impl LevelSpec {
    /// Checks the level in isolation: non-zero fields, power-of-two line,
    /// a power-of-two number of whole sets, and a transaction model the
    /// hardware could build (at least one MSHR, and no more store-buffer
    /// entries than MSHRs to track their drains).
    ///
    /// # Errors
    ///
    /// The first [`CacheConfigError`] found.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if self.size_bytes == 0 {
            return Err(CacheConfigError::ZeroField("size_bytes"));
        }
        if self.line_bytes == 0 {
            return Err(CacheConfigError::ZeroField("line_bytes"));
        }
        if self.ways == 0 {
            return Err(CacheConfigError::ZeroField("ways"));
        }
        if self.bytes_per_cycle == 0 {
            return Err(CacheConfigError::ZeroField("bytes_per_cycle"));
        }
        if self.mshrs == 0 {
            return Err(CacheConfigError::ZeroField("mshrs"));
        }
        if self.store_buffer > self.mshrs {
            return Err(CacheConfigError::StoreBufferExceedsMshrs {
                store_buffer: self.store_buffer,
                mshrs: self.mshrs,
            });
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(CacheConfigError::LineNotPowerOfTwo(self.line_bytes));
        }
        let bad = CacheConfigError::BadGeometry {
            size_bytes: self.size_bytes,
            line_bytes: self.line_bytes,
            ways: self.ways,
        };
        if self.size_bytes % self.line_bytes != 0 {
            return Err(bad);
        }
        let lines = self.size_bytes / self.line_bytes;
        if lines % self.ways != 0 || !(lines / self.ways).is_power_of_two() {
            return Err(bad);
        }
        Ok(())
    }

    /// Number of sets implied by the geometry. Meaningful only after
    /// [`LevelSpec::validate`] has passed.
    pub fn sets(&self) -> u64 {
        (self.size_bytes / self.line_bytes) / self.ways
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Line {
    tag: u64,
    valid: bool,
    /// Dirty mask, one bit per L1-line-sized sector. For L1 (and for an
    /// L2 whose line equals the L1 line) this is a single bit.
    dirty: u64,
    stamp: u64,
}

const EMPTY_LINE: Line = Line {
    tag: 0,
    valid: false,
    dirty: 0,
    stamp: 0,
};

/// The line displaced by a fill.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Victim {
    pub(crate) line_addr: u64,
    /// Per-sector dirty mask; 0 means clean.
    pub(crate) dirty: u64,
}

#[derive(Clone, Debug)]
pub(crate) struct Level {
    spec: LevelSpec,
    /// `nsets × ways` fixed line slots: `lines[set * ways .. +ways]`.
    lines: Box<[Line]>,
    clock: u64,
    /// Shift/mask index math; validation guarantees power-of-two line
    /// size and set count.
    line_shift: u32,
    set_mask: u64,
    set_shift: u32,
    /// Dirty granularity: log2 of the sector size (the hierarchy's L1
    /// line) and the sectors-per-line mask.
    sector_shift: u32,
    sector_mask: u64,
}

pub(crate) enum Lookup {
    Hit,
    /// Miss; the fill may have displaced a victim line.
    Miss(Option<Victim>),
}

impl Level {
    /// Builds the level; `sector_bytes` (the hierarchy's L1 line size)
    /// sets the dirty-tracking granularity.
    pub(crate) fn new(spec: LevelSpec, sector_bytes: u64) -> Level {
        let nsets = spec.sets();
        Level {
            spec,
            lines: vec![EMPTY_LINE; (nsets * spec.ways) as usize].into_boxed_slice(),
            clock: 0,
            line_shift: spec.line_bytes.trailing_zeros(),
            set_mask: nsets - 1,
            set_shift: nsets.trailing_zeros(),
            sector_shift: sector_bytes.trailing_zeros(),
            sector_mask: spec.line_bytes / sector_bytes - 1,
        }
    }

    /// Splits `line_addr` into (set index, tag).
    fn set_and_tag(&self, line_addr: u64) -> (usize, u64) {
        let idx = line_addr >> self.line_shift;
        ((idx & self.set_mask) as usize, idx >> self.set_shift)
    }

    /// The dirty-mask bit for the sector containing `addr`.
    pub(crate) fn sector_bit(&self, addr: u64) -> u64 {
        1 << ((addr >> self.sector_shift) & self.sector_mask)
    }

    /// Whether the line containing `line_addr` is resident, without
    /// touching LRU state (the prefetcher's probe).
    pub(crate) fn probe(&self, line_addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(line_addr);
        let ways = self.spec.ways as usize;
        self.lines[set_idx * ways..(set_idx + 1) * ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Looks up the line containing `line_addr`, filling on miss (into a
    /// free way if one exists, else over the least-recently-used line).
    /// A write dirties the sector containing `line_addr`.
    pub(crate) fn access(&mut self, line_addr: u64, write: bool) -> Lookup {
        self.clock += 1;
        let (set_idx, tag) = self.set_and_tag(line_addr);
        let wmask = if write { self.sector_bit(line_addr) } else { 0 };
        let ways = self.spec.ways as usize;
        let set = &mut self.lines[set_idx * ways..(set_idx + 1) * ways];
        let mut free = None;
        let mut lru = 0;
        let mut lru_stamp = u64::MAX;
        for (i, l) in set.iter_mut().enumerate() {
            if l.valid {
                if l.tag == tag {
                    l.stamp = self.clock;
                    l.dirty |= wmask;
                    return Lookup::Hit;
                }
                if l.stamp < lru_stamp {
                    lru_stamp = l.stamp;
                    lru = i;
                }
            } else if free.is_none() {
                free = Some(i);
            }
        }
        let slot = free.unwrap_or(lru);
        let victim = set[slot].valid.then(|| Victim {
            // tag = idx / sets and set = idx % sets, so the victim's line
            // address reconstructs exactly.
            line_addr: ((set[slot].tag << self.set_shift) | set_idx as u64) << self.line_shift,
            dirty: set[slot].dirty,
        });
        set[slot] = Line {
            tag,
            valid: true,
            dirty: wmask,
            stamp: self.clock,
        };
        Lookup::Miss(victim)
    }

    /// Marks the sector containing `addr` dirty in its resident line and
    /// refreshes it (a write-back install), without allocating. Returns
    /// whether the line was present.
    pub(crate) fn touch_dirty(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let bit = self.sector_bit(addr);
        let ways = self.spec.ways as usize;
        let set = &mut self.lines[set_idx * ways..(set_idx + 1) * ways];
        for l in set.iter_mut() {
            if l.valid && l.tag == tag {
                l.dirty |= bit;
                l.stamp = self.clock;
                return true;
            }
        }
        false
    }

    /// Removes the line containing `line_addr` if resident, returning its
    /// dirty mask (inclusion back-invalidation).
    pub(crate) fn invalidate(&mut self, line_addr: u64) -> Option<u64> {
        let (set_idx, tag) = self.set_and_tag(line_addr);
        let ways = self.spec.ways as usize;
        let set = &mut self.lines[set_idx * ways..(set_idx + 1) * ways];
        for l in set.iter_mut() {
            if l.valid && l.tag == tag {
                let dirty = l.dirty;
                *l = EMPTY_LINE;
                return Some(dirty);
            }
        }
        None
    }

    pub(crate) fn flush(&mut self) -> u64 {
        let mut dirty = 0;
        for l in self.lines.iter_mut() {
            dirty += u64::from(l.valid && l.dirty != 0);
            *l = EMPTY_LINE;
        }
        dirty
    }
}
