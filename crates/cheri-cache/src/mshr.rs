//! The transaction-model primitives: the MSHR file that overlaps
//! outstanding misses, the store buffer that drains write-backs off the
//! critical path, and the next-line/stride prefetcher.
//!
//! All three are *cycle policies* layered over the unchanged tag state
//! machine in [`crate::level`]: they decide how many cycles a transfer
//! charges the CPU, never which bytes move. The byte ledger is therefore
//! identical under every knob setting, which is what lets the
//! traffic-conservation proptests stay the invariant wall.

use std::collections::VecDeque;

/// A miss status holding register file for one edge: the burst-overlap
/// model behind `LevelSpec::mshrs`.
///
/// The hierarchy charges synchronously (the caller's cycle counter *is*
/// the clock), so overlap is modelled as a *burst window*: a miss that
/// issues while the edge's previous activity is still within one latency
/// of the clock is considered part of an in-flight burst and charges only
/// its steady-state share, `max(transfer, ceil(latency / mshrs))` —
/// bandwidth-bound with many MSHRs, MSHR-bound with few. A miss that
/// issues after the window closed is a burst leader and charges the full
/// serialized `latency + transfer`. A burst of N back-to-back misses thus
/// costs `latency + N·transfer` once `mshrs ≥ latency/transfer`, the
/// textbook memory-level-parallelism bound, and degrades gracefully for
/// smaller files.
///
/// With `mshrs == 1` every miss charges `latency + transfer` and the
/// burst state is never consulted: bit-identical to the pre-transaction
/// model.
#[derive(Clone, Debug)]
pub(crate) struct MshrFile {
    mshrs: u64,
    latency: u64,
    /// End (absolute hierarchy clock) of the last burst activity; `None`
    /// until the first miss.
    burst_free: Option<u64>,
}

impl MshrFile {
    pub(crate) fn new(mshrs: u64, latency: u64) -> MshrFile {
        MshrFile {
            mshrs: mshrs.max(1),
            latency,
            burst_free: None,
        }
    }

    /// Cycles a demand miss issued at `now` charges, given its `transfer`
    /// (bandwidth) cycles.
    pub(crate) fn charge(&mut self, now: u64, transfer: u64) -> u64 {
        if self.mshrs <= 1 {
            return self.latency + transfer;
        }
        let overlapped = self
            .burst_free
            .is_some_and(|b| now <= b.saturating_add(self.latency));
        let cycles = if overlapped {
            transfer.max(self.latency.div_ceil(self.mshrs))
        } else {
            self.latency + transfer
        };
        self.burst_free = Some(now + cycles);
        cycles
    }

    /// Occupies the edge with background (prefetch) activity the CPU does
    /// not wait for: extends the burst window so demand misses behind the
    /// prefetch see it as in-flight work, without charging anything here.
    pub(crate) fn occupy(&mut self, now: u64, transfer: u64) {
        if self.mshrs <= 1 {
            return;
        }
        let base = self.burst_free.map_or(now, |b| b.max(now));
        self.burst_free = Some(base + transfer);
    }
}

/// A write-back buffer for one edge: the drain-off-critical-path model
/// behind `LevelSpec::store_buffer`.
///
/// Each buffered write-back records its drain-completion time; a
/// write-back that finds a free entry charges the CPU nothing, one that
/// finds the buffer full stalls until the oldest drain completes. With
/// `store_buffer == 0` every write-back charges its full serialized cost:
/// bit-identical to the pre-transaction model.
#[derive(Clone, Debug)]
pub(crate) struct StoreBuffer {
    entries: u64,
    /// Drain-completion times (absolute hierarchy clock), oldest first;
    /// `len <= entries`.
    pending: VecDeque<u64>,
    /// When the drain engine frees (drains are serialized behind each
    /// other on their edge).
    drain_free: u64,
}

impl StoreBuffer {
    pub(crate) fn new(entries: u64) -> StoreBuffer {
        StoreBuffer {
            entries,
            pending: VecDeque::new(),
            drain_free: 0,
        }
    }

    /// Cycles the CPU is charged for a write-back issued at `now` whose
    /// serialized cost is `cost`.
    pub(crate) fn charge(&mut self, now: u64, cost: u64) -> u64 {
        if self.entries == 0 {
            return cost;
        }
        while self.pending.front().is_some_and(|&t| t <= now) {
            self.pending.pop_front();
        }
        let start = now.max(self.drain_free);
        self.drain_free = start + cost;
        if (self.pending.len() as u64) < self.entries {
            self.pending.push_back(self.drain_free);
            0
        } else {
            // Full: the CPU stalls until the oldest drain completes and
            // frees its entry. Entries still pending drain strictly after
            // `now` (completed ones were popped above).
            let oldest = self.pending.pop_front().expect("buffer is full");
            self.pending.push_back(self.drain_free);
            oldest - now
        }
    }
}

/// What the prefetcher watches for on L1 demand misses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// No prefetching (the legacy model).
    #[default]
    Off,
    /// On every L1 demand miss, prefetch the next L1 line into L2.
    NextLine,
    /// Track the stride between consecutive L1 demand-miss addresses;
    /// once the same non-zero stride repeats, prefetch one stride ahead
    /// into L2.
    Stride,
}

/// The L1-miss-driven prefetch engine. Predictions target L2 (prefetching
/// into L1 would let speculation evict demand data from the small level);
/// fills it triggers are tagged as `prefetch_lines`/`prefetch_bytes` in
/// the [`crate::TrafficStats`] ledger and charge the CPU nothing — their
/// cost is the DRAM-edge occupancy demand misses then queue behind.
#[derive(Clone, Debug)]
pub(crate) struct Prefetcher {
    policy: PrefetchPolicy,
    last_miss: u64,
    stride: i64,
    primed: bool,
}

impl Prefetcher {
    pub(crate) fn new(policy: PrefetchPolicy) -> Prefetcher {
        Prefetcher {
            policy,
            last_miss: 0,
            stride: 0,
            primed: false,
        }
    }

    /// Observes an L1 demand miss at `line_addr` and returns the L1-line
    /// address to prefetch, if the policy predicts one.
    pub(crate) fn observe(&mut self, line_addr: u64, line_bytes: u64) -> Option<u64> {
        match self.policy {
            PrefetchPolicy::Off => None,
            PrefetchPolicy::NextLine => line_addr.checked_add(line_bytes),
            PrefetchPolicy::Stride => {
                let stride = line_addr.wrapping_sub(self.last_miss) as i64;
                let confirmed = self.primed && stride != 0 && stride == self.stride;
                self.stride = stride;
                self.last_miss = line_addr;
                self.primed = true;
                if confirmed {
                    line_addr.checked_add_signed(stride)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_mshr_serializes_every_miss() {
        let mut m = MshrFile::new(1, 22);
        assert_eq!(m.charge(0, 8), 30);
        assert_eq!(m.charge(30, 8), 30);
        assert_eq!(m.charge(1000, 8), 30);
    }

    #[test]
    fn burst_costs_latency_plus_n_transfers() {
        // mshrs >= latency/transfer: a back-to-back burst of N misses
        // costs latency + N*transfer in total.
        let (lat, tr, n) = (22u64, 8u64, 10u64);
        let mut m = MshrFile::new(4, lat);
        let mut now = 0;
        for _ in 0..n {
            now += m.charge(now, tr);
        }
        assert_eq!(now, lat + n * tr);
    }

    #[test]
    fn few_mshrs_bound_the_overlap() {
        // With 2 MSHRs and latency 22, steady state cannot beat
        // ceil(22/2) = 11 cycles per miss even though transfer is 8.
        let mut m = MshrFile::new(2, 22);
        let mut now = m.charge(0, 8);
        let steady = m.charge(now, 8);
        assert_eq!(steady, 11);
        now += steady;
        assert_eq!(m.charge(now, 8), 11);
    }

    #[test]
    fn a_gap_longer_than_the_latency_ends_the_burst() {
        let mut m = MshrFile::new(4, 22);
        let c0 = m.charge(0, 8);
        assert_eq!(c0, 30);
        // Next miss lands way past the window: full charge again.
        assert_eq!(m.charge(c0 + 23, 8), 30);
    }

    #[test]
    fn zero_entry_store_buffer_charges_synchronously() {
        let mut sb = StoreBuffer::new(0);
        assert_eq!(sb.charge(0, 9), 9);
        assert_eq!(sb.charge(100, 9), 9);
    }

    #[test]
    fn store_buffer_absorbs_until_full_then_stalls() {
        let mut sb = StoreBuffer::new(2);
        // Two write-backs at t=0 are absorbed; their drains complete at
        // t=9 and t=18.
        assert_eq!(sb.charge(0, 9), 0);
        assert_eq!(sb.charge(0, 9), 0);
        // A third at t=0 stalls until the first drain (t=9) frees a slot.
        assert_eq!(sb.charge(0, 9), 9);
        // Much later, everything has drained: absorbed again.
        assert_eq!(sb.charge(1000, 9), 0);
    }

    #[test]
    fn next_line_predicts_the_successor() {
        let mut p = Prefetcher::new(PrefetchPolicy::NextLine);
        assert_eq!(p.observe(0x1000, 64), Some(0x1040));
        assert_eq!(p.observe(!63u64, 64), None, "no successor line");
    }

    #[test]
    fn stride_needs_one_confirmation() {
        let mut p = Prefetcher::new(PrefetchPolicy::Stride);
        assert_eq!(p.observe(0x1000, 64), None, "first miss primes");
        assert_eq!(p.observe(0x1100, 64), None, "stride observed, unconfirmed");
        assert_eq!(p.observe(0x1200, 64), Some(0x1300), "stride confirmed");
        assert_eq!(p.observe(0x1240, 64), None, "stride changed");
    }

    #[test]
    fn off_policy_never_predicts() {
        let mut p = Prefetcher::new(PrefetchPolicy::Off);
        for i in 0..10 {
            assert_eq!(p.observe(i * 64, 64), None);
        }
    }
}
