//! The statistics side of the model: the per-edge byte ledger
//! ([`TrafficStats`]), the fetch-path ledger ([`FetchStats`]) and the
//! hit/miss/cycle counters ([`CacheStats`]).

use std::fmt;

/// Bytes and transfers moved across one inter-level edge, fills (toward
/// the CPU) and write-backs (away from it) separated. Prefetch fills are
/// tagged apart from demand fills so a prefetcher cannot masquerade as a
/// hit-rate improvement without its traffic showing up in the ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeTraffic {
    /// Lines moved toward the CPU on demand (misses) — L1 lines on the
    /// L1↔L2 edge, L2 lines on the L2↔DRAM edge.
    pub fill_lines: u64,
    /// Bytes those demand fills moved.
    pub fill_bytes: u64,
    /// Lines moved toward the CPU speculatively by the prefetcher.
    pub prefetch_lines: u64,
    /// Bytes those prefetch fills moved.
    pub prefetch_bytes: u64,
    /// Transfers moved away from the CPU (dirty write-backs): L1 lines on
    /// the L1↔L2 edge; on the L2↔DRAM edge, dirty *sectors* (L1-line
    /// sized) of drained L2 lines.
    pub writeback_lines: u64,
    /// Bytes those write-backs moved.
    pub writeback_bytes: u64,
}

impl EdgeTraffic {
    /// Total bytes moved on the edge in either direction, demand and
    /// prefetch alike.
    pub fn total_bytes(&self) -> u64 {
        self.fill_bytes + self.prefetch_bytes + self.writeback_bytes
    }
}

/// The per-edge traffic ledger: every byte the hierarchy moves is
/// attributed to exactly one edge, one direction, and (toward the CPU)
/// either demand or prefetch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// The L1↔L2 edge: L1-line fills and dirty-L1 write-backs.
    pub l1_l2: EdgeTraffic,
    /// The L2↔DRAM edge: L2-line fills, prefetch fills and dirty-L2
    /// drains.
    pub l2_dram: EdgeTraffic,
}

impl TrafficStats {
    /// Total bytes moved on the DRAM edge — the paper's headline metric
    /// for capability-width cost.
    pub fn dram_bytes(&self) -> u64 {
        self.l2_dram.total_bytes()
    }
}

/// The instruction-fetch slice of the hierarchy's activity. Populated
/// only when the VM charges fetch through the hierarchy (one transaction
/// per superinstruction block); under the legacy configuration every
/// field stays zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Fetch transactions charged (one per block entry, not per
    /// instruction).
    pub blocks: u64,
    /// Instruction bytes those transactions requested.
    pub bytes: u64,
    /// L1 misses taken on the fetch path.
    pub l1_misses: u64,
    /// Cycles the fetch path charged.
    pub cycles: u64,
}

/// Hit/miss counters and the traffic ledger for the whole hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses served by L1.
    pub l1_hits: u64,
    /// Accesses that missed L1.
    pub l1_misses: u64,
    /// L1 misses served by L2.
    pub l2_hits: u64,
    /// Accesses that went all the way to DRAM.
    pub l2_misses: u64,
    /// Dirty lines written back on eviction (both edges; also counts lines
    /// dropped by [`crate::Hierarchy::flush`], which moves no modelled
    /// traffic).
    pub writebacks: u64,
    /// Total cycles charged by the hierarchy.
    pub cycles: u64,
    /// Cycles spent queueing behind other cores on a shared edge (zero
    /// unless a [`crate::SharedHierarchy`] is attached). Included in
    /// `cycles`.
    pub contention_cycles: u64,
    /// Bytes moved per edge.
    pub traffic: TrafficStats,
    /// The instruction-fetch slice of the above (zero unless the VM
    /// charges fetch through the hierarchy).
    pub fetch: FetchStats,
}

impl CacheStats {
    /// L1 hit rate in `[0, 1]` (0 if no accesses).
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1 {}/{} hits ({:.1}%), L2 {} hits, {} DRAM, {} writebacks, {} cycles, \
             {} B L1<->L2, {} B L2<->DRAM",
            self.l1_hits,
            self.l1_hits + self.l1_misses,
            100.0 * self.l1_hit_rate(),
            self.l2_hits,
            self.l2_misses,
            self.writebacks,
            self.cycles,
            self.traffic.l1_l2.total_bytes(),
            self.traffic.l2_dram.total_bytes(),
        )
    }
}
