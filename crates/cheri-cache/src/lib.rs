//! A set-associative, bandwidth-aware cache-hierarchy simulator.
//!
//! The paper's performance evaluation runs on a 100 MHz FPGA softcore with a
//! **16 KB L1 data cache and a 64 KB L2**, noting that "the DDR DRAM is
//! faster relative to the CPU speed, so cache misses are more common but
//! less costly than on most modern processors" (§5.2). The measured CHERI
//! overheads are dominated by the cache footprint of 256-bit capabilities
//! versus 64-bit integer pointers ("the performance difference ... is
//! primarily due to the larger pointers causing more cache misses").
//!
//! This crate reproduces that cost model as a *traffic* model: every level
//! is a [`LevelSpec`] with a latency **and** a bandwidth, every line that
//! moves between levels charges `latency + ceil(bytes / bytes_per_cycle)`
//! for its edge, and a [`TrafficStats`] ledger records the bytes moved per
//! edge (L1↔L2 and L2↔DRAM, fills and write-backs separately). That is the
//! metric behind the paper's 128-bit-capability argument: halving the
//! stored capability width halves the bytes a pointer-dense working set
//! drags across the DRAM edge, which line-granularity cycle models round
//! away.
//!
//! The hierarchy is two-level, write-back, write-allocate, LRU, and
//! **inclusive**: evicting an L2 line back-invalidates its L1 sub-lines
//! (merging their dirty data into the drain), which is what makes the
//! per-edge byte ledger conserve — every line written back was once
//! filled. L1 lines may be narrower than L2 lines (e.g. a 16-byte L1 over
//! a 64-byte L2), in which case an L1 fill moves only the sub-line and
//! the L2 is **sub-blocked**: dirtiness is tracked per L1-line-sized
//! sector, and a dirty L2 eviction drains only its dirty sectors to DRAM
//! (demand fills still move whole L2 lines). With the classic 64-byte
//! geometry sector and line coincide and the model charges exactly the
//! flat per-level constants the presets derive.
//!
//! # The transaction model
//!
//! Since the transaction refactor every charge is a *transaction* with
//! three optional overlap mechanisms layered over the unchanged tag state
//! machine:
//!
//! - **MSHRs** ([`LevelSpec::mshrs`]): a burst of N independent misses on
//!   one edge costs `latency + N·transfer` instead of
//!   `N·(latency + transfer)` once the file is deep enough — the
//!   memory-level-parallelism the serialized model rounds away.
//! - **A store buffer** ([`LevelSpec::store_buffer`]): dirty write-backs
//!   drain off the critical path; the CPU stalls only when the buffer is
//!   full.
//! - **A prefetcher** ([`HierarchyConfig::prefetch`]): next-line or stride
//!   predictions fill L2 behind the demand stream; their bytes are tagged
//!   separately in the ledger so speculation cannot masquerade as demand
//!   efficiency.
//!
//! With the default knobs (`mshrs = 1`, `store_buffer = 0`, prefetch off)
//! every transaction degenerates to the serialized legacy charge, bit for
//! bit. For multi-core contention, several hierarchies can share their
//! lower edges through a [`SharedHierarchy`]; queueing behind another
//! core's traffic is charged as [`CacheStats::contention_cycles`].
//!
//! # Example
//!
//! ```
//! use cheri_cache::{Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::fpga_softcore());
//! let cold = h.access(0x1000, 8, false);
//! let warm = h.access(0x1000, 8, false);
//! assert!(cold > warm); // second access hits in L1
//! assert_eq!(warm, 1);
//! let t = h.stats().traffic;
//! assert_eq!(t.l2_dram.fill_bytes, 64); // one line came from DRAM
//! ```

mod hierarchy;
mod level;
mod mshr;
mod shared;
mod traffic;

pub use hierarchy::{CacheConfigError, DramSpec, Hierarchy, HierarchyConfig};
pub use level::LevelSpec;
pub use mshr::PrefetchPolicy;
pub use shared::{SharedEdge, SharedHierarchy};
pub use traffic::{CacheStats, EdgeTraffic, FetchStats, TrafficStats};

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The fpga preset with a 16-byte L1 line (sub-block fills).
    fn narrow_l1() -> HierarchyConfig {
        HierarchyConfig::fpga_softcore().with_l1_line_bytes(16)
    }

    #[test]
    fn geometry_is_sane() {
        let cfg = HierarchyConfig::fpga_softcore();
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l2.sets(), 128);
        assert!(cfg.validate().is_ok());
        assert!(HierarchyConfig::desktop().validate().is_ok());
        assert!(narrow_l1().validate().is_ok());
    }

    #[test]
    fn presets_derive_the_legacy_constants() {
        // The flat constants of the pre-bandwidth model survive as derived
        // values: hit 1, L2 fill +9, DRAM +30 on the fpga preset.
        let cfg = HierarchyConfig::fpga_softcore();
        assert_eq!(cfg.port_cycles(8), 1);
        assert_eq!(cfg.port_cycles(64), 1);
        assert_eq!(cfg.l1_l2_transfer_cycles(), 9);
        assert_eq!(cfg.l2_dram_transfer_cycles(), 30);
        let d = HierarchyConfig::desktop();
        assert_eq!(d.l1_l2_transfer_cycles(), 12);
        assert_eq!(d.l2_dram_transfer_cycles(), 200);
    }

    #[test]
    fn presets_default_to_the_serialized_transaction_knobs() {
        for cfg in [HierarchyConfig::fpga_softcore(), HierarchyConfig::desktop()] {
            assert_eq!(cfg.l1.mshrs, 1);
            assert_eq!(cfg.l2.mshrs, 1);
            assert_eq!(cfg.l1.store_buffer, 0);
            assert_eq!(cfg.l2.store_buffer, 0);
            assert_eq!(cfg.prefetch, PrefetchPolicy::Off);
        }
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let good = HierarchyConfig::fpga_softcore();
        let mut zero_bw = good;
        zero_bw.l2.bytes_per_cycle = 0;
        assert_eq!(
            zero_bw.validate(),
            Err(CacheConfigError::ZeroField("bytes_per_cycle"))
        );
        let mut zero_dram = good;
        zero_dram.dram.bytes_per_cycle = 0;
        assert_eq!(
            zero_dram.validate(),
            Err(CacheConfigError::ZeroField("dram.bytes_per_cycle"))
        );
        let mut odd_line = good;
        odd_line.l1.line_bytes = 48;
        assert_eq!(
            odd_line.validate(),
            Err(CacheConfigError::LineNotPowerOfTwo(48))
        );
        let mut wide_l1 = good;
        wide_l1.l1.line_bytes = 128;
        assert!(matches!(
            wide_l1.validate(),
            Err(CacheConfigError::L1LineWiderThanL2 { l1: 128, l2: 64 })
        ));
        let mut ragged = good;
        ragged.l1.ways = 3;
        assert!(matches!(
            ragged.validate(),
            Err(CacheConfigError::BadGeometry { .. })
        ));
        let mut sectored = good;
        sectored.l1.line_bytes = 16;
        sectored.l2.line_bytes = 2048; // 128 sectors > the 64-bit mask
        assert!(matches!(
            sectored.validate(),
            Err(CacheConfigError::TooManySectors { l1: 16, l2: 2048 })
        ));
        assert!(sectored
            .validate()
            .unwrap_err()
            .to_string()
            .contains("sectors"));
        assert!(Hierarchy::try_new(zero_bw).is_err());
        let msg = zero_bw.validate().unwrap_err().to_string();
        assert!(msg.contains("bytes_per_cycle"), "{msg}");
    }

    #[test]
    fn validate_rejects_impossible_transaction_knobs() {
        let good = HierarchyConfig::fpga_softcore();
        let mut no_mshrs = good;
        no_mshrs.l1.mshrs = 0;
        assert_eq!(
            no_mshrs.validate(),
            Err(CacheConfigError::ZeroField("mshrs"))
        );
        // A store buffer deeper than the MSHR file could never drain.
        let mut deep_sb = good;
        deep_sb.l2.store_buffer = 2; // mshrs is 1
        assert_eq!(
            deep_sb.validate(),
            Err(CacheConfigError::StoreBufferExceedsMshrs {
                store_buffer: 2,
                mshrs: 1
            })
        );
        let msg = deep_sb.validate().unwrap_err().to_string();
        assert!(msg.contains("store buffer"), "{msg}");
        assert!(Hierarchy::try_new(deep_sb).is_err());
        // The builders keep the pair consistent.
        assert!(good.with_mshrs(4).with_store_buffer(4).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid cache config")]
    fn new_panics_with_the_validation_message() {
        let mut cfg = HierarchyConfig::fpga_softcore();
        cfg.l1.size_bytes = 100;
        let _ = Hierarchy::new(cfg);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut h = Hierarchy::default();
        let cfg = h.config();
        let miss = h.access(0x40, 8, false);
        let hit = h.access(0x40, 8, false);
        assert_eq!(
            miss,
            cfg.port_cycles(8) + cfg.l1_l2_transfer_cycles() + cfg.l2_dram_transfer_cycles()
        );
        assert_eq!(hit, cfg.port_cycles(8));
        assert_eq!(h.stats().l1_hits, 1);
        assert_eq!(h.stats().l2_misses, 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut h = Hierarchy::default();
        h.access(0x40, 1, false);
        assert_eq!(h.access(0x7F, 1, false), 1);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = Hierarchy::default();
        h.access(0x7C, 8, false);
        assert_eq!(h.stats().l1_misses, 2);
    }

    #[test]
    fn eviction_falls_back_to_l2() {
        let mut h = Hierarchy::default();
        let cfg = h.config();
        // Fill one L1 set beyond its ways with distinct tags.
        let stride = cfg.l1.line_bytes * cfg.l1.sets();
        for i in 0..=cfg.l1.ways {
            h.access(i * stride, 1, false);
        }
        // First address has been evicted from L1 but lives in L2.
        h.reset_stats();
        h.access(0, 1, false);
        assert_eq!(h.stats().l1_misses, 1);
        assert_eq!(h.stats().l2_hits, 1);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut h = Hierarchy::default();
        let cfg = h.config();
        let stride = cfg.l1.line_bytes * cfg.l1.sets();
        h.access(0, 8, true); // dirty line
        for i in 1..=cfg.l1.ways {
            h.access(i * stride, 1, false);
        }
        assert!(h.stats().writebacks >= 1);
        assert_eq!(
            h.stats().traffic.l1_l2.writeback_bytes,
            cfg.l1.line_bytes,
            "the dirty victim moved one L1 line down the L1<->L2 edge"
        );
    }

    #[test]
    fn dirty_l1_victim_is_written_back_to_l2() {
        // Line A is written (dirty) and then displaced from its 4-way L1
        // set while eight younger lines also crowd its 8-way L2 set. The
        // L1 eviction must *install* A into L2 — refreshing its LRU stamp
        // — so the revisit hits L2. Dropping the victim (the old bug)
        // instead lets L2 age A out, sending the revisit to DRAM.
        let mut h = Hierarchy::default();
        let cfg = h.config();
        // Same set in both levels: L2 sets are a multiple of L1 sets.
        let stride = cfg.l2.line_bytes * cfg.l2.sets();
        h.access(0, 8, true);
        for i in 1..=cfg.l2.ways {
            h.access(i * stride, 1, false);
        }
        h.reset_stats();
        h.access(0, 1, false);
        assert_eq!(h.stats().l1_misses, 1);
        assert_eq!(
            h.stats().l2_hits,
            1,
            "dirty L1 victim must be written back into L2, not dropped"
        );
        assert_eq!(h.stats().l2_misses, 0);
    }

    #[test]
    fn dirty_writeback_charges_cycles() {
        // Evicting a dirty line must cost more than evicting the same
        // line clean: the write-back transfer into L2 is charged.
        let cfg = HierarchyConfig::fpga_softcore();
        let stride = cfg.l1.line_bytes * cfg.l1.sets();
        let run = |dirty: bool| {
            let mut h = Hierarchy::new(cfg);
            h.access(0, 8, dirty);
            (1..=cfg.l1.ways)
                .map(|i| h.access(i * stride, 1, false))
                .sum::<u64>()
        };
        assert_eq!(run(true) - run(false), cfg.l1_l2_transfer_cycles());
    }

    #[test]
    fn store_buffer_takes_the_writeback_off_the_critical_path() {
        // The same displacement pattern as dirty_writeback_charges_cycles,
        // but with one store-buffer entry: the lone dirty victim drains in
        // the background, so dirty and clean runs now cost the same. The
        // ledger still records the moved bytes.
        let cfg = HierarchyConfig::fpga_softcore().with_store_buffer(1);
        let stride = cfg.l1.line_bytes * cfg.l1.sets();
        let run = |dirty: bool| {
            let mut h = Hierarchy::new(cfg);
            h.access(0, 8, dirty);
            let cycles = (1..=cfg.l1.ways)
                .map(|i| h.access(i * stride, 1, false))
                .sum::<u64>();
            (cycles, h.stats().traffic.l1_l2.writeback_bytes)
        };
        let (dirty_cycles, dirty_bytes) = run(true);
        let (clean_cycles, clean_bytes) = run(false);
        assert_eq!(dirty_cycles, clean_cycles);
        assert_eq!(dirty_bytes - clean_bytes, cfg.l1.line_bytes);
    }

    #[test]
    fn mshrs_overlap_a_burst_of_independent_misses() {
        // A cold sweep of N distinct lines is the textbook MLP case: with
        // 1 MSHR it costs N·(latency + transfer) per edge, with a deep
        // file latency amortizes to once per burst. The byte ledger must
        // not notice the difference.
        let sweep = |cfg: HierarchyConfig| {
            let mut h = Hierarchy::new(cfg);
            for i in 0..64u64 {
                h.access(i * 64, 8, false);
            }
            h.stats()
        };
        let serialized = sweep(HierarchyConfig::fpga_softcore());
        let overlapped = sweep(HierarchyConfig::fpga_softcore().with_mshrs(4));
        assert!(
            overlapped.cycles < serialized.cycles,
            "4 MSHRs must beat 1 on a miss burst: {} vs {}",
            overlapped.cycles,
            serialized.cycles
        );
        assert_eq!(overlapped.traffic, serialized.traffic);
        assert_eq!(overlapped.l1_misses, serialized.l1_misses);
        // The serialized sweep is exactly the legacy constant per miss;
        // the overlapped one keeps every transfer (bandwidth floor).
        let cfg = HierarchyConfig::fpga_softcore();
        assert_eq!(
            serialized.cycles,
            64 * (cfg.port_cycles(8) + cfg.l1_l2_transfer_cycles() + cfg.l2_dram_transfer_cycles())
        );
        let floor = serialized.traffic.l1_l2.fill_bytes / cfg.l2.bytes_per_cycle
            + serialized.traffic.l2_dram.fill_bytes / cfg.dram.bytes_per_cycle;
        assert!(overlapped.cycles >= floor);
    }

    #[test]
    fn compute_gaps_close_the_burst_window() {
        // Misses separated by long compute stretches are not a burst:
        // with access_at feeding a clock that jumps far between misses,
        // every miss pays the full latency even with a deep MSHR file.
        let cfg = HierarchyConfig::fpga_softcore().with_mshrs(8);
        let full = cfg.port_cycles(8) + cfg.l1_l2_transfer_cycles() + cfg.l2_dram_transfer_cycles();
        let mut h = Hierarchy::new(cfg);
        let mut clock = 0u64;
        for i in 0..16u64 {
            let c = h.access_at(clock, i * 64, 8, false);
            assert_eq!(c, full, "an isolated miss charges the serialized cost");
            clock += c + 10_000; // compute gap
        }
    }

    #[test]
    fn next_line_prefetch_turns_a_sweep_into_l2_hits() {
        let sweep = |cfg: HierarchyConfig| {
            let mut h = Hierarchy::new(cfg);
            for i in 0..64u64 {
                h.access(i * 64, 8, false);
            }
            h.stats()
        };
        let off = sweep(HierarchyConfig::fpga_softcore());
        let pf = sweep(HierarchyConfig::fpga_softcore().with_prefetch(PrefetchPolicy::NextLine));
        // Every line but the first was prefetched into L2 ahead of demand.
        assert_eq!(pf.l2_misses, 1);
        assert_eq!(pf.l2_hits, 63);
        assert!(pf.cycles < off.cycles);
        // The speculation is visible in the ledger, tagged apart from
        // demand fills, and demand accounting is untouched.
        assert_eq!(pf.traffic.l2_dram.fill_lines, pf.l2_misses);
        assert_eq!(pf.traffic.l2_dram.prefetch_lines, 64);
        assert_eq!(pf.traffic.l2_dram.prefetch_bytes, 64 * 64);
        assert_eq!(off.traffic.l2_dram.prefetch_lines, 0);
        // Total DRAM bytes went up (one overshoot line), not down:
        // prefetching trades bandwidth for latency and the ledger says so.
        assert!(pf.traffic.dram_bytes() >= off.traffic.dram_bytes());
    }

    #[test]
    fn shared_edges_charge_contention_to_the_queueing_core() {
        let cold_sweep = |h: &mut Hierarchy| {
            for i in 0..32u64 {
                h.access(i * 64, 8, false);
            }
        };
        // Alone on the shared edges: no queueing.
        let shared = SharedHierarchy::new();
        let mut solo = Hierarchy::new(HierarchyConfig::fpga_softcore());
        let mut rival = Hierarchy::new(HierarchyConfig::fpga_softcore());
        // Both cores join the window before either moves, i.e. they run
        // concurrently; whoever reserves second queues.
        solo.attach_shared(shared.clone());
        rival.attach_shared(shared.clone());
        cold_sweep(&mut solo);
        assert_eq!(solo.stats().contention_cycles, 0);
        cold_sweep(&mut rival);
        let s = rival.stats();
        assert!(s.contention_cycles > 0);
        assert!(s.cycles > solo.stats().cycles);
        assert_eq!(s.traffic, solo.stats().traffic, "contention moves no bytes");
        // A clean read sweep reserves only demand fills, so the edges'
        // own ledgers account for exactly the rival's queueing.
        assert_eq!(
            shared.l1_l2.contended_cycles() + shared.l2_dram.contended_cycles(),
            s.contention_cycles
        );
    }

    /// Joining at the horizon instead of window time 0: a core that
    /// arrives after earlier traffic drained must not be billed for it
    /// (the failure mode was waits compounding exponentially across a
    /// batch of sequential forks).
    #[test]
    fn a_late_joiner_is_not_billed_bus_history() {
        let cold_sweep = |h: &mut Hierarchy| {
            for i in 0..32u64 {
                h.access(i * 64, 8, false);
            }
        };
        let shared = SharedHierarchy::new();
        let mut first = Hierarchy::new(HierarchyConfig::fpga_softcore());
        first.attach_shared(shared.clone());
        cold_sweep(&mut first);
        let busy_until = shared.l1_l2.horizon().max(shared.l2_dram.horizon());
        assert!(busy_until > 0);
        // Attached only now: the first core's transfers are history.
        let mut late = Hierarchy::new(HierarchyConfig::fpga_softcore());
        late.attach_shared(shared.clone());
        cold_sweep(&mut late);
        assert_eq!(late.stats().contention_cycles, 0);
        assert_eq!(late.stats().cycles, first.stats().cycles);
    }

    #[test]
    fn fetch_transactions_land_in_the_fetch_ledger() {
        let mut h = Hierarchy::default();
        let cold = h.access_fetch(0, 0x1000, 32);
        let warm = h.access_fetch(cold, 0x1000, 32);
        let s = h.stats();
        assert_eq!(s.fetch.blocks, 2);
        assert_eq!(s.fetch.bytes, 64);
        assert_eq!(s.fetch.l1_misses, 1);
        assert_eq!(s.fetch.cycles, cold + warm);
        // A fetch is a read access: same counters, same cost.
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(warm, h.config().port_cycles(32));
        assert_eq!(s.cycles, cold + warm);
    }

    #[test]
    fn narrow_geometry_with_mshrs_still_beats_serialized_on_malloc_stress() {
        // The BENCH-facing claim: on the 16-byte-line geometry a
        // pointer-dense sweep with 4 MSHRs takes measurably fewer cycles
        // than the serialized model, at identical traffic.
        let run = |mshrs: u64| {
            let mut h = Hierarchy::new(
                narrow_l1()
                    .with_mshrs(mshrs)
                    .with_store_buffer(mshrs.min(2)),
            );
            for round in 0..4u64 {
                for i in 0..512u64 {
                    h.access(0x1_0000 + i * 48, 32, round % 2 == 0);
                }
            }
            h.stats()
        };
        let serialized = run(1);
        let overlapped = run(4);
        assert!(overlapped.cycles < serialized.cycles);
        assert_eq!(overlapped.traffic, serialized.traffic);
    }

    #[test]
    fn l2_eviction_back_invalidates_l1_sublines() {
        // Narrow-line geometry: dirty a 16-byte L1 sub-line, then force
        // its containing 64-byte L2 line out. Inclusion must pull the
        // sub-line out of L1 (merging its bytes into the drain), so the
        // revisit goes to DRAM, not to a stale L1 hit.
        let mut h = Hierarchy::new(narrow_l1());
        let cfg = h.config();
        let l2_stride = cfg.l2.line_bytes * cfg.l2.sets();
        h.access(0, 8, true);
        for i in 1..=cfg.l2.ways {
            // Touch only the aliasing L2 set, not address 0's L1 set: use
            // a different 16-byte sub-line of each aliasing L2 line.
            h.access(i * l2_stride + 16, 1, false);
        }
        // Address 0's L2 line was evicted; its dirty L1 sub-line must have
        // been merged (one l1_l2 write-back) and drained sub-blocked: only
        // the one dirty 16-byte sector travels to DRAM, not the 64-byte
        // line.
        let t = h.stats().traffic;
        assert_eq!(t.l1_l2.writeback_bytes, cfg.l1.line_bytes);
        assert_eq!(t.l2_dram.writeback_bytes, cfg.l1.line_bytes);
        assert_eq!(t.l2_dram.writeback_lines, 1, "one dirty sector");
        h.reset_stats();
        h.access(0, 1, false);
        assert_eq!(h.stats().l1_misses, 1, "back-invalidation emptied L1");
        assert_eq!(h.stats().l2_misses, 1, "the line is gone from L2 too");
    }

    #[test]
    fn narrow_l1_line_fills_move_fewer_bytes() {
        // The Cap128 mechanism: a 16-byte store on a cold line moves a
        // 16-byte L1 line on the L1<->L2 edge instead of a 64-byte one
        // (the DRAM edge still moves whole L2 lines).
        let run = |cfg: HierarchyConfig| {
            let mut h = Hierarchy::new(cfg);
            h.access(0x1000, 16, true);
            h.stats().traffic
        };
        let wide = run(HierarchyConfig::fpga_softcore());
        let narrow = run(narrow_l1());
        assert_eq!(wide.l1_l2.fill_bytes, 64);
        assert_eq!(narrow.l1_l2.fill_bytes, 16);
        assert_eq!(wide.l2_dram.fill_bytes, narrow.l2_dram.fill_bytes);
    }

    #[test]
    fn zero_length_access_is_free() {
        let mut h = Hierarchy::default();
        assert_eq!(h.access(0x40, 0, true), 0);
        assert_eq!(h.access(0x40, 0, false), 0);
        let s = h.stats();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.l1_hits + s.l1_misses, 0);
    }

    #[test]
    fn access_at_the_top_of_the_address_space_terminates() {
        // The last line has no successor address; the walk must stop
        // rather than wrap to 0 and tour the whole space.
        let mut h = Hierarchy::default();
        h.access(u64::MAX - 4, 8, false);
        assert_eq!(h.stats().l1_misses, 1);
    }

    #[test]
    fn working_set_larger_than_l1_thrashes() {
        // The mechanism behind the Olden results: a pointer-chasing working
        // set that fits in L1 with 8-byte pointers but not with 32-byte
        // capabilities must show a worse hit rate.
        let run = |ptr_size: u64| {
            let mut h = Hierarchy::default();
            let nodes = 1024u64;
            for _ in 0..20 {
                for i in 0..nodes {
                    h.access(0x1_0000 + i * ptr_size * 3, ptr_size, false);
                }
            }
            h.stats().l1_hit_rate()
        };
        let narrow = run(8);
        let wide = run(32);
        assert!(
            narrow > wide,
            "8-byte pointers should hit more: {narrow} vs {wide}"
        );
    }

    #[test]
    fn flush_forgets_contents() {
        let mut h = Hierarchy::default();
        h.access(0x40, 8, true);
        h.flush();
        h.reset_stats();
        h.access(0x40, 8, false);
        assert_eq!(h.stats().l1_misses, 1);
    }

    #[test]
    fn stats_display_mentions_hits_and_traffic() {
        let mut h = Hierarchy::default();
        h.access(0, 1, false);
        h.access(0, 1, false);
        let s = h.stats().to_string();
        assert!(s.contains("L1"));
        assert!(s.contains("cycles"));
        assert!(s.contains("DRAM"));
    }

    /// Every traffic invariant the ledger promises, checked after an
    /// arbitrary access sequence on `cfg` — under any transaction knobs.
    fn assert_traffic_conserves(h: &Hierarchy) {
        let cfg = h.config();
        let s = h.stats();
        let t = s.traffic;
        // Bytes are exactly lines × the edge's line size, prefetches
        // included.
        assert_eq!(t.l1_l2.fill_bytes, t.l1_l2.fill_lines * cfg.l1.line_bytes);
        assert_eq!(
            t.l1_l2.writeback_bytes,
            t.l1_l2.writeback_lines * cfg.l1.line_bytes
        );
        assert_eq!(t.l1_l2.prefetch_lines, 0, "prefetches target L2 only");
        assert_eq!(
            t.l2_dram.fill_bytes,
            t.l2_dram.fill_lines * cfg.l2.line_bytes
        );
        assert_eq!(
            t.l2_dram.prefetch_bytes,
            t.l2_dram.prefetch_lines * cfg.l2.line_bytes
        );
        // DRAM write-backs are sub-blocked: they move dirty sectors of the
        // L1 line size.
        assert_eq!(
            t.l2_dram.writeback_bytes,
            t.l2_dram.writeback_lines * cfg.l1.line_bytes
        );
        // Demand accounting: every L1 miss is one L1 fill, every L2 miss
        // one DRAM fill — prefetch fills are ledgered apart and never
        // inflate demand.
        assert_eq!(t.l1_l2.fill_lines, s.l1_misses);
        assert_eq!(t.l2_dram.fill_lines, s.l2_misses);
        // A line must be filled before it can be written back (inclusion
        // makes this hold per edge, not just globally; on the DRAM edge a
        // dirty line may have arrived as a prefetch).
        assert!(t.l1_l2.writeback_bytes <= t.l1_l2.fill_bytes);
        assert!(t.l2_dram.writeback_bytes <= t.l2_dram.fill_bytes + t.l2_dram.prefetch_bytes);
        // Cycles are bounded below by the bandwidth term of every *demand*
        // transfer (prefetches charge the CPU nothing, and a store buffer
        // moves write-back bandwidth off the charged path).
        let mut bw_floor = t.l1_l2.fill_bytes / cfg.l2.bytes_per_cycle
            + t.l2_dram.fill_bytes / cfg.dram.bytes_per_cycle;
        if cfg.l1.store_buffer == 0 && cfg.l2.store_buffer == 0 {
            bw_floor += t.l1_l2.writeback_bytes / cfg.l2.bytes_per_cycle
                + t.l2_dram.writeback_bytes / cfg.dram.bytes_per_cycle;
        }
        assert!(
            s.cycles >= bw_floor,
            "cycles {} below bandwidth floor {}",
            s.cycles,
            bw_floor
        );
        // The legacy counter brackets the ledger: one event per L1
        // write-back plus one per drain (a drain moves >= 1 sector).
        assert!(s.writebacks >= t.l1_l2.writeback_lines);
        assert!(s.writebacks <= t.l1_l2.writeback_lines + t.l2_dram.writeback_lines);
    }

    /// The transaction-knob axes the proptests sweep.
    fn knobbed_config(
        narrow: bool,
        mshrs: u64,
        store_buffer: u64,
        prefetch: PrefetchPolicy,
    ) -> HierarchyConfig {
        let base = if narrow {
            narrow_l1()
        } else {
            HierarchyConfig::fpga_softcore()
        };
        base.with_mshrs(mshrs)
            .with_store_buffer(store_buffer.min(mshrs))
            .with_prefetch(prefetch)
    }

    fn prefetch_policies() -> impl Strategy<Value = PrefetchPolicy> {
        (0u64..3).prop_map(|i| match i {
            0 => PrefetchPolicy::Off,
            1 => PrefetchPolicy::NextLine,
            _ => PrefetchPolicy::Stride,
        })
    }

    proptest! {
        /// The hierarchy never charges less than a port access or more
        /// than a full miss per line touched, and cycle accounting matches
        /// stats — on the legacy 64-byte geometry and on the narrow-L1
        /// geometry alike (legacy serialized knobs, where the per-line
        /// worst case is exact).
        #[test]
        fn cycle_bounds(
            accesses in proptest::collection::vec((0u64..1 << 20, 1u64..64, any::<bool>()), 1..200),
            narrow in any::<bool>(),
        ) {
            let cfg = if narrow { narrow_l1() } else { HierarchyConfig::fpga_softcore() };
            let mut h = Hierarchy::new(cfg);
            let mut total = 0;
            for (addr, len, w) in accesses {
                let lines = {
                    let first = addr / cfg.l1.line_bytes;
                    let last = (addr + len - 1) / cfg.l1.line_bytes;
                    last - first + 1
                };
                let c = h.access(addr, len, w);
                total += c;
                prop_assert!(c >= lines * cfg.port_cycles(1));
                // Worst case per line: port + demand DRAM fill + L1 fill,
                // plus a dirty L1 victim write-back, plus an L2 eviction
                // that merges every dirty sub-line and drains.
                let sub = cfg.l2.line_bytes / cfg.l1.line_bytes;
                let worst = cfg.port_cycles(cfg.l1.line_bytes)
                    + (2 + sub) * cfg.l1_l2_transfer_cycles()
                    + 2 * cfg.l2_dram_transfer_cycles();
                prop_assert!(c <= lines * worst, "{c} > {lines} * {worst}");
            }
            prop_assert_eq!(h.stats().cycles, total);
            prop_assert_eq!(h.stats().l1_misses, h.stats().l2_hits + h.stats().l2_misses);
        }

        /// The per-edge ledger conserves: bytes = lines × line size, fills
        /// match demand misses, write-backs never exceed what was brought
        /// in, and the demand bandwidth term lower-bounds the charged
        /// cycles — across every combination of geometry, MSHR depth,
        /// store-buffer depth and prefetch policy.
        #[test]
        fn traffic_conserves(
            accesses in proptest::collection::vec((0u64..1 << 18, 1u64..64, any::<bool>()), 1..300),
            narrow in any::<bool>(),
            mshrs in 1u64..6,
            store_buffer in 0u64..6,
            prefetch in prefetch_policies(),
        ) {
            let cfg = knobbed_config(narrow, mshrs, store_buffer, prefetch);
            prop_assert!(cfg.validate().is_ok());
            let mut h = Hierarchy::new(cfg);
            for (addr, len, w) in accesses {
                h.access(addr, len, w);
            }
            assert_traffic_conserves(&h);
        }

        /// The transaction knobs are cycle *policies*: whatever their
        /// setting, the byte ledger's demand half and the hit/miss
        /// counters match the serialized model exactly, and overlap never
        /// makes a sequence slower. (Prefetching is excluded: it changes
        /// hit/miss placement by design.)
        #[test]
        fn knobs_never_change_demand_traffic(
            accesses in proptest::collection::vec((0u64..1 << 18, 1u64..64, any::<bool>()), 1..200),
            narrow in any::<bool>(),
            mshrs in 1u64..6,
            store_buffer in 0u64..6,
        ) {
            let base = knobbed_config(narrow, 1, 0, PrefetchPolicy::Off);
            let knobbed = knobbed_config(narrow, mshrs, store_buffer, PrefetchPolicy::Off);
            let mut a = Hierarchy::new(base);
            let mut b = Hierarchy::new(knobbed);
            for &(addr, len, w) in &accesses {
                a.access(addr, len, w);
                b.access(addr, len, w);
            }
            let (sa, sb) = (a.stats(), b.stats());
            prop_assert_eq!(sa.traffic, sb.traffic);
            prop_assert_eq!(sa.l1_hits, sb.l1_hits);
            prop_assert_eq!(sa.l1_misses, sb.l1_misses);
            prop_assert_eq!(sa.l2_hits, sb.l2_hits);
            prop_assert_eq!(sa.l2_misses, sb.l2_misses);
            prop_assert_eq!(sa.writebacks, sb.writebacks);
            prop_assert!(sb.cycles <= sa.cycles);
        }

        /// With the serialized knobs the transaction engine *is* the
        /// legacy model: access_at with an arbitrary monotone clock feed
        /// charges exactly the same cycles as the clockless path.
        #[test]
        fn serialized_knobs_ignore_the_clock(
            accesses in proptest::collection::vec((0u64..1 << 18, 1u64..64, any::<bool>()), 1..200),
            gaps in proptest::collection::vec(0u64..10_000, 1..200),
        ) {
            let cfg = HierarchyConfig::fpga_softcore();
            let mut plain = Hierarchy::new(cfg);
            let mut clocked = Hierarchy::new(cfg);
            let mut clock = 0u64;
            for (i, &(addr, len, w)) in accesses.iter().enumerate() {
                let c0 = plain.access(addr, len, w);
                let c1 = clocked.access_at(clock, addr, len, w);
                prop_assert_eq!(c0, c1);
                clock += c1 + gaps[i % gaps.len()];
            }
            prop_assert_eq!(plain.stats(), clocked.stats());
        }

        /// Repeating the same small working set converges to all-hits.
        #[test]
        fn small_working_set_converges(base in 0u64..1 << 16) {
            let mut h = Hierarchy::default();
            for _ in 0..3 {
                for i in 0..16u64 {
                    h.access(base + i * 64, 8, false);
                }
            }
            h.reset_stats();
            for i in 0..16u64 {
                h.access(base + i * 64, 8, false);
            }
            prop_assert_eq!(h.stats().l1_misses, 0);
        }
    }
}
