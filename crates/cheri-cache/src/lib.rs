//! A set-associative, bandwidth-aware cache-hierarchy simulator.
//!
//! The paper's performance evaluation runs on a 100 MHz FPGA softcore with a
//! **16 KB L1 data cache and a 64 KB L2**, noting that "the DDR DRAM is
//! faster relative to the CPU speed, so cache misses are more common but
//! less costly than on most modern processors" (§5.2). The measured CHERI
//! overheads are dominated by the cache footprint of 256-bit capabilities
//! versus 64-bit integer pointers ("the performance difference ... is
//! primarily due to the larger pointers causing more cache misses").
//!
//! This crate reproduces that cost model as a *traffic* model: every level
//! is a [`LevelSpec`] with a latency **and** a bandwidth, every line that
//! moves between levels charges `latency + ceil(bytes / bytes_per_cycle)`
//! for its edge, and a [`TrafficStats`] ledger records the bytes moved per
//! edge (L1↔L2 and L2↔DRAM, fills and write-backs separately). That is the
//! metric behind the paper's 128-bit-capability argument: halving the
//! stored capability width halves the bytes a pointer-dense working set
//! drags across the DRAM edge, which line-granularity cycle models round
//! away.
//!
//! The hierarchy is two-level, write-back, write-allocate, LRU, and
//! **inclusive**: evicting an L2 line back-invalidates its L1 sub-lines
//! (merging their dirty data into the drain), which is what makes the
//! per-edge byte ledger conserve — every line written back was once
//! filled. L1 lines may be narrower than L2 lines (e.g. a 16-byte L1 over
//! a 64-byte L2), in which case an L1 fill moves only the sub-line and
//! the L2 is **sub-blocked**: dirtiness is tracked per L1-line-sized
//! sector, and a dirty L2 eviction drains only its dirty sectors to DRAM
//! (demand fills still move whole L2 lines). With the classic 64-byte
//! geometry sector and line coincide and the model charges exactly the
//! flat per-level constants the presets derive.
//!
//! # Example
//!
//! ```
//! use cheri_cache::{Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::fpga_softcore());
//! let cold = h.access(0x1000, 8, false);
//! let warm = h.access(0x1000, 8, false);
//! assert!(cold > warm); // second access hits in L1
//! assert_eq!(warm, 1);
//! let t = h.stats().traffic;
//! assert_eq!(t.l2_dram.fill_bytes, 64); // one line came from DRAM
//! ```

use std::fmt;

/// Geometry and timing of one cache level.
///
/// `bytes_per_cycle` is the bandwidth of the edge this level *serves*:
/// for L1 that is the CPU load/store port (each access charges
/// `latency_cycles + ceil(bytes / bytes_per_cycle)`), for L2 it is the
/// L1↔L2 edge over which L1 lines fill and write back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelSpec {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u64,
    /// Fixed cycles per transfer served by this level.
    pub latency_cycles: u64,
    /// Bandwidth of this level's service port, in bytes per cycle.
    pub bytes_per_cycle: u64,
}

/// Timing of the DRAM edge (L2↔DRAM): every L2-line fill or drain charges
/// `latency_cycles + ceil(l2.line_bytes / bytes_per_cycle)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramSpec {
    /// Fixed cycles per DRAM transfer (row activation, controller).
    pub latency_cycles: u64,
    /// DRAM burst bandwidth in bytes per cycle.
    pub bytes_per_cycle: u64,
}

/// A [`LevelSpec`] or [`HierarchyConfig`] that cannot be simulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheConfigError {
    /// A size, line size, way count or bandwidth is zero.
    ZeroField(&'static str),
    /// `line_bytes` is not a power of two.
    LineNotPowerOfTwo(u64),
    /// The capacity does not split into a power-of-two number of sets of
    /// `ways` lines.
    BadGeometry {
        /// Capacity in bytes.
        size_bytes: u64,
        /// Line size in bytes.
        line_bytes: u64,
        /// Ways per set.
        ways: u64,
    },
    /// The L1 line is wider than the L2 line (an L1 fill could not come
    /// from a single L2 line).
    L1LineWiderThanL2 {
        /// L1 line size in bytes.
        l1: u64,
        /// L2 line size in bytes.
        l2: u64,
    },
    /// More than 64 L1-line-sized sectors fit in an L2 line (the
    /// per-sector dirty mask is 64 bits wide).
    TooManySectors {
        /// L1 line size in bytes.
        l1: u64,
        /// L2 line size in bytes.
        l2: u64,
    },
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::ZeroField(which) => write!(f, "{which} must be non-zero"),
            CacheConfigError::LineNotPowerOfTwo(n) => {
                write!(f, "line_bytes must be a power of two, got {n}")
            }
            CacheConfigError::BadGeometry {
                size_bytes,
                line_bytes,
                ways,
            } => write!(
                f,
                "{size_bytes} bytes of {line_bytes}-byte lines do not form a \
                 power-of-two number of {ways}-way sets"
            ),
            CacheConfigError::L1LineWiderThanL2 { l1, l2 } => {
                write!(f, "L1 line ({l1} bytes) wider than L2 line ({l2} bytes)")
            }
            CacheConfigError::TooManySectors { l1, l2 } => write!(
                f,
                "L2 line ({l2} bytes) holds more than 64 L1-line ({l1} bytes) \
                 sectors; the dirty mask is 64 bits"
            ),
        }
    }
}

impl std::error::Error for CacheConfigError {}

impl LevelSpec {
    /// Checks the level in isolation: non-zero fields, power-of-two line,
    /// and a power-of-two number of whole sets.
    ///
    /// # Errors
    ///
    /// The first [`CacheConfigError`] found.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if self.size_bytes == 0 {
            return Err(CacheConfigError::ZeroField("size_bytes"));
        }
        if self.line_bytes == 0 {
            return Err(CacheConfigError::ZeroField("line_bytes"));
        }
        if self.ways == 0 {
            return Err(CacheConfigError::ZeroField("ways"));
        }
        if self.bytes_per_cycle == 0 {
            return Err(CacheConfigError::ZeroField("bytes_per_cycle"));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(CacheConfigError::LineNotPowerOfTwo(self.line_bytes));
        }
        let bad = CacheConfigError::BadGeometry {
            size_bytes: self.size_bytes,
            line_bytes: self.line_bytes,
            ways: self.ways,
        };
        if self.size_bytes % self.line_bytes != 0 {
            return Err(bad);
        }
        let lines = self.size_bytes / self.line_bytes;
        if lines % self.ways != 0 || !(lines / self.ways).is_power_of_two() {
            return Err(bad);
        }
        Ok(())
    }

    /// Number of sets implied by the geometry. Meaningful only after
    /// [`LevelSpec::validate`] has passed.
    pub fn sets(&self) -> u64 {
        (self.size_bytes / self.line_bytes) / self.ways
    }
}

/// Configuration of the full hierarchy: two cache levels plus the DRAM
/// edge. The flat per-level cycle constants of the old model survive only
/// as values derived from `latency + ceil(line / bandwidth)` inside the
/// presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: LevelSpec,
    /// L2 cache.
    pub l2: LevelSpec,
    /// The DRAM edge below L2.
    pub dram: DramSpec,
}

impl HierarchyConfig {
    /// The paper's FPGA softcore: 16 KB L1, 64 KB L2, 64-byte lines.
    /// The derived per-line costs reproduce the pre-bandwidth model
    /// exactly: an L1 hit is 1 cycle (port), an L1 fill from L2 adds
    /// `5 + 64/16 = 9`, a DRAM transfer adds `22 + 64/8 = 30` — DRAM
    /// "less costly than on most modern processors".
    pub fn fpga_softcore() -> HierarchyConfig {
        HierarchyConfig {
            l1: LevelSpec {
                size_bytes: 16 * 1024,
                line_bytes: 64,
                ways: 4,
                latency_cycles: 0,
                bytes_per_cycle: 64,
            },
            l2: LevelSpec {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                ways: 8,
                latency_cycles: 5,
                bytes_per_cycle: 16,
            },
            dram: DramSpec {
                latency_cycles: 22,
                bytes_per_cycle: 8,
            },
        }
    }

    /// A modern-desktop-like hierarchy for the substrate ablation bench
    /// (bigger caches, relatively slower DRAM): L2 serves a line in
    /// `4 + 64/8 = 12` cycles, DRAM in `184 + 64/4 = 200`.
    pub fn desktop() -> HierarchyConfig {
        HierarchyConfig {
            l1: LevelSpec {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
                latency_cycles: 0,
                bytes_per_cycle: 64,
            },
            l2: LevelSpec {
                size_bytes: 512 * 1024,
                line_bytes: 64,
                ways: 8,
                latency_cycles: 4,
                bytes_per_cycle: 8,
            },
            dram: DramSpec {
                latency_cycles: 184,
                bytes_per_cycle: 4,
            },
        }
    }

    /// The same hierarchy with a narrower L1 line (16 or 32 bytes): the
    /// geometry that lets half-width capability stores touch half the
    /// bytes instead of rounding up to a 64-byte line.
    pub fn with_l1_line_bytes(mut self, line_bytes: u64) -> HierarchyConfig {
        self.l1.line_bytes = line_bytes;
        self
    }

    /// Checks both levels and their relationship (the L1 line must divide
    /// into the L2 line so a fill comes from one L2 line).
    ///
    /// # Errors
    ///
    /// The first [`CacheConfigError`] found.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        self.l1.validate()?;
        self.l2.validate()?;
        if self.dram.bytes_per_cycle == 0 {
            return Err(CacheConfigError::ZeroField("dram.bytes_per_cycle"));
        }
        if self.l1.line_bytes > self.l2.line_bytes {
            return Err(CacheConfigError::L1LineWiderThanL2 {
                l1: self.l1.line_bytes,
                l2: self.l2.line_bytes,
            });
        }
        if self.l2.line_bytes / self.l1.line_bytes > 64 {
            return Err(CacheConfigError::TooManySectors {
                l1: self.l1.line_bytes,
                l2: self.l2.line_bytes,
            });
        }
        Ok(())
    }

    /// Cycles the CPU port charges for `bytes` within one L1 line.
    pub fn port_cycles(&self, bytes: u64) -> u64 {
        self.l1.latency_cycles + bytes.div_ceil(self.l1.bytes_per_cycle)
    }

    /// Cycles one L1-line transfer on the L1↔L2 edge costs (fill or
    /// write-back).
    pub fn l1_l2_transfer_cycles(&self) -> u64 {
        self.l2.latency_cycles + self.l1.line_bytes.div_ceil(self.l2.bytes_per_cycle)
    }

    /// Cycles one full-L2-line transfer on the L2↔DRAM edge costs (a
    /// demand fill, or a drain whose every sector is dirty).
    pub fn l2_dram_transfer_cycles(&self) -> u64 {
        self.dram.latency_cycles + self.l2.line_bytes.div_ceil(self.dram.bytes_per_cycle)
    }

    /// Cycles a sub-blocked drain of `sectors` dirty L1-line-sized
    /// sectors costs on the L2↔DRAM edge (one DRAM latency, then the
    /// burst).
    pub fn l2_drain_cycles(&self, sectors: u64) -> u64 {
        self.dram.latency_cycles
            + (sectors * self.l1.line_bytes).div_ceil(self.dram.bytes_per_cycle)
    }
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig::fpga_softcore()
    }
}

/// Bytes and transfers moved across one inter-level edge, fills (toward
/// the CPU) and write-backs (away from it) separated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeTraffic {
    /// Lines moved toward the CPU (demand fills) — L1 lines on the L1↔L2
    /// edge, L2 lines on the L2↔DRAM edge.
    pub fill_lines: u64,
    /// Bytes those fills moved.
    pub fill_bytes: u64,
    /// Transfers moved away from the CPU (dirty write-backs): L1 lines on
    /// the L1↔L2 edge; on the L2↔DRAM edge, dirty *sectors* (L1-line
    /// sized) of drained L2 lines.
    pub writeback_lines: u64,
    /// Bytes those write-backs moved.
    pub writeback_bytes: u64,
}

impl EdgeTraffic {
    /// Total bytes moved on the edge in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.fill_bytes + self.writeback_bytes
    }
}

/// The per-edge traffic ledger: every byte the hierarchy moves is
/// attributed to exactly one edge and one direction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// The L1↔L2 edge: L1-line fills and dirty-L1 write-backs.
    pub l1_l2: EdgeTraffic,
    /// The L2↔DRAM edge: L2-line fills and dirty-L2 drains.
    pub l2_dram: EdgeTraffic,
}

impl TrafficStats {
    /// Total bytes moved on the DRAM edge — the paper's headline metric
    /// for capability-width cost.
    pub fn dram_bytes(&self) -> u64 {
        self.l2_dram.total_bytes()
    }
}

/// Hit/miss counters and the traffic ledger for the whole hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses served by L1.
    pub l1_hits: u64,
    /// Accesses that missed L1.
    pub l1_misses: u64,
    /// L1 misses served by L2.
    pub l2_hits: u64,
    /// Accesses that went all the way to DRAM.
    pub l2_misses: u64,
    /// Dirty lines written back on eviction (both edges; also counts lines
    /// dropped by [`Hierarchy::flush`], which moves no modelled traffic).
    pub writebacks: u64,
    /// Total cycles charged by the hierarchy.
    pub cycles: u64,
    /// Bytes moved per edge.
    pub traffic: TrafficStats,
}

impl CacheStats {
    /// L1 hit rate in `[0, 1]` (0 if no accesses).
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1 {}/{} hits ({:.1}%), L2 {} hits, {} DRAM, {} writebacks, {} cycles, \
             {} B L1<->L2, {} B L2<->DRAM",
            self.l1_hits,
            self.l1_hits + self.l1_misses,
            100.0 * self.l1_hit_rate(),
            self.l2_hits,
            self.l2_misses,
            self.writebacks,
            self.cycles,
            self.traffic.l1_l2.total_bytes(),
            self.traffic.l2_dram.total_bytes(),
        )
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    /// Dirty mask, one bit per L1-line-sized sector. For L1 (and for an
    /// L2 whose line equals the L1 line) this is a single bit.
    dirty: u64,
    stamp: u64,
}

const EMPTY_LINE: Line = Line {
    tag: 0,
    valid: false,
    dirty: 0,
    stamp: 0,
};

/// The line displaced by a fill.
#[derive(Clone, Copy, Debug)]
struct Victim {
    line_addr: u64,
    /// Per-sector dirty mask; 0 means clean.
    dirty: u64,
}

#[derive(Clone, Debug)]
struct Level {
    spec: LevelSpec,
    /// `nsets × ways` fixed line slots: `lines[set * ways .. +ways]`.
    lines: Box<[Line]>,
    clock: u64,
    /// Shift/mask index math; validation guarantees power-of-two line
    /// size and set count.
    line_shift: u32,
    set_mask: u64,
    set_shift: u32,
    /// Dirty granularity: log2 of the sector size (the hierarchy's L1
    /// line) and the sectors-per-line mask.
    sector_shift: u32,
    sector_mask: u64,
}

enum Lookup {
    Hit,
    /// Miss; the fill may have displaced a victim line.
    Miss(Option<Victim>),
}

impl Level {
    /// Builds the level; `sector_bytes` (the hierarchy's L1 line size)
    /// sets the dirty-tracking granularity.
    fn new(spec: LevelSpec, sector_bytes: u64) -> Level {
        let nsets = spec.sets();
        Level {
            spec,
            lines: vec![EMPTY_LINE; (nsets * spec.ways) as usize].into_boxed_slice(),
            clock: 0,
            line_shift: spec.line_bytes.trailing_zeros(),
            set_mask: nsets - 1,
            set_shift: nsets.trailing_zeros(),
            sector_shift: sector_bytes.trailing_zeros(),
            sector_mask: spec.line_bytes / sector_bytes - 1,
        }
    }

    /// Splits `line_addr` into (set index, tag).
    fn set_and_tag(&self, line_addr: u64) -> (usize, u64) {
        let idx = line_addr >> self.line_shift;
        ((idx & self.set_mask) as usize, idx >> self.set_shift)
    }

    /// The dirty-mask bit for the sector containing `addr`.
    fn sector_bit(&self, addr: u64) -> u64 {
        1 << ((addr >> self.sector_shift) & self.sector_mask)
    }

    /// Looks up the line containing `line_addr`, filling on miss (into a
    /// free way if one exists, else over the least-recently-used line).
    /// A write dirties the sector containing `line_addr`.
    fn access(&mut self, line_addr: u64, write: bool) -> Lookup {
        self.clock += 1;
        let (set_idx, tag) = self.set_and_tag(line_addr);
        let wmask = if write { self.sector_bit(line_addr) } else { 0 };
        let ways = self.spec.ways as usize;
        let set = &mut self.lines[set_idx * ways..(set_idx + 1) * ways];
        let mut free = None;
        let mut lru = 0;
        let mut lru_stamp = u64::MAX;
        for (i, l) in set.iter_mut().enumerate() {
            if l.valid {
                if l.tag == tag {
                    l.stamp = self.clock;
                    l.dirty |= wmask;
                    return Lookup::Hit;
                }
                if l.stamp < lru_stamp {
                    lru_stamp = l.stamp;
                    lru = i;
                }
            } else if free.is_none() {
                free = Some(i);
            }
        }
        let slot = free.unwrap_or(lru);
        let victim = set[slot].valid.then(|| Victim {
            // tag = idx / sets and set = idx % sets, so the victim's line
            // address reconstructs exactly.
            line_addr: ((set[slot].tag << self.set_shift) | set_idx as u64) << self.line_shift,
            dirty: set[slot].dirty,
        });
        set[slot] = Line {
            tag,
            valid: true,
            dirty: wmask,
            stamp: self.clock,
        };
        Lookup::Miss(victim)
    }

    /// Marks the sector containing `addr` dirty in its resident line and
    /// refreshes it (a write-back install), without allocating. Returns
    /// whether the line was present.
    fn touch_dirty(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let bit = self.sector_bit(addr);
        let ways = self.spec.ways as usize;
        let set = &mut self.lines[set_idx * ways..(set_idx + 1) * ways];
        for l in set.iter_mut() {
            if l.valid && l.tag == tag {
                l.dirty |= bit;
                l.stamp = self.clock;
                return true;
            }
        }
        false
    }

    /// Removes the line containing `line_addr` if resident, returning its
    /// dirty mask (inclusion back-invalidation).
    fn invalidate(&mut self, line_addr: u64) -> Option<u64> {
        let (set_idx, tag) = self.set_and_tag(line_addr);
        let ways = self.spec.ways as usize;
        let set = &mut self.lines[set_idx * ways..(set_idx + 1) * ways];
        for l in set.iter_mut() {
            if l.valid && l.tag == tag {
                let dirty = l.dirty;
                *l = EMPTY_LINE;
                return Some(dirty);
            }
        }
        None
    }

    fn flush(&mut self) -> u64 {
        let mut dirty = 0;
        for l in self.lines.iter_mut() {
            dirty += u64::from(l.valid && l.dirty != 0);
            *l = EMPTY_LINE;
        }
        dirty
    }
}

/// A two-level write-back, write-allocate, inclusive cache hierarchy with
/// LRU replacement, charging latency + bandwidth cycles per transfer and
/// keeping a per-edge byte ledger.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: Level,
    l2: Level,
    stats: CacheStats,
    /// Port cycles when one transfer covers any in-line access
    /// (`bytes_per_cycle >= line_bytes`, true of every preset), so the
    /// hot hit path does no division.
    port_flat: Option<u64>,
    /// Precomputed `l1_l2_transfer_cycles` / `l2_dram_transfer_cycles`.
    l1_fill_cycles: u64,
    l2_fill_cycles: u64,
}

impl Hierarchy {
    /// Builds the hierarchy for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`HierarchyConfig::validate`]; use
    /// [`Hierarchy::try_new`] to get the error instead.
    pub fn new(cfg: HierarchyConfig) -> Hierarchy {
        Hierarchy::try_new(cfg).unwrap_or_else(|e| panic!("invalid cache config: {e}"))
    }

    /// Builds the hierarchy for `cfg`, reporting invalid geometry as an
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// The [`CacheConfigError`] from [`HierarchyConfig::validate`].
    pub fn try_new(cfg: HierarchyConfig) -> Result<Hierarchy, CacheConfigError> {
        cfg.validate()?;
        Ok(Hierarchy {
            l1: Level::new(cfg.l1, cfg.l1.line_bytes),
            l2: Level::new(cfg.l2, cfg.l1.line_bytes),
            stats: CacheStats::default(),
            port_flat: (cfg.l1.bytes_per_cycle >= cfg.l1.line_bytes)
                .then(|| cfg.l1.latency_cycles + 1),
            l1_fill_cycles: cfg.l1_l2_transfer_cycles(),
            l2_fill_cycles: cfg.l2_dram_transfer_cycles(),
            cfg,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> HierarchyConfig {
        self.cfg
    }

    /// Simulates an access of `len` bytes at `addr` (split across L1 lines
    /// as the hardware would), returning the cycles charged. Zero-length
    /// accesses (e.g. `memcpy(d, s, 0)`) touch no line and cost nothing.
    pub fn access(&mut self, addr: u64, len: u64, write: bool) -> u64 {
        if len == 0 {
            return 0;
        }
        let line = self.cfg.l1.line_bytes;
        let mut cycles = 0;
        let mut a = addr;
        let end = addr.saturating_add(len);
        while a < end {
            let line_addr = a & !(line - 1);
            // The last line of the address space has no successor; stepping
            // past it would wrap and walk the whole space again.
            let next = line_addr.checked_add(line);
            let piece = next.map_or(end, |n| n.min(end)) - a;
            cycles += self.access_line(line_addr, piece, write);
            match next {
                Some(n) => a = n,
                None => break,
            }
        }
        self.stats.cycles += cycles;
        cycles
    }

    fn access_line(&mut self, line_addr: u64, bytes: u64, write: bool) -> u64 {
        // The CPU port is charged for every access, hit or miss.
        let port = match self.port_flat {
            Some(p) => p,
            None => self.cfg.port_cycles(bytes),
        };
        match self.l1.access(line_addr, write) {
            Lookup::Hit => {
                self.stats.l1_hits += 1;
                port
            }
            Lookup::Miss(victim) => {
                self.stats.l1_misses += 1;
                let mut cycles = port;
                // Drain the dirty L1 victim first: inclusion guarantees its
                // containing L2 line is still resident *before* the demand
                // fill below may evict it.
                if let Some(v) = victim {
                    if v.dirty != 0 {
                        cycles += self.writeback_l1_line(v.line_addr);
                    }
                }
                // Demand path: the containing L2 line, from L2 or DRAM.
                match self.l2.access(line_addr, write) {
                    Lookup::Hit => self.stats.l2_hits += 1,
                    Lookup::Miss(l2_victim) => {
                        self.stats.l2_misses += 1;
                        self.stats.traffic.l2_dram.fill_lines += 1;
                        self.stats.traffic.l2_dram.fill_bytes += self.cfg.l2.line_bytes;
                        cycles += self.l2_fill_cycles;
                        if let Some(v) = l2_victim {
                            cycles += self.evict_l2_line(v);
                        }
                    }
                }
                // The L1 fill itself: one L1 line over the L1<->L2 edge.
                self.stats.traffic.l1_l2.fill_lines += 1;
                self.stats.traffic.l1_l2.fill_bytes += self.cfg.l1.line_bytes;
                cycles += self.l1_fill_cycles;
                cycles
            }
        }
    }

    /// Writes a dirty L1 line back into its containing L2 line. Inclusion
    /// means the L2 line is resident (every L1 line filled through L2 and
    /// L2 evictions back-invalidate), so this never allocates.
    fn writeback_l1_line(&mut self, line_addr: u64) -> u64 {
        self.stats.writebacks += 1;
        self.stats.traffic.l1_l2.writeback_lines += 1;
        self.stats.traffic.l1_l2.writeback_bytes += self.cfg.l1.line_bytes;
        let hit = self.l2.touch_dirty(line_addr);
        debug_assert!(hit, "inclusion: a dirty L1 line's L2 container is resident");
        self.l1_fill_cycles
    }

    /// Handles an L2 eviction: back-invalidates the victim's L1 sub-lines
    /// (merging dirty data across the L1↔L2 edge), then drains the dirty
    /// sectors to DRAM. Sub-blocking is what lets a half-width capability
    /// store put half the bytes on the DRAM write-back stream when the L1
    /// line is narrower than the L2 line.
    fn evict_l2_line(&mut self, v: Victim) -> u64 {
        let mut cycles = 0;
        let mut dirty = v.dirty;
        let sub = self.cfg.l1.line_bytes;
        let mut a = v.line_addr;
        let end = v.line_addr + self.cfg.l2.line_bytes;
        while a < end {
            if self.l1.invalidate(a).is_some_and(|m| m != 0) {
                self.stats.writebacks += 1;
                self.stats.traffic.l1_l2.writeback_lines += 1;
                self.stats.traffic.l1_l2.writeback_bytes += sub;
                cycles += self.l1_fill_cycles;
                dirty |= self.l2.sector_bit(a);
            }
            a += sub;
        }
        if dirty != 0 {
            let sectors = u64::from(dirty.count_ones());
            self.stats.writebacks += 1;
            self.stats.traffic.l2_dram.writeback_lines += sectors;
            self.stats.traffic.l2_dram.writeback_bytes += sectors * sub;
            cycles += self.cfg.l2_drain_cycles(sectors);
        }
        cycles
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Empties both levels (counting dirty lines in
    /// [`CacheStats::writebacks`] but moving no modelled traffic) and
    /// keeps statistics. Used between benchmark phases.
    pub fn flush(&mut self) {
        self.stats.writebacks += self.l1.flush() + self.l2.flush();
    }

    /// Resets statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

impl Default for Hierarchy {
    fn default() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The fpga preset with a 16-byte L1 line (sub-block fills).
    fn narrow_l1() -> HierarchyConfig {
        HierarchyConfig::fpga_softcore().with_l1_line_bytes(16)
    }

    #[test]
    fn geometry_is_sane() {
        let cfg = HierarchyConfig::fpga_softcore();
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l2.sets(), 128);
        assert!(cfg.validate().is_ok());
        assert!(HierarchyConfig::desktop().validate().is_ok());
        assert!(narrow_l1().validate().is_ok());
    }

    #[test]
    fn presets_derive_the_legacy_constants() {
        // The flat constants of the pre-bandwidth model survive as derived
        // values: hit 1, L2 fill +9, DRAM +30 on the fpga preset.
        let cfg = HierarchyConfig::fpga_softcore();
        assert_eq!(cfg.port_cycles(8), 1);
        assert_eq!(cfg.port_cycles(64), 1);
        assert_eq!(cfg.l1_l2_transfer_cycles(), 9);
        assert_eq!(cfg.l2_dram_transfer_cycles(), 30);
        let d = HierarchyConfig::desktop();
        assert_eq!(d.l1_l2_transfer_cycles(), 12);
        assert_eq!(d.l2_dram_transfer_cycles(), 200);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let good = HierarchyConfig::fpga_softcore();
        let mut zero_bw = good;
        zero_bw.l2.bytes_per_cycle = 0;
        assert_eq!(
            zero_bw.validate(),
            Err(CacheConfigError::ZeroField("bytes_per_cycle"))
        );
        let mut zero_dram = good;
        zero_dram.dram.bytes_per_cycle = 0;
        assert_eq!(
            zero_dram.validate(),
            Err(CacheConfigError::ZeroField("dram.bytes_per_cycle"))
        );
        let mut odd_line = good;
        odd_line.l1.line_bytes = 48;
        assert_eq!(
            odd_line.validate(),
            Err(CacheConfigError::LineNotPowerOfTwo(48))
        );
        let mut wide_l1 = good;
        wide_l1.l1.line_bytes = 128;
        assert!(matches!(
            wide_l1.validate(),
            Err(CacheConfigError::L1LineWiderThanL2 { l1: 128, l2: 64 })
        ));
        let mut ragged = good;
        ragged.l1.ways = 3;
        assert!(matches!(
            ragged.validate(),
            Err(CacheConfigError::BadGeometry { .. })
        ));
        let mut sectored = good;
        sectored.l1.line_bytes = 16;
        sectored.l2.line_bytes = 2048; // 128 sectors > the 64-bit mask
        assert!(matches!(
            sectored.validate(),
            Err(CacheConfigError::TooManySectors { l1: 16, l2: 2048 })
        ));
        assert!(sectored
            .validate()
            .unwrap_err()
            .to_string()
            .contains("sectors"));
        assert!(Hierarchy::try_new(zero_bw).is_err());
        let msg = zero_bw.validate().unwrap_err().to_string();
        assert!(msg.contains("bytes_per_cycle"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "invalid cache config")]
    fn new_panics_with_the_validation_message() {
        let mut cfg = HierarchyConfig::fpga_softcore();
        cfg.l1.size_bytes = 100;
        let _ = Hierarchy::new(cfg);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut h = Hierarchy::default();
        let cfg = h.config();
        let miss = h.access(0x40, 8, false);
        let hit = h.access(0x40, 8, false);
        assert_eq!(
            miss,
            cfg.port_cycles(8) + cfg.l1_l2_transfer_cycles() + cfg.l2_dram_transfer_cycles()
        );
        assert_eq!(hit, cfg.port_cycles(8));
        assert_eq!(h.stats().l1_hits, 1);
        assert_eq!(h.stats().l2_misses, 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut h = Hierarchy::default();
        h.access(0x40, 1, false);
        assert_eq!(h.access(0x7F, 1, false), 1);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = Hierarchy::default();
        h.access(0x7C, 8, false);
        assert_eq!(h.stats().l1_misses, 2);
    }

    #[test]
    fn eviction_falls_back_to_l2() {
        let mut h = Hierarchy::default();
        let cfg = h.config();
        // Fill one L1 set beyond its ways with distinct tags.
        let stride = cfg.l1.line_bytes * cfg.l1.sets();
        for i in 0..=cfg.l1.ways {
            h.access(i * stride, 1, false);
        }
        // First address has been evicted from L1 but lives in L2.
        h.reset_stats();
        h.access(0, 1, false);
        assert_eq!(h.stats().l1_misses, 1);
        assert_eq!(h.stats().l2_hits, 1);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut h = Hierarchy::default();
        let cfg = h.config();
        let stride = cfg.l1.line_bytes * cfg.l1.sets();
        h.access(0, 8, true); // dirty line
        for i in 1..=cfg.l1.ways {
            h.access(i * stride, 1, false);
        }
        assert!(h.stats().writebacks >= 1);
        assert_eq!(
            h.stats().traffic.l1_l2.writeback_bytes,
            cfg.l1.line_bytes,
            "the dirty victim moved one L1 line down the L1<->L2 edge"
        );
    }

    #[test]
    fn dirty_l1_victim_is_written_back_to_l2() {
        // Line A is written (dirty) and then displaced from its 4-way L1
        // set while eight younger lines also crowd its 8-way L2 set. The
        // L1 eviction must *install* A into L2 — refreshing its LRU stamp
        // — so the revisit hits L2. Dropping the victim (the old bug)
        // instead lets L2 age A out, sending the revisit to DRAM.
        let mut h = Hierarchy::default();
        let cfg = h.config();
        // Same set in both levels: L2 sets are a multiple of L1 sets.
        let stride = cfg.l2.line_bytes * cfg.l2.sets();
        h.access(0, 8, true);
        for i in 1..=cfg.l2.ways {
            h.access(i * stride, 1, false);
        }
        h.reset_stats();
        h.access(0, 1, false);
        assert_eq!(h.stats().l1_misses, 1);
        assert_eq!(
            h.stats().l2_hits,
            1,
            "dirty L1 victim must be written back into L2, not dropped"
        );
        assert_eq!(h.stats().l2_misses, 0);
    }

    #[test]
    fn dirty_writeback_charges_cycles() {
        // Evicting a dirty line must cost more than evicting the same
        // line clean: the write-back transfer into L2 is charged.
        let cfg = HierarchyConfig::fpga_softcore();
        let stride = cfg.l1.line_bytes * cfg.l1.sets();
        let run = |dirty: bool| {
            let mut h = Hierarchy::new(cfg);
            h.access(0, 8, dirty);
            (1..=cfg.l1.ways)
                .map(|i| h.access(i * stride, 1, false))
                .sum::<u64>()
        };
        assert_eq!(run(true) - run(false), cfg.l1_l2_transfer_cycles());
    }

    #[test]
    fn l2_eviction_back_invalidates_l1_sublines() {
        // Narrow-line geometry: dirty a 16-byte L1 sub-line, then force
        // its containing 64-byte L2 line out. Inclusion must pull the
        // sub-line out of L1 (merging its bytes into the drain), so the
        // revisit goes to DRAM, not to a stale L1 hit.
        let mut h = Hierarchy::new(narrow_l1());
        let cfg = h.config();
        let l2_stride = cfg.l2.line_bytes * cfg.l2.sets();
        h.access(0, 8, true);
        for i in 1..=cfg.l2.ways {
            // Touch only the aliasing L2 set, not address 0's L1 set: use
            // a different 16-byte sub-line of each aliasing L2 line.
            h.access(i * l2_stride + 16, 1, false);
        }
        // Address 0's L2 line was evicted; its dirty L1 sub-line must have
        // been merged (one l1_l2 write-back) and drained sub-blocked: only
        // the one dirty 16-byte sector travels to DRAM, not the 64-byte
        // line.
        let t = h.stats().traffic;
        assert_eq!(t.l1_l2.writeback_bytes, cfg.l1.line_bytes);
        assert_eq!(t.l2_dram.writeback_bytes, cfg.l1.line_bytes);
        assert_eq!(t.l2_dram.writeback_lines, 1, "one dirty sector");
        h.reset_stats();
        h.access(0, 1, false);
        assert_eq!(h.stats().l1_misses, 1, "back-invalidation emptied L1");
        assert_eq!(h.stats().l2_misses, 1, "the line is gone from L2 too");
    }

    #[test]
    fn narrow_l1_line_fills_move_fewer_bytes() {
        // The Cap128 mechanism: a 16-byte store on a cold line moves a
        // 16-byte L1 line on the L1<->L2 edge instead of a 64-byte one
        // (the DRAM edge still moves whole L2 lines).
        let run = |cfg: HierarchyConfig| {
            let mut h = Hierarchy::new(cfg);
            h.access(0x1000, 16, true);
            h.stats().traffic
        };
        let wide = run(HierarchyConfig::fpga_softcore());
        let narrow = run(narrow_l1());
        assert_eq!(wide.l1_l2.fill_bytes, 64);
        assert_eq!(narrow.l1_l2.fill_bytes, 16);
        assert_eq!(wide.l2_dram.fill_bytes, narrow.l2_dram.fill_bytes);
    }

    #[test]
    fn zero_length_access_is_free() {
        let mut h = Hierarchy::default();
        assert_eq!(h.access(0x40, 0, true), 0);
        assert_eq!(h.access(0x40, 0, false), 0);
        let s = h.stats();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.l1_hits + s.l1_misses, 0);
    }

    #[test]
    fn access_at_the_top_of_the_address_space_terminates() {
        // The last line has no successor address; the walk must stop
        // rather than wrap to 0 and tour the whole space.
        let mut h = Hierarchy::default();
        h.access(u64::MAX - 4, 8, false);
        assert_eq!(h.stats().l1_misses, 1);
    }

    #[test]
    fn working_set_larger_than_l1_thrashes() {
        // The mechanism behind the Olden results: a pointer-chasing working
        // set that fits in L1 with 8-byte pointers but not with 32-byte
        // capabilities must show a worse hit rate.
        let run = |ptr_size: u64| {
            let mut h = Hierarchy::default();
            let nodes = 1024u64;
            for _ in 0..20 {
                for i in 0..nodes {
                    h.access(0x1_0000 + i * ptr_size * 3, ptr_size, false);
                }
            }
            h.stats().l1_hit_rate()
        };
        let narrow = run(8);
        let wide = run(32);
        assert!(
            narrow > wide,
            "8-byte pointers should hit more: {narrow} vs {wide}"
        );
    }

    #[test]
    fn flush_forgets_contents() {
        let mut h = Hierarchy::default();
        h.access(0x40, 8, true);
        h.flush();
        h.reset_stats();
        h.access(0x40, 8, false);
        assert_eq!(h.stats().l1_misses, 1);
    }

    #[test]
    fn stats_display_mentions_hits_and_traffic() {
        let mut h = Hierarchy::default();
        h.access(0, 1, false);
        h.access(0, 1, false);
        let s = h.stats().to_string();
        assert!(s.contains("L1"));
        assert!(s.contains("cycles"));
        assert!(s.contains("DRAM"));
    }

    /// Every traffic invariant the ledger promises, checked after an
    /// arbitrary access sequence on `cfg`.
    fn assert_traffic_conserves(h: &Hierarchy) {
        let cfg = h.config();
        let s = h.stats();
        let t = s.traffic;
        // Bytes are exactly lines × the edge's line size.
        assert_eq!(t.l1_l2.fill_bytes, t.l1_l2.fill_lines * cfg.l1.line_bytes);
        assert_eq!(
            t.l1_l2.writeback_bytes,
            t.l1_l2.writeback_lines * cfg.l1.line_bytes
        );
        assert_eq!(
            t.l2_dram.fill_bytes,
            t.l2_dram.fill_lines * cfg.l2.line_bytes
        );
        // DRAM write-backs are sub-blocked: they move dirty sectors of the
        // L1 line size.
        assert_eq!(
            t.l2_dram.writeback_bytes,
            t.l2_dram.writeback_lines * cfg.l1.line_bytes
        );
        // Demand accounting: every L1 miss is one L1 fill, every L2 miss
        // one DRAM fill.
        assert_eq!(t.l1_l2.fill_lines, s.l1_misses);
        assert_eq!(t.l2_dram.fill_lines, s.l2_misses);
        // A line must be filled before it can be written back (inclusion
        // makes this hold per edge, not just globally).
        assert!(t.l1_l2.writeback_bytes <= t.l1_l2.fill_bytes);
        assert!(t.l2_dram.writeback_bytes <= t.l2_dram.fill_bytes);
        // Cycles are bounded below by the bandwidth term of every edge.
        let bw_floor = t.l1_l2.total_bytes() / cfg.l2.bytes_per_cycle
            + t.l2_dram.total_bytes() / cfg.dram.bytes_per_cycle;
        assert!(
            s.cycles >= bw_floor,
            "cycles {} below bandwidth floor {}",
            s.cycles,
            bw_floor
        );
        // The legacy counter brackets the ledger: one event per L1
        // write-back plus one per drain (a drain moves >= 1 sector).
        assert!(s.writebacks >= t.l1_l2.writeback_lines);
        assert!(s.writebacks <= t.l1_l2.writeback_lines + t.l2_dram.writeback_lines);
    }

    proptest! {
        /// The hierarchy never charges less than a port access or more
        /// than a full miss per line touched, and cycle accounting matches
        /// stats — on the legacy 64-byte geometry and on the narrow-L1
        /// geometry alike.
        #[test]
        fn cycle_bounds(
            accesses in proptest::collection::vec((0u64..1 << 20, 1u64..64, any::<bool>()), 1..200),
            narrow in any::<bool>(),
        ) {
            let cfg = if narrow { narrow_l1() } else { HierarchyConfig::fpga_softcore() };
            let mut h = Hierarchy::new(cfg);
            let mut total = 0;
            for (addr, len, w) in accesses {
                let lines = {
                    let first = addr / cfg.l1.line_bytes;
                    let last = (addr + len - 1) / cfg.l1.line_bytes;
                    last - first + 1
                };
                let c = h.access(addr, len, w);
                total += c;
                prop_assert!(c >= lines * cfg.port_cycles(1));
                // Worst case per line: port + demand DRAM fill + L1 fill,
                // plus a dirty L1 victim write-back, plus an L2 eviction
                // that merges every dirty sub-line and drains.
                let sub = cfg.l2.line_bytes / cfg.l1.line_bytes;
                let worst = cfg.port_cycles(cfg.l1.line_bytes)
                    + (2 + sub) * cfg.l1_l2_transfer_cycles()
                    + 2 * cfg.l2_dram_transfer_cycles();
                prop_assert!(c <= lines * worst, "{c} > {lines} * {worst}");
            }
            prop_assert_eq!(h.stats().cycles, total);
            prop_assert_eq!(h.stats().l1_misses, h.stats().l2_hits + h.stats().l2_misses);
        }

        /// The per-edge ledger conserves: bytes = lines × line size, fills
        /// match demand misses, write-backs never exceed fills, and the
        /// bandwidth term lower-bounds the charged cycles.
        #[test]
        fn traffic_conserves(
            accesses in proptest::collection::vec((0u64..1 << 18, 1u64..64, any::<bool>()), 1..300),
            narrow in any::<bool>(),
        ) {
            let cfg = if narrow { narrow_l1() } else { HierarchyConfig::fpga_softcore() };
            let mut h = Hierarchy::new(cfg);
            for (addr, len, w) in accesses {
                h.access(addr, len, w);
            }
            assert_traffic_conserves(&h);
        }

        /// Repeating the same small working set converges to all-hits.
        #[test]
        fn small_working_set_converges(base in 0u64..1 << 16) {
            let mut h = Hierarchy::default();
            for _ in 0..3 {
                for i in 0..16u64 {
                    h.access(base + i * 64, 8, false);
                }
            }
            h.reset_stats();
            for i in 0..16u64 {
                h.access(base + i * 64, 8, false);
            }
            prop_assert_eq!(h.stats().l1_misses, 0);
        }
    }
}
