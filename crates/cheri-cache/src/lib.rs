//! A set-associative cache-hierarchy simulator.
//!
//! The paper's performance evaluation runs on a 100 MHz FPGA softcore with a
//! **16 KB L1 data cache and a 64 KB L2**, noting that "the DDR DRAM is
//! faster relative to the CPU speed, so cache misses are more common but
//! less costly than on most modern processors" (§5.2). The measured CHERI
//! overheads are dominated by the cache footprint of 256-bit capabilities
//! versus 64-bit integer pointers ("the performance difference ... is
//! primarily due to the larger pointers causing more cache misses").
//!
//! This crate reproduces that cost model: [`Hierarchy`] simulates a
//! two-level write-back, write-allocate, LRU cache in front of a flat
//! DRAM, charging configurable latencies per level. Dirty victims are
//! really written back: an L1 eviction installs the victim line into L2
//! (charging the L2 transfer), and a dirty L2 eviction drains to DRAM
//! (charging the DRAM penalty) — so simulated DRAM traffic reflects the
//! write-back stream, not just demand fills.
//!
//! # Example
//!
//! ```
//! use cheri_cache::{Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::fpga_softcore());
//! let cold = h.access(0x1000, 8, false);
//! let warm = h.access(0x1000, 8, false);
//! assert!(cold > warm); // second access hits in L1
//! assert_eq!(warm, 1);
//! ```

use std::fmt;

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero or non-dividing sizes).
    pub fn sets(&self) -> u64 {
        assert!(self.line_bytes > 0 && self.ways > 0);
        let lines = self.size_bytes / self.line_bytes;
        assert!(lines >= self.ways, "cache smaller than one set");
        lines / self.ways
    }
}

/// Configuration of the full hierarchy, including per-level hit latencies
/// (in cycles) and the DRAM access penalty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 cache geometry.
    pub l2: CacheConfig,
    /// Cycles for an L1 hit.
    pub l1_hit_cycles: u64,
    /// Additional cycles for an access served by L2.
    pub l2_hit_cycles: u64,
    /// Additional cycles for an access served by DRAM.
    pub dram_cycles: u64,
}

impl HierarchyConfig {
    /// The paper's FPGA softcore: 16 KB L1, 64 KB L2, 64-byte lines,
    /// 4-way, with DRAM "less costly than on most modern processors".
    pub fn fpga_softcore() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 16 * 1024,
                line_bytes: 64,
                ways: 4,
            },
            l2: CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                ways: 8,
            },
            l1_hit_cycles: 1,
            l2_hit_cycles: 9,
            dram_cycles: 30,
        }
    }

    /// A modern-desktop-like hierarchy for the substrate ablation bench
    /// (bigger caches, relatively slower DRAM).
    pub fn desktop() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 8,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                line_bytes: 64,
                ways: 8,
            },
            l1_hit_cycles: 1,
            l2_hit_cycles: 12,
            dram_cycles: 200,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig::fpga_softcore()
    }
}

/// Hit/miss counters for the whole hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses served by L1.
    pub l1_hits: u64,
    /// Accesses that missed L1.
    pub l1_misses: u64,
    /// L1 misses served by L2.
    pub l2_hits: u64,
    /// Accesses that went all the way to DRAM.
    pub l2_misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Total cycles charged by the hierarchy.
    pub cycles: u64,
}

impl CacheStats {
    /// L1 hit rate in `[0, 1]` (0 if no accesses).
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1 {}/{} hits ({:.1}%), L2 {} hits, {} DRAM, {} writebacks, {} cycles",
            self.l1_hits,
            self.l1_hits + self.l1_misses,
            100.0 * self.l1_hit_rate(),
            self.l2_hits,
            self.l2_misses,
            self.writebacks,
            self.cycles
        )
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

const EMPTY_LINE: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    stamp: 0,
};

#[derive(Clone, Debug)]
struct Level {
    cfg: CacheConfig,
    /// `nsets × ways` fixed line slots: `lines[set * ways .. +ways]`.
    lines: Box<[Line]>,
    clock: u64,
    /// Number of sets, precomputed.
    nsets: u64,
    /// Shift/mask fast path when line size and set count are powers of
    /// two (true for every shipped geometry); falls back to div/mod
    /// otherwise. Index math only — the cycle model is unaffected.
    line_shift: Option<u32>,
    set_shift: Option<u32>,
}

enum Lookup {
    Hit,
    /// Miss; the filled-in line evicted a dirty victim at this line
    /// address (reconstructed from the victim's tag and set).
    MissEvictedDirty(u64),
    Miss,
}

impl Level {
    fn new(cfg: CacheConfig) -> Level {
        let nsets = cfg.sets();
        Level {
            cfg,
            lines: vec![EMPTY_LINE; (nsets * cfg.ways) as usize].into_boxed_slice(),
            clock: 0,
            nsets,
            line_shift: cfg
                .line_bytes
                .is_power_of_two()
                .then(|| cfg.line_bytes.trailing_zeros()),
            set_shift: nsets.is_power_of_two().then(|| nsets.trailing_zeros()),
        }
    }

    /// `line_addr / line_bytes`, by shift when the geometry allows.
    fn line_index(&self, line_addr: u64) -> u64 {
        match self.line_shift {
            Some(s) => line_addr >> s,
            None => line_addr / self.cfg.line_bytes,
        }
    }

    /// Splits a line index into (set index, tag).
    fn set_and_tag(&self, line_idx: u64) -> (usize, u64) {
        match self.set_shift {
            Some(s) => ((line_idx & (self.nsets - 1)) as usize, line_idx >> s),
            None => ((line_idx % self.nsets) as usize, line_idx / self.nsets),
        }
    }

    /// Looks up the line containing `line_addr`, filling on miss (into a
    /// free way if one exists, else over the least-recently-used line).
    fn access(&mut self, line_addr: u64, write: bool) -> Lookup {
        self.clock += 1;
        let sets = self.nsets;
        let (set_idx, tag) = self.set_and_tag(self.line_index(line_addr));
        let ways = self.cfg.ways as usize;
        let set = &mut self.lines[set_idx * ways..(set_idx + 1) * ways];
        let mut free = None;
        let mut lru = 0;
        let mut lru_stamp = u64::MAX;
        for (i, l) in set.iter_mut().enumerate() {
            if l.valid {
                if l.tag == tag {
                    l.stamp = self.clock;
                    l.dirty |= write;
                    return Lookup::Hit;
                }
                if l.stamp < lru_stamp {
                    lru_stamp = l.stamp;
                    lru = i;
                }
            } else if free.is_none() {
                free = Some(i);
            }
        }
        let slot = free.unwrap_or(lru);
        let mut victim = None;
        if set[slot].valid && set[slot].dirty {
            // tag = addr / line / sets and set = (addr / line) % sets,
            // so the victim's line address reconstructs exactly.
            victim = Some((set[slot].tag * sets + set_idx as u64) * self.cfg.line_bytes);
        }
        set[slot] = Line {
            tag,
            valid: true,
            dirty: write,
            stamp: self.clock,
        };
        match victim {
            Some(addr) => Lookup::MissEvictedDirty(addr),
            None => Lookup::Miss,
        }
    }

    fn flush(&mut self) -> u64 {
        let mut dirty = 0;
        for l in self.lines.iter_mut() {
            dirty += u64::from(l.valid && l.dirty);
            *l = EMPTY_LINE;
        }
        dirty
    }
}

/// A two-level write-back, write-allocate cache hierarchy with LRU
/// replacement, charging cycles per access.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: Level,
    l2: Level,
    stats: CacheStats,
}

impl Hierarchy {
    /// Builds the hierarchy for `cfg`.
    pub fn new(cfg: HierarchyConfig) -> Hierarchy {
        Hierarchy {
            cfg,
            l1: Level::new(cfg.l1),
            l2: Level::new(cfg.l2),
            stats: CacheStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> HierarchyConfig {
        self.cfg
    }

    /// Simulates an access of `len` bytes at `addr` (split across lines as
    /// the hardware would), returning the cycles charged. Zero-length
    /// accesses (e.g. `memcpy(d, s, 0)`) touch no line and cost nothing.
    pub fn access(&mut self, addr: u64, len: u64, write: bool) -> u64 {
        if len == 0 {
            return 0;
        }
        let line = self.cfg.l1.line_bytes;
        let pow2 = line.is_power_of_two();
        let mut cycles = 0;
        let mut a = addr;
        let end = addr.saturating_add(len);
        while a < end {
            let line_addr = if pow2 {
                a & !(line - 1)
            } else {
                a / line * line
            };
            cycles += self.access_line(line_addr, write);
            // The last line of the address space has no successor; stepping
            // past it would wrap and walk the whole space again.
            match line_addr.checked_add(line) {
                Some(next) => a = next,
                None => break,
            }
        }
        self.stats.cycles += cycles;
        cycles
    }

    fn access_line(&mut self, line_addr: u64, write: bool) -> u64 {
        match self.l1.access(line_addr, write) {
            Lookup::Hit => {
                self.stats.l1_hits += 1;
                self.cfg.l1_hit_cycles
            }
            miss => {
                self.stats.l1_misses += 1;
                // Service the demand miss first, then drain the victim.
                let mut cycles = match self.l2.access(line_addr, write) {
                    Lookup::Hit => {
                        self.stats.l2_hits += 1;
                        self.cfg.l1_hit_cycles + self.cfg.l2_hit_cycles
                    }
                    l2miss => {
                        self.stats.l2_misses += 1;
                        let mut c =
                            self.cfg.l1_hit_cycles + self.cfg.l2_hit_cycles + self.cfg.dram_cycles;
                        if matches!(l2miss, Lookup::MissEvictedDirty(_)) {
                            // The demand fill displaced a dirty L2 line;
                            // its data goes back to DRAM.
                            self.stats.writebacks += 1;
                            c += self.cfg.dram_cycles;
                        }
                        c
                    }
                };
                if let Lookup::MissEvictedDirty(victim) = miss {
                    // Write the dirty L1 victim back into L2 (allocating
                    // its line there — no DRAM fetch is needed, the whole
                    // line travels down). If that install itself displaces
                    // a dirty L2 line, that one drains to DRAM.
                    self.stats.writebacks += 1;
                    cycles += self.cfg.l2_hit_cycles;
                    if let Lookup::MissEvictedDirty(_) = self.l2.access(victim, true) {
                        self.stats.writebacks += 1;
                        cycles += self.cfg.dram_cycles;
                    }
                }
                cycles
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Empties both levels (counting dirty lines as writebacks) and keeps
    /// statistics. Used between benchmark phases.
    pub fn flush(&mut self) {
        self.stats.writebacks += self.l1.flush() + self.l2.flush();
    }

    /// Resets statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

impl Default for Hierarchy {
    fn default() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn geometry_is_sane() {
        let cfg = HierarchyConfig::fpga_softcore();
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l2.sets(), 128);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut h = Hierarchy::default();
        let miss = h.access(0x40, 8, false);
        let hit = h.access(0x40, 8, false);
        assert_eq!(
            miss,
            h.config().l1_hit_cycles + h.config().l2_hit_cycles + h.config().dram_cycles
        );
        assert_eq!(hit, h.config().l1_hit_cycles);
        assert_eq!(h.stats().l1_hits, 1);
        assert_eq!(h.stats().l2_misses, 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut h = Hierarchy::default();
        h.access(0x40, 1, false);
        assert_eq!(h.access(0x7F, 1, false), 1);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = Hierarchy::default();
        h.access(0x7C, 8, false);
        assert_eq!(h.stats().l1_misses, 2);
    }

    #[test]
    fn eviction_falls_back_to_l2() {
        let mut h = Hierarchy::default();
        let cfg = h.config();
        // Fill one L1 set beyond its ways with distinct tags.
        let stride = cfg.l1.line_bytes * cfg.l1.sets();
        for i in 0..=cfg.l1.ways {
            h.access(i * stride, 1, false);
        }
        // First address has been evicted from L1 but lives in L2.
        h.reset_stats();
        h.access(0, 1, false);
        assert_eq!(h.stats().l1_misses, 1);
        assert_eq!(h.stats().l2_hits, 1);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut h = Hierarchy::default();
        let cfg = h.config();
        let stride = cfg.l1.line_bytes * cfg.l1.sets();
        h.access(0, 8, true); // dirty line
        for i in 1..=cfg.l1.ways {
            h.access(i * stride, 1, false);
        }
        assert!(h.stats().writebacks >= 1);
    }

    #[test]
    fn dirty_l1_victim_is_written_back_to_l2() {
        // Line A is written (dirty) and then displaced from its 4-way L1
        // set while eight younger lines also crowd its 8-way L2 set. The
        // L1 eviction must *install* A into L2 — refreshing its LRU stamp
        // — so the revisit hits L2. Dropping the victim (the old bug)
        // instead lets L2 age A out, sending the revisit to DRAM.
        let mut h = Hierarchy::default();
        let cfg = h.config();
        // Same set in both levels: L2 sets are a multiple of L1 sets.
        let stride = cfg.l2.line_bytes * cfg.l2.sets();
        h.access(0, 8, true);
        for i in 1..=cfg.l2.ways {
            h.access(i * stride, 1, false);
        }
        h.reset_stats();
        h.access(0, 1, false);
        assert_eq!(h.stats().l1_misses, 1);
        assert_eq!(
            h.stats().l2_hits,
            1,
            "dirty L1 victim must be written back into L2, not dropped"
        );
        assert_eq!(h.stats().l2_misses, 0);
    }

    #[test]
    fn dirty_writeback_charges_cycles() {
        // Evicting a dirty line must cost more than evicting the same
        // line clean: the write-back transfer into L2 is charged.
        let cfg = HierarchyConfig::fpga_softcore();
        let stride = cfg.l1.line_bytes * cfg.l1.sets();
        let run = |dirty: bool| {
            let mut h = Hierarchy::new(cfg);
            h.access(0, 8, dirty);
            (1..=cfg.l1.ways)
                .map(|i| h.access(i * stride, 1, false))
                .sum::<u64>()
        };
        assert_eq!(run(true) - run(false), cfg.l2_hit_cycles);
    }

    #[test]
    fn zero_length_access_is_free() {
        let mut h = Hierarchy::default();
        assert_eq!(h.access(0x40, 0, true), 0);
        assert_eq!(h.access(0x40, 0, false), 0);
        let s = h.stats();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.l1_hits + s.l1_misses, 0);
    }

    #[test]
    fn access_at_the_top_of_the_address_space_terminates() {
        // The last line has no successor address; the walk must stop
        // rather than wrap to 0 and tour the whole space.
        let mut h = Hierarchy::default();
        h.access(u64::MAX - 4, 8, false);
        assert_eq!(h.stats().l1_misses, 1);
    }

    #[test]
    fn working_set_larger_than_l1_thrashes() {
        // The mechanism behind the Olden results: a pointer-chasing working
        // set that fits in L1 with 8-byte pointers but not with 32-byte
        // capabilities must show a worse hit rate.
        let run = |ptr_size: u64| {
            let mut h = Hierarchy::default();
            let nodes = 1024u64;
            for _ in 0..20 {
                for i in 0..nodes {
                    h.access(0x1_0000 + i * ptr_size * 3, ptr_size, false);
                }
            }
            h.stats().l1_hit_rate()
        };
        let narrow = run(8);
        let wide = run(32);
        assert!(
            narrow > wide,
            "8-byte pointers should hit more: {narrow} vs {wide}"
        );
    }

    #[test]
    fn flush_forgets_contents() {
        let mut h = Hierarchy::default();
        h.access(0x40, 8, true);
        h.flush();
        h.reset_stats();
        h.access(0x40, 8, false);
        assert_eq!(h.stats().l1_misses, 1);
    }

    #[test]
    fn stats_display_mentions_hits() {
        let mut h = Hierarchy::default();
        h.access(0, 1, false);
        h.access(0, 1, false);
        let s = h.stats().to_string();
        assert!(s.contains("L1"));
        assert!(s.contains("cycles"));
    }

    proptest! {
        /// The hierarchy never charges less than an L1 hit or more than a
        /// full miss per line touched, and cycle accounting matches stats.
        #[test]
        fn cycle_bounds(accesses in proptest::collection::vec((0u64..1 << 20, 1u64..64, any::<bool>()), 1..200)) {
            let mut h = Hierarchy::default();
            let cfg = h.config();
            let mut total = 0;
            for (addr, len, w) in accesses {
                let lines = {
                    let first = addr / cfg.l1.line_bytes;
                    let last = (addr + len - 1) / cfg.l1.line_bytes;
                    last - first + 1
                };
                let c = h.access(addr, len, w);
                total += c;
                prop_assert!(c >= lines * cfg.l1_hit_cycles);
                // Worst case per line: full demand miss, plus a dirty L2
                // victim of the demand fill (DRAM), plus the dirty L1
                // victim's write-back into L2 whose install displaces
                // another dirty L2 line (L2 transfer + DRAM).
                let worst = cfg.l1_hit_cycles + 2 * cfg.l2_hit_cycles + 3 * cfg.dram_cycles;
                prop_assert!(c <= lines * worst);
            }
            prop_assert_eq!(h.stats().cycles, total);
            prop_assert_eq!(h.stats().l1_hits + h.stats().l1_misses,
                            h.stats().l1_hits + h.stats().l2_hits + h.stats().l2_misses);
        }

        /// Repeating the same small working set converges to all-hits.
        #[test]
        fn small_working_set_converges(base in 0u64..1 << 16) {
            let mut h = Hierarchy::default();
            for _ in 0..3 {
                for i in 0..16u64 {
                    h.access(base + i * 64, 8, false);
                }
            }
            h.reset_stats();
            for i in 0..16u64 {
                h.access(base + i * 64, 8, false);
            }
            prop_assert_eq!(h.stats().l1_misses, 0);
        }
    }
}
