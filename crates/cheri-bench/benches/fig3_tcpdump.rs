//! Criterion bench behind Figure 3: tcpdump-lite under MIPS and CHERIv3.
use cheri_bench::run_or_panic;
use cheri_compile::Abi;
use cheri_workloads::{inputs, sources};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let trace = inputs::packet_trace(500, 61106);
    let base = sources::tcpdump_baseline();
    let v2 = sources::tcpdump_cheriv2();
    let mut g = c.benchmark_group("fig3_tcpdump");
    g.sample_size(10);
    g.bench_function("MIPS", |b| {
        b.iter(|| run_or_panic("tcpdump", &base, Abi::Mips, &[("trace", &trace)]))
    });
    g.bench_function("CHERIv2_ported", |b| {
        b.iter(|| run_or_panic("tcpdump", &v2, Abi::CheriV2, &[("trace", &trace)]))
    });
    g.bench_function("CHERIv3", |b| {
        b.iter(|| run_or_panic("tcpdump", &base, Abi::CheriV3, &[("trace", &trace)]))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
