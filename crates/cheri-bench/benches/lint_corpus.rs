//! Criterion bench pinning `cheri-lint`'s analyzer throughput over the
//! synthetic corpus: parse+lint of one small package, the full 13-package
//! corpus, and a functions-per-second figure for the ablation record.
use cheri_idioms::corpus;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn bench(c: &mut Criterion) {
    let spec = corpus::paper_packages().remove(11); // zlib: small
    let package = corpus::generate_package(&spec, 7);
    let unit = cheri_c::parse(&package.source).unwrap();

    // Throughput headline: functions analyzed per second over the whole
    // corpus (the lint re-runs per function, so funcs/sec is the natural
    // unit for the ablation table).
    let corpus_units: Vec<_> = corpus::generate_corpus(2026)
        .into_iter()
        .map(|pkg| cheri_c::parse(&pkg.source).unwrap())
        .collect();
    let funcs: usize = corpus_units
        .iter()
        .map(|u| cheri_lint::analyze(u).funcs.len())
        .sum();
    let t0 = Instant::now();
    for u in &corpus_units {
        let _ = cheri_lint::analyze(u);
    }
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "lint_corpus throughput: {funcs} funcs in {secs:.3}s = {:.0} funcs/sec",
        funcs as f64 / secs
    );

    let mut g = c.benchmark_group("lint_corpus");
    g.bench_function("lint_zlib_package", |b| {
        b.iter(|| cheri_lint::analyze(&unit))
    });
    g.bench_function("lint_full_corpus", |b| {
        b.iter(|| {
            corpus_units
                .iter()
                .map(|u| cheri_lint::analyze(u).findings.len())
                .sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
