//! Criterion bench behind Figure 1: Olden treeadd under each ABI
//! (compile + run on the FPGA-modelled machine).
use cheri_bench::run_or_panic;
use cheri_compile::Abi;
use cheri_workloads::sources;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let src = sources::treeadd(8, 2);
    let mut g = c.benchmark_group("fig1_olden");
    g.sample_size(10);
    for abi in Abi::ALL {
        g.bench_function(abi.name(), |b| {
            b.iter(|| run_or_panic("treeadd", &src, abi, &[]))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
