//! Ablation benches for the design choices DESIGN.md calls out:
//! * capability operation microcosts (inc_offset vs inc_base vs checks);
//! * tagged-memory store-clears-tag bookkeeping;
//! * cache-hierarchy geometry (FPGA-like vs desktop-like);
//! * 128-bit compressed capabilities (low-fat) compress/decompress, the
//!   representability rate over allocator outputs, and 128-bit vs 256-bit
//!   capability stores through tagged memory;
//! * the VM fetch path: straight-line execution rides the cached PCC
//!   window, so this measures the per-instruction dispatch floor.
use cheri_cache::{Hierarchy, HierarchyConfig};
use cheri_cap::{CapFormat, Capability, CompressedCapability, CompressionStats, Perms};
use cheri_isa::{Instr, Op, Program};
use cheri_mem::{Allocator, TaggedMemory, UnrepresentablePolicy};
use cheri_vm::{BackendKind, OptLevel, Vm, VmConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// A straight-line program: `n` add-immediates, then exit — nothing but
/// fetch + dispatch, the floor the PCC run cache lowers. Under block
/// dispatch this is one giant superinstruction.
fn straight_line(n: usize) -> Program {
    let mut p = Program::new();
    p.code = vec![Instr::i2(Op::Addiu, 8, 8, 1); n];
    p.code.push(Instr::li(4, 0));
    p.code.push(Instr::syscall(0));
    p
}

/// A counted loop entered ~`n` times: each iteration re-dispatches one
/// small cached block (addiu / slt / bne), so this measures the
/// superinstruction layer's per-block-entry overhead rather than the
/// per-op floor.
fn counted_loop(n: i32) -> Program {
    let mut p = Program::new();
    p.code = vec![
        Instr::li(8, 0),
        Instr::li(9, n),
        Instr::i2(Op::Addiu, 8, 8, 1),    // 2: i += 1
        Instr::r3(Op::Slt, 10, 8, 9),     // 3: t = i < n
        Instr::new(Op::Bne, 0, 10, 0, 2), // 4: loop while t
        Instr::li(4, 0),
        Instr::syscall(0),
    ];
    p
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_substrate");

    // The two legacy dispatch benches stay pinned to the reference
    // backend with the optimizer off, so their numbers remain comparable
    // across PRs; the backend ladder is measured separately below.
    let reference = VmConfig::functional()
        .with_backend(BackendKind::Reference)
        .with_opt_level(OptLevel::None);
    let prog = straight_line(4096);
    g.bench_function("vm_fetch_straight_line_4k", |b| {
        b.iter(|| {
            let mut vm = Vm::new(prog.clone(), reference);
            let status = vm.run(1 << 20).unwrap();
            assert_eq!(status.stats.fetch_checks, 1);
            status.stats.instret
        })
    });

    let loop_prog = counted_loop(4096);
    g.bench_function("vm_superinstruction_4k", |b| {
        b.iter(|| {
            let mut vm = Vm::new(loop_prog.clone(), reference);
            let status = vm.run(1 << 20).unwrap();
            assert_eq!(status.stats.fetch_checks, 1);
            status.stats.instret
        })
    });

    // The backend ladder on the same counted loop: chaining removes the
    // per-iteration dispatch lookup, the template tier removes the
    // per-op decode match, and the native tier removes the per-op call
    // through a closure by emitting the block as host machine code. All
    // run the peephole pass (the default), so the loop body is also
    // compare-and-branch fused.
    for (name, backend) in [
        ("vm_block_chained_4k", BackendKind::Chained),
        ("vm_template_backend_4k", BackendKind::Template),
        ("vm_native_backend_4k", BackendKind::Native),
    ] {
        let cfg = VmConfig::functional()
            .with_backend(backend)
            .with_opt_level(OptLevel::Peephole);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut vm = Vm::new(loop_prog.clone(), cfg);
                let status = vm.run(1 << 20).unwrap();
                assert_eq!(status.stats.fetch_checks, 1);
                status.stats.instret
            })
        });
    }

    let cap = Capability::new_mem(0x1000, 0x1000, Perms::data());
    g.bench_function("cap_inc_offset", |b| {
        b.iter(|| black_box(cap).inc_offset(black_box(8)).unwrap())
    });
    g.bench_function("cap_inc_base", |b| {
        b.iter(|| black_box(cap).inc_base(black_box(8)).unwrap())
    });
    g.bench_function("cap_check_access", |b| {
        b.iter(|| black_box(cap).check_access(8, Perms::LOAD).unwrap())
    });
    g.bench_function("cap_compress_roundtrip", |b| {
        b.iter(|| CompressedCapability::compress(&black_box(cap)).map(|z| z.decompress()))
    });

    g.bench_function("compression_rate_over_allocs", |b| {
        b.iter(|| {
            let mut heap = Allocator::new(0x1_0000, 1 << 20);
            let mut stats = CompressionStats::default();
            for i in 1..200u64 {
                if let Ok(cp) = heap.alloc_cap(i * 7 % 512 + 1, Perms::data()) {
                    stats.try_compress(&cp);
                }
            }
            stats.success_rate()
        })
    });

    g.bench_function("tagged_store_clears_tag", |b| {
        let mut mem = TaggedMemory::new(1 << 16);
        mem.write_cap(0x40, &cap).unwrap();
        b.iter(|| {
            mem.write_cap(0x40, &cap).unwrap();
            mem.write_u64(0x48, 1).unwrap();
            mem.tag_at(0x40).unwrap()
        })
    });

    for (name, format) in [
        ("cap_store_load_256", CapFormat::Cap256),
        ("cap_store_load_128", CapFormat::Cap128),
    ] {
        g.bench_function(name, |b| {
            let mut mem =
                TaggedMemory::with_format(1 << 16, format, UnrepresentablePolicy::SideTable);
            b.iter(|| {
                mem.write_cap(0x40, &cap).unwrap();
                mem.read_cap(0x40).unwrap()
            })
        });
    }

    for (name, cfg) in [
        ("cache_fpga", HierarchyConfig::fpga_softcore()),
        (
            "cache_fpga_16b_line",
            HierarchyConfig::fpga_softcore().with_l1_line_bytes(16),
        ),
        ("cache_desktop", HierarchyConfig::desktop()),
    ] {
        g.bench_function(name, |b| {
            let mut h = Hierarchy::new(cfg);
            let mut a = 0u64;
            b.iter(|| {
                a = (a + 4097) & 0xF_FFFF;
                h.access(a, 8, a % 3 == 0)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
