//! Ablation benches for the design choices DESIGN.md calls out:
//! * capability operation microcosts (inc_offset vs inc_base vs checks);
//! * tagged-memory store-clears-tag bookkeeping;
//! * cache-hierarchy geometry (FPGA-like vs desktop-like);
//! * 128-bit compressed capabilities (low-fat) compress/decompress and
//!   the representability rate over allocator outputs.
use cheri_cache::{Hierarchy, HierarchyConfig};
use cheri_cap::{Capability, CompressedCapability, CompressionStats, Perms};
use cheri_mem::{Allocator, TaggedMemory};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_substrate");

    let cap = Capability::new_mem(0x1000, 0x1000, Perms::data());
    g.bench_function("cap_inc_offset", |b| {
        b.iter(|| black_box(cap).inc_offset(black_box(8)).unwrap())
    });
    g.bench_function("cap_inc_base", |b| {
        b.iter(|| black_box(cap).inc_base(black_box(8)).unwrap())
    });
    g.bench_function("cap_check_access", |b| {
        b.iter(|| black_box(cap).check_access(8, Perms::LOAD).unwrap())
    });
    g.bench_function("cap_compress_roundtrip", |b| {
        b.iter(|| CompressedCapability::compress(&black_box(cap)).map(|z| z.decompress()))
    });

    g.bench_function("compression_rate_over_allocs", |b| {
        b.iter(|| {
            let mut heap = Allocator::new(0x1_0000, 1 << 20);
            let mut stats = CompressionStats::default();
            for i in 1..200u64 {
                if let Ok(cp) = heap.alloc_cap(i * 7 % 512 + 1, Perms::data()) {
                    stats.try_compress(&cp);
                }
            }
            stats.success_rate()
        })
    });

    g.bench_function("tagged_store_clears_tag", |b| {
        let mut mem = TaggedMemory::new(1 << 16);
        mem.write_cap(0x40, &cap).unwrap();
        b.iter(|| {
            mem.write_cap(0x40, &cap).unwrap();
            mem.write_u64(0x48, 1).unwrap();
            mem.tag_at(0x40).unwrap()
        })
    });

    for (name, cfg) in [
        ("cache_fpga", HierarchyConfig::fpga_softcore()),
        ("cache_desktop", HierarchyConfig::desktop()),
    ] {
        g.bench_function(name, |b| {
            let mut h = Hierarchy::new(cfg);
            let mut a = 0u64;
            b.iter(|| {
                a = (a + 4097) & 0xF_FFFF;
                h.access(a, 8, a % 3 == 0)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
