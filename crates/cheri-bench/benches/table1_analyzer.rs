//! Criterion bench for the Table 1 machinery: corpus generation plus
//! static analysis of one package.
use cheri_idioms::{analyzer, corpus};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let spec = corpus::paper_packages().remove(11); // zlib: small
    let package = corpus::generate_package(&spec, 7);
    let unit = cheri_c::parse(&package.source).unwrap();
    let mut g = c.benchmark_group("table1_analyzer");
    g.bench_function("generate_zlib_package", |b| {
        b.iter(|| corpus::generate_package(&spec, 7))
    });
    g.bench_function("analyze_zlib_package", |b| {
        b.iter(|| analyzer::analyze(&unit))
    });
    g.bench_function("table1_rows_corpus", |b| {
        b.iter(|| cheri_bench::table1_rows(2026))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
