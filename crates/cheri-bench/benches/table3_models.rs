//! Criterion bench for the Table 3 machinery: running one idiom case under
//! each memory model in the abstract-machine interpreter.
use cheri_idioms::{cases, Idiom};
use cheri_interp::ModelKind;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_models");
    for model in ModelKind::ALL {
        g.bench_function(model.display_name(), |b| {
            b.iter(|| {
                let _ = cases::run_case(model, Idiom::Sub);
                let _ = cases::run_case(model, Idiom::IA);
            })
        });
    }
    g.bench_function("full_matrix", |b| b.iter(cases::run_matrix));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
