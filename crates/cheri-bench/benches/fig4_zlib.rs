//! Criterion bench behind Figure 4: zlib-lite, plain vs boundary-copying.
use cheri_bench::run_or_panic;
use cheri_compile::Abi;
use cheri_workloads::{inputs, sources};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let size = 8192u32;
    let file = inputs::compressible_file(size as usize, 61106);
    let plain = sources::zlib(size, false);
    let copying = sources::zlib(size, true);
    let mut g = c.benchmark_group("fig4_zlib");
    g.sample_size(10);
    g.bench_function("MIPS", |b| {
        b.iter(|| run_or_panic("zlib", &plain, Abi::Mips, &[("input", &file)]))
    });
    g.bench_function("CHERI", |b| {
        b.iter(|| run_or_panic("zlib", &plain, Abi::CheriV3, &[("input", &file)]))
    });
    g.bench_function("CHERI_copying", |b| {
        b.iter(|| run_or_panic("zlib", &copying, Abi::CheriV3, &[("input", &file)]))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
