//! Criterion bench behind Figure 2: Dhrystone under each ABI.
use cheri_bench::run_or_panic;
use cheri_compile::Abi;
use cheri_workloads::sources;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let src = sources::dhrystone(200);
    let mut g = c.benchmark_group("fig2_dhrystone");
    g.sample_size(10);
    for abi in Abi::ALL {
        g.bench_function(abi.name(), |b| {
            b.iter(|| run_or_panic("dhrystone", &src, abi, &[]))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
