//! Regenerates Figure 2: Dhrystone iterations/second under the three ABIs.
fn main() {
    let runs: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let pts = cheri_bench::fig2_points(runs);
    print!(
        "{}",
        cheri_bench::render_abi_points("Figure 2: Dhrystone results (bigger is better)", &pts)
    );
    for p in &pts {
        let per_sec = runs as f64 / p.outcome.seconds_at_100mhz();
        println!("{:<10} {:>12.0} dhrystones/second", p.abi.name(), per_sec);
    }
}
