//! Regenerates Figure 4: zlib overhead vs file size, two CHERI configs.
//!
//! Usage: `fig4 [backend]` where `backend` is one of `reference`,
//! `chained`, `template` or `native` (default: the machine default,
//! template). Simulated cycles are backend-invariant; the choice only
//! changes host wall-clock time. An unknown backend name prints the
//! valid names and exits non-zero.
fn main() {
    let mut args = std::env::args().skip(1);
    if let Some(name) = args.next() {
        cheri_bench::select_backend(cheri_bench::backend_arg(&name));
    }
    let sizes: Vec<u32> = vec![1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17];
    let pts = cheri_bench::fig4_points(&sizes, 61106);
    print!("{}", cheri_bench::render_fig4(&pts));
}
