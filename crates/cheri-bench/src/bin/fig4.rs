//! Regenerates Figure 4: zlib overhead vs file size, two CHERI configs.
fn main() {
    let sizes: Vec<u32> = vec![1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17];
    let pts = cheri_bench::fig4_points(&sizes, 61106);
    print!("{}", cheri_bench::render_fig4(&pts));
}
