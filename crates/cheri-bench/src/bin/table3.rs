//! Regenerates Table 3: idiom support per memory model, measured live.
fn main() {
    print!("{}", cheri_bench::table3_report());
}
