//! Regenerates Table 3: idiom support per memory model, measured live,
//! followed by the static companion matrix (dynamic verdict next to
//! `cheri-lint`'s prediction, with the false-warn rate).
fn main() {
    print!("{}", cheri_bench::table3_report());
    println!();
    print!("{}", cheri_bench::table3_static_report());
}
