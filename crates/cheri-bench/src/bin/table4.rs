//! Regenerates Table 4: porting effort (annotation vs semantic lines),
//! plus the capability-memory ablation (256-bit vs 128-bit in-memory
//! capabilities: footprint, representability, simulated cycles).
fn main() {
    print!("{}", cheri_bench::table4_report());
    print!("{}", cheri_bench::cap_memory_report());
}
