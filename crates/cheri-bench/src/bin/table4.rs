//! Regenerates Table 4: porting effort (annotation vs semantic lines),
//! plus the capability-memory ablation (256-bit vs 128-bit in-memory
//! capabilities: footprint, representability, simulated cycles) and the
//! DRAM-traffic report (per-edge bytes under the bandwidth-aware cache
//! model, both formats, 64B and 16B L1 lines).
fn main() {
    print!("{}", cheri_bench::table4_report());
    print!("{}", cheri_bench::cap_memory_report());
    print!("{}", cheri_bench::cap_traffic_report());
}
