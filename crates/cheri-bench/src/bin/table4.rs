//! Regenerates Table 4: porting effort (annotation vs semantic lines).
fn main() {
    print!("{}", cheri_bench::table4_report());
}
