//! Regenerates Table 4: porting effort (annotation vs semantic lines),
//! plus the capability-memory ablation (256-bit vs 128-bit in-memory
//! capabilities: footprint, representability, simulated cycles) and the
//! DRAM-traffic report (per-edge bytes under the bandwidth-aware cache
//! model, both formats, 64B and 16B L1 lines).
//!
//! Usage: `table4 [backend] [contention]` where `backend` is one of
//! `reference`, `chained`, `template` or `native` (default: the machine
//! default, template). Simulated cycles are backend-invariant; the choice
//! only changes host wall-clock time. Passing the literal word
//! `contention` appends the shared-L2 multi-core contention report
//! (1/2/4/8 cores, both formats). An unknown backend name prints the
//! valid names and exits non-zero.
fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let contention = raw.iter().any(|a| a == "contention");
    if let Some(name) = raw.iter().find(|a| *a != "contention") {
        cheri_bench::select_backend(cheri_bench::backend_arg(name));
    }
    print!("{}", cheri_bench::table4_report());
    print!("{}", cheri_bench::cap_memory_report());
    print!("{}", cheri_bench::cap_traffic_report());
    if contention {
        print!("{}", cheri_bench::contention_report());
    }
}
