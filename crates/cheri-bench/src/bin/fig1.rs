//! Regenerates Figure 1: Olden runtimes under the three ABIs.
//!
//! Usage: `fig1 [scale] [backend] [fetch]` where `backend` is
//! `reference`, `chained` or `template` (default: the machine default,
//! template). Simulated cycles are backend-invariant; the choice only
//! changes host wall-clock time. Passing the literal word `fetch` turns
//! on per-block instruction-fetch charging (a new cycle era; columns
//! gain the fetch share).
fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "fetch") {
        cheri_bench::select_fetch_charging(true);
    }
    let mut args = raw.into_iter().filter(|a| a != "fetch");
    let scale = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    if let Some(name) = args.next() {
        let kind = cheri_vm::BackendKind::from_name(&name)
            .unwrap_or_else(|| panic!("unknown backend {name:?} (reference|chained|template)"));
        cheri_bench::select_backend(kind);
    }
    let pts = cheri_bench::fig1_points(scale);
    print!(
        "{}",
        cheri_bench::render_abi_points("Figure 1: Olden results (smaller is better)", &pts)
    );
}
