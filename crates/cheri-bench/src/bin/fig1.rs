//! Regenerates Figure 1: Olden runtimes under the three ABIs.
fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let pts = cheri_bench::fig1_points(scale);
    print!(
        "{}",
        cheri_bench::render_abi_points("Figure 1: Olden results (smaller is better)", &pts)
    );
}
