//! Regenerates Figure 1: Olden runtimes under the three ABIs.
//!
//! Usage: `fig1 [scale] [backend] [fetch]` where `backend` is one of
//! `reference`, `chained`, `template` or `native` (default: the machine
//! default, template). Simulated cycles are backend-invariant; the choice
//! only changes host wall-clock time. Passing the literal word `fetch`
//! turns on per-block instruction-fetch charging (a new cycle era;
//! columns gain the fetch share). An unknown backend name prints the
//! valid names and exits non-zero.
fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "fetch") {
        cheri_bench::select_fetch_charging(true);
    }
    let mut args = raw.into_iter().filter(|a| a != "fetch").peekable();
    let scale: u32 = match args.peek().and_then(|s| s.parse().ok()) {
        Some(n) => {
            args.next();
            n
        }
        None => 4,
    };
    if let Some(name) = args.next() {
        cheri_bench::select_backend(cheri_bench::backend_arg(&name));
    }
    let pts = cheri_bench::fig1_points(scale);
    print!(
        "{}",
        cheri_bench::render_abi_points("Figure 1: Olden results (smaller is better)", &pts)
    );
}
