//! Regenerates Table 2: the CHERIv3 instructions, from ISA metadata.
fn main() {
    print!("{}", cheri_bench::table2_report());
}
