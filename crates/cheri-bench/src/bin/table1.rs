//! Regenerates Table 1: idiom counts over the (synthetic) corpus.
//! With `--lines`, prints the per-idiom source locations instead (the
//! flow-sensitive lint's attribution of every count).
fn main() {
    if std::env::args().any(|a| a == "--lines") {
        print!("{}", cheri_bench::table1_lines_report(2026));
    } else {
        print!("{}", cheri_bench::table1_report(2026));
    }
}
