//! Regenerates Table 1: idiom counts over the (synthetic) corpus.
fn main() {
    print!("{}", cheri_bench::table1_report(2026));
}
