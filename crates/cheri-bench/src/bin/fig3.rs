//! Regenerates Figure 3: tcpdump trace-processing time under the three ABIs.
fn main() {
    let packets: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let pts = cheri_bench::fig3_points(packets, 61106);
    print!(
        "{}",
        cheri_bench::render_abi_points("Figure 3: tcpdump results (smaller is better)", &pts)
    );
}
