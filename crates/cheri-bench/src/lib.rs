//! The evaluation harness: regenerates every table and figure of the paper.
//!
//! Each `table*`/`fig*` function returns structured data plus a rendered
//! report; the `src/bin` binaries print them, the Criterion benches in
//! `benches/` time the underlying machinery, and EXPERIMENTS.md records
//! paper-vs-measured.
//!
//! Scale note: the emulator runs the same *workload shapes* as the paper at
//! reduced sizes (the FPGA ran for seconds; an interpreted ISA does not
//! need to). All comparisons are therefore reported as MIPS-relative
//! ratios, which is also how the paper's conclusions are stated.

use cheri_cap::{CapFormat, CompressionStats, Perms};
use cheri_compile::{compile, Abi};
use cheri_idioms::{analyzer, cases, corpus, pitfalls, Idiom};
use cheri_interp::ModelKind;
use cheri_mem::Allocator;
use cheri_vm::{BackendKind, Vm, VmConfig};
use cheri_workloads::runner::{run_workload, RunOutcome};
use cheri_workloads::{inputs, porting, sources};
use std::sync::OnceLock;

/// Fuel budget for harness runs.
pub const FUEL: u64 = 20_000_000_000;

static BACKEND: OnceLock<BackendKind> = OnceLock::new();
static FETCH_CHARGING: OnceLock<bool> = OnceLock::new();

/// Selects the execution backend every figure/table driver runs on; the
/// figure binaries call this with their optional trailing argument
/// (`fig1 2 reference`). First call wins; the default is the machine
/// default (the template tier). Simulated results are backend-invariant —
/// this only changes how long the harness takes on the host.
pub fn select_backend(kind: BackendKind) {
    let _ = BACKEND.set(kind);
}

/// Turns per-block instruction-fetch charging on for every figure/table
/// driver (the figure binaries call this when passed the literal word
/// `fetch`). First call wins; the default is off — fetch charging starts
/// a new cycle-comparability era (see ROADMAP's bench discipline note),
/// so it never contaminates default runs.
pub fn select_fetch_charging(on: bool) {
    let _ = FETCH_CHARGING.set(on);
}

/// Resolves a backend name from the command line, or prints the valid
/// names (from [`BackendKind::ALL`]) and exits non-zero. The figure/table
/// binaries all route their backend argument through here, so a typo
/// (`fig1 1 natve`) fails loudly instead of being silently ignored.
pub fn backend_arg(name: &str) -> BackendKind {
    BackendKind::from_name(name).unwrap_or_else(|| {
        let names: Vec<&str> = BackendKind::ALL.iter().map(|k| k.name()).collect();
        eprintln!(
            "unknown backend {name:?}; valid backends: {}",
            names.join("|")
        );
        std::process::exit(2);
    })
}

/// The FPGA-like machine every driver measures on, under the selected
/// execution backend and fetch-charging mode.
pub fn machine_config() -> VmConfig {
    let cfg = match BACKEND.get() {
        Some(&k) => VmConfig::fpga().with_backend(k),
        None => VmConfig::fpga(),
    };
    cfg.with_fetch_charging(FETCH_CHARGING.get().copied().unwrap_or(false))
}

// ---------------------------------------------------------------- Table 1

/// One row of the Table 1 reproduction.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Package name.
    pub name: String,
    /// Idiom counts planted per the paper (ground truth).
    pub expected: [u64; 8],
    /// Idiom counts the analyzer measured on the synthetic package.
    pub measured: [u64; 8],
    /// Generated lines of code.
    pub loc: u64,
}

/// Generates the synthetic corpus and runs the analyzer over it.
///
/// Packages are independent, so each one's generate→parse→analyze pipeline
/// runs on its own scoped thread (inline on single-core hosts); rows come
/// back in corpus order either way.
pub fn table1_rows(seed: u64) -> Vec<Table1Row> {
    let specs = corpus::paper_packages();
    let one_row = |spec: &corpus::PackageSpec| {
        let g = corpus::generate_package(spec, seed);
        let unit = cheri_c::parse(&g.source).expect("generated corpus parses");
        let counts = analyzer::analyze(&unit);
        let measured: Vec<u64> = Idiom::ALL.iter().map(|&i| counts.get(i)).collect();
        Table1Row {
            name: g.spec.name.to_string(),
            expected: g.spec.counts,
            measured: measured.try_into().expect("eight idioms"),
            loc: g.loc,
        }
    };
    cheri_interp::fan_out_ordered(&specs, one_row)
}

/// Renders the Table 1 report.
pub fn table1_report(seed: u64) -> String {
    let rows = table1_rows(seed);
    let mut out = String::new();
    out.push_str("Table 1: Summary of difficult idioms in popular C packages\n");
    out.push_str("(synthetic corpus planted with the paper's counts; measured = our analyzer)\n\n");
    out.push_str(&format!("{:<14}", "PROGRAM"));
    for i in Idiom::ALL {
        out.push_str(&format!("{:>11}", i.label()));
    }
    out.push_str(&format!("{:>10}\n", "LOC"));
    let mut totals = [0u64; 8];
    let mut total_loc = 0;
    for r in &rows {
        out.push_str(&format!("{:<14}", r.name));
        for (total, (&measured, &expected)) in totals
            .iter_mut()
            .zip(r.measured.iter().zip(r.expected.iter()))
        {
            let cell = if measured == expected {
                format!("{measured}")
            } else {
                format!("{measured}({expected})")
            };
            out.push_str(&format!("{cell:>11}"));
            *total += measured;
        }
        out.push_str(&format!("{:>10}\n", r.loc));
        total_loc += r.loc;
    }
    out.push_str(&format!("{:<14}", "TOTAL"));
    for t in totals {
        out.push_str(&format!("{t:>11}"));
    }
    out.push_str(&format!("{total_loc:>10}\n"));
    out.push_str(&format!(
        "\n(paper printed totals: {:?}; row sums: {:?} — see EXPERIMENTS.md)\n",
        corpus::PAPER_PRINTED_TOTALS,
        corpus::paper_totals()
    ));
    out
}

// ---------------------------------------------------------------- Table 2

/// Renders Table 2 from ISA metadata.
pub fn table2_report() -> String {
    format!(
        "Table 2: New CHERI instructions to better support C\n\n{}",
        cheri_isa::table2::render()
    )
}

// ---------------------------------------------------------------- Table 3

/// Renders the Table 3 report: measured support matrix with the paper's
/// annotations.
pub fn table3_report() -> String {
    let cells = cases::run_matrix();
    let mut out = String::new();
    out.push_str("Table 3: idioms supported by interpretations of the C abstract machine\n");
    out.push_str("(measured by running the extracted idiom test cases in the interpreter)\n\n");
    out.push_str(&format!("{:<18}", "MODEL"));
    for i in Idiom::ALL {
        out.push_str(&format!("{:>11}", i.label()));
    }
    out.push('\n');
    for model in ModelKind::ALL {
        out.push_str(&format!("{:<18}", model.display_name()));
        for idiom in Idiom::ALL {
            let cell = cells
                .iter()
                .find(|c| c.model == model && c.idiom == idiom)
                .expect("full matrix");
            let expected = cases::paper_expected(model, idiom);
            let text = if cell.works { expected.cell() } else { "no" };
            let marker = if cell.works == expected.works() {
                ""
            } else {
                "!"
            };
            out.push_str(&format!("{:>11}", format!("{text}{marker}")));
        }
        out.push('\n');
    }
    out.push_str("\n(yes) qualifications:\n");
    for model in ModelKind::ALL {
        for idiom in Idiom::ALL {
            if let Some(q) = cases::qualification(model, idiom) {
                out.push_str(&format!("  {} / {}: {}\n", model.display_name(), idiom, q));
            }
        }
    }
    out
}

/// Renders the static companion of Table 3: for every canonical program
/// (the eight idiom cases plus the two CRuby pitfalls) and every model,
/// the dynamic verdict from actually running the program next to
/// `cheri-lint`'s static prediction for it.
///
/// Cell format is `dynamic/static`. `!` marks an unsound-clean cell (the
/// lint blessed a model that traps) — forbidden, and tested to be zero.
/// `?` marks an imprecise warn (the lint warned about a model that runs) —
/// tolerated, tallied, and reported as the false-warn rate.
pub fn table3_static_report() -> String {
    // Each canonical program: display label, lint report, dynamic verdict
    // per model (in ModelKind::ALL order).
    let mut programs: Vec<(String, cheri_lint::Report, Vec<bool>)> = Vec::new();
    for idiom in Idiom::ALL {
        let report = cheri_lint::analyze_source(cases::source(idiom)).expect("case parses");
        let dynamic = ModelKind::ALL
            .iter()
            .map(|&m| cases::run_case(m, idiom).is_ok())
            .collect();
        programs.push((idiom.label().to_string(), report, dynamic));
    }
    for p in pitfalls::Pitfall::ALL {
        let report = cheri_lint::analyze_source(pitfalls::source(p)).expect("pitfall parses");
        let dynamic = ModelKind::ALL
            .iter()
            .map(|&m| pitfalls::run_case(m, p).is_ok())
            .collect();
        programs.push((p.name().to_string(), report, dynamic));
    }

    let mut out = String::new();
    out.push_str("Table 3 (static): dynamic verdict / cheri-lint prediction per model\n");
    out.push_str("(! = unsound-clean, must never appear; ? = imprecise warn, tallied below)\n\n");
    out.push_str(&format!("{:<18}", "MODEL"));
    for (label, _, _) in &programs {
        out.push_str(&format!("{label:>11}"));
    }
    out.push('\n');
    let (mut cells, mut imprecise, mut unsound) = (0u64, 0u64, 0u64);
    for (k, model) in ModelKind::ALL.iter().enumerate() {
        out.push_str(&format!("{:<18}", model.display_name()));
        for (_, report, dynamic) in &programs {
            let dyn_ok = dynamic[k];
            let stat_ok = report.works(*model);
            cells += 1;
            let marker = match (dyn_ok, stat_ok) {
                (false, true) => {
                    unsound += 1;
                    "!"
                }
                (true, false) => {
                    imprecise += 1;
                    "?"
                }
                _ => "",
            };
            let text = format!(
                "{}/{}{marker}",
                if dyn_ok { "yes" } else { "no" },
                if stat_ok { "yes" } else { "no" }
            );
            out.push_str(&format!("{text:>11}"));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "\nunsound-clean cells: {unsound} (hard requirement: 0)\n\
         false-warn rate: {imprecise}/{cells} cells ({:.1}%)\n",
        imprecise as f64 * 100.0 / cells as f64
    ));
    out
}

/// Renders the `--lines` companion of Table 1: for each corpus package,
/// the per-idiom source locations `cheri-lint` attributes its counts to
/// (capped at [`LINES_SHOWN`] locations per idiom to keep the report
/// readable; the count is always exact).
pub fn table1_lines_report(seed: u64) -> String {
    /// Locations printed per idiom before eliding with `+N more`.
    const LINES_SHOWN: usize = 6;
    let mut out = String::new();
    out.push_str("Table 1 (--lines): per-idiom source locations, by package\n");
    out.push_str("(line:col into the generated package source; counts are exact)\n\n");
    for pkg in corpus::generate_corpus(seed) {
        let unit = cheri_c::parse(&pkg.source).expect("generated corpus parses");
        let report = cheri_lint::analyze(&unit);
        out.push_str(&format!("{} ({} LOC)\n", pkg.spec.name, pkg.loc));
        for idiom in Idiom::ALL {
            let locs: Vec<String> = report
                .idiom_findings()
                .filter(|f| f.kind == cheri_lint::FindingKind::Idiom(idiom))
                .map(|f| format!("{}:{}", f.line, f.col))
                .collect();
            if locs.is_empty() {
                continue;
            }
            let shown = locs[..locs.len().min(LINES_SHOWN)].join(", ");
            let more = if locs.len() > LINES_SHOWN {
                format!(" (+{} more)", locs.len() - LINES_SHOWN)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  {:<10}{:>6}  {shown}{more}\n",
                idiom.label(),
                locs.len()
            ));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------- Table 4

/// Renders the Table 4 report.
pub fn table4_report() -> String {
    let rows = porting::table4();
    let mut out = String::new();
    out.push_str("Table 4: lines of code changed to port from MIPS to CHERIv2 and CHERIv3\n");
    out.push_str("(measured over our workload variants; paper values in EXPERIMENTS.md)\n\n");
    out.push_str(&format!(
        "{:<12}{:>10}{:>18}{:>16}{:>18}{:>16}\n",
        "PROGRAM", "BASELINE", "v2 ANNOTATION", "v2 SEMANTIC", "v3 ANNOTATION", "v3 SEMANTIC"
    ));
    for r in &rows {
        let pct = |n: u64| format!("{} ({:.1}%)", n, 100.0 * n as f64 / r.baseline_loc as f64);
        out.push_str(&format!(
            "{:<12}{:>10}{:>18}{:>16}{:>18}{:>16}\n",
            r.program,
            r.baseline_loc,
            pct(r.v2_annotation),
            pct(r.v2_semantic),
            pct(r.v3_annotation),
            pct(r.v3_semantic),
        ));
    }
    out
}

// ------------------------------------------------ Capability memory (§5)

/// One measured point of the capability-memory ablation: a workload run
/// with one in-memory capability format.
#[derive(Clone, Debug)]
pub struct CapMemoryRow {
    /// Workload name.
    pub name: String,
    /// The format the machine stored capabilities in.
    pub format: CapFormat,
    /// Simulated cycles (FPGA cache model — Cap128 moves half the bytes
    /// per capability store/load).
    pub cycles: u64,
    /// Peak resident capability storage at exit, in bytes.
    pub cap_footprint_bytes: u64,
    /// Escape-table entries at exit (capabilities the 128-bit format could
    /// not represent).
    pub side_entries: usize,
    /// Compression statistics (Cap128 runs only).
    pub compression: Option<CompressionStats>,
}

/// Runs capability-heavy workloads under CHERIv3 with 256-bit and 128-bit
/// capability storage and measures footprint, representability and cycles.
pub fn cap_memory_rows() -> Vec<CapMemoryRow> {
    let workloads = [
        ("Treeadd", sources::treeadd(8, 2)),
        ("Bisort", sources::bisort(128)),
        ("MallocOOB", sources::malloc_stress_oob(32, 4)),
    ];
    let mut rows = Vec::new();
    for (name, src) in &workloads {
        let prog = compile(src, Abi::CheriV3).expect("workload compiles");
        for format in [CapFormat::Cap256, CapFormat::Cap128] {
            let mut vm = Vm::new(prog.clone(), machine_config().with_cap_format(format));
            let status = vm.run(FUEL).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(status.code, 0, "{name}/{format:?} failed");
            rows.push(CapMemoryRow {
                name: (*name).to_string(),
                format,
                cycles: status.stats.cycles,
                cap_footprint_bytes: vm.mem().cap_footprint_bytes(),
                side_entries: vm.mem().side_table_len(),
                compression: status.stats.compression,
            });
        }
    }
    rows
}

/// Representability of allocator outputs: the fraction of `alloc_cap`
/// capabilities that compress exactly, for a naive (granule-padded)
/// allocator versus the low-fat-aware one that pads to `2^E` bounds.
/// Sizes sweep well past the 16-bit mantissa so the padding matters.
pub fn allocator_representability() -> (f64, f64) {
    let rate = |format: CapFormat| {
        let mut heap = Allocator::with_format(0x4_0000, 48 << 20, format);
        let mut stats = CompressionStats::default();
        for i in 1..400u64 {
            // A mix of small objects and >64 KiB buffers at odd sizes.
            let size = if i % 7 == 0 {
                (i * 37) % (1 << 20) + (1 << 16)
            } else {
                (i * 13) % 512 + 1
            };
            if let Ok(c) = heap.alloc_cap(size, Perms::data()) {
                stats.try_compress(&c);
            }
        }
        stats.success_rate()
    };
    (rate(CapFormat::Cap256), rate(CapFormat::Cap128))
}

/// Renders the capability-memory report printed by the `table4` binary:
/// the paper's "128-bit capabilities halve the pointer footprint" claim,
/// measured.
pub fn cap_memory_report() -> String {
    let mut out =
        String::from("\nCapability memory: 256-bit vs low-fat 128-bit in-memory capabilities\n\n");
    out.push_str(&format!(
        "{:<10}{:<8}{:>14}{:>16}{:>8}{:>14}\n",
        "PROGRAM", "FORMAT", "CYCLES", "CAP BYTES", "ESCAPES", "REPRESENTABLE"
    ));
    for r in cap_memory_rows() {
        let repr = r
            .compression
            .map(|c| format!("{:.1}%", 100.0 * c.success_rate()))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:<10}{:<8}{:>14}{:>16}{:>8}{:>14}\n",
            r.name,
            match r.format {
                CapFormat::Cap256 => "256",
                CapFormat::Cap128 => "128",
            },
            r.cycles,
            r.cap_footprint_bytes,
            r.side_entries,
            repr,
        ));
    }
    let (naive, padded) = allocator_representability();
    out.push_str(&format!(
        "\nallocator representability (odd sizes up to 1 MiB): naive {:.1}% -> 2^E-padded {:.1}%\n",
        100.0 * naive,
        100.0 * padded
    ));
    out
}

// --------------------------------------------- DRAM traffic (table4, §5)

/// One measured point of the DRAM-traffic ablation: a workload run with
/// one capability format on one L1 line geometry, with the per-edge byte
/// ledger the bandwidth-aware cache model keeps.
#[derive(Clone, Debug)]
pub struct TrafficRow {
    /// Workload name.
    pub name: String,
    /// The in-memory capability format.
    pub format: CapFormat,
    /// L1 line size of the run's cache geometry (64 = the paper's FPGA
    /// geometry, 16/32 = the sub-block lines that stop rounding from
    /// absorbing half-width capability stores).
    pub l1_line_bytes: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Simulated cycles of the same run with 4 MSHRs per level (misses
    /// in a burst overlap) and a 2-entry store buffer. Demand traffic is
    /// identical; only the cycle accounting changes, so the column reads
    /// directly as the win from memory-level parallelism.
    pub mshr4_cycles: u64,
    /// Bytes filled over the L2↔DRAM edge.
    pub dram_fill_bytes: u64,
    /// Bytes written back over the L2↔DRAM edge.
    pub dram_writeback_bytes: u64,
    /// Total bytes moved on the L1↔L2 edge.
    pub l1_l2_bytes: u64,
    /// Cap128 side-table entries live at exit.
    pub side_entries: usize,
}

impl TrafficRow {
    /// Total bytes moved on the DRAM edge.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_fill_bytes + self.dram_writeback_bytes
    }
}

/// Runs capability-dense CHERIv3 workloads under both capability formats
/// and both L1 line geometries (64-byte and 16-byte), measuring the
/// per-edge traffic. Rows come in Cap256/Cap128 pairs per geometry.
pub fn cap_traffic_rows() -> Vec<TrafficRow> {
    let workloads = [
        ("Treeadd", sources::treeadd(10, 4)),
        // Enough churn that the live node set outgrows the 64 KB L2 and
        // the write-back stream actually reaches DRAM.
        ("MallocOOB", sources::malloc_stress_oob(200, 8)),
    ];
    let mut rows = Vec::new();
    for (name, src) in &workloads {
        let prog = compile(src, Abi::CheriV3).expect("workload compiles");
        for l1_line in [64u64, 16] {
            for format in [CapFormat::Cap256, CapFormat::Cap128] {
                let cfg = machine_config()
                    .with_cap_format(format)
                    .with_l1_line_bytes(l1_line);
                let mut vm = Vm::new(prog.clone(), cfg);
                let status = vm.run(FUEL).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(status.code, 0, "{name}/{format:?} failed");
                let cache = status.stats.cache.expect("cache model enabled");
                // The same run under the transaction model: 4 MSHRs per
                // level and a 2-entry store buffer.
                let mshr_cache = cfg
                    .cache
                    .expect("traffic rows run with the cache model")
                    .with_mshrs(4)
                    .with_store_buffer(2);
                let mut mshr_vm = Vm::new(prog.clone(), cfg.with_cache(mshr_cache));
                let mshr_status = mshr_vm
                    .run(FUEL)
                    .unwrap_or_else(|e| panic!("{name} (mshr4): {e}"));
                assert_eq!(mshr_status.code, 0, "{name}/{format:?} (mshr4) failed");
                rows.push(TrafficRow {
                    name: (*name).to_string(),
                    format,
                    l1_line_bytes: l1_line,
                    cycles: status.stats.cycles,
                    mshr4_cycles: mshr_status.stats.cycles,
                    dram_fill_bytes: cache.traffic.l2_dram.fill_bytes,
                    dram_writeback_bytes: cache.traffic.l2_dram.writeback_bytes,
                    l1_l2_bytes: cache.traffic.l1_l2.total_bytes(),
                    side_entries: vm.mem().side_table_len(),
                });
            }
        }
    }
    rows
}

/// Renders the DRAM-traffic report printed by the `table4` binary: the
/// paper's reduced-memory-traffic claim for 128-bit capabilities, stated
/// in bytes over the L2↔DRAM edge and in simulated cycles.
pub fn cap_traffic_report() -> String {
    render_cap_traffic(&cap_traffic_rows())
}

/// Renders a measured traffic matrix (Cap256/Cap128 row pairs).
pub fn render_cap_traffic(rows: &[TrafficRow]) -> String {
    let mut out = String::from(
        "\nDRAM traffic: Cap256 vs Cap128 under the bandwidth-aware cache model\n\
         (same CHERIv3 workload, both in-memory formats, 64B and 16B L1 lines)\n\n",
    );
    out.push_str(&format!(
        "{:<12}{:>7}{:<8}{:>12}{:>12}{:>14}{:>12}{:>14}{:>9}\n",
        "PROGRAM",
        "L1LINE",
        " FORMAT",
        "CYCLES",
        "MSHR4 CYC",
        "DRAM FILL B",
        "DRAM WB B",
        "L1<->L2 B",
        "ESCAPES"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:>7}{:<8}{:>12}{:>12}{:>14}{:>12}{:>14}{:>9}\n",
            r.name,
            r.l1_line_bytes,
            match r.format {
                CapFormat::Cap256 => "    256",
                CapFormat::Cap128 => "    128",
            },
            r.cycles,
            r.mshr4_cycles,
            r.dram_fill_bytes,
            r.dram_writeback_bytes,
            r.l1_l2_bytes,
            r.side_entries,
        ));
    }
    // Summary lines only for well-formed Cap256/Cap128 pairs; a filtered
    // or truncated slice still renders its table rows above.
    for pair in rows.chunks_exact(2) {
        let (full, comp) = (&pair[0], &pair[1]);
        if full.format != CapFormat::Cap256 || comp.format != CapFormat::Cap128 {
            continue;
        }
        let pct = |a: u64, b: u64| 100.0 * (1.0 - b as f64 / a as f64);
        out.push_str(&format!(
            "{} @ {:>2}B L1 line: Cap128 moves {:.1}% fewer DRAM bytes \
             ({:.1}% fewer written back) and {:+.1}% cycles\n",
            full.name,
            full.l1_line_bytes,
            pct(full.dram_bytes(), comp.dram_bytes()),
            pct(
                full.dram_writeback_bytes.max(1),
                comp.dram_writeback_bytes.max(1)
            ),
            100.0 * (comp.cycles as f64 / full.cycles as f64 - 1.0),
        ));
    }
    let win = |r: &TrafficRow| 100.0 * (1.0 - r.mshr4_cycles as f64 / r.cycles.max(1) as f64);
    if let Some(best) = rows
        .iter()
        .max_by(|a, b| win(a).total_cmp(&win(b)))
        .filter(|r| win(r) > 0.0)
    {
        out.push_str(&format!(
            "memory-level parallelism: 4 MSHRs + a 2-entry store buffer save up to \
             {:.1}% cycles ({} @ {}B lines, Cap{})\n",
            win(best),
            best.name,
            best.l1_line_bytes,
            match best.format {
                CapFormat::Cap256 => "256",
                CapFormat::Cap128 => "128",
            },
        ));
    }
    out
}

// ----------------------------------------- shared-L2 contention (table4)

/// One point of the multi-core contention report: `cores` identical
/// pointer-chasing workloads racing over one shared memory system.
#[derive(Clone, Debug)]
pub struct ContentionRow {
    /// Number of simulated cores in the batch.
    pub cores: usize,
    /// The in-memory capability format.
    pub format: CapFormat,
    /// Simulated cycles summed across all cores.
    pub total_cycles: u64,
    /// Queueing cycles summed across all cores (included in
    /// `total_cycles`).
    pub total_contention: u64,
}

impl ContentionRow {
    /// Mean simulated cycles per core.
    pub fn avg_cycles(&self) -> u64 {
        self.total_cycles / self.cores as u64
    }

    /// Mean queueing cycles per core.
    pub fn avg_contention(&self) -> u64 {
        self.total_contention / self.cores as u64
    }
}

/// Runs `cores` copies of Treeadd per core count, each on its own
/// FPGA-like machine (private L1/L2 tags) with the L2 service port and
/// the DRAM edge arbitrated through one [`cheri_vm::SharedHierarchy`].
/// Cores advance in deterministic round-robin fuel slices on one thread,
/// so the interleaving — and therefore every reported cycle — is exactly
/// reproducible.
pub fn contention_rows_for(core_counts: &[usize], formats: &[CapFormat]) -> Vec<ContentionRow> {
    use cheri_vm::{SharedHierarchy, TrapCause, VmTrap};
    // Fine slices approximate true concurrency; the arbitration model is
    // stable in the slice size (coarser slices read slightly more
    // contended because each alternation presents a bigger time skew,
    // but the slowdown stays under the N-core serialization bound).
    const SLICE: u64 = 500;
    let src = sources::treeadd(8, 4);
    let prog = compile(&src, Abi::CheriV3).expect("workload compiles");
    let mut rows = Vec::new();
    for &format in formats {
        for &cores in core_counts {
            let cfg = machine_config().with_cap_format(format);
            let mut vms: Vec<Vm> = (0..cores).map(|_| Vm::new(prog.clone(), cfg)).collect();
            let shared = SharedHierarchy::new();
            for vm in &mut vms {
                vm.attach_shared_hierarchy(shared.clone());
            }
            let mut live = vec![true; cores];
            let mut remaining = cores;
            while remaining > 0 {
                for (i, vm) in vms.iter_mut().enumerate() {
                    if !live[i] {
                        continue;
                    }
                    match vm.run(SLICE) {
                        Ok(status) => {
                            assert_eq!(status.code, 0, "treeadd failed");
                            live[i] = false;
                            remaining -= 1;
                        }
                        Err(VmTrap {
                            cause: TrapCause::OutOfFuel,
                            ..
                        }) => {}
                        Err(t) => panic!("treeadd trapped: {t}"),
                    }
                }
            }
            let (mut cycles, mut contention) = (0u64, 0u64);
            for vm in &vms {
                let s = vm.stats();
                cycles += s.cycles;
                contention += s.cache.as_ref().map_or(0, |c| c.contention_cycles);
            }
            rows.push(ContentionRow {
                cores,
                format,
                total_cycles: cycles,
                total_contention: contention,
            });
        }
    }
    rows
}

/// The contention matrix the `table4` binary prints: 1/2/4/8 cores under
/// both capability formats.
pub fn contention_rows() -> Vec<ContentionRow> {
    contention_rows_for(&[1, 2, 4, 8], &[CapFormat::Cap256, CapFormat::Cap128])
}

/// Renders the shared-L2 contention report.
pub fn render_contention(rows: &[ContentionRow]) -> String {
    let mut out = String::from(
        "\nShared-L2 contention: N cores x Treeadd over one shared memory system\n\
         (private L1/L2 tags per core; L2 service port and DRAM edge arbitrated,\n\
         deterministic round-robin interleaving)\n\n",
    );
    out.push_str(&format!(
        "{:>6}{:<8}{:>14}{:>14}{:>8}{:>10}\n",
        "CORES", "  FORMAT", "AVG CYCLES", "CONTENTION", "SHARE", "SLOWDOWN"
    ));
    for r in rows {
        let solo = rows
            .iter()
            .find(|s| s.format == r.format && s.cores == 1)
            .map(|s| s.avg_cycles());
        let slowdown = solo
            .map(|s| format!("{:.2}x", r.avg_cycles() as f64 / s.max(1) as f64))
            .unwrap_or_default();
        out.push_str(&format!(
            "{:>6}{:<8}{:>14}{:>14}{:>7.1}%{:>10}\n",
            r.cores,
            match r.format {
                CapFormat::Cap256 => "     256",
                CapFormat::Cap128 => "     128",
            },
            r.avg_cycles(),
            r.avg_contention(),
            100.0 * r.avg_contention() as f64 / r.avg_cycles().max(1) as f64,
            slowdown,
        ));
    }
    out
}

/// Renders [`contention_rows`] — the report printed by `table4`.
pub fn contention_report() -> String {
    render_contention(&contention_rows())
}

// ---------------------------------------------------------------- Figures

/// A measured point: workload × ABI.
#[derive(Clone, Debug)]
pub struct AbiPoint {
    /// Workload name.
    pub name: String,
    /// The ABI.
    pub abi: Abi,
    /// The run.
    pub outcome: RunOutcome,
}

/// Runs one workload under one ABI on the FPGA-like machine, asserting
/// success.
pub fn run_or_panic(name: &str, src: &str, abi: Abi, ins: &[(&str, &[u8])]) -> AbiPoint {
    let outcome = run_workload(src, abi, machine_config(), ins, FUEL)
        .unwrap_or_else(|e| panic!("{name}/{abi}: {e}"));
    assert_eq!(outcome.exit, 0, "{name}/{abi} failed: {}", outcome.output);
    AbiPoint {
        name: name.to_string(),
        abi,
        outcome,
    }
}

/// Figure 1 (Olden): cycles per benchmark per ABI. `scale` grows the
/// working sets (1 = quick, 8 = harness default).
pub fn fig1_points(scale: u32) -> Vec<AbiPoint> {
    let s = scale.max(1);
    let workloads = vec![
        ("Bisort", sources::bisort(400 * s)),
        ("MST", sources::mst((24 * s).min(200))),
        ("Treeadd", sources::treeadd((9 + s.ilog2()).min(14), 6)),
        ("Perimeter", sources::perimeter((5 + s.ilog2()).min(9))),
        ("MallocStr", sources::malloc_stress(32 * s, 6)),
    ];
    let mut points = Vec::new();
    for (name, src) in &workloads {
        let mut outputs = Vec::new();
        for abi in Abi::ALL {
            let p = run_or_panic(name, src, abi, &[]);
            outputs.push(p.outcome.output.clone());
            points.push(p);
        }
        assert!(
            outputs.windows(2).all(|w| w[0] == w[1]),
            "{name}: outputs must agree across ABIs"
        );
    }
    points
}

/// Figure 2 (Dhrystone): scalar-heavy loop, `runs` iterations.
pub fn fig2_points(runs: u32) -> Vec<AbiPoint> {
    let src = sources::dhrystone(runs);
    Abi::ALL
        .iter()
        .map(|&abi| run_or_panic("Dhrystone", &src, abi, &[]))
        .collect()
}

/// Figure 3 (tcpdump): trace processing per ABI. The baseline source runs
/// on MIPS and CHERIv3; CHERIv2 requires the ported (index-based) source —
/// exactly the paper's porting story.
pub fn fig3_points(packets: u32, seed: u64) -> Vec<AbiPoint> {
    let trace = inputs::packet_trace(packets, seed);
    let base = sources::tcpdump_baseline();
    let v2 = sources::tcpdump_cheriv2();
    let points = vec![
        run_or_panic("tcpdump", &base, Abi::Mips, &[("trace", &trace)]),
        run_or_panic("tcpdump", &v2, Abi::CheriV2, &[("trace", &trace)]),
        run_or_panic("tcpdump", &base, Abi::CheriV3, &[("trace", &trace)]),
    ];
    let expect = &points[0].outcome.output;
    for p in &points[1..] {
        assert_eq!(&p.outcome.output, expect, "{} output mismatch", p.abi);
    }
    points
}

/// One Figure 4 point: overhead (%) of the two CHERI zlib configurations
/// relative to MIPS at one file size.
#[derive(Clone, Debug)]
pub struct Fig4Point {
    /// File size in bytes.
    pub size: u32,
    /// CHERIv3 purecap overhead vs MIPS, percent.
    pub cheri_pct: f64,
    /// CHERIv3 boundary-copying overhead vs MIPS, percent.
    pub copying_pct: f64,
}

/// Figure 4 (zlib): sweep file sizes, measure both CHERI configurations.
pub fn fig4_points(sizes: &[u32], seed: u64) -> Vec<Fig4Point> {
    sizes
        .iter()
        .map(|&size| {
            let file = inputs::compressible_file(size as usize, seed);
            let ins: &[(&str, &[u8])] = &[("input", &file)];
            let plain_src = sources::zlib(size, false);
            let copy_src = sources::zlib(size, true);
            let mips = run_or_panic("zlib", &plain_src, Abi::Mips, ins);
            let cheri = run_or_panic("zlib", &plain_src, Abi::CheriV3, ins);
            let copying = run_or_panic("zlib", &copy_src, Abi::CheriV3, ins);
            assert_eq!(mips.outcome.output, cheri.outcome.output);
            assert_eq!(mips.outcome.output, copying.outcome.output);
            let base = mips.outcome.cycles as f64;
            Fig4Point {
                size,
                cheri_pct: 100.0 * (cheri.outcome.cycles as f64 / base - 1.0),
                copying_pct: 100.0 * (copying.outcome.cycles as f64 / base - 1.0),
            }
        })
        .collect()
}

/// Renders a cycles-per-ABI report with MIPS-relative ratios. When any
/// point carries fetch transactions (the driver ran with fetch charging
/// on), two extra columns report the fetch bytes and the share of cycles
/// spent fetching; default-era output is unchanged.
pub fn render_abi_points(title: &str, points: &[AbiPoint]) -> String {
    let mut out = format!("{title}\n\n");
    let fetch_era = points
        .iter()
        .any(|p| p.outcome.cache.is_some_and(|c| c.fetch.blocks > 0));
    out.push_str(&format!(
        "{:<12}{:<10}{:>16}{:>14}{:>12}{:>10}{:>10}{:>12}",
        "PROGRAM", "ABI", "CYCLES", "INSTRET", "SEC@100MHz", "vs MIPS", "L1MISS%", "DRAM BYTES"
    ));
    if fetch_era {
        out.push_str(&format!("{:>13}{:>9}", "FETCH B", "FETCH%"));
    }
    out.push('\n');
    let mut names: Vec<String> = points.iter().map(|p| p.name.clone()).collect();
    names.dedup();
    for name in names {
        let mips = points
            .iter()
            .find(|p| p.name == name && p.abi == Abi::Mips)
            .map(|p| p.outcome.cycles as f64);
        for p in points.iter().filter(|p| p.name == name) {
            let rel = mips
                .map(|m| format!("{:+.1}%", 100.0 * (p.outcome.cycles as f64 / m - 1.0)))
                .unwrap_or_default();
            let miss = p
                .outcome
                .cache
                .map(|c| format!("{:.2}", 100.0 * (1.0 - c.l1_hit_rate())))
                .unwrap_or_default();
            let dram = p
                .outcome
                .cache
                .map(|c| c.traffic.dram_bytes().to_string())
                .unwrap_or_default();
            out.push_str(&format!(
                "{:<12}{:<10}{:>16}{:>14}{:>12.4}{:>10}{:>10}{:>12}",
                p.name,
                p.abi.name(),
                p.outcome.cycles,
                p.outcome.instret,
                p.outcome.seconds_at_100mhz(),
                rel,
                miss,
                dram,
            ));
            if fetch_era {
                let (bytes, pct) = p
                    .outcome
                    .cache
                    .map(|c| {
                        (
                            c.fetch.bytes.to_string(),
                            format!(
                                "{:.1}",
                                100.0 * c.fetch.cycles as f64 / p.outcome.cycles.max(1) as f64
                            ),
                        )
                    })
                    .unwrap_or_default();
                out.push_str(&format!("{bytes:>13}{pct:>9}"));
            }
            out.push('\n');
        }
    }
    out
}

/// Renders the Figure 4 series.
pub fn render_fig4(points: &[Fig4Point]) -> String {
    let mut out = String::from(
        "Figure 4: overhead of CHERI-zlib normalized against zlib compiled for MIPS\n\n",
    );
    out.push_str(&format!(
        "{:>10}{:>14}{:>20}\n",
        "SIZE", "CHERI %", "CHERI(copying) %"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>10}{:>14.2}{:>20.2}\n",
            p.size, p.cheri_pct, p.copying_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_report_has_six_rows() {
        let t = table2_report();
        assert_eq!(t.lines().filter(|l| l.starts_with('C')).count(), 6);
    }

    #[test]
    fn table3_report_matches_paper_without_mismatch_markers() {
        let t = table3_report();
        assert!(!t.contains('!'), "mismatch markers found:\n{t}");
        assert!(t.contains("CHERIv3"));
        assert!(t.contains("(yes)"));
    }

    #[test]
    fn table3_static_report_has_no_unsound_cells_and_one_imprecise() {
        let t = table3_static_report();
        // The legend line mentions each marker once; the matrix itself
        // must contribute zero `!` cells and exactly one `?` cell.
        assert_eq!(t.matches('!').count(), 1, "unsound-clean cells found:\n{t}");
        assert_eq!(
            t.matches('?').count(),
            2,
            "imprecision budget changed:\n{t}"
        );
        assert!(t.contains("unsound-clean cells: 0"));
        assert!(t.contains("false-warn rate: 1/70 cells (1.4%)"));
        assert!(t.contains("TagStrip"));
    }

    #[test]
    fn table1_lines_locations_agree_with_the_counts() {
        // The small pmc package keeps the debug-mode test fast; the full
        // 13-package report is exercised by the `table1 --lines` bin.
        let spec = corpus::paper_packages().remove(7);
        let g = corpus::generate_package(&spec, 2026);
        let unit = cheri_c::parse(&g.source).unwrap();
        let report = cheri_lint::analyze(&unit);
        let counts = report.idiom_counts();
        for (k, idiom) in Idiom::ALL.iter().enumerate() {
            assert_eq!(counts[k], spec.counts[k], "{idiom}");
            let located = report
                .idiom_findings()
                .filter(|f| f.kind == cheri_lint::FindingKind::Idiom(*idiom))
                .filter(|f| f.line >= 1)
                .count() as u64;
            assert_eq!(
                located, counts[k],
                "{idiom}: every count carries a location"
            );
        }
        let text = table1_lines_report(2026);
        assert!(text.contains("pmc"));
        assert!(text.contains("INT"));
    }

    #[test]
    fn table4_report_renders() {
        let t = table4_report();
        assert!(t.contains("tcpdump"));
        assert!(t.contains("Olden"));
    }

    #[test]
    fn table1_small_package_recovers_counts() {
        let spec = corpus::paper_packages().remove(7); // pmc, small
        let g = corpus::generate_package(&spec, 42);
        let unit = cheri_c::parse(&g.source).unwrap();
        let counts = analyzer::analyze(&unit);
        for (k, idiom) in Idiom::ALL.iter().enumerate() {
            assert_eq!(counts.get(*idiom), spec.counts[k], "{idiom}");
        }
    }

    #[test]
    fn cap_memory_rows_show_halved_footprint() {
        let rows = cap_memory_rows();
        for pair in rows.chunks(2) {
            let (full, compressed) = (&pair[0], &pair[1]);
            assert_eq!(full.format, CapFormat::Cap256);
            assert_eq!(compressed.format, CapFormat::Cap128);
            assert!(full.cap_footprint_bytes > 0, "{}", full.name);
            assert!(
                compressed.cap_footprint_bytes * 2
                    <= full.cap_footprint_bytes + 32 * compressed.side_entries as u64 * 2,
                "{}: {} vs {}",
                full.name,
                compressed.cap_footprint_bytes,
                full.cap_footprint_bytes
            );
            assert!(
                compressed.cycles <= full.cycles,
                "{}: half-width capability traffic must not cost cycles",
                full.name
            );
            let comp = compressed.compression.expect("Cap128 stats");
            assert!(comp.attempts > 0);
        }
    }

    /// The acceptance gate for the traffic model. On the paper's 64-byte
    /// geometry the granule reservation keeps the address layout
    /// identical, so line rounding may fully absorb the half-width stores
    /// (the ISSUE's motivating observation — DRAM bytes must still never
    /// grow); on the sub-block 16-byte L1 geometry Cap128 must move
    /// strictly fewer L2↔DRAM bytes and win in simulated cycles.
    /// The traffic matrix is the suite's most expensive fixture (8 VM
    /// runs); compute it once and share it across the tests below.
    fn shared_traffic_rows() -> &'static [TrafficRow] {
        use std::sync::OnceLock;
        static ROWS: OnceLock<Vec<TrafficRow>> = OnceLock::new();
        ROWS.get_or_init(cap_traffic_rows)
    }

    #[test]
    fn cap128_moves_strictly_fewer_dram_bytes() {
        let rows = shared_traffic_rows();
        for pair in rows.chunks(2) {
            let (full, comp) = (&pair[0], &pair[1]);
            assert_eq!(full.format, CapFormat::Cap256);
            assert_eq!(comp.format, CapFormat::Cap128);
            assert_eq!(full.l1_line_bytes, comp.l1_line_bytes);
            assert!(
                comp.dram_bytes() <= full.dram_bytes(),
                "{} @ {}B line: Cap128 DRAM bytes {} above Cap256's {}",
                full.name,
                full.l1_line_bytes,
                comp.dram_bytes(),
                full.dram_bytes()
            );
            assert!(
                comp.dram_writeback_bytes <= full.dram_writeback_bytes,
                "{} @ {}B line: write-back traffic must not grow",
                full.name,
                full.l1_line_bytes
            );
            assert!(
                comp.cycles <= full.cycles,
                "{} @ {}B line: half-width capabilities must not cost cycles",
                full.name,
                full.l1_line_bytes
            );
            if full.l1_line_bytes == 16 {
                assert!(
                    comp.dram_bytes() < full.dram_bytes(),
                    "{}: on 16B lines Cap128 must move strictly fewer DRAM \
                     bytes ({} vs {})",
                    full.name,
                    comp.dram_bytes(),
                    full.dram_bytes()
                );
                assert!(
                    comp.dram_writeback_bytes < full.dram_writeback_bytes,
                    "{}: the write-back stream must shrink too",
                    full.name
                );
                assert!(
                    comp.cycles < full.cycles,
                    "{}: on 16B lines the traffic win must reach cycles",
                    full.name
                );
                assert!(
                    comp.l1_l2_bytes < full.l1_l2_bytes,
                    "{}: sub-block lines must shrink L1<->L2 traffic too",
                    full.name
                );
            }
        }
    }

    #[test]
    fn malloc_stress_oob_populates_the_side_table() {
        let rows = shared_traffic_rows();
        let oob128 = rows
            .iter()
            .find(|r| r.name == "MallocOOB" && r.format == CapFormat::Cap128)
            .expect("malloc stress rows present");
        assert!(
            oob128.side_entries > 0,
            "the far-out-of-bounds probes must escape to the side table"
        );
        let oob256 = rows
            .iter()
            .find(|r| r.name == "MallocOOB" && r.format == CapFormat::Cap256)
            .unwrap();
        assert_eq!(oob256.side_entries, 0, "Cap256 never escapes");
    }

    #[test]
    fn cap_traffic_report_renders() {
        let r = render_cap_traffic(shared_traffic_rows());
        assert!(r.contains("DRAM traffic"));
        assert!(r.contains("MallocOOB"));
        assert!(r.contains("fewer DRAM bytes"));
        assert!(r.contains("memory-level parallelism"));
    }

    /// The transaction knobs must only ever help: 4 MSHRs + a store
    /// buffer never cost cycles, and on the miss-heavy 16-byte geometry
    /// the overlap must show up as a measurable win.
    #[test]
    fn four_mshrs_overlap_misses_into_fewer_cycles() {
        for r in shared_traffic_rows() {
            assert!(
                r.mshr4_cycles <= r.cycles,
                "{} @ {}B/{:?}: 4 MSHRs cost cycles ({} vs {})",
                r.name,
                r.l1_line_bytes,
                r.format,
                r.mshr4_cycles,
                r.cycles
            );
            if r.l1_line_bytes == 16 {
                assert!(
                    r.mshr4_cycles < r.cycles,
                    "{} @ 16B/{:?}: the burst overlap must win measurably",
                    r.name,
                    r.format
                );
            }
        }
    }

    /// Cores racing over one shared memory system slow each other down,
    /// and the slowdown is pure queueing: subtracting the contention
    /// cycles recovers each core's solo run exactly.
    #[test]
    fn shared_cores_pay_only_queueing() {
        let rows = contention_rows_for(&[1, 4], &[CapFormat::Cap256]);
        let (solo, quad) = (&rows[0], &rows[1]);
        assert_eq!(solo.cores, 1);
        assert_eq!(quad.cores, 4);
        assert!(
            quad.avg_cycles() > solo.avg_cycles(),
            "4 cores must degrade per-core latency ({} vs {})",
            quad.avg_cycles(),
            solo.avg_cycles()
        );
        assert!(quad.total_contention > solo.total_contention);
        let private = solo.total_cycles - solo.total_contention;
        assert_eq!(
            quad.total_cycles - quad.total_contention,
            4 * private,
            "contention must move no bytes and charge no compute"
        );
    }

    #[test]
    fn padded_allocator_fixes_representability() {
        let (naive, padded) = allocator_representability();
        assert!(
            padded >= 1.0 - 1e-9,
            "2^E padding must make every allocation representable, got {padded}"
        );
        assert!(
            naive < 1.0,
            "the odd-size sweep must defeat the naive allocator"
        );
    }

    #[test]
    fn cap_memory_report_renders() {
        let r = cap_memory_report();
        assert!(r.contains("Treeadd"));
        assert!(r.contains("allocator representability"));
    }

    #[test]
    fn fig2_shape_dhrystone_cheri_close_to_mips() {
        let pts = fig2_points(200);
        let mips = pts
            .iter()
            .find(|p| p.abi == Abi::Mips)
            .unwrap()
            .outcome
            .cycles as f64;
        let v3 = pts
            .iter()
            .find(|p| p.abi == Abi::CheriV3)
            .unwrap()
            .outcome
            .cycles as f64;
        let delta = (v3 / mips - 1.0).abs();
        assert!(
            delta < 0.2,
            "Dhrystone CHERI should be near MIPS, got {delta:+.3}"
        );
    }

    #[test]
    fn fig1_shape_olden_cheri_not_faster() {
        let src = sources::treeadd(8, 4);
        let mips = run_or_panic("treeadd", &src, Abi::Mips, &[]);
        let v3 = run_or_panic("treeadd", &src, Abi::CheriV3, &[]);
        assert_eq!(mips.outcome.output, v3.outcome.output);
        assert!(
            v3.outcome.cycles as f64 >= 0.98 * mips.outcome.cycles as f64,
            "CHERI {} vs MIPS {}",
            v3.outcome.cycles,
            mips.outcome.cycles
        );
    }

    #[test]
    fn fig4_shape_copying_costs_more() {
        let pts = fig4_points(&[4096, 8192], 5);
        for p in &pts {
            assert!(
                p.copying_pct > p.cheri_pct,
                "copying should cost more at {}: {p:?}",
                p.size
            );
        }
    }
}
