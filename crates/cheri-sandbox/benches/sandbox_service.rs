//! Sandbox-service benches: the copy-on-write fork against the cold boot
//! it replaces, and aggregate request throughput through the scheduler.

use cheri_compile::{compile, Abi};
use cheri_sandbox::{guests, Request, SandboxService, TenantConfig};
use cheri_vm::{TrapCause, Vm, VmConfig, VmTrap};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const TENANT_MEM: u64 = 4 << 20;

fn tree_tenant() -> TenantConfig {
    TenantConfig::new("tree", guests::tree_service(8), Abi::CheriV3)
        .with_vm(VmConfig::functional().with_mem_size(TENANT_MEM))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sandbox_service");

    let cfg = tree_tenant();
    let mut service = SandboxService::new();
    let tenant = service.add_tenant(cfg.clone()).unwrap();

    // The per-request operation with snapshot forking: copy the warm
    // footprint onto a pooled zeroed store.
    g.bench_function("fork_warmed_guest", |b| {
        b.iter(|| black_box(service.fork_tenant(tenant)));
    });

    // What each request would cost without it: a fresh machine plus the
    // guest's warm-up run to the ready marker (program pre-compiled, so
    // this under-counts the true cold path by the compile time).
    let prog = compile(&cfg.source, cfg.abi).unwrap();
    g.bench_function("cold_boot_guest", |b| {
        b.iter(|| {
            let mut vm = Vm::new(prog.clone(), cfg.vm);
            match vm.run(cfg.fuel_budget) {
                Err(VmTrap {
                    pc,
                    cause: TrapCause::Breakpoint,
                }) => vm.set_pc(pc + 1),
                other => panic!("guest must reach its ready marker, got {other:?}"),
            }
            black_box(vm)
        });
    });

    // Aggregate throughput: 32 requests over the work-stealing scheduler.
    let requests: Vec<Request> = (0..32)
        .map(|i| Request {
            tenant,
            payload: vec![i as u8; 8],
        })
        .collect();
    g.bench_function("serve_32_requests", |b| {
        b.iter(|| black_box(service.serve(&requests, 4)));
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
