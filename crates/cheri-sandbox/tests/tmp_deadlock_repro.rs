use cheri_sandbox::scheduler::{run_sliced, Slice};
use std::time::Duration;

// deque0=[0,2], deque1=[1,3]; worker1 pops 3 (LIFO) and panics after a
// short sleep; worker0 finishes the rest and then spins on pending=1.
#[test]
#[should_panic(expected = "boom")]
fn panicking_worker_with_live_peer() {
    let _ = run_sliced(vec![0u8, 1, 2, 3], 2, |v| {
        if v == 3 {
            std::thread::sleep(Duration::from_millis(20));
            panic!("boom");
        }
        std::thread::sleep(Duration::from_millis(5));
        Slice::Done(v)
    });
}
