//! # `cheri-sandbox` — a multi-tenant sandbox service over the CHERI VM
//!
//! The paper's end goal is running untrusted C at scale on a capability
//! machine; this crate productionizes the single-guest `sandbox` example
//! into a request-serving service in the "secure rewind and discard"
//! mould:
//!
//! * **Copy-on-write guest forks.** A tenant's guest is compiled, booted
//!   and run once up to its *ready marker* (the `break` emitted by the
//!   mini-C `abort()` intrinsic), then captured as a [`cheri_vm::VmSnapshot`].
//!   Every request runs on a fork of that snapshot, which copies only the
//!   dirty-chunk footprint the warm-up actually touched — not the multi-MiB
//!   backing store — so forking is an order of magnitude cheaper than
//!   cold-booting and re-warming the guest.
//! * **Work-stealing, fuel-sliced scheduling.** Requests run across
//!   [`scheduler::run_sliced`] workers (std threads + per-worker deques).
//!   A guest that exhausts its preemption quantum is re-queued; a guest
//!   that traps is *rewound* — its fork dropped, its request discarded —
//!   and the tenant keeps serving from the pristine snapshot.
//! * **Per-tenant machine policy.** Each [`TenantConfig`] carries its own
//!   [`cheri_vm::VmConfig`] (execution backend, capability format, cache
//!   geometry, memory quota) and fuel policy (slice + per-request budget).
//!
//! Determinism is a first-class property: a forked request is bit-identical
//! (output, trap pc/cause, instret, simulated cycles, traffic ledger) to
//! running the same request on a cold-booted guest, and a batch served in
//! parallel returns exactly the responses of a serial run — each request
//! owns its fork, so no interleaving can leak state between requests.
//!
//! ```no_run
//! use cheri_compile::Abi;
//! use cheri_sandbox::{guests, Request, SandboxService, TenantConfig};
//!
//! let mut service = SandboxService::new();
//! let t = service
//!     .add_tenant(TenantConfig::new("tree", guests::tree_service(6), Abi::CheriV3))
//!     .unwrap();
//! let requests = vec![Request { tenant: t, payload: b"hello".to_vec() }];
//! let responses = service.serve(&requests, 4);
//! assert!(responses[0].outcome.is_completed());
//! ```

pub mod guests;
pub mod scheduler;
mod service;

pub use service::{Outcome, Request, Response, SandboxError, SandboxService, TenantConfig};
