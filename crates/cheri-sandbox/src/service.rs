//! The tenant table and the request-serving loop.

use crate::scheduler::{run_sliced, Slice};
use cheri_compile::{compile, Abi, CompileError};
use cheri_vm::{SharedHierarchy, TrapCause, Vm, VmConfig, VmSnapshot, VmTrap};
use std::error::Error;
use std::fmt;

/// Everything that defines a tenant: its guest program, ABI, machine
/// configuration (backend, capability format, cache geometry, memory
/// quota) and fuel policy.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Display name, for reports.
    pub name: String,
    /// Mini-C guest source. `main` must warm up, call `abort()` (the
    /// ready marker the service snapshots at), then serve one request
    /// from the `request` / `request_len` globals and return.
    pub source: String,
    /// Compilation ABI (MIPS, CHERIv2 or CHERIv3).
    pub abi: Abi,
    /// The tenant's machine: backend, capability format, cache model and
    /// memory quota all come from here.
    pub vm: VmConfig,
    /// Preemption quantum in retired instructions: a request that has not
    /// finished after a slice is re-queued behind other work.
    pub fuel_slice: u64,
    /// Total retired-instruction budget per request (also bounds the
    /// warm-up run at boot).
    pub fuel_budget: u64,
}

impl TenantConfig {
    /// A tenant with the default fuel policy (200 k-instruction slices,
    /// 50 M budget) on a cache-less machine.
    pub fn new(name: &str, source: String, abi: Abi) -> TenantConfig {
        TenantConfig {
            name: name.to_string(),
            source,
            abi,
            vm: VmConfig::functional(),
            fuel_slice: 200_000,
            fuel_budget: 50_000_000,
        }
    }

    /// The same tenant on `vm`.
    pub fn with_vm(mut self, vm: VmConfig) -> TenantConfig {
        self.vm = vm;
        self
    }

    /// The same tenant with `slice`-instruction preemption quanta.
    pub fn with_fuel_slice(mut self, slice: u64) -> TenantConfig {
        self.fuel_slice = slice;
        self
    }

    /// The same tenant with a `budget`-instruction per-request ceiling.
    pub fn with_fuel_budget(mut self, budget: u64) -> TenantConfig {
        self.fuel_budget = budget;
        self
    }
}

/// Why a tenant could not be admitted to the service.
#[derive(Clone, Debug)]
pub enum SandboxError {
    /// The guest source did not compile.
    Compile(CompileError),
    /// The guest trapped during warm-up, before reaching its ready marker.
    Boot(VmTrap),
    /// The guest returned from `main` without ever calling `abort()`.
    NoReadyMarker {
        /// The exit code it returned instead.
        exit: i64,
    },
    /// The guest image has no `request` buffer to serve from.
    MissingSymbol(String),
}

impl fmt::Display for SandboxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SandboxError::Compile(e) => write!(f, "guest does not compile: {e}"),
            SandboxError::Boot(t) => write!(f, "guest trapped during warm-up: {t}"),
            SandboxError::NoReadyMarker { exit } => {
                write!(f, "guest exited ({exit}) without reaching its ready marker")
            }
            SandboxError::MissingSymbol(s) => write!(f, "guest image has no {s:?} symbol"),
        }
    }
}

impl Error for SandboxError {}

impl From<CompileError> for SandboxError {
    fn from(e: CompileError) -> SandboxError {
        SandboxError::Compile(e)
    }
}

/// One admitted tenant: the warmed snapshot plus everything needed to
/// poke a request into a fork.
#[derive(Clone, Debug)]
struct Tenant {
    name: String,
    snapshot: VmSnapshot,
    request_addr: u64,
    request_cap: u64,
    len_addr: Option<u64>,
    fuel_slice: u64,
    fuel_budget: u64,
    /// Baselines at the snapshot point, subtracted from per-request
    /// reports so a response describes only the request's own work.
    warm_output: usize,
    warm_instret: u64,
    warm_cycles: u64,
}

/// One unit of work: deliver `payload` to tenant `tenant`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Index returned by [`SandboxService::add_tenant`].
    pub tenant: usize,
    /// Bytes copied into the guest's `request` buffer.
    pub payload: Vec<u8>,
}

/// How a request ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The guest served the request and returned.
    Completed {
        /// `main`'s return value.
        exit: i64,
        /// Console output produced by the request phase alone.
        output: String,
        /// Instructions the request phase retired.
        instret: u64,
        /// Simulated cycles the request phase cost.
        cycles: u64,
        /// Cycles (included in `cycles`) the request spent queueing behind
        /// other tenants on shared memory edges. Always 0 unless the
        /// service was built with [`SandboxService::with_shared_memory`].
        contention: u64,
        /// Fuel slices consumed (1 = never preempted).
        slices: u32,
    },
    /// The guest trapped; the fork was discarded (rewind) and the tenant
    /// keeps serving from its pristine snapshot.
    Trapped {
        /// The architectural trap, pc and cause.
        trap: VmTrap,
        /// Console output produced before the trap.
        output: String,
        /// Fuel slices consumed including the trapping one.
        slices: u32,
    },
    /// The request exceeded the tenant's per-request fuel budget.
    BudgetExhausted {
        /// The budget it hit.
        budget: u64,
    },
    /// The request never ran (e.g. payload larger than the guest buffer).
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
}

impl Outcome {
    /// True for [`Outcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }
}

/// One served request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Index of the request in the batch handed to [`SandboxService::serve`].
    pub request: usize,
    /// The tenant that served it.
    pub tenant: usize,
    /// How it ended.
    pub outcome: Outcome,
}

/// A request mid-flight on the scheduler. The fork is created on the
/// job's first slice, not at submission, so the number of live guest
/// memories is bounded by the worker count, not the batch size.
struct Job<'a> {
    index: usize,
    request: &'a Request,
    vm: Option<Box<Vm>>,
    spent: u64,
    slices: u32,
}

/// The multi-tenant sandbox service: admit tenants once, then serve
/// request batches from copy-on-write forks of their warmed images.
#[derive(Clone, Debug, Default)]
pub struct SandboxService {
    tenants: Vec<Tenant>,
    shared_memory: bool,
}

impl SandboxService {
    /// An empty service.
    pub fn new() -> SandboxService {
        SandboxService::default()
    }

    /// The same service with the shared memory system on or off.
    ///
    /// When on, every [`SandboxService::serve`] batch arbitrates its
    /// requests' L1↔L2 and L2↔DRAM transfers over one pair of shared
    /// edges, as if each fork ran on its own core of a multi-core host
    /// with private caches over a shared memory system. Queueing delays
    /// are charged to the waiting request's cycles and reported as
    /// [`Outcome::Completed::contention`]. Tenants on cache-less machines
    /// are unaffected. Off (the default), forks have independent memory
    /// systems and responses never depend on batch composition.
    pub fn with_shared_memory(mut self, on: bool) -> SandboxService {
        self.shared_memory = on;
        self
    }

    /// Compiles, boots and warms `cfg`'s guest up to its ready marker,
    /// snapshots it, and returns the tenant's index.
    ///
    /// # Errors
    ///
    /// [`SandboxError`] if the guest does not compile, traps before the
    /// marker, never reaches it, or has no `request` buffer.
    pub fn add_tenant(&mut self, cfg: TenantConfig) -> Result<usize, SandboxError> {
        let prog = compile(&cfg.source, cfg.abi)?;
        let find = |name: &str| {
            prog.symbols
                .iter()
                .find(|s| !s.is_func && s.name == name)
                .map(|s| (s.value, s.size))
        };
        let (request_addr, request_cap) =
            find("request").ok_or_else(|| SandboxError::MissingSymbol("request".into()))?;
        let len_addr = find("request_len").map(|(addr, _)| addr);
        let mut vm = Vm::new(prog, cfg.vm);
        match vm.run(cfg.fuel_budget) {
            Err(VmTrap {
                pc,
                cause: TrapCause::Breakpoint,
            }) => vm.set_pc(pc + 1),
            Err(trap) => return Err(SandboxError::Boot(trap)),
            Ok(status) => return Err(SandboxError::NoReadyMarker { exit: status.code }),
        }
        let stats = vm.stats();
        let tenant = Tenant {
            name: cfg.name,
            warm_output: vm.output().len(),
            warm_instret: stats.instret,
            warm_cycles: stats.cycles,
            snapshot: vm.snapshot(),
            request_addr,
            request_cap,
            len_addr,
            fuel_slice: cfg.fuel_slice.max(1),
            fuel_budget: cfg.fuel_budget.max(1),
        };
        self.tenants.push(tenant);
        Ok(self.tenants.len() - 1)
    }

    /// Number of admitted tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The display name of tenant `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a tenant index.
    pub fn tenant_name(&self, id: usize) -> &str {
        &self.tenants[id].name
    }

    /// Bytes each request fork of tenant `id` copies (the guest's warm
    /// memory footprint).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a tenant index.
    pub fn warm_bytes(&self, id: usize) -> u64 {
        self.tenants[id].snapshot.warm_bytes()
    }

    /// Forks a fresh machine from tenant `id`'s warmed snapshot — the
    /// per-request operation, exposed for benchmarks and tests.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a tenant index.
    pub fn fork_tenant(&self, id: usize) -> Vm {
        self.tenants[id].snapshot.fork()
    }

    /// Serves every request across `workers` work-stealing workers
    /// (capped at host parallelism; one worker runs inline on the
    /// caller's thread). Responses come back in request order, and are
    /// identical for every worker count and interleaving: each request
    /// runs on its own fork, so tenants share nothing but the read-only
    /// snapshots.
    ///
    /// # Panics
    ///
    /// Panics if a request names a tenant index that does not exist.
    pub fn serve(&self, requests: &[Request], workers: usize) -> Vec<Response> {
        for r in requests {
            assert!(r.tenant < self.tenants.len(), "unknown tenant {}", r.tenant);
        }
        let jobs: Vec<Job<'_>> = requests
            .iter()
            .enumerate()
            .map(|(index, request)| Job {
                index,
                request,
                vm: None,
                spent: 0,
                slices: 0,
            })
            .collect();
        // One contention window per batch: every request fork attaches to
        // the same pair of shared edges, whichever worker steps it.
        let shared = self.shared_memory.then(SharedHierarchy::new);
        let mut responses = run_sliced(jobs, workers, |job| self.step(job, shared.as_ref()));
        responses.sort_unstable_by_key(|r| r.request);
        responses
    }

    /// Runs one fuel slice of `job`.
    fn step<'a>(
        &self,
        mut job: Job<'a>,
        shared: Option<&SharedHierarchy>,
    ) -> Slice<Job<'a>, Response> {
        let tenant = &self.tenants[job.request.tenant];
        let (index, tenant_id) = (job.index, job.request.tenant);
        let done = move |outcome| {
            Slice::Done(Response {
                request: index,
                tenant: tenant_id,
                outcome,
            })
        };
        if job.vm.is_none() {
            let payload = &job.request.payload;
            if payload.len() as u64 > tenant.request_cap {
                return done(Outcome::Rejected {
                    reason: format!(
                        "payload is {} bytes but the request buffer holds {}",
                        payload.len(),
                        tenant.request_cap
                    ),
                });
            }
            let mut vm = tenant.snapshot.fork();
            vm.mem_mut()
                .write_bytes(tenant.request_addr, payload)
                .expect("request buffer is in the data segment");
            if let Some(len_addr) = tenant.len_addr {
                vm.mem_mut()
                    .write_u64(len_addr, payload.len() as u64)
                    .expect("request_len is in the data segment");
            }
            if let Some(sh) = shared {
                vm.attach_shared_hierarchy(sh.clone());
            }
            job.vm = Some(Box::new(vm));
        }
        let vm = job.vm.as_mut().expect("job has a live fork");
        let slice = tenant.fuel_slice.min(tenant.fuel_budget - job.spent);
        job.slices += 1;
        match vm.run(slice) {
            Ok(status) => {
                let stats = status.stats;
                done(Outcome::Completed {
                    exit: status.code,
                    output: String::from_utf8_lossy(&vm.output()[tenant.warm_output..])
                        .into_owned(),
                    instret: stats.instret - tenant.warm_instret,
                    cycles: stats.cycles - tenant.warm_cycles,
                    // The warm-up ran before the shared edges were
                    // attached, so the whole counter belongs to the
                    // request phase — no baseline to subtract.
                    contention: stats.cache.as_ref().map_or(0, |c| c.contention_cycles),
                    slices: job.slices,
                })
            }
            Err(VmTrap {
                cause: TrapCause::OutOfFuel,
                ..
            }) => {
                job.spent += slice;
                if job.spent >= tenant.fuel_budget {
                    done(Outcome::BudgetExhausted {
                        budget: tenant.fuel_budget,
                    })
                } else {
                    Slice::Yield(job)
                }
            }
            // Any other trap: rewind — the fork is dropped with the job,
            // the tenant's snapshot is untouched, the request is discarded.
            Err(trap) => {
                let output =
                    String::from_utf8_lossy(&vm.output()[tenant.warm_output..]).into_owned();
                done(Outcome::Trapped {
                    trap,
                    output,
                    slices: job.slices,
                })
            }
        }
    }
}
