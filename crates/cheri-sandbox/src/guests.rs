//! Demo guest programs for the sandbox service, written in the same
//! mini-C dialect as the paper workloads.
//!
//! Every guest follows the service's warm-up protocol: `main` builds its
//! working state, calls `abort()` — the `break` instruction the service
//! treats as the *ready marker* and snapshots at — and then serves exactly
//! one request from the `request`/`request_len` globals before returning.
//! Each forked machine resumes just past the marker with the warmed state
//! (including `main`'s locals, which live on the snapshotted stack).

/// A pointer-heavy tenant: warm-up builds a `depth`-deep binary tree
/// (Olden `treeadd` style); a request salts the tree sum with a rolling
/// hash of the payload bytes.
pub fn tree_service(depth: u32) -> String {
    format!(
        r#"
unsigned char request[64];
long request_len = 0;

struct node {{ long v; struct node *l; struct node *r; }};

struct node *build(long depth, long v) {{
    struct node *n = (struct node*)malloc(sizeof(struct node));
    n->v = v;
    if (depth <= 1) {{
        n->l = 0;
        n->r = 0;
        return n;
    }}
    n->l = build(depth - 1, v * 2);
    n->r = build(depth - 1, v * 2 + 1);
    return n;
}}

long sum(struct node *n) {{
    if (!n) {{ return 0; }}
    return n->v + sum(n->l) + sum(n->r);
}}

int main(void) {{
    struct node *root = build({depth}, 1);
    long warm = sum(root);
    abort();
    long salt = 0;
    long i = 0;
    while (i < request_len) {{
        salt = salt * 31 + (long)request[i];
        i = i + 1;
    }}
    putint(warm + sum(root) + salt);
    putchar(10);
    return 0;
}}
"#
    )
}

/// A scalar tenant: warm-up fills a substitution table; a request is
/// hashed through it (zlib-lite flavour, no pointer chasing).
pub fn table_service() -> String {
    r#"
unsigned char table[256];
unsigned char request[128];
long request_len = 0;

int main(void) {
    unsigned char *t = table;
    for (int i = 0; i < 256; i++) {
        t[i] = (unsigned char)((i * 167 + 13) % 256);
    }
    abort();
    long h = 5381;
    long i = 0;
    while (i < request_len) {
        h = (h * 33 + (long)t[(long)request[i]]) % 1000000007;
        i = i + 1;
    }
    putint(h);
    putchar(10);
    return 0;
}
"#
    .to_string()
}

/// The deliberately misbehaving tenant: requests whose first payload byte
/// is odd stray ~250 KB past a 64-byte heap buffer — a capability bounds
/// trap under the CHERI ABIs, which the service answers by rewinding the
/// fork and discarding the request while every other tenant keeps being
/// served. Even first bytes stay in bounds and succeed.
pub fn oob_service() -> String {
    r#"
unsigned char request[64];
long request_len = 0;

int main(void) {
    unsigned char *buf = (unsigned char*)malloc(64);
    for (int i = 0; i < 64; i++) {
        buf[i] = (unsigned char)(i * 3);
    }
    abort();
    long idx = 0;
    if (request_len > 0) { idx = (long)request[0]; }
    if (idx % 2 == 1) {
        idx = idx + 250000;
    } else {
        idx = idx % 64;
    }
    putint((long)buf[idx]);
    putchar(10);
    return 0;
}
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_compile::{compile, Abi};

    #[test]
    fn demo_guests_compile_for_their_abis() {
        for abi in [Abi::Mips, Abi::CheriV3] {
            compile(&tree_service(4), abi).unwrap_or_else(|e| panic!("tree/{abi}: {e}"));
            compile(&table_service(), abi).unwrap_or_else(|e| panic!("table/{abi}: {e}"));
            compile(&oob_service(), abi).unwrap_or_else(|e| panic!("oob/{abi}: {e}"));
        }
    }
}
