//! A work-stealing executor for preemptible jobs.
//!
//! Jobs are *sliced*: the step function runs a job for one quantum and
//! either finishes it ([`Slice::Done`]) or hands it back to be re-queued
//! ([`Slice::Yield`]) — which is exactly the shape of a guest VM running
//! under a fuel budget. Each worker owns a deque; it pops its own work
//! LIFO (newest first, keeping one job hot per worker) and steals FIFO
//! from the front of other workers' deques when it runs dry.
//!
//! Mirrors the `fan_out_ordered` conventions from `cheri-interp`: worker
//! count is capped at host parallelism, a 1-core host (or a single-worker
//! request) runs the same discipline inline on the caller's thread, and
//! worker panics propagate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// What one scheduling quantum did with a job.
pub enum Slice<J, R> {
    /// The job finished with this result.
    Done(R),
    /// The job was preempted; re-queue it and run it again later.
    Yield(J),
}

/// The worker count `run_sliced` will actually use for `requested`
/// workers and `jobs` jobs on this host.
pub fn effective_workers(requested: usize, jobs: usize) -> usize {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    requested.max(1).min(host).min(jobs.max(1))
}

/// Runs every job to completion across `workers` work-stealing workers,
/// returning the results in completion order (callers that care about
/// request order should embed an index in `R` and sort).
///
/// `step` must be safe to call concurrently from multiple threads; each
/// individual job is only ever stepped by one worker at a time.
pub fn run_sliced<J, R>(
    jobs: Vec<J>,
    workers: usize,
    step: impl Fn(J) -> Slice<J, R> + Sync,
) -> Vec<R>
where
    J: Send,
    R: Send,
{
    let workers = effective_workers(workers, jobs.len());
    if workers <= 1 {
        return run_inline(jobs, step);
    }
    run_workers(jobs, workers, step)
}

/// Sets the abort flag if dropped while its owning `step` call is
/// unwinding, so peer workers stop spinning on a pending count that will
/// never reach zero. Disarmed on the normal path.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// The multi-worker discipline behind [`run_sliced`], with the worker
/// count taken as given (the public entry point caps it at host
/// parallelism; tests drive this directly so the cross-thread paths are
/// exercised even on a single-core host).
fn run_workers<J, R>(jobs: Vec<J>, workers: usize, step: impl Fn(J) -> Slice<J, R> + Sync) -> Vec<R>
where
    J: Send,
    R: Send,
{
    let pending = AtomicUsize::new(jobs.len());
    let abort = AtomicBool::new(false);
    let deques: Vec<Mutex<VecDeque<J>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, j) in jobs.into_iter().enumerate() {
        deques[i % workers].lock().unwrap().push_back(j);
    }
    let results: Vec<Mutex<Vec<R>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (deques, pending, results, step) = (&deques, &pending, &results, &step);
                let abort = &abort;
                s.spawn(move || loop {
                    if abort.load(Ordering::SeqCst) {
                        break;
                    }
                    match pop_or_steal(deques, w) {
                        Some(job) => {
                            // A panicking step (a bug in the job body) must
                            // not leave peers spinning forever on a pending
                            // count that can no longer reach zero: flag the
                            // abort before the unwind leaves this frame.
                            let guard = AbortOnPanic(abort);
                            let sliced = step(job);
                            std::mem::forget(guard);
                            match sliced {
                                Slice::Done(r) => {
                                    results[w].lock().unwrap().push(r);
                                    pending.fetch_sub(1, Ordering::SeqCst);
                                }
                                Slice::Yield(job) => deques[w].lock().unwrap().push_back(job),
                            }
                        }
                        None => {
                            if pending.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
        }
    });
    results
        .into_iter()
        .flat_map(|m| m.into_inner().unwrap())
        .collect()
}

/// The single-worker discipline on the caller's thread: same LIFO order a
/// worker uses, so at most one preempted job is ever live at a time.
fn run_inline<J, R>(jobs: Vec<J>, step: impl Fn(J) -> Slice<J, R>) -> Vec<R> {
    let mut queue: VecDeque<J> = jobs.into();
    let mut out = Vec::with_capacity(queue.len());
    while let Some(job) = queue.pop_back() {
        match step(job) {
            Slice::Done(r) => out.push(r),
            Slice::Yield(job) => queue.push_back(job),
        }
    }
    out
}

/// Own deque from the back (LIFO); steal from the front (FIFO) of the
/// nearest victim to the right.
fn pop_or_steal<J>(deques: &[Mutex<VecDeque<J>>], w: usize) -> Option<J> {
    if let Some(j) = deques[w].lock().unwrap().pop_back() {
        return Some(j);
    }
    for i in 1..deques.len() {
        let victim = (w + i) % deques.len();
        if let Some(j) = deques[victim].lock().unwrap().pop_front() {
            return Some(j);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A job that must be stepped `left` more times before finishing.
    struct Count {
        id: usize,
        left: u32,
    }

    fn run_counts(workers: usize) -> Vec<(usize, u32)> {
        let jobs: Vec<Count> = (0..20)
            .map(|id| Count {
                id,
                left: id as u32 % 5,
            })
            .collect();
        let mut out = run_sliced(jobs, workers, |mut j: Count| {
            if j.left == 0 {
                Slice::Done((j.id, j.id as u32 % 5))
            } else {
                j.left -= 1;
                Slice::Yield(j)
            }
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn all_jobs_complete_under_any_worker_count() {
        let expect: Vec<(usize, u32)> = (0..20).map(|id| (id, id as u32 % 5)).collect();
        for workers in [1, 2, 4, 9, 64] {
            assert_eq!(run_counts(workers), expect, "workers={workers}");
        }
    }

    #[test]
    fn zero_jobs_and_zero_workers_are_fine() {
        let none: Vec<u8> = run_sliced(Vec::<u8>::new(), 0, |_| Slice::Done(0u8));
        assert!(none.is_empty());
        let one = run_sliced(vec![7u8], 0, Slice::Done);
        assert_eq!(one, vec![7]);
    }

    #[test]
    #[should_panic(expected = "job blew up")]
    fn worker_panics_propagate() {
        let _ = run_sliced(vec![1u8, 2], 2, |v| {
            assert!(v != 2, "job blew up");
            Slice::Done(v)
        });
    }

    /// Regression test for the abort flag: deque0=[0,2], deque1=[1,3];
    /// worker 1 pops job 3 (LIFO) and panics after a short sleep while
    /// worker 0 is still finishing its own jobs. Before the flag, worker 0
    /// then spun forever on `pending == 1` and `run_sliced` never
    /// returned. Driven through `run_workers` directly so both threads
    /// really exist even on a single-core host (the public entry point
    /// would cap to the inline path there).
    #[test]
    #[should_panic(expected = "boom")]
    fn panicking_worker_releases_spinning_peers() {
        use std::time::Duration;
        let _ = run_workers(vec![0u8, 1, 2, 3], 2, |v| {
            if v == 3 {
                std::thread::sleep(Duration::from_millis(20));
                panic!("boom");
            }
            std::thread::sleep(Duration::from_millis(5));
            Slice::Done(v)
        });
    }

    /// The multi-worker discipline itself (uncapped) completes every job
    /// and loses none to the abort machinery on panic-free runs.
    #[test]
    fn run_workers_completes_everything_without_the_host_cap() {
        for workers in [2, 3, 8] {
            let jobs: Vec<u32> = (0..40).collect();
            let mut out = run_workers(jobs, workers, |j: u32| {
                if j % 3 == 0 {
                    Slice::Done(j)
                } else {
                    Slice::Yield(j - (j % 3).min(1))
                }
            });
            out.sort_unstable();
            let expect: Vec<u32> = (0..40).map(|j| j - j % 3).collect();
            let mut expect_sorted = expect;
            expect_sorted.sort_unstable();
            assert_eq!(out, expect_sorted, "workers={workers}");
        }
    }
}
