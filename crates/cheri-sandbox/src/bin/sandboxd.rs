//! The sandbox service driver: boots a tenant fleet (including one
//! deliberately trapping guest), serves a deterministic request stream
//! across work-stealing workers, and reports fork latency vs cold boot
//! plus aggregate throughput.
//!
//! Usage: `sandboxd [requests] [tenants] [workers] [backend]` with
//! `backend` one of `reference`, `chained`, `template` (default: the
//! machine default, template). Passing the literal word `shared`
//! anywhere switches the fleet onto cache-modelled machines (the FPGA
//! soft-core geometry) arbitrating one shared memory system, and adds
//! per-tenant contention columns to the report.

use cheri_compile::{compile, Abi};
use cheri_sandbox::{Outcome, Request, SandboxService, TenantConfig};
use cheri_vm::{BackendKind, CapFormat, TrapCause, Vm, VmTrap};
use std::time::Instant;

/// Per-tenant memory quota: big enough for the demo guests, small enough
/// that a batch of live forks stays cheap on a CI box.
const TENANT_MEM: u64 = 4 << 20;

fn tenant_fleet(n: usize, backend: Option<BackendKind>, shared: bool) -> Vec<TenantConfig> {
    let vm = move |format: CapFormat| {
        // Shared mode needs a memory system to contend on: model each
        // tenant as an FPGA soft core instead of a functional machine.
        let base = if shared {
            cheri_vm::VmConfig::fpga()
        } else {
            cheri_vm::VmConfig::functional()
        };
        let mut cfg = base.with_mem_size(TENANT_MEM).with_cap_format(format);
        if let Some(kind) = backend {
            cfg = cfg.with_backend(kind);
        }
        cfg
    };
    (0..n)
        .map(|i| {
            let templates = [
                (
                    "tree-v3",
                    cheri_sandbox::guests::tree_service(8),
                    Abi::CheriV3,
                    CapFormat::Cap256,
                ),
                (
                    "table-128",
                    cheri_sandbox::guests::table_service(),
                    Abi::CheriV3,
                    CapFormat::Cap128,
                ),
                (
                    "oob-v3",
                    cheri_sandbox::guests::oob_service(),
                    Abi::CheriV3,
                    CapFormat::Cap256,
                ),
                (
                    "tree-mips",
                    cheri_sandbox::guests::tree_service(5),
                    Abi::Mips,
                    CapFormat::Cap256,
                ),
            ];
            let (name, source, abi, format) = templates[i % templates.len()].clone();
            TenantConfig::new(&format!("{name}#{i}"), source, abi)
                .with_vm(vm(format))
                .with_fuel_slice(50_000)
        })
        .collect()
}

/// A tiny deterministic generator (no host RNG, so every run and every
/// worker count sees the same stream).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn request_stream(n: usize, tenants: usize) -> Vec<Request> {
    let mut rng = Lcg(0x5EED);
    (0..n)
        .map(|i| {
            let len = 1 + (rng.next() as usize % 24);
            let payload: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            Request {
                tenant: i % tenants,
                payload,
            }
        })
        .collect()
}

/// Cold guest initialization: compile nothing (the program is prebuilt),
/// but pay the full `Vm::new` + warm-up run to the ready marker — what a
/// request would cost without snapshot forking.
fn cold_boot(prog: &cheri_isa::Program, cfg: cheri_vm::VmConfig, fuel: u64) -> Vm {
    let mut vm = Vm::new(prog.clone(), cfg);
    match vm.run(fuel) {
        Err(VmTrap {
            pc,
            cause: TrapCause::Breakpoint,
        }) => vm.set_pc(pc + 1),
        other => panic!("guest must reach its ready marker, got {other:?}"),
    }
    vm
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let shared = raw.iter().any(|a| a == "shared");
    let mut args = raw.into_iter().filter(|a| a != "shared");
    let requests: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let tenants: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let backend = args.next().map(|name| {
        BackendKind::from_name(&name)
            .unwrap_or_else(|| panic!("unknown backend {name:?} (reference|chained|template)"))
    });

    let fleet = tenant_fleet(tenants, backend, shared);
    let mut service = SandboxService::new().with_shared_memory(shared);
    let boot_start = Instant::now();
    for cfg in &fleet {
        service
            .add_tenant(cfg.clone())
            .unwrap_or_else(|e| panic!("admitting {}: {e}", cfg.name));
    }
    println!(
        "booted {tenants} tenants in {:.1} ms (warm images: {})",
        boot_start.elapsed().as_secs_f64() * 1e3,
        (0..tenants)
            .map(|t| format!(
                "{} {} KiB",
                service.tenant_name(t),
                service.warm_bytes(t) >> 10
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Fork vs cold-init latency on tenant 0 (the pointer-heavy tree guest).
    let cfg0 = &fleet[0];
    let prog = compile(&cfg0.source, cfg0.abi).expect("tenant 0 compiles");
    let cold_runs = 20;
    let t = Instant::now();
    for _ in 0..cold_runs {
        std::hint::black_box(cold_boot(&prog, cfg0.vm, cfg0.fuel_budget));
    }
    let cold_us = t.elapsed().as_secs_f64() * 1e6 / cold_runs as f64;
    let fork_runs = 2000;
    let t = Instant::now();
    for _ in 0..fork_runs {
        std::hint::black_box(service.fork_tenant(0));
    }
    let fork_us = t.elapsed().as_secs_f64() * 1e6 / fork_runs as f64;
    println!(
        "fork {:.1} us vs cold init {:.1} us  ({:.0}x faster)",
        fork_us,
        cold_us,
        cold_us / fork_us
    );

    let stream = request_stream(requests, tenants);
    let t = Instant::now();
    let responses = service.serve(&stream, workers);
    let wall = t.elapsed();

    let mut per_tenant = vec![[0u32; 4]; tenants];
    let mut sim_cycles = vec![0u64; tenants];
    let mut sim_waited = vec![0u64; tenants];
    for r in &responses {
        let slot = match &r.outcome {
            Outcome::Completed {
                cycles, contention, ..
            } => {
                sim_cycles[r.tenant] += cycles;
                sim_waited[r.tenant] += contention;
                0
            }
            Outcome::Trapped { .. } => 1,
            Outcome::BudgetExhausted { .. } => 2,
            Outcome::Rejected { .. } => 3,
        };
        per_tenant[r.tenant][slot] += 1;
    }
    let contention_cols = if shared {
        "     cycles  contention"
    } else {
        ""
    };
    println!("tenant                completed  trapped  exhausted  rejected{contention_cols}");
    for (t, counts) in per_tenant.iter().enumerate() {
        print!(
            "{:<22}{:>9}{:>9}{:>11}{:>10}",
            service.tenant_name(t),
            counts[0],
            counts[1],
            counts[2],
            counts[3]
        );
        if shared {
            let pct = if sim_cycles[t] > 0 {
                100.0 * sim_waited[t] as f64 / sim_cycles[t] as f64
            } else {
                0.0
            };
            print!("{:>11}{:>10} ({pct:.1}%)", sim_cycles[t], sim_waited[t]);
        }
        println!();
    }
    let served: u32 = per_tenant.iter().map(|c| c.iter().sum::<u32>()).sum();
    assert_eq!(served as usize, requests, "every request must be answered");
    let trapped: u32 = per_tenant.iter().map(|c| c[1]).sum();
    println!(
        "served {requests} requests across {tenants} tenants on {workers} workers in {:.1} ms  ({:.0} req/s, {trapped} rewound)",
        wall.as_secs_f64() * 1e3,
        requests as f64 / wall.as_secs_f64()
    );
}
