//! Static-vs-dynamic agreement: the lint's per-model predictions checked
//! against the interpreters actually running the same programs, and its
//! idiom tallies checked bit-for-bit against the AST analyzer.
//!
//! The asymmetric contract:
//!
//! * **Unsound-clean is a hard failure.** If the lint says model `m` runs
//!   a program, running it under `m` must succeed. A static analysis that
//!   blesses a trapping program is worse than none.
//! * **Imprecise-warn is tallied and bounded.** The lint may warn about a
//!   program that happens to run (a `?` cell); those are counted and
//!   pinned so precision cannot regress silently.

use cheri_idioms::{cases, pitfalls, Idiom};
use cheri_interp::ModelKind;
use cheri_lint::analyze_source;

/// One canonical program: its name, source, and dynamic truth per model.
type Canonical = (String, &'static str, Vec<(ModelKind, bool)>);

/// All 10 canonical programs: the 8 Table 3 idiom cases + the 2 CRuby
/// pitfalls, with their dynamic truth per model.
fn canonical_programs() -> Vec<Canonical> {
    let mut progs = Vec::new();
    for idiom in Idiom::ALL {
        let truth = ModelKind::ALL
            .iter()
            .map(|&m| (m, cases::run_case(m, idiom).is_ok()))
            .collect();
        progs.push((
            format!("case {}", idiom.label()),
            cases::source(idiom),
            truth,
        ));
    }
    for p in pitfalls::Pitfall::ALL {
        let truth = ModelKind::ALL
            .iter()
            .map(|&m| (m, pitfalls::run_case(m, p).is_ok()))
            .collect();
        progs.push((format!("pitfall {}", p.name()), pitfalls::source(p), truth));
    }
    progs
}

#[test]
fn no_unsound_clean_on_canonical_programs() {
    for (name, src, truth) in canonical_programs() {
        let report = analyze_source(src).expect("canonical programs parse");
        for (m, dynamic_ok) in truth {
            if report.works(m) {
                assert!(
                    dynamic_ok,
                    "UNSOUND-CLEAN: {name} predicted to run under {m} but traps\n{}",
                    report.render()
                );
            }
        }
    }
}

/// The exact static verdict matrix, hand-derived and pinned: every cell
/// where the lint is *more* conservative than the dynamic truth is a
/// deliberate, known imprecision — currently exactly one (`?` below).
#[test]
fn static_matrix_is_pinned() {
    let mut imprecise: Vec<String> = Vec::new();
    for (name, src, truth) in canonical_programs() {
        let report = analyze_source(src).expect("canonical programs parse");
        for (m, dynamic_ok) in truth {
            let predicted = report.works(m);
            if predicted != dynamic_ok {
                assert!(dynamic_ok && !predicted, "unsound cell at ({name}, {m})");
                imprecise.push(format!("({name}, {})", m.display_name()));
            }
        }
    }
    // The single tolerated `?`: TagStripCopy runs under Relaxed (raw bits
    // survive the byte copy and the target is live), but the lint cannot
    // prove the byte-reassembled pointer lands back inside the object.
    assert_eq!(
        imprecise,
        vec!["(pitfall TagStrip, Relaxed)".to_string()],
        "imprecision budget changed"
    );
}

/// Each canonical case's idiom tallies match the AST analyzer exactly —
/// the same property the corpus test checks at scale.
#[test]
fn case_idiom_counts_match_ast_analyzer() {
    let sources: Vec<(String, &str)> = Idiom::ALL
        .iter()
        .map(|&i| (format!("case {}", i.label()), cases::source(i)))
        .chain(
            pitfalls::Pitfall::ALL
                .iter()
                .map(|&p| (format!("pitfall {}", p.name()), pitfalls::source(p))),
        )
        .collect();
    for (name, src) in sources {
        let unit = cheri_c::parse(src).expect("canonical programs parse");
        let ast = cheri_idioms::analyzer::analyze(&unit);
        let lint = cheri_lint::analyze(&unit).idiom_counts();
        for idiom in Idiom::ALL {
            assert_eq!(
                lint[idiom.index()],
                ast.get(idiom),
                "{name}: {} count diverges from the AST analyzer",
                idiom.label()
            );
        }
    }
}

/// Table 1 at corpus scale: the flow-sensitive IR lint lands on exactly
/// the counts the flow-insensitive AST analyzer reports, package by
/// package — the acceptance bar for replacing one with the other.
#[test]
fn corpus_idiom_counts_are_bit_identical_to_ast_analyzer() {
    for pkg in cheri_idioms::corpus::generate_corpus(2026) {
        let unit = cheri_c::parse(&pkg.source).expect("corpus packages parse");
        let ast = cheri_idioms::analyzer::analyze(&unit);
        let lint = cheri_lint::analyze(&unit).idiom_counts();
        for idiom in Idiom::ALL {
            assert_eq!(
                lint[idiom.index()],
                ast.get(idiom),
                "package {}: {} count diverges ({} lint vs {} ast)",
                pkg.spec.name,
                idiom.label(),
                lint[idiom.index()],
                ast.get(idiom)
            );
        }
    }
}

/// Findings carry usable source positions: every idiom finding points at
/// a real line of the analyzed source.
#[test]
fn findings_have_source_lines() {
    for idiom in Idiom::ALL {
        let src = cases::source(idiom);
        let nlines = src.lines().count() as u32;
        let report = analyze_source(src).expect("case parses");
        for f in report.idiom_findings() {
            assert!(
                f.line >= 1 && f.line <= nlines,
                "case {}: finding line {} outside source ({} lines)",
                idiom.label(),
                f.line,
                nlines
            );
            assert!(!f.func.is_empty(), "finding must name its function");
        }
    }
}

/// The renderer produces one diagnostic per finding plus a verdict line.
#[test]
fn render_is_line_per_finding() {
    let report = analyze_source(cases::source(Idiom::Mask)).expect("case parses");
    let text = report.render();
    assert_eq!(text.lines().count(), report.findings.len() + 1);
    assert!(text.contains("MASK"), "{text}");
    assert!(text.lines().last().unwrap().contains("not portable"));
}
