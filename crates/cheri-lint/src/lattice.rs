//! The abstract domain: value ranges, pointer provenance and the
//! model-set bitmask the verdicts are expressed in.
//!
//! The lattice mirrors what the seven [`cheri_interp::ModelKind`]s track at
//! run time. A pointer's abstract state carries everything any model's
//! check consults: the providing object ([`Region`]), the byte offset
//! range into it, whether metadata was lost to a byte copy
//! ([`PtrAbs::stripped`]), whether the value round-tripped through an
//! integer ([`RoundTrip`]) and whether that integer was a capability-
//! carrying `intptr_t`/`intcap_t` or a plain C integer. Integers carry an
//! optional [`Taint`] recording the pointer they were derived from, so a
//! later int→pointer cast can reconstruct provenance the way each model's
//! `int_to_ptr` would.

use cheri_interp::{ConstOrigin, ModelKind};

/// A signed 64-bit interval `[lo, hi]` (inclusive). The lattice top is
/// [`Interval::FULL`]; there is no bottom (empty meets return `None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound, inclusive.
    pub lo: i64,
    /// Upper bound, inclusive.
    pub hi: i64,
}

impl Interval {
    /// The full `i64` range.
    pub const FULL: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The single value `v`.
    pub fn singleton(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`, panicking when inverted.
    pub fn new(lo: i64, hi: i64) -> Interval {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// The value when the interval is a single point.
    pub fn as_singleton(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether `v` is inside.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound.
    pub fn join(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Greatest lower bound, `None` when disjoint.
    pub fn meet(self, o: Interval) -> Option<Interval> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Classic interval widening: any bound that grew jumps to infinity.
    pub fn widen(self, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    fn from_corners(cs: [i128; 4]) -> Interval {
        let lo = cs.iter().copied().min().expect("corners");
        let hi = cs.iter().copied().max().expect("corners");
        if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
            Interval::FULL
        } else {
            Interval {
                lo: lo as i64,
                hi: hi as i64,
            }
        }
    }

    /// `self + o`, widening to [`Interval::FULL`] on possible overflow.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Interval) -> Interval {
        let (a, b, c, d) = (self.lo as i128, self.hi as i128, o.lo as i128, o.hi as i128);
        Interval::from_corners([a + c, a + d, b + c, b + d])
    }

    /// `self - o`, widening on possible overflow.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Interval) -> Interval {
        let (a, b, c, d) = (self.lo as i128, self.hi as i128, o.lo as i128, o.hi as i128);
        Interval::from_corners([a - c, a - d, b - c, b - d])
    }

    /// `self * o`, widening on possible overflow.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Interval) -> Interval {
        let (a, b, c, d) = (self.lo as i128, self.hi as i128, o.lo as i128, o.hi as i128);
        Interval::from_corners([a * c, a * d, b * c, b * d])
    }

    /// `-self`.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Interval {
        Interval::singleton(0).sub(self)
    }

    /// `~self` (exact: `~x = -x - 1` is antitone).
    pub fn bitnot(self) -> Interval {
        Interval {
            lo: !self.hi,
            hi: !self.lo,
        }
    }

    /// `self / o` for a divisor interval that excludes zero; callers handle
    /// the possible-zero case. `|a / b| <= |a|` for `|b| >= 1`, so the
    /// result is bounded by the dividend's magnitude corners.
    pub fn div_nonzero(self) -> Interval {
        let m = self
            .lo
            .checked_abs()
            .unwrap_or(i64::MAX)
            .max(self.hi.checked_abs().unwrap_or(i64::MAX));
        if self.lo == i64::MIN {
            // i64::MIN / -1 overflows; stay conservative.
            Interval::FULL
        } else {
            Interval { lo: -m, hi: m }
        }
    }

    /// `self % o` for a positive divisor bound `b`: result in `(-b, b)`.
    pub fn rem_bound(b: i64) -> Interval {
        if b <= 0 {
            Interval::FULL
        } else {
            Interval {
                lo: -(b - 1),
                hi: b - 1,
            }
        }
    }

    /// Whether every value fits a `width`-byte signed/unsigned integer.
    pub fn fits(self, width: u8, signed: bool) -> bool {
        if width >= 8 {
            return signed || self.lo >= 0;
        }
        let bits = width as u32 * 8;
        if signed {
            let max = (1i64 << (bits - 1)) - 1;
            self.lo >= -max - 1 && self.hi <= max
        } else {
            self.lo >= 0 && self.hi < (1i64 << bits)
        }
    }
}

/// A set of memory models (plus the compiled-VM substrate) a finding
/// applies to: "this access **may** trap under these models".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ModelSet(pub u16);

/// Bit marking the compiled-VM substrates (integer-overflow traps that the
/// wrapping interpreter models never raise).
pub const VM_BIT: u16 = 1 << 15;

impl ModelSet {
    /// The empty set.
    pub const EMPTY: ModelSet = ModelSet(0);

    /// All seven interpreter models (without the VM bit).
    pub fn all_models() -> ModelSet {
        ModelSet((1 << ModelKind::ALL.len()) - 1)
    }

    /// All seven models plus the VM substrates.
    pub fn everything() -> ModelSet {
        ModelSet(Self::all_models().0 | VM_BIT)
    }

    fn bit(m: ModelKind) -> u16 {
        let i = ModelKind::ALL
            .iter()
            .position(|&k| k == m)
            .expect("model in ALL");
        1 << i
    }

    /// Adds a model.
    pub fn with(mut self, m: ModelKind) -> ModelSet {
        self.0 |= Self::bit(m);
        self
    }

    /// Adds the VM substrates.
    pub fn with_vm(mut self) -> ModelSet {
        self.0 |= VM_BIT;
        self
    }

    /// Whether `m` is in the set.
    pub fn contains(self, m: ModelKind) -> bool {
        self.0 & Self::bit(m) != 0
    }

    /// Whether the VM bit is set.
    pub fn has_vm(self) -> bool {
        self.0 & VM_BIT != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, o: ModelSet) -> ModelSet {
        ModelSet(self.0 | o.0)
    }

    /// The member models, in [`ModelKind::ALL`] order.
    pub fn models(self) -> Vec<ModelKind> {
        ModelKind::ALL
            .into_iter()
            .filter(|&m| self.contains(m))
            .collect()
    }
}

/// The object an abstract pointer points into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// A local, identified by the frame offset of its object base.
    Stack {
        /// Frame offset of the object base (the `AddrLocal` offset).
        base: u32,
    },
    /// A global, identified by its base virtual address.
    Global {
        /// Base address.
        base: u64,
    },
    /// A heap allocation, identified by its `malloc` call site.
    Heap {
        /// The `Builtin::Malloc` pc.
        site: usize,
    },
    /// An interned string literal.
    Str {
        /// String index.
        sid: u32,
    },
    /// The null pointer.
    Null,
    /// Provenance lost (joined across regions, or reconstructed from an
    /// integer with no taint).
    Unknown,
}

/// Integer round-trip history of a reconstructed pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundTrip {
    /// The integer may have been arithmetically modified in between
    /// (HardBound/Strict invalidate the shadow entry on any modification).
    pub modified: bool,
    /// The round trip went through `intptr_t`/`intcap_t` on **every** path
    /// (on CHERI those are capabilities, so the tag survives).
    pub via_intcap: bool,
}

/// An abstract pointer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PtrAbs {
    /// The providing object.
    pub region: Region,
    /// Object size in bytes, when known.
    pub size: Option<u64>,
    /// Byte offset from the object base.
    pub off: Interval,
    /// Known base alignment of the object (for flag-masking precision).
    pub align: u64,
    /// Pointee is `const`-qualified.
    pub is_const: bool,
    /// Derived (at some point) by casting away `const` — CHERIv2 store
    /// permission is gone.
    pub const_stripped: bool,
    /// Produced directly by pointer `+` (the invalid-intermediate
    /// classifier; cleared by stores and loads, like the AST analyzer's
    /// direct-subexpression rule).
    pub via_add: bool,
    /// Metadata lost to a byte-granularity copy (tag/shadow/bounds gone).
    pub stripped: bool,
    /// Reconstruction was imprecise (offset unknown, partial bytes).
    pub approx: bool,
    /// No idea what this points to (checked models may trap; even the
    /// PDP-11 model may fault on an unmapped address).
    pub wild: bool,
    /// Reconstructed from an integer truncated below pointer width (the
    /// **Wide** idiom) — the raw address itself is damaged, so even the
    /// unchecked PDP-11 model faults.
    pub truncated: bool,
    /// The providing object may have been retired (`Kill` reached).
    pub dead: bool,
    /// Went through an integer; `None` for never-escaped pointers.
    pub rt: Option<RoundTrip>,
    /// MPX look-aside bounds `[lo, hi)` relative to the object base, when
    /// narrower than the object (`narrow_field` narrows in-bounds fields).
    pub mpx: Option<(u64, u64)>,
}

impl PtrAbs {
    /// A pointer at the base of a fully-known object.
    pub fn object(region: Region, size: u64, align: u64) -> PtrAbs {
        PtrAbs {
            region,
            size: Some(size),
            off: Interval::singleton(0),
            align,
            is_const: false,
            const_stripped: false,
            via_add: false,
            stripped: false,
            approx: false,
            wild: false,
            truncated: false,
            dead: false,
            rt: None,
            mpx: None,
        }
    }

    /// A pointer about which nothing is known.
    pub fn wild_ptr() -> PtrAbs {
        PtrAbs {
            region: Region::Unknown,
            size: None,
            off: Interval::FULL,
            align: 1,
            is_const: false,
            const_stripped: false,
            via_add: false,
            stripped: false,
            approx: false,
            wild: true,
            truncated: false,
            dead: false,
            rt: None,
            mpx: None,
        }
    }

    /// An assumed-valid pointer of unknown region: a function parameter.
    /// The analysis is intraprocedural, so parameters are presumed to
    /// satisfy the callee's precondition (valid, adequately sized).
    pub fn assumed_param() -> PtrAbs {
        PtrAbs {
            region: Region::Unknown,
            size: None,
            off: Interval::singleton(0),
            align: 1,
            is_const: false,
            const_stripped: false,
            via_add: false,
            stripped: false,
            approx: false,
            wild: false,
            truncated: false,
            dead: false,
            rt: None,
            mpx: None,
        }
    }

    /// Least upper bound.
    pub fn join(&self, o: &PtrAbs) -> PtrAbs {
        let same_region = self.region == o.region;
        PtrAbs {
            region: if same_region {
                self.region
            } else {
                Region::Unknown
            },
            size: if same_region && self.size == o.size {
                self.size
            } else {
                None
            },
            off: if same_region {
                self.off.join(o.off)
            } else {
                Interval::FULL
            },
            align: self.align.min(o.align),
            is_const: self.is_const || o.is_const,
            const_stripped: self.const_stripped || o.const_stripped,
            via_add: self.via_add && o.via_add,
            stripped: self.stripped || o.stripped,
            approx: self.approx || o.approx || !same_region,
            wild: self.wild || o.wild,
            truncated: self.truncated || o.truncated,
            dead: self.dead || o.dead,
            rt: match (self.rt, o.rt) {
                (None, r) | (r, None) => r,
                (Some(a), Some(b)) => Some(RoundTrip {
                    modified: a.modified || b.modified,
                    via_intcap: a.via_intcap && b.via_intcap,
                }),
            },
            mpx: match (self.mpx, o.mpx) {
                (Some(a), Some(b)) if same_region => Some((a.0.min(b.0), a.1.max(b.1))),
                _ => None,
            },
        }
    }
}

/// Pointer taint on an integer: which pointer it was derived from and how
/// far the integer has drifted from that pointer's address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Taint {
    /// The pointer the integer was cast from.
    pub prov: Box<PtrAbs>,
    /// Byte delta added in integer space since the cast.
    pub delta: Interval,
    /// Arithmetically modified since the cast (any op, even if the delta
    /// nets to zero — HardBound/Strict shadow entries are already gone).
    pub modified: bool,
    /// On **some** path the value lived in `intptr_t`/`intcap_t` when
    /// arithmetic was done (CHERIv2 traps on capability arithmetic).
    pub via_intcap_any: bool,
    /// On **every** path the value stayed in `intptr_t`/`intcap_t`
    /// (reconstruction keeps the CHERI tag).
    pub via_intcap_all: bool,
    /// Truncated below pointer width (the **Wide** idiom) — reconstruction
    /// yields a wild pointer on every 64-bit model.
    pub truncated: bool,
    /// Only a byte-slice of the pointer (partial copy) — metadata lost.
    pub stripped: bool,
}

impl Taint {
    /// Least upper bound.
    pub fn join(&self, o: &Taint) -> Taint {
        Taint {
            prov: Box::new(self.prov.join(&o.prov)),
            delta: self.delta.join(o.delta),
            modified: self.modified || o.modified,
            via_intcap_any: self.via_intcap_any || o.via_intcap_any,
            via_intcap_all: self.via_intcap_all && o.via_intcap_all,
            truncated: self.truncated || o.truncated,
            stripped: self.stripped || o.stripped,
        }
    }
}

/// An abstract integer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntAbs {
    /// Value range.
    pub range: Interval,
    /// Pointer derivation, when any flows in (exists-semantics under
    /// joins, matching the AST analyzer's flow-insensitive taint).
    pub taint: Option<Taint>,
    /// The value is the *direct* result of a pointer→integer (or folded)
    /// cast — the AST analyzer's "rhs is directly a cast" check for the
    /// **Int** idiom. Survives `ConvertStore`, cleared by everything else.
    pub fresh_cast: bool,
    /// Statically known non-zero even when the range spans zero (e.g.
    /// `x | 1`).
    pub nonzero: bool,
    /// The frame slot this value was loaded from, for branch refinement.
    pub src: Option<u32>,
    /// A comparison fact this (boolean) value witnesses.
    pub cmp: Option<CmpFact>,
    /// Where a folded constant came from (`offsetof` marks the Container
    /// idiom's subtrahend; matches the AST analyzer's origin check).
    pub origin: ConstOrigin,
}

impl IntAbs {
    /// An unknown integer.
    pub fn top() -> IntAbs {
        IntAbs::of(Interval::FULL)
    }

    /// A known-range integer with no taint.
    pub fn of(range: Interval) -> IntAbs {
        IntAbs {
            range,
            taint: None,
            fresh_cast: false,
            nonzero: false,
            src: None,
            cmp: None,
            origin: ConstOrigin::None,
        }
    }

    /// The constant `v`.
    pub fn constant(v: i64) -> IntAbs {
        IntAbs::of(Interval::singleton(v))
    }

    /// Whether the value may be zero.
    pub fn may_be_zero(&self) -> bool {
        self.range.contains(0) && !self.nonzero
    }

    /// Least upper bound.
    pub fn join(&self, o: &IntAbs) -> IntAbs {
        IntAbs {
            range: self.range.join(o.range),
            taint: match (&self.taint, &o.taint) {
                (None, t) | (t, None) => t.clone(),
                (Some(a), Some(b)) => Some(a.join(b)),
            },
            fresh_cast: self.fresh_cast && o.fresh_cast,
            nonzero: self.nonzero && o.nonzero,
            src: if self.src == o.src { self.src } else { None },
            cmp: if self.cmp == o.cmp {
                self.cmp.clone()
            } else {
                None
            },
            origin: if self.origin == o.origin {
                self.origin
            } else {
                ConstOrigin::None
            },
        }
    }
}

/// What a comparison's boolean result says about a frame slot, used to
/// refine ranges along branch edges (`i < n` bounding the loop body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CmpFact {
    /// The compared slot (frame offset).
    pub slot: u32,
    /// The comparison, with the slot on the left.
    pub op: cheri_c::BinOp,
    /// The right-hand side.
    pub rhs: CmpRhs,
}

/// Right-hand side of a [`CmpFact`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpRhs {
    /// A compile-time constant.
    Const(i64),
    /// Another frame slot (resolved to its range when the fact is
    /// applied).
    Slot(u32),
}

/// An abstract value: what one stack cell or memory cell holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsVal {
    /// Unreached / uninitialized.
    Bot,
    /// An integer.
    Int(IntAbs),
    /// A pointer.
    Ptr(PtrAbs),
    /// Anything (integer or pointer, unknown).
    Top,
}

impl AbsVal {
    /// Least upper bound.
    pub fn join(&self, o: &AbsVal) -> AbsVal {
        match (self, o) {
            (AbsVal::Bot, v) | (v, AbsVal::Bot) => v.clone(),
            (AbsVal::Top, _) | (_, AbsVal::Top) => AbsVal::Top,
            (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::Int(a.join(b)),
            (AbsVal::Ptr(a), AbsVal::Ptr(b)) => AbsVal::Ptr(a.join(b)),
            (AbsVal::Int(_), AbsVal::Ptr(_)) | (AbsVal::Ptr(_), AbsVal::Int(_)) => AbsVal::Top,
        }
    }

    /// Interval widening applied pointwise (used at loop heads).
    pub fn widen(&self, next: &AbsVal) -> AbsVal {
        match (self, next) {
            (AbsVal::Int(a), AbsVal::Int(b)) => {
                let mut w = a.join(b);
                w.range = a.range.widen(b.range);
                AbsVal::Int(w)
            }
            (AbsVal::Ptr(a), AbsVal::Ptr(b)) => {
                let mut w = a.join(b);
                if a.region == b.region {
                    w.off = a.off.widen(b.off);
                }
                AbsVal::Ptr(w)
            }
            _ => self.join(next),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_arith_is_sound_on_samples() {
        // Deterministic pseudo-random sampling: every concrete result of
        // `a op b` must land inside the abstract result of the operand
        // intervals.
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..2000 {
            let a = (next() % 2001) as i64 - 1000;
            let b = (next() % 2001) as i64 - 1000;
            let c = (next() % 2001) as i64 - 1000;
            let d = (next() % 2001) as i64 - 1000;
            let ia = Interval::new(a.min(b), a.max(b));
            let ib = Interval::new(c.min(d), c.max(d));
            let x = a.min(b) + (next() % (ia.hi - ia.lo + 1) as u64) as i64;
            let y = c.min(d) + (next() % (ib.hi - ib.lo + 1) as u64) as i64;
            assert!(ia.add(ib).contains(x + y));
            assert!(ia.sub(ib).contains(x - y));
            assert!(ia.mul(ib).contains(x * y));
            assert!(ia.neg().contains(-x));
            assert!(ia.bitnot().contains(!x));
            if y != 0 {
                assert!(ia.div_nonzero().contains(x / y), "{x}/{y} {ia:?}");
            }
            assert!(ia.join(ib).contains(x));
            assert!(ia.join(ib).contains(y));
            if let Some(m) = ia.meet(ib) {
                assert!(m.lo <= m.hi);
            }
        }
    }

    #[test]
    fn interval_overflow_goes_full() {
        let big = Interval::new(i64::MAX / 2, i64::MAX);
        assert_eq!(big.add(big), Interval::FULL);
        assert_eq!(big.mul(big), Interval::FULL);
        assert_eq!(Interval::singleton(i64::MIN).neg(), Interval::FULL);
    }

    #[test]
    fn widening_reaches_a_fixpoint() {
        let mut cur = Interval::singleton(0);
        let mut grown = cur;
        for step in 1..100 {
            grown = grown.join(Interval::singleton(step));
            let w = cur.widen(grown);
            if w == cur {
                return; // converged
            }
            cur = w;
        }
        assert_eq!(cur.hi, i64::MAX, "widening must terminate the ascent");
    }

    #[test]
    fn model_set_round_trips() {
        let mut s = ModelSet::EMPTY;
        assert!(s.is_empty());
        for m in ModelKind::ALL {
            s = s.with(m);
        }
        assert_eq!(s, ModelSet::all_models());
        assert!(!s.has_vm());
        assert_eq!(s.with_vm(), ModelSet::everything());
        assert_eq!(s.models().len(), ModelKind::ALL.len());
        for m in ModelKind::ALL {
            assert!(ModelSet::EMPTY.with(m).contains(m));
        }
    }

    #[test]
    fn joins_are_commutative_and_absorb_bot() {
        let p = AbsVal::Ptr(PtrAbs::object(Region::Stack { base: 32 }, 16, 8));
        let i = AbsVal::Int(IntAbs::constant(7));
        assert_eq!(p.join(&AbsVal::Bot), p);
        assert_eq!(AbsVal::Bot.join(&p), p);
        assert_eq!(p.join(&i), AbsVal::Top);
        assert_eq!(i.join(&p), AbsVal::Top);
        // Ptr/Int joins of like kinds stay in kind.
        let q = AbsVal::Ptr(PtrAbs::object(Region::Stack { base: 0 }, 8, 8));
        match p.join(&q) {
            AbsVal::Ptr(j) => {
                assert_eq!(j.region, Region::Unknown);
                assert!(j.approx, "cross-region join is approximate");
            }
            other => panic!("expected pointer join, got {other:?}"),
        }
    }

    #[test]
    fn taint_join_keeps_exists_semantics() {
        let t = IntAbs {
            taint: Some(Taint {
                prov: Box::new(PtrAbs::object(Region::Stack { base: 0 }, 8, 8)),
                delta: Interval::singleton(0),
                modified: false,
                via_intcap_any: true,
                via_intcap_all: true,
                truncated: false,
                stripped: false,
            }),
            ..IntAbs::top()
        };
        let clean = IntAbs::top();
        let j = t.join(&clean);
        let jt = j.taint.expect("taint survives joining an untainted path");
        assert!(jt.via_intcap_any);
        // ...but the all-paths capability guarantee does not.
        assert!(jt.via_intcap_all, "None-side join keeps the taint as-is");
        let j2 = t.join(&IntAbs {
            taint: Some(Taint {
                via_intcap_any: false,
                via_intcap_all: false,
                ..t.taint.clone().expect("taint")
            }),
            ..IntAbs::top()
        });
        assert!(j2.taint.as_ref().expect("joined").via_intcap_any);
        assert!(!j2.taint.as_ref().expect("joined").via_intcap_all);
    }
}
