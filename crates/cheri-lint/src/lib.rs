//! # cheri-lint — static portability analysis over the execution IR
//!
//! A flow-sensitive, intraprocedural abstract interpreter that runs the
//! paper's provenance questions *statically*: it pushes an abstract
//! provenance lattice (regions × offsets × taint) through the same flat IR
//! the interpreters execute, using worklist dataflow over
//! [`cheri_interp::Cfg`], and predicts **per memory model** which accesses
//! trap — before running anything.
//!
//! Three layers:
//!
//! * [`lattice`] — the abstract domain: intervals, pointer shapes
//!   ([`lattice::PtrAbs`]), pointer-derived integer taint
//!   ([`lattice::Taint`]), and the [`lattice::ModelSet`] verdict bitset.
//! * [`engine`] — the transfer functions (one arm per [`cheri_interp::Op`])
//!   and the worklist driver, [`engine::analyze_ir`].
//! * [`report`] — findings with source line/column, per-model `works`
//!   verdicts, and the Table 1 idiom tallies, which are **bit-compatible**
//!   with the AST analyzer ([`cheri_idioms::analyze_unit`]).
//!
//! The contract the tests enforce is *soundness against the dynamic
//! substrates*: if the lint says a program is [`report::Report::portable`],
//! the differential harness must observe identical behavior on all eleven
//! substrates, and if it says model `m` runs the program, `run_main(m)`
//! must succeed. The converse (a warning on a program that happens to run)
//! is allowed but tallied — that is the analysis's imprecision budget.

pub mod engine;
pub mod lattice;
pub mod report;

pub use engine::analyze_ir;
pub use report::{Finding, FindingKind, Report};

use cheri_c::TranslationUnit;
use cheri_interp::{lower, TargetInfo};

/// Lints one translation unit.
///
/// Lowers the unit twice — for the LP64 layout the analysis runs on, and
/// for the CHERI layout — so folded `sizeof`/`offsetof` constants that
/// differ between the two surface as layout-divergence findings.
pub fn analyze(unit: &TranslationUnit) -> Report {
    let lp64 = lower(unit, TargetInfo::lp64());
    let cheri = lower(unit, TargetInfo::cheri());
    engine::analyze_ir(&lp64, &unit.structs, Some(&cheri))
}

/// Parses and lints a source string.
///
/// # Errors
///
/// The parse error, verbatim, when `src` is not accepted.
pub fn analyze_source(src: &str) -> Result<Report, String> {
    let unit = cheri_c::parse(src).map_err(|e| e.to_string())?;
    Ok(analyze(&unit))
}
