//! The abstract interpreter: a flow-sensitive worklist dataflow over the
//! recovered CFG of each lowered function.
//!
//! The transfer function mirrors `cheri-interp`'s dispatch loop op for op,
//! but over [`crate::lattice`] values instead of bits. Every place the
//! seven models consult state at run time — bounds, shadow validity,
//! liveness, capability tags, store permission — has an abstract
//! counterpart here, so each dereference or arithmetic op can be mapped to
//! the set of models that **may** refuse it. Idiom occurrences are
//! detected on the same pass using the exact rules of the AST analyzer
//! ([`cheri_idioms`]), keeping Table 1 counts bit-identical.
//!
//! The analysis is intraprocedural and optimistic about what it cannot
//! see: function parameters are assumed to satisfy their callee's
//! precondition (valid, adequately sized), calls havoc escaped state, and
//! `assert`s are only reported when they *definitely* fail. Divergence
//! (imprecision the analysis cannot recover from) is reported as its own
//! finding rather than silently dropped.

use crate::lattice::{
    AbsVal, CmpFact, CmpRhs, IntAbs, Interval, ModelSet, PtrAbs, Region, RoundTrip, Taint,
};
use crate::report::{Finding, FindingKind, Report};
use cheri_c::{BinOp, StructDef, Type, UnOp};
use cheri_idioms::Idiom;
use cheri_interp::{size_of, BinMeta, Builtin, Cfg, ConstOrigin, IrProgram, ModelKind, Op};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// `sizeof(void)` poison marker in `BinMeta::a_elem` / op size fields
/// (`cheri_interp::ir::ELEM_POISON`, not re-exported).
const ELEM_POISON: u64 = u64::MAX;

/// Frame bases are 32-byte aligned (`push_frame` masks with `!31`); heap
/// and rodata allocations are at least 32-byte aligned too.
const BASE_ALIGN: u64 = 32;

/// Addresses below this are not mapped under any substrate (`VBASE` is
/// `0x4_0000_0000`): an untainted integer this small used as a pointer is
/// a definite fault everywhere.
const LOW_ADDR: i64 = 0x10_0000;

/// One tracked memory cell: the value last stored at a frame/global
/// offset, with the store's width.
#[derive(Clone, Debug, PartialEq)]
struct Cell {
    val: AbsVal,
    size: u64,
}

/// The abstract machine state at one program point.
#[derive(Clone, Debug, PartialEq, Default)]
struct AbsState {
    /// Operand stack, mirroring the interpreter's `vstack`.
    stack: Vec<AbsVal>,
    /// Tracked frame cells, keyed by frame offset.
    locals: BTreeMap<u32, Cell>,
    /// Tracked global cells, keyed by virtual address.
    globals: BTreeMap<u64, Cell>,
    /// Heap allocation sites (`Malloc` pcs) that may have been freed.
    freed: BTreeSet<usize>,
    /// Frame offsets of locals holding a NUL-terminated string
    /// (`InitStrLocal`), for bounded `strlen`/`strcmp` results.
    str_locals: BTreeSet<u32>,
}

impl AbsState {
    /// Joins `o` into `self`; returns `None` on irreconcilable stack
    /// depths (the caller reports divergence).
    fn join(&self, o: &AbsState, widen: bool) -> Option<AbsState> {
        if self.stack.len() != o.stack.len() {
            return None;
        }
        let stack = self
            .stack
            .iter()
            .zip(&o.stack)
            .map(|(a, b)| if widen { a.widen(b) } else { a.join(b) })
            .collect();
        // Widening shoots a grown bound to infinity, but a sub-word cell
        // cannot hold more than its width: every store through it is
        // value-converted. Clamping the widened range to the union of the
        // signed and unsigned representable ranges keeps loop accumulators
        // finite without guessing signedness.
        let clamp = |val: AbsVal, size: u64| -> AbsVal {
            if !widen || size >= 8 {
                return val;
            }
            match val {
                AbsVal::Int(mut i) => {
                    let bits = 8 * size as u32;
                    let bound = Interval::new(-(1i64 << (bits - 1)), (1i64 << bits) - 1);
                    if let Some(m) = i.range.meet(bound) {
                        i.range = m;
                    }
                    AbsVal::Int(i)
                }
                other => other,
            }
        };
        // A cell present on one path only joins with what the other path
        // would read from the uninitialized slot: an unconstrained value.
        // Joining (rather than dropping) keeps may-taint alive across the
        // merge — a pointer byte-assembled inside a loop body must still
        // read as stripped after the loop-head join.
        let degrade = |val: &AbsVal| -> AbsVal {
            match val {
                AbsVal::Int(i) => AbsVal::Int(i.join(&IntAbs::top())),
                AbsVal::Ptr(p) => AbsVal::Ptr(p.join(&PtrAbs::assumed_param())),
                other => other.clone(),
            }
        };
        let join_cells = |x: &BTreeMap<u32, Cell>, y: &BTreeMap<u32, Cell>| {
            let mut out = BTreeMap::new();
            for (k, c) in x {
                match y.get(k) {
                    Some(d) if d.size == c.size => {
                        let val = if widen {
                            clamp(c.val.widen(&d.val), c.size)
                        } else {
                            c.val.join(&d.val)
                        };
                        out.insert(*k, Cell { val, size: c.size });
                    }
                    Some(_) => {}
                    None => {
                        out.insert(
                            *k,
                            Cell {
                                val: degrade(&c.val),
                                size: c.size,
                            },
                        );
                    }
                }
            }
            for (k, d) in y {
                if !x.contains_key(k) {
                    out.insert(
                        *k,
                        Cell {
                            val: degrade(&d.val),
                            size: d.size,
                        },
                    );
                }
            }
            out
        };
        let join_globals = |x: &BTreeMap<u64, Cell>, y: &BTreeMap<u64, Cell>| {
            let mut out = BTreeMap::new();
            for (k, c) in x {
                match y.get(k) {
                    Some(d) if d.size == c.size => {
                        let val = if widen {
                            clamp(c.val.widen(&d.val), c.size)
                        } else {
                            c.val.join(&d.val)
                        };
                        out.insert(*k, Cell { val, size: c.size });
                    }
                    Some(_) => {}
                    None => {
                        out.insert(
                            *k,
                            Cell {
                                val: degrade(&c.val),
                                size: c.size,
                            },
                        );
                    }
                }
            }
            for (k, d) in y {
                if !x.contains_key(k) {
                    out.insert(
                        *k,
                        Cell {
                            val: degrade(&d.val),
                            size: d.size,
                        },
                    );
                }
            }
            out
        };
        Some(AbsState {
            stack,
            locals: join_cells(&self.locals, &o.locals),
            globals: join_globals(&self.globals, &o.globals),
            freed: self.freed.union(&o.freed).copied().collect(),
            str_locals: self
                .str_locals
                .intersection(&o.str_locals)
                .copied()
                .collect(),
        })
    }
}

/// Alignment of a frame offset, given the 32-byte-aligned frame base.
fn frame_align(off: u32) -> u64 {
    if off == 0 {
        BASE_ALIGN
    } else {
        (1u64 << off.trailing_zeros().min(5)).min(BASE_ALIGN)
    }
}

/// Alignment of an absolute global address.
fn addr_align(addr: u64) -> u64 {
    if addr == 0 {
        BASE_ALIGN
    } else {
        (1u64 << addr.trailing_zeros().min(5)).min(BASE_ALIGN)
    }
}

/// Whether stores to this lowered type are wide integers for the **Int**
/// idiom (the AST analyzer's `is_wide_int`).
fn is_wide_int(ty: &Type) -> bool {
    matches!(
        ty,
        Type::Int { width: 8, .. } | Type::IntPtr { .. } | Type::IntCap { .. }
    )
}

/// How the outcome of one op feeds the block walk.
enum Flow {
    /// Fall through to the next op.
    Next,
    /// The path ends here (return, definite failure, unsupported op).
    Dead,
}

/// The per-program analysis driver.
struct Analyzer<'a> {
    prog: &'a IrProgram,
    structs: &'a [StructDef],
    /// Findings keyed by `(pc, kind)` for deduplication across worklist
    /// revisits; `may` sets are unioned.
    findings: BTreeMap<(usize, u8), Finding>,
    /// Name of the function currently being analyzed.
    func: String,
    /// Frame offsets of address-taken variables in the current function
    /// (the only locals a call or wild store can reach).
    escaped: Vec<(u32, u64)>,
    /// Exit-state globals of the `<global-init>` pseudo-function.
    init_globals: BTreeMap<u64, Cell>,
}

fn kind_key(kind: FindingKind) -> u8 {
    match kind {
        FindingKind::Idiom(i) => Idiom::ALL.iter().position(|&k| k == i).expect("idiom") as u8,
        FindingKind::Deref => 8,
        FindingKind::Arith => 9,
        FindingKind::DivByZero => 10,
        FindingKind::Overflow => 11,
        FindingKind::AssertFail => 12,
        FindingKind::Layout => 13,
        FindingKind::Nondet => 14,
        FindingKind::Diverged => 15,
    }
}

impl<'a> Analyzer<'a> {
    fn add(&mut self, pc: usize, kind: FindingKind, may: ModelSet) {
        let info = self.prog.op_info(pc);
        let e = self
            .findings
            .entry((pc, kind_key(kind)))
            .or_insert_with(|| Finding {
                func: self.func.clone(),
                pc,
                line: info.line,
                col: info.col,
                kind,
                may: ModelSet::EMPTY,
            });
        e.may = e.may.union(may);
    }

    fn ty(&self, id: u32) -> &'a Type {
        &self.prog.types[id as usize]
    }

    fn ty_size(&self, ty: &Type) -> u64 {
        if matches!(ty, Type::Void) {
            return 1;
        }
        size_of(ty, self.structs, &self.prog.target)
    }

    // --- Memory ---

    /// The abstract value a load of `ty` yields from untracked memory:
    /// optimistic for pointers (assumed valid, like parameters).
    fn typed_unknown(ty: &Type) -> AbsVal {
        match ty {
            Type::Ptr { .. } => AbsVal::Ptr(PtrAbs::assumed_param()),
            Type::Int { .. } | Type::IntPtr { .. } | Type::IntCap { .. } => {
                AbsVal::Int(IntAbs::top())
            }
            _ => AbsVal::Top,
        }
    }

    /// A value seen through a partial (byte-sliced) window: pointers decay
    /// to metadata-stripped integer taint, integers lose their range.
    fn partial_view(v: &AbsVal) -> AbsVal {
        match v {
            AbsVal::Ptr(p) => AbsVal::Int(IntAbs {
                taint: Some(Taint {
                    prov: Box::new(p.clone()),
                    delta: Interval::FULL,
                    modified: false,
                    via_intcap_any: false,
                    via_intcap_all: false,
                    truncated: false,
                    stripped: true,
                }),
                ..IntAbs::top()
            }),
            AbsVal::Int(i) => AbsVal::Int(IntAbs {
                range: Interval::FULL,
                taint: i.taint.clone().map(|t| Taint {
                    stripped: true,
                    ..t
                }),
                ..IntAbs::top()
            }),
            _ => AbsVal::Top,
        }
    }

    fn read_cells<K: Ord + Copy>(
        cells: &BTreeMap<K, Cell>,
        key_off: impl Fn(K) -> i128,
        off: i128,
        size: u64,
        ty: &Type,
    ) -> AbsVal {
        // Exact hit: the common case.
        let mut out: Option<AbsVal> = None;
        let mut covered = false;
        for (&k, c) in cells {
            let (clo, chi) = (key_off(k), key_off(k) + i128::from(c.size));
            if clo >= off + i128::from(size) || chi <= off {
                continue;
            }
            let v = if clo == off && c.size == size {
                covered = true;
                c.val.clone()
            } else {
                Self::partial_view(&c.val)
            };
            out = Some(match out {
                None => v,
                Some(prev) => prev.join(&v),
            });
        }
        match out {
            Some(v) if covered => v,
            // Partially covered: the result is raw bytes, not a value the
            // requested type vouches for. Staying in integer space keeps
            // may-taint alive (Int ⊔ Ptr would be Top, which reads as an
            // assumed-valid pointer — exactly the unsound direction).
            Some(AbsVal::Int(i)) => AbsVal::Int(i.join(&IntAbs::top())),
            Some(v) => v.join(&Self::typed_unknown(ty)),
            None => Self::typed_unknown(ty),
        }
    }

    /// Stored values shed the "direct subexpression" markers the idiom
    /// rules key on, exactly like the AST analyzer's statement boundary.
    fn settle(v: &AbsVal) -> AbsVal {
        match v {
            AbsVal::Int(i) => AbsVal::Int(IntAbs {
                fresh_cast: false,
                origin: ConstOrigin::None,
                ..i.clone()
            }),
            AbsVal::Ptr(p) => AbsVal::Ptr(PtrAbs {
                via_add: false,
                ..p.clone()
            }),
            other => other.clone(),
        }
    }

    /// Writes `val` at `[off, off+size)` of the local frame.
    fn write_local(st: &mut AbsState, off: u32, size: u64, val: &AbsVal) {
        let val = Self::settle(val);
        st.str_locals
            .retain(|&b| !(u64::from(off) < u64::from(b) + 256 && u64::from(b) <= u64::from(off)));
        if let Some(c) = st.locals.get_mut(&off) {
            if c.size == size {
                c.val = val;
                return;
            }
        }
        // Remove/degrade overlapping cells, then insert.
        let lo = i128::from(off);
        let hi = lo + i128::from(size);
        let stale: Vec<u32> = st
            .locals
            .iter()
            .filter(|(&k, c)| i128::from(k) < hi && i128::from(k) + i128::from(c.size) > lo)
            .map(|(&k, _)| k)
            .collect();
        for k in stale {
            let c = st.locals.get_mut(&k).expect("cell");
            if i128::from(k) == lo && c.size == size {
                continue;
            }
            // Partial overlap: the old content is damaged byte-wise.
            c.val = Self::partial_view(&c.val).join(&Self::partial_view(&val));
        }
        st.locals.insert(off, Cell { val, size });
    }

    fn write_global(st: &mut AbsState, addr: u64, size: u64, val: &AbsVal) {
        let val = Self::settle(val);
        if let Some(c) = st.globals.get_mut(&addr) {
            if c.size == size {
                c.val = val;
                return;
            }
        }
        let lo = i128::from(addr);
        let hi = lo + i128::from(size);
        let stale: Vec<u64> = st
            .globals
            .iter()
            .filter(|(&k, c)| i128::from(k) < hi && i128::from(k) + i128::from(c.size) > lo)
            .map(|(&k, _)| k)
            .collect();
        for k in stale {
            let c = st.globals.get_mut(&k).expect("cell");
            if i128::from(k) == lo && c.size == size {
                continue;
            }
            c.val = Self::partial_view(&c.val).join(&Self::partial_view(&val));
        }
        st.globals.insert(addr, Cell { val, size });
    }

    /// Drops precision for everything a call (or a store through an
    /// unknown pointer) could mutate: escaped locals and all globals.
    fn havoc_escaped(&self, st: &mut AbsState) {
        for &(off, size) in &self.escaped {
            let lo = i128::from(off);
            let hi = lo + i128::from(size);
            st.locals
                .retain(|&k, c| i128::from(k) + i128::from(c.size) <= lo || i128::from(k) >= hi);
            st.str_locals.remove(&off);
        }
        st.globals.clear();
    }

    // --- Pointer reconstruction (the model `int_to_ptr` analog) ---

    fn reconstruct(i: &IntAbs) -> PtrAbs {
        if let Some(t) = &i.taint {
            if t.truncated {
                return PtrAbs {
                    truncated: true,
                    stripped: t.stripped,
                    ..PtrAbs::wild_ptr()
                };
            }
            if t.stripped {
                return PtrAbs {
                    stripped: true,
                    rt: Some(RoundTrip {
                        modified: t.modified,
                        via_intcap: t.via_intcap_all,
                    }),
                    ..PtrAbs::wild_ptr()
                };
            }
            let prov = &t.prov;
            let prov_rt_mod = prov.rt.is_some_and(|r| r.modified);
            return PtrAbs {
                region: prov.region,
                size: prov.size,
                off: prov.off.add(t.delta),
                align: prov.align,
                is_const: prov.is_const,
                const_stripped: prov.const_stripped,
                via_add: false,
                stripped: prov.stripped,
                approx: prov.approx || t.delta.as_singleton().is_none(),
                wild: prov.wild,
                truncated: prov.truncated,
                dead: prov.dead,
                rt: Some(RoundTrip {
                    modified: t.modified || prov_rt_mod,
                    via_intcap: t.via_intcap_all && prov.rt.is_none_or(|r| r.via_intcap),
                }),
                mpx: prov.mpx,
            };
        }
        // Untainted integers: a constant zero is NULL, a small constant is
        // an unmapped address, anything else is a wild raw pointer.
        if i.range == Interval::singleton(0) && !i.nonzero {
            return PtrAbs {
                region: Region::Null,
                ..PtrAbs::wild_ptr()
            };
        }
        if i.range.hi < LOW_ADDR {
            return PtrAbs {
                region: Region::Null,
                ..PtrAbs::wild_ptr()
            };
        }
        PtrAbs::wild_ptr()
    }

    /// Coerces an abstract value to a pointer (`ToPtr` / pointer contexts).
    fn as_ptr(v: &AbsVal) -> PtrAbs {
        match v {
            AbsVal::Ptr(p) => p.clone(),
            AbsVal::Int(i) => Self::reconstruct(i),
            AbsVal::Top => PtrAbs::assumed_param(),
            AbsVal::Bot => PtrAbs::wild_ptr(),
        }
    }

    // --- The per-model dereference check ---

    #[allow(clippy::too_many_lines)]
    fn deref_check(&mut self, pc: usize, p: &PtrAbs, len: u64, write: bool, st: &AbsState) {
        use ModelKind::*;
        let mut may = ModelSet::EMPTY;
        if p.region == Region::Null {
            self.add(pc, FindingKind::Deref, ModelSet::everything());
            return;
        }
        let oob = p.wild
            || match p.size {
                None => false, // assumed-valid unknown object
                Some(sz) => p.off.lo < 0 || i128::from(p.off.hi) + i128::from(len) > i128::from(sz),
            };
        let rt_mod = p.rt.is_some_and(|r| r.modified);
        let rt_plain = p.rt.is_some_and(|r| !r.via_intcap);
        let meta_lost = p.stripped || rt_mod || p.wild;
        // PDP-11: only a damaged raw address faults (unmapped memory).
        if p.truncated {
            may = may.with(Pdp11);
        }
        // HardBound / Strict fail closed: lost or invalidated metadata
        // yields a zero-length pointer; in-metadata pointers bounds-check.
        if meta_lost || oob {
            may = may.with(HardBound).with(Strict);
        }
        // MPX fails open: no (or desynchronized) bound-table entry means no
        // check at all. Only an intact, possibly narrowed window traps.
        let mpx_oob = !meta_lost
            && match (p.mpx, p.size) {
                (Some((lo, hi)), _) => {
                    p.off.lo < i64::try_from(lo).unwrap_or(i64::MAX)
                        || i128::from(p.off.hi) + i128::from(len) > i128::from(hi)
                }
                (None, Some(sz)) => {
                    p.off.lo < 0 || i128::from(p.off.hi) + i128::from(len) > i128::from(sz)
                }
                (None, None) => false,
            };
        if p.truncated || mpx_oob {
            may = may.with(Mpx);
        }
        // Relaxed checks the live-object map: address-based, so stripped
        // metadata is irrelevant but liveness and bounds are not.
        let freed = matches!(p.region, Region::Heap { site } if st.freed.contains(&site));
        if p.wild || p.dead || freed || oob {
            may = may.with(Relaxed);
        }
        // CHERI: the tag dies with any plain-integer round trip or byte
        // copy; bounds are architectural; v2 additionally enforces const.
        let cheri_bad = p.stripped || rt_plain || p.wild || oob;
        if cheri_bad || (write && (p.is_const || p.const_stripped)) {
            may = may.with(CheriV2);
        }
        if cheri_bad {
            may = may.with(CheriV3);
        }
        if !may.is_empty() {
            self.add(pc, FindingKind::Deref, may);
        }
    }

    /// Reads through an abstract pointer. An imprecise offset inside a
    /// known object yields the byte-sliced view of everything the object
    /// holds (that is how a `char`-loop copy carries pointer taint).
    fn load_through(&self, st: &AbsState, p: &PtrAbs, ty: &Type, size: u64) -> AbsVal {
        match p.region {
            Region::Stack { base } if p.off.as_singleton().is_some() => {
                let off = i128::from(base) + i128::from(p.off.lo);
                Self::read_cells(&st.locals, |k: u32| i128::from(k), off, size, ty)
            }
            Region::Global { base } if p.off.as_singleton().is_some() => {
                let off = i128::from(base) + i128::from(p.off.lo);
                Self::read_cells(&st.globals, |k: u64| i128::from(k), off, size, ty)
            }
            Region::Stack { .. } | Region::Global { .. } => match self.span_view(st, p) {
                AbsVal::Top | AbsVal::Bot => Self::typed_unknown(ty),
                v => v,
            },
            _ => Self::typed_unknown(ty),
        }
    }

    /// Writes through an abstract pointer.
    fn store_through(&mut self, st: &mut AbsState, p: &PtrAbs, size: u64, val: &AbsVal) {
        match p.region {
            Region::Stack { base } => {
                if let Some(off) = p.off.as_singleton() {
                    if off >= 0 {
                        if let Ok(o) = u32::try_from(i128::from(base) + i128::from(off)) {
                            Self::write_local(st, o, size, val);
                            return;
                        }
                    }
                }
                self.byte_store(st, p, val);
            }
            Region::Global { base } => {
                if let Some(off) = p.off.as_singleton() {
                    if off >= 0 {
                        Self::write_global(st, base + off as u64, size, val);
                        return;
                    }
                }
                self.byte_store(st, p, val);
            }
            // Heap/string contents are untracked; a store through a wholly
            // unknown pointer could alias anything that has escaped.
            Region::Heap { .. } | Region::Str { .. } | Region::Null => {}
            Region::Unknown => self.havoc_escaped(st),
        }
    }

    /// What survives a `memcpy`: the value moves wholesale, but a byte
    /// count named by the program cannot carry a CHERI tag (`sizeof(T*)`
    /// is wider under the capability lowerings than under LP64), so
    /// pointers and pointer-derived integers arrive as **plain-integer
    /// round trips** — fine for the table-keyed models (HardBound's
    /// hardware copy mirrors the shadow space for aligned words) and
    /// trapping for CHERIv2/v3, whose reconstruction finds no tag.
    fn memcpy_value(v: &AbsVal) -> AbsVal {
        match v {
            AbsVal::Ptr(p) => AbsVal::Int(IntAbs {
                range: Interval::new(LOW_ADDR, ADDR_MAX),
                nonzero: p.region != Region::Null,
                taint: Some(Taint {
                    prov: Box::new(p.clone()),
                    delta: Interval::singleton(0),
                    modified: false,
                    via_intcap_any: false,
                    via_intcap_all: false,
                    truncated: false,
                    stripped: false,
                }),
                ..IntAbs::top()
            }),
            AbsVal::Int(i) => {
                let mut i = i.clone();
                i.fresh_cast = false;
                i.src = None;
                i.cmp = None;
                i.origin = ConstOrigin::None;
                if let Some(t) = &mut i.taint {
                    t.via_intcap_all = false;
                }
                AbsVal::Int(i)
            }
            other => other.clone(),
        }
    }

    /// The byte-sliced view of everything a pointer's object may hold —
    /// the abstract result of reading an unknown slice of it.
    fn span_view(&self, st: &AbsState, p: &PtrAbs) -> AbsVal {
        let mut acc = AbsVal::Bot;
        let span = |base: i128, size: Option<u64>| (base, base + i128::from(size.unwrap_or(1)));
        match p.region {
            Region::Stack { base } => {
                let (lo, hi) = span(i128::from(base), p.size);
                for (&k, c) in &st.locals {
                    if i128::from(k) < hi && i128::from(k) + i128::from(c.size) > lo {
                        acc = acc.join(&Self::partial_view(&c.val));
                    }
                }
            }
            Region::Global { base } => {
                let (lo, hi) = span(i128::from(base), p.size);
                for (&k, c) in &st.globals {
                    if i128::from(k) < hi && i128::from(k) + i128::from(c.size) > lo {
                        acc = acc.join(&Self::partial_view(&c.val));
                    }
                }
            }
            _ => return AbsVal::Top,
        }
        acc
    }

    /// A byte-granularity store at an imprecise offset: the whole object's
    /// tracked cells absorb the byte-sliced value, and a cell spanning the
    /// object is materialized so the slices are not silently forgotten
    /// (this is what makes a `char`-loop copy *into* a pointer slot
    /// reconstruct as metadata-stripped rather than assumed-valid).
    fn byte_store(&mut self, st: &mut AbsState, p: &PtrAbs, val: &AbsVal) {
        let pv = Self::partial_view(val);
        match p.region {
            Region::Stack { base } => {
                st.str_locals.remove(&base);
                let lo = i128::from(base);
                let hi = lo + i128::from(p.size.unwrap_or(1));
                for (&k, c) in &mut st.locals {
                    if i128::from(k) < hi && i128::from(k) + i128::from(c.size) > lo {
                        c.val = c.val.join(&pv);
                    }
                }
                if let Some(size) = p.size {
                    st.locals.entry(base).or_insert(Cell { val: pv, size });
                }
            }
            Region::Global { base } => {
                let lo = i128::from(base);
                let hi = lo + i128::from(p.size.unwrap_or(1));
                for (&k, c) in &mut st.globals {
                    if i128::from(k) < hi && i128::from(k) + i128::from(c.size) > lo {
                        c.val = c.val.join(&pv);
                    }
                }
                if let Some(size) = p.size {
                    st.globals.entry(base).or_insert(Cell { val: pv, size });
                }
            }
            Region::Heap { .. } | Region::Str { .. } | Region::Null => {}
            Region::Unknown => self.havoc_escaped(st),
        }
    }
}

/// The highest plausible user-space address: keeps pointer-valued integer
/// ranges clear of the `i64` corners so small arithmetic on them does not
/// read as possible overflow.
const ADDR_MAX: i64 = 1 << 47;

/// The representable range of a `width`-byte integer.
fn width_range(width: u8, signed: bool) -> Interval {
    if width >= 8 {
        return Interval::FULL;
    }
    let bits = u32::from(width) * 8;
    if signed {
        let max = (1i64 << (bits - 1)) - 1;
        Interval::new(-max - 1, max)
    } else {
        Interval::new(0, (1i64 << bits) - 1)
    }
}

/// Whether `a op b` can overflow 64-bit signed arithmetic (wraps in the
/// interpreters, traps on the compiled-VM substrates).
fn overflow_possible(op: BinOp, a: Interval, b: Interval) -> bool {
    let (al, ah) = (i128::from(a.lo), i128::from(a.hi));
    let (bl, bh) = (i128::from(b.lo), i128::from(b.hi));
    let corners = match op {
        BinOp::Add => [al + bl, al + bh, ah + bl, ah + bh],
        BinOp::Sub => [al - bl, al - bh, ah - bl, ah - bh],
        BinOp::Mul => [al * bl, al * bh, ah * bl, ah * bh],
        _ => return false,
    };
    corners
        .iter()
        .any(|&c| c < i128::from(i64::MIN) || c > i128::from(i64::MAX))
}

/// `a op b` decided purely from the operand ranges, when possible.
fn definite_cmp(op: BinOp, a: Interval, b: Interval) -> Option<bool> {
    match op {
        BinOp::Lt => {
            if a.hi < b.lo {
                Some(true)
            } else if a.lo >= b.hi {
                Some(false)
            } else {
                None
            }
        }
        BinOp::Le => {
            if a.hi <= b.lo {
                Some(true)
            } else if a.lo > b.hi {
                Some(false)
            } else {
                None
            }
        }
        BinOp::Gt => definite_cmp(BinOp::Le, a, b).map(|v| !v),
        BinOp::Ge => definite_cmp(BinOp::Lt, a, b).map(|v| !v),
        BinOp::Eq => {
            if let (Some(x), Some(y)) = (a.as_singleton(), b.as_singleton()) {
                Some(x == y)
            } else if a.meet(b).is_none() {
                Some(false)
            } else {
                None
            }
        }
        BinOp::Ne => definite_cmp(BinOp::Eq, a, b).map(|v| !v),
        _ => None,
    }
}

/// `a op b === b swap_cmp(op) a`.
fn swap_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::Le => BinOp::Ge,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// The comparison that holds when `op`'s result is false.
fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Ge => BinOp::Lt,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

/// Low-bit extraction (`v & 1`) of a value derived from an aligned
/// pointer: the result is plain bits the base alignment determines, not a
/// pointer — the flag-in-low-bits pattern's *test* side.
fn extract_const(ia: &IntAbs, ib: &IntAbs) -> Option<IntAbs> {
    let try_one = |tainted: &IntAbs, mask: &IntAbs| -> Option<IntAbs> {
        let t = tainted.taint.as_ref()?;
        if mask.taint.is_some() || t.truncated || t.stripped {
            return None;
        }
        let m = mask.range.as_singleton()?;
        let x = t
            .prov
            .off
            .as_singleton()?
            .checked_add(t.delta.as_singleton()?)?;
        let align = t.prov.align;
        if m < 0 || align <= 1 {
            return None;
        }
        let mu = m as u64;
        if !(mu + 1).is_power_of_two() || mu >= align {
            return None;
        }
        let xl = x.rem_euclid(align as i64);
        Some(IntAbs::constant(xl & m))
    };
    try_one(ia, ib).or_else(|| try_one(ib, ia))
}

/// How a pointer-derived integer's taint evolves through `op` with an
/// `other` (usually untainted) operand. Flag-masking against the provider's
/// base alignment keeps the delta exact; everything else goes imprecise.
fn taint_after(op: BinOp, mut t: Taint, on_left: bool, other: &IntAbs) -> Taint {
    let x = t
        .prov
        .off
        .as_singleton()
        .and_then(|o| t.delta.as_singleton().map(|d| (o, d)));
    let align = i64::try_from(t.prov.align).unwrap_or(1);
    t.modified = true;
    match op {
        BinOp::Add => t.delta = t.delta.add(other.range),
        BinOp::Sub if on_left => t.delta = t.delta.sub(other.range),
        BinOp::BitOr => {
            t.delta = match (x, other.range.as_singleton()) {
                (Some((o, d)), Some(m))
                    if m >= 0 && m < align && align > 1 && other.taint.is_none() =>
                {
                    let xl = (o + d).rem_euclid(align);
                    Interval::singleton(d + ((xl | m) - xl))
                }
                _ => Interval::FULL,
            };
        }
        BinOp::BitAnd => {
            t.delta = match (x, other.range.as_singleton()) {
                (Some((o, d)), Some(m)) if other.taint.is_none() && align > 1 => {
                    let c = !m;
                    if c >= 0 && ((c + 1) as u64).is_power_of_two() && c < align {
                        let xl = (o + d).rem_euclid(align);
                        Interval::singleton(d - (xl & c))
                    } else {
                        Interval::FULL
                    }
                }
                _ => Interval::FULL,
            };
        }
        _ => t.delta = Interval::FULL,
    }
    t
}

/// Joins one Ret path's global image into the accumulated exit image.
fn join_global_cells(a: BTreeMap<u64, Cell>, b: &BTreeMap<u64, Cell>) -> BTreeMap<u64, Cell> {
    let mut out = BTreeMap::new();
    for (k, c) in a {
        if let Some(d) = b.get(&k) {
            if d.size == c.size {
                out.insert(
                    k,
                    Cell {
                        val: c.val.join(&d.val),
                        size: c.size,
                    },
                );
            }
        }
    }
    out
}

/// Name of the function whose pc range contains `pc`.
fn func_name_at(prog: &IrProgram, pc: usize) -> String {
    for i in 0..prog.funcs.len() {
        let (lo, hi) = prog.func_range(i as u32);
        if lo <= pc && pc < hi {
            return prog.funcs[i].name.clone();
        }
    }
    String::new()
}

impl<'a> Analyzer<'a> {
    /// Converts a stack value to the integer the machine would see;
    /// an abstract pointer in integer position is a live capability.
    fn to_int(v: &AbsVal) -> IntAbs {
        match v {
            AbsVal::Int(i) => i.clone(),
            AbsVal::Ptr(p) => IntAbs {
                range: Interval::new(LOW_ADDR, ADDR_MAX),
                nonzero: p.region != Region::Null,
                taint: Some(Taint {
                    prov: Box::new(p.clone()),
                    delta: Interval::singleton(0),
                    modified: false,
                    via_intcap_any: true,
                    via_intcap_all: true,
                    truncated: false,
                    stripped: false,
                }),
                ..IntAbs::top()
            },
            _ => IntAbs::top(),
        }
    }

    /// The **Int** idiom: a wide-integer store whose value is directly a
    /// pointer→integer cast (the AST analyzer's `note_int_store`).
    fn note_int_store(&mut self, pc: usize, ty: &Type, v: &AbsVal) {
        if is_wide_int(ty) {
            if let AbsVal::Int(i) = v {
                if i.fresh_cast {
                    self.add(pc, FindingKind::Idiom(Idiom::Int), ModelSet::EMPTY);
                }
            }
        }
    }

    /// Plain-integer storage cannot carry a capability: stores to a C
    /// integer type drop the `intptr_t` tag guarantee from the taint.
    fn strip_on_int_store(ty: &Type, v: AbsVal) -> AbsVal {
        if !matches!(ty, Type::Int { .. }) {
            return v;
        }
        match v {
            AbsVal::Int(mut i) => {
                if let Some(t) = &mut i.taint {
                    t.via_intcap_any = false;
                    t.via_intcap_all = false;
                }
                AbsVal::Int(i)
            }
            other => other,
        }
    }

    // --- Arithmetic transfer ---

    fn binary_vals(
        &mut self,
        pc: usize,
        op: BinOp,
        meta: &BinMeta,
        a: AbsVal,
        b: AbsVal,
        count_idioms: bool,
    ) -> AbsVal {
        if meta.a_ptr || meta.b_ptr {
            return self.ptr_binary(pc, op, meta, a, b, count_idioms);
        }
        let ia = Self::to_int(&a);
        let ib = Self::to_int(&b);
        self.int_binary(pc, op, &ia, &ib, count_idioms)
    }

    fn ptr_binary(
        &mut self,
        pc: usize,
        op: BinOp,
        meta: &BinMeta,
        a: AbsVal,
        b: AbsVal,
        count_idioms: bool,
    ) -> AbsVal {
        let pa = meta.a_ptr.then(|| Self::as_ptr(&a));
        let pb = meta.b_ptr.then(|| Self::as_ptr(&b));
        // The Sub family, classified exactly as the AST analyzer does:
        // subtracting a folded offsetof reconstructs a container, an
        // invalid intermediate comes directly off a pointer `+`, and
        // everything else is plain out-of-object arithmetic.
        if count_idioms && op == BinOp::Sub && meta.a_ptr {
            let container =
                !meta.b_ptr && matches!(&b, AbsVal::Int(i) if i.origin == ConstOrigin::Offsetof);
            let kind = if container {
                Idiom::Container
            } else if pa.as_ref().is_some_and(|p| p.via_add) {
                Idiom::II
            } else {
                Idiom::Sub
            };
            self.add(pc, FindingKind::Idiom(kind), ModelSet::EMPTY);
        }
        if op.is_comparison() {
            return AbsVal::Int(IntAbs::of(Interval::new(0, 1)));
        }
        match (pa, pb) {
            (Some(pa), Some(pb)) if op == BinOp::Sub => {
                // `ptr - ptr` goes through the model's ptr_diff; CHERIv2
                // refuses pointer subtraction outright.
                self.add(
                    pc,
                    FindingKind::Arith,
                    ModelSet::EMPTY.with(ModelKind::CheriV2),
                );
                let elem = meta.a_elem;
                let val = if elem != 0
                    && elem != ELEM_POISON
                    && pa.region == pb.region
                    && pa.region != Region::Unknown
                {
                    match (pa.off.as_singleton(), pb.off.as_singleton()) {
                        (Some(x), Some(y)) => IntAbs::constant((x - y) / elem as i64),
                        _ => IntAbs::top(),
                    }
                } else {
                    IntAbs::top()
                };
                AbsVal::Int(val)
            }
            (Some(pa), None) if matches!(op, BinOp::Add | BinOp::Sub) => {
                let idx = Self::to_int(&b);
                AbsVal::Ptr(self.ptr_add(
                    pc,
                    pa,
                    idx.range,
                    meta.a_elem,
                    op == BinOp::Sub,
                    op == BinOp::Add && count_idioms,
                ))
            }
            (None, Some(pb)) if op == BinOp::Add => {
                let idx = Self::to_int(&a);
                AbsVal::Ptr(self.ptr_add(pc, pb, idx.range, meta.b_elem, false, count_idioms))
            }
            // Ill-typed pointer arithmetic: the interpreter raises
            // `Unsupported` under every model.
            _ => {
                self.add(pc, FindingKind::Arith, ModelSet::everything());
                AbsVal::Top
            }
        }
    }

    /// `ptr ± idx*elem` — the shared transfer for `Binary` and `PtrIndex`.
    fn ptr_add(
        &mut self,
        pc: usize,
        p: PtrAbs,
        idx: Interval,
        elem: u64,
        negate: bool,
        via_add: bool,
    ) -> PtrAbs {
        if elem == 0 || elem == ELEM_POISON {
            // void-pointer arithmetic: scaled by the poison marker.
            self.add(
                pc,
                FindingKind::Arith,
                ModelSet::EMPTY.with(ModelKind::CheriV2),
            );
            return PtrAbs {
                via_add,
                ..PtrAbs::wild_ptr()
            };
        }
        let delta = idx.mul(Interval::singleton(elem as i64));
        let delta = if negate { delta.neg() } else { delta };
        // CHERIv2 consumes bounds monotonically: a negative delta is
        // unrepresentable and a positive one must stay inside the object.
        let oob_up = p
            .size
            .is_some_and(|sz| i128::from(p.off.hi) + i128::from(delta.hi) > i128::from(sz));
        if delta.lo < 0 || oob_up {
            self.add(
                pc,
                FindingKind::Arith,
                ModelSet::EMPTY.with(ModelKind::CheriV2),
            );
        }
        PtrAbs {
            off: p.off.add(delta),
            via_add,
            ..p
        }
    }

    #[allow(clippy::too_many_lines)]
    fn int_binary(
        &mut self,
        pc: usize,
        op: BinOp,
        ia: &IntAbs,
        ib: &IntAbs,
        count_idioms: bool,
    ) -> AbsVal {
        use BinOp::{Add, BitAnd, BitOr, BitXor, Div, LogAnd, LogOr, Mul, Rem, Shl, Shr, Sub};
        if !op.is_comparison() {
            // An operand still carried as a capability (`intptr_t` on
            // CHERI) makes v2 refuse the arithmetic itself.
            let via_cap = [ia, ib]
                .iter()
                .any(|i| i.taint.as_ref().is_some_and(|t| t.via_intcap_any));
            if via_cap {
                self.add(
                    pc,
                    FindingKind::Arith,
                    ModelSet::EMPTY.with(ModelKind::CheriV2),
                );
            }
        }
        let derived = ia.taint.is_some() || ib.taint.is_some();
        if count_idioms && derived {
            match op {
                Add | Sub | Mul | Div | Rem => {
                    self.add(pc, FindingKind::Idiom(Idiom::IA), ModelSet::EMPTY);
                }
                BitAnd | BitOr | BitXor => {
                    self.add(pc, FindingKind::Idiom(Idiom::Mask), ModelSet::EMPTY);
                }
                _ => {}
            }
        }
        if op.is_comparison() {
            if let Some(v) = definite_cmp(op, ia.range, ib.range) {
                return AbsVal::Int(IntAbs::constant(i64::from(v)));
            }
            let mut out = IntAbs::of(Interval::new(0, 1));
            if let (Some(slot), Some(c)) = (ia.src, ib.range.as_singleton()) {
                out.cmp = Some(CmpFact {
                    slot,
                    op,
                    rhs: CmpRhs::Const(c),
                });
            } else if let (Some(c), Some(slot)) = (ia.range.as_singleton(), ib.src) {
                out.cmp = Some(CmpFact {
                    slot,
                    op: swap_cmp(op),
                    rhs: CmpRhs::Const(c),
                });
            } else if let (Some(sa), Some(sb)) = (ia.src, ib.src) {
                out.cmp = Some(CmpFact {
                    slot: sa,
                    op,
                    rhs: CmpRhs::Slot(sb),
                });
            }
            return AbsVal::Int(out);
        }
        if matches!(op, Div | Rem) && ib.may_be_zero() {
            self.add(pc, FindingKind::DivByZero, ModelSet::everything());
        }
        if overflow_possible(op, ia.range, ib.range) {
            self.add(pc, FindingKind::Overflow, ModelSet::EMPTY.with_vm());
        }
        if op == BitAnd {
            if let Some(c) = extract_const(ia, ib) {
                return AbsVal::Int(c);
            }
        }
        let (ra, rb) = (ia.range, ib.range);
        let exact_bits = |f: fn(i64, i64) -> i64| {
            ra.as_singleton()
                .zip(rb.as_singleton())
                .map(|(x, y)| Interval::singleton(f(x, y)))
        };
        let range = match op {
            Add => ra.add(rb),
            Sub => ra.sub(rb),
            Mul => ra.mul(rb),
            Div => {
                if rb == Interval::singleton(0) {
                    Interval::FULL
                } else {
                    ra.div_nonzero()
                }
            }
            Rem => {
                let m = rb
                    .lo
                    .checked_abs()
                    .unwrap_or(i64::MAX)
                    .max(rb.hi.checked_abs().unwrap_or(i64::MAX));
                Interval::rem_bound(m)
            }
            Shl => exact_bits(|x, y| {
                if (0..64).contains(&y) {
                    x.wrapping_shl(y as u32)
                } else {
                    0
                }
            })
            .unwrap_or(Interval::FULL),
            Shr => exact_bits(|x, y| {
                if (0..64).contains(&y) {
                    x.wrapping_shr(y as u32)
                } else {
                    0
                }
            })
            .unwrap_or(if ra.lo >= 0 {
                Interval::new(0, ra.hi)
            } else {
                Interval::FULL
            }),
            BitAnd => exact_bits(|x, y| x & y).unwrap_or(if ra.lo >= 0 && rb.lo >= 0 {
                Interval::new(0, ra.hi.min(rb.hi))
            } else {
                Interval::FULL
            }),
            BitOr => exact_bits(|x, y| x | y).unwrap_or(if ra.lo >= 0 && rb.lo >= 0 {
                Interval::new(ra.lo.max(rb.lo), ra.hi.saturating_add(rb.hi))
            } else {
                Interval::FULL
            }),
            BitXor => exact_bits(|x, y| x ^ y).unwrap_or(if ra.lo >= 0 && rb.lo >= 0 {
                Interval::new(0, ra.hi.saturating_add(rb.hi))
            } else {
                Interval::FULL
            }),
            LogAnd | LogOr => Interval::new(0, 1),
            _ => Interval::FULL,
        };
        let taint = match (&ia.taint, &ib.taint) {
            (None, None) => None,
            (Some(t), None) => Some(taint_after(op, t.clone(), true, ib)),
            (None, Some(t)) => Some(taint_after(op, t.clone(), false, ia)),
            (Some(x), Some(y)) => {
                let mut j = x.join(y);
                j.delta = Interval::FULL;
                j.modified = true;
                Some(j)
            }
        };
        let mut out = IntAbs::of(range);
        out.taint = taint;
        if op == BitOr {
            // OR-ing in a non-zero flag makes the value non-zero.
            out.nonzero = ia.nonzero
                || ib.nonzero
                || ra.as_singleton().is_some_and(|v| v != 0)
                || rb.as_singleton().is_some_and(|v| v != 0);
        }
        AbsVal::Int(out)
    }

    // --- Casts ---

    fn cast_to_int(
        &mut self,
        pc: usize,
        v: &AbsVal,
        width: u8,
        signed: bool,
        intcap: bool,
    ) -> IntAbs {
        match v {
            AbsVal::Ptr(p) => {
                // A pointer narrowed below pointer width is the Wide idiom.
                if width < 8 {
                    self.add(pc, FindingKind::Idiom(Idiom::Wide), ModelSet::EMPTY);
                }
                let range = if width < 8 {
                    width_range(width, signed)
                } else {
                    Interval::new(LOW_ADDR, ADDR_MAX)
                };
                IntAbs {
                    range,
                    nonzero: p.region != Region::Null && width >= 8,
                    taint: Some(Taint {
                        prov: Box::new(p.clone()),
                        delta: Interval::singleton(0),
                        modified: false,
                        via_intcap_any: intcap,
                        via_intcap_all: intcap,
                        truncated: width < 8,
                        stripped: false,
                    }),
                    fresh_cast: true,
                    ..IntAbs::top()
                }
            }
            AbsVal::Int(i) => {
                let fits = i.range.fits(width, signed);
                if width < 8 {
                    // Narrowing a pointer-derived wide integer is Wide too
                    // (once — a second narrowing has nothing left to lose).
                    if let Some(t) = &i.taint {
                        if !t.truncated {
                            self.add(pc, FindingKind::Idiom(Idiom::Wide), ModelSet::EMPTY);
                        }
                    }
                }
                let mut out = i.clone();
                out.range = if fits {
                    i.range
                } else {
                    width_range(width, signed)
                };
                out.nonzero = i.nonzero && fits;
                out.src = None;
                out.cmp = None;
                // The AST analyzer's Int idiom requires the stored value to
                // be *directly* a pointer cast; an int→int cast is not.
                out.fresh_cast = false;
                if let Some(t) = &mut out.taint {
                    // A byte-slice of a pointer is already `stripped`; the
                    // slices collectively preserve the bits, so a narrow
                    // store of one is not a truncation of the pointer.
                    t.truncated |= width < 8 && !fits && !t.stripped;
                    if !intcap {
                        // Casting to a plain C integer sheds the capability;
                        // casting back does NOT restore the tag.
                        t.via_intcap_any = false;
                        t.via_intcap_all = false;
                    }
                }
                out
            }
            _ => IntAbs::of(width_range(width, signed)),
        }
    }

    fn cast(&mut self, pc: usize, to: u32, st: &mut AbsState) {
        let v = st.stack.pop().unwrap_or(AbsVal::Bot);
        let to_ty = self.ty(to);
        let out = match to_ty {
            Type::Int { width, signed } => {
                AbsVal::Int(self.cast_to_int(pc, &v, *width, *signed, false))
            }
            Type::IntPtr { signed } | Type::IntCap { signed } => {
                AbsVal::Int(self.cast_to_int(pc, &v, 8, *signed, true))
            }
            Type::Ptr { .. } => {
                let pointee_const = to_ty.pointee_is_const();
                match &v {
                    AbsVal::Ptr(p) => {
                        let mut p = p.clone();
                        if !pointee_const && p.is_const {
                            // Casting away const: the Deconst idiom, and the
                            // CHERIv2 store permission is already gone.
                            self.add(pc, FindingKind::Idiom(Idiom::Deconst), ModelSet::EMPTY);
                            p.const_stripped = true;
                        }
                        p.is_const = pointee_const;
                        p.via_add = false;
                        AbsVal::Ptr(p)
                    }
                    AbsVal::Int(i) => {
                        let mut p = Self::reconstruct(i);
                        p.is_const = pointee_const;
                        AbsVal::Ptr(p)
                    }
                    _ => AbsVal::Ptr(PtrAbs {
                        is_const: pointee_const,
                        ..PtrAbs::assumed_param()
                    }),
                }
            }
            _ => AbsVal::Top,
        };
        st.stack.push(out);
    }

    fn unary(&mut self, pc: usize, op: UnOp, st: &mut AbsState) {
        let v = st.stack.pop().unwrap_or(AbsVal::Bot);
        let modified_taint = |i: &IntAbs| {
            i.taint.clone().map(|mut t| {
                t.modified = true;
                t.delta = Interval::FULL;
                t
            })
        };
        let out = match (&v, op) {
            (AbsVal::Ptr(_), UnOp::Neg | UnOp::BitNot) => {
                // Capability arithmetic on a live intcap value.
                self.add(
                    pc,
                    FindingKind::Arith,
                    ModelSet::EMPTY.with(ModelKind::CheriV2),
                );
                let mut t = Self::to_int(&v);
                if let Some(tt) = &mut t.taint {
                    tt.modified = true;
                    tt.delta = Interval::FULL;
                }
                t.range = Interval::FULL;
                t.nonzero = false;
                AbsVal::Int(t)
            }
            (AbsVal::Int(i), UnOp::Neg) => {
                if i.range.lo == i64::MIN {
                    self.add(pc, FindingKind::Overflow, ModelSet::EMPTY.with_vm());
                }
                let mut o = IntAbs::of(i.range.neg());
                o.taint = modified_taint(i);
                AbsVal::Int(o)
            }
            (AbsVal::Int(i), UnOp::BitNot) => {
                let mut o = IntAbs::of(i.range.bitnot());
                o.taint = modified_taint(i);
                AbsVal::Int(o)
            }
            (AbsVal::Int(i), UnOp::Not) => match i.range.as_singleton() {
                Some(c) => AbsVal::Int(IntAbs::constant(i64::from(c == 0))),
                None if i.nonzero => AbsVal::Int(IntAbs::constant(0)),
                None => AbsVal::Int(IntAbs::of(Interval::new(0, 1))),
            },
            (AbsVal::Ptr(p), UnOp::Not) => match p.region {
                Region::Null => AbsVal::Int(IntAbs::constant(1)),
                Region::Unknown => AbsVal::Int(IntAbs::of(Interval::new(0, 1))),
                _ if p.wild => AbsVal::Int(IntAbs::of(Interval::new(0, 1))),
                _ => AbsVal::Int(IntAbs::constant(0)),
            },
            _ => AbsVal::Int(IntAbs::top()),
        };
        st.stack.push(out);
    }

    // --- Branch refinement ---

    fn refine(st: &mut AbsState, cond: &AbsVal, truth: bool) -> bool {
        let AbsVal::Int(c) = cond else { return true };
        if truth {
            if c.range == Interval::singleton(0) && !c.nonzero {
                return false;
            }
        } else {
            if c.nonzero {
                return false;
            }
            if c.range.as_singleton().is_some_and(|v| v != 0) {
                return false;
            }
        }
        if let Some(fact) = &c.cmp {
            return Self::apply_fact(st, fact, truth);
        }
        // A raw loaded slot as the condition: truthiness refines the slot.
        if let Some(slot) = c.src {
            let fact = CmpFact {
                slot,
                op: BinOp::Ne,
                rhs: CmpRhs::Const(0),
            };
            return Self::apply_fact(st, &fact, truth);
        }
        true
    }

    /// Narrows the fact's slot along a branch edge; `false` means the edge
    /// is infeasible.
    fn apply_fact(st: &mut AbsState, fact: &CmpFact, truth: bool) -> bool {
        let rhs = match fact.rhs {
            CmpRhs::Const(c) => Interval::singleton(c),
            CmpRhs::Slot(s) => match st.locals.get(&s) {
                Some(Cell {
                    val: AbsVal::Int(i),
                    ..
                }) => i.range,
                _ => Interval::FULL,
            },
        };
        let op = if truth { fact.op } else { negate_cmp(fact.op) };
        let constraint = match op {
            BinOp::Lt => {
                if rhs.hi == i64::MIN {
                    return false;
                }
                Interval::new(i64::MIN, rhs.hi - 1)
            }
            BinOp::Le => Interval::new(i64::MIN, rhs.hi),
            BinOp::Gt => {
                if rhs.lo == i64::MAX {
                    return false;
                }
                Interval::new(rhs.lo + 1, i64::MAX)
            }
            BinOp::Ge => Interval::new(rhs.lo, i64::MAX),
            BinOp::Eq => rhs,
            BinOp::Ne => {
                if let Some(Cell {
                    val: AbsVal::Int(i),
                    ..
                }) = st.locals.get(&fact.slot)
                {
                    if let (Some(a), Some(b)) = (i.range.as_singleton(), rhs.as_singleton()) {
                        if a == b {
                            return false;
                        }
                    }
                }
                return true;
            }
            _ => return true,
        };
        if let Some(Cell {
            val: AbsVal::Int(i),
            ..
        }) = st.locals.get_mut(&fact.slot)
        {
            match i.range.meet(constraint) {
                None => return false,
                Some(m) => i.range = m,
            }
        }
        true
    }

    /// Sets or clears the retired flag on every pointer into the frame
    /// range `[off, off+size)` anywhere in the state.
    fn set_liveness(st: &mut AbsState, off: u32, size: u64, dead: bool) {
        let in_range = |base: u32| {
            u64::from(base) >= u64::from(off) && u64::from(base) < u64::from(off) + size
        };
        let mark = |v: &mut AbsVal| {
            if let AbsVal::Ptr(p) = v {
                if let Region::Stack { base } = p.region {
                    if in_range(base) {
                        p.dead = dead;
                    }
                }
            }
        };
        for v in &mut st.stack {
            mark(v);
        }
        for c in st.locals.values_mut() {
            mark(&mut c.val);
        }
        for c in st.globals.values_mut() {
            mark(&mut c.val);
        }
    }

    // --- Builtins ---

    #[allow(clippy::too_many_lines)]
    fn builtin(&mut self, pc: usize, b: Builtin, st: &mut AbsState) -> Flow {
        let pop = |st: &mut AbsState| st.stack.pop().unwrap_or(AbsVal::Bot);
        match b {
            Builtin::Malloc => {
                let n = Self::to_int(&pop(st));
                let size = n
                    .range
                    .as_singleton()
                    .and_then(|v| u64::try_from(v).ok())
                    .map(|v| v.max(1));
                let p = PtrAbs {
                    size,
                    ..PtrAbs::object(Region::Heap { site: pc }, 0, BASE_ALIGN)
                };
                st.stack.push(AbsVal::Ptr(p));
            }
            Builtin::Free => {
                let p = Self::as_ptr(&pop(st));
                match p.region {
                    Region::Heap { site } => {
                        st.freed.insert(site);
                        if !p.off.contains(0) {
                            // Freeing an interior pointer is a hard error
                            // under every model.
                            self.add(pc, FindingKind::Deref, ModelSet::everything());
                        }
                    }
                    Region::Stack { .. } | Region::Global { .. } | Region::Str { .. } => {
                        self.add(pc, FindingKind::Deref, ModelSet::everything());
                    }
                    Region::Null | Region::Unknown => {}
                }
                st.stack.push(AbsVal::Int(IntAbs::constant(0)));
            }
            Builtin::Memcpy => {
                let n = Self::to_int(&pop(st));
                let s = Self::as_ptr(&pop(st));
                let d = Self::as_ptr(&pop(st));
                if n.range.hi > 0 {
                    let exact = n.range.as_singleton().and_then(|v| u64::try_from(v).ok());
                    let len = exact.unwrap_or(1).max(1);
                    self.deref_check(pc, &d, len, true, st);
                    self.deref_check(pc, &s, len, false, st);
                    let view = match exact {
                        Some(sz) => {
                            let ty = Type::Int {
                                width: 8,
                                signed: true,
                            };
                            self.load_through(st, &s, &ty, sz)
                        }
                        None => self.span_view(st, &s),
                    };
                    let moved = Self::memcpy_value(&view);
                    match exact {
                        Some(sz) => self.store_through(st, &d, sz, &moved),
                        None => self.byte_store(st, &d, &moved),
                    }
                }
                st.stack.push(AbsVal::Ptr(d));
            }
            Builtin::Memset => {
                let n = Self::to_int(&pop(st));
                let _c = pop(st);
                let d = Self::as_ptr(&pop(st));
                let len = n
                    .range
                    .as_singleton()
                    .and_then(|v| u64::try_from(v).ok())
                    .unwrap_or(1)
                    .max(1);
                self.deref_check(pc, &d, len, true, st);
                self.byte_store(st, &d, &AbsVal::Int(IntAbs::top()));
                st.stack.push(AbsVal::Ptr(d));
            }
            Builtin::Strlen => {
                let p = Self::as_ptr(&pop(st));
                self.deref_check(pc, &p, 1, false, st);
                let out = match p.region {
                    Region::Str { sid } if p.off.as_singleton() == Some(0) => {
                        IntAbs::constant(self.prog.strings[sid as usize].len() as i64)
                    }
                    Region::Stack { base }
                        if st.str_locals.contains(&base) && p.off.as_singleton() == Some(0) =>
                    {
                        let hi = p.size.map_or(i64::MAX, |s| (s as i64 - 1).max(0));
                        IntAbs::of(Interval::new(0, hi))
                    }
                    _ => IntAbs::of(Interval::new(0, i64::MAX)),
                };
                st.stack.push(AbsVal::Int(out));
            }
            Builtin::Strcmp => {
                let pb = Self::as_ptr(&pop(st));
                let pa = Self::as_ptr(&pop(st));
                self.deref_check(pc, &pa, 1, false, st);
                self.deref_check(pc, &pb, 1, false, st);
                st.stack
                    .push(AbsVal::Int(IntAbs::of(Interval::new(-255, 255))));
            }
            Builtin::Puts => {
                let p = Self::as_ptr(&pop(st));
                self.deref_check(pc, &p, 1, false, st);
                st.stack
                    .push(AbsVal::Int(IntAbs::of(Interval::new(0, i64::MAX))));
            }
            Builtin::Putchar => {
                let c = pop(st);
                st.stack.push(c);
            }
            Builtin::Putint => {
                pop(st);
                st.stack.push(AbsVal::Int(IntAbs::constant(0)));
            }
            Builtin::Assert => {
                let cond = pop(st);
                if let AbsVal::Int(i) = &cond {
                    let definitely_false = i.range.as_singleton() == Some(0) && !i.nonzero;
                    if definitely_false || !Self::refine(st, &cond, true) {
                        self.add(pc, FindingKind::AssertFail, ModelSet::everything());
                        return Flow::Dead;
                    }
                }
                st.stack.push(AbsVal::Int(IntAbs::constant(0)));
            }
            Builtin::Abort => {
                self.add(pc, FindingKind::AssertFail, ModelSet::everything());
                return Flow::Dead;
            }
            Builtin::Clock => {
                // Nondeterministic input: runs everywhere, but substrates
                // may observably diverge.
                self.add(pc, FindingKind::Nondet, ModelSet::EMPTY);
                st.stack
                    .push(AbsVal::Int(IntAbs::of(Interval::new(0, i64::MAX))));
            }
        }
        Flow::Next
    }

    // --- The per-op transfer ---

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, pc: usize, op: &Op, st: &mut AbsState) -> Flow {
        match *op {
            Op::ConstInt { v, .. } => {
                let mut i = IntAbs::constant(v);
                i.origin = self.prog.op_info(pc).origin;
                i.nonzero = v != 0;
                st.stack.push(AbsVal::Int(i));
            }
            Op::ConstStr { sid, .. } => {
                let len = self.prog.strings[sid as usize].len() as u64 + 1;
                st.stack.push(AbsVal::Ptr(PtrAbs::object(
                    Region::Str { sid },
                    len,
                    BASE_ALIGN,
                )));
            }
            Op::LoadLocal { off, ty, .. } => {
                let ty = self.ty(ty);
                let size = self.ty_size(ty);
                let mut v = Self::read_cells(
                    &st.locals,
                    |k: u32| i128::from(k),
                    i128::from(off),
                    size,
                    ty,
                );
                if let AbsVal::Int(i) = &mut v {
                    i.src = Some(off);
                }
                st.stack.push(v);
            }
            Op::LoadGlobal { addr, ty, .. } => {
                let ty = self.ty(ty);
                let size = self.ty_size(ty);
                st.stack.push(Self::read_cells(
                    &st.globals,
                    |k: u64| i128::from(k),
                    i128::from(addr),
                    size,
                    ty,
                ));
            }
            Op::StoreLocal { off, ty, .. } => {
                let ty = self.ty(ty);
                let size = self.ty_size(ty);
                let v = st.stack.pop().unwrap_or(AbsVal::Bot);
                self.note_int_store(pc, ty, &v);
                let v = Self::strip_on_int_store(ty, v);
                Self::write_local(st, off, size, &v);
                st.stack.push(Self::settle(&v));
            }
            Op::StoreGlobal { addr, ty, .. } => {
                let ty = self.ty(ty);
                let size = self.ty_size(ty);
                let v = st.stack.pop().unwrap_or(AbsVal::Bot);
                self.note_int_store(pc, ty, &v);
                let v = Self::strip_on_int_store(ty, v);
                Self::write_global(st, addr, size, &v);
                st.stack.push(Self::settle(&v));
            }
            Op::AddrLocal { off, size, ty } => {
                let is_const = self.ty(ty).pointee_is_const();
                st.stack.push(AbsVal::Ptr(PtrAbs {
                    is_const,
                    ..PtrAbs::object(Region::Stack { base: off }, size, frame_align(off))
                }));
            }
            Op::AddrGlobal { addr, size, ty } => {
                let is_const = self.ty(ty).pointee_is_const();
                st.stack.push(AbsVal::Ptr(PtrAbs {
                    is_const,
                    ..PtrAbs::object(Region::Global { base: addr }, size, addr_align(addr))
                }));
            }
            Op::LoadInd { ty, size, .. } => {
                let p = Self::as_ptr(&st.stack.pop().unwrap_or(AbsVal::Bot));
                self.deref_check(pc, &p, size, false, st);
                let ty = self.ty(ty);
                st.stack.push(self.load_through(st, &p, ty, size));
            }
            Op::StoreInd { ty, size, .. } => {
                let v = st.stack.pop().unwrap_or(AbsVal::Bot);
                let p = Self::as_ptr(&st.stack.pop().unwrap_or(AbsVal::Bot));
                self.deref_check(pc, &p, size, true, st);
                let ty = self.ty(ty);
                self.note_int_store(pc, ty, &v);
                let v = Self::strip_on_int_store(ty, v);
                self.store_through(st, &p, size, &v);
                st.stack.push(Self::settle(&v));
            }
            Op::Dup => {
                let t = st.stack.last().cloned().unwrap_or(AbsVal::Bot);
                st.stack.push(t);
            }
            Op::Pop => {
                st.stack.pop();
            }
            Op::PtrIndex { elem, .. } => {
                let idx = Self::to_int(&st.stack.pop().unwrap_or(AbsVal::Bot));
                let p = Self::as_ptr(&st.stack.pop().unwrap_or(AbsVal::Bot));
                let r = self.ptr_add(pc, p, idx.range, elem, false, false);
                st.stack.push(AbsVal::Ptr(r));
            }
            Op::NarrowField { off, size, .. } => {
                let mut p = Self::as_ptr(&st.stack.pop().unwrap_or(AbsVal::Bot));
                let new_off = p.off.add(Interval::singleton(off as i64));
                // MPX re-makes bounds for the member extent, but only when
                // the member window sits inside the *current* bounds — a
                // container_of-style escape keeps the stale window.
                if let Some(noff) = new_off.as_singleton() {
                    if noff >= 0 {
                        let cand = (noff as u64, noff as u64 + size);
                        let cur = p.mpx.or_else(|| p.size.map(|s| (0, s)));
                        let fits = cur.is_none_or(|(lo, hi)| cand.0 >= lo && cand.1 <= hi);
                        if fits {
                            p.mpx = Some(cand);
                        }
                    }
                }
                p.off = new_off;
                p.via_add = false;
                st.stack.push(AbsVal::Ptr(p));
            }
            Op::ToPtr { ty, .. } => {
                let v = st.stack.pop().unwrap_or(AbsVal::Bot);
                if matches!(v, AbsVal::Ptr(_)) {
                    st.stack.push(v);
                } else {
                    let mut p = Self::as_ptr(&v);
                    let t = self.ty(ty);
                    if matches!(t, Type::Ptr { .. }) {
                        p.is_const = t.pointee_is_const();
                    }
                    st.stack.push(AbsVal::Ptr(p));
                }
            }
            Op::AdjustPtr { ty } => {
                let is_const = self.ty(ty).pointee_is_const();
                if let Some(AbsVal::Ptr(p)) = st.stack.last_mut() {
                    p.is_const = is_const;
                }
            }
            Op::Unary { op, .. } => self.unary(pc, op, st),
            Op::Binary { op, meta, .. } => {
                let b = st.stack.pop().unwrap_or(AbsVal::Bot);
                let a = st.stack.pop().unwrap_or(AbsVal::Bot);
                let r = self.binary_vals(pc, op, &meta, a, b, true);
                st.stack.push(r);
            }
            Op::Cast { to, .. } => self.cast(pc, to, st),
            Op::ConvertStore { width, signed } => {
                let v = st.stack.pop().unwrap_or(AbsVal::Bot);
                let out = match v {
                    AbsVal::Int(i) => {
                        let fits = i.range.fits(width, signed);
                        let mut o = i;
                        o.range = if fits {
                            o.range
                        } else {
                            width_range(width, signed)
                        };
                        o.nonzero = o.nonzero && fits;
                        if let Some(t) = &mut o.taint {
                            // A byte-slice of a pointer is already `stripped`; the
                            // slices collectively preserve the bits, so a narrow
                            // store of one is not a truncation of the pointer.
                            t.truncated |= width < 8 && !fits && !t.stripped;
                            t.via_intcap_any = false;
                            t.via_intcap_all = false;
                        }
                        // fresh_cast survives: the conversion is part of the
                        // assignment itself, applied after the AST
                        // analyzer's direct-rhs check.
                        AbsVal::Int(o)
                    }
                    AbsVal::Ptr(p) => AbsVal::Int(IntAbs {
                        range: width_range(width, signed),
                        taint: Some(Taint {
                            prov: Box::new(p),
                            delta: Interval::singleton(0),
                            modified: false,
                            via_intcap_any: false,
                            via_intcap_all: false,
                            truncated: width < 8,
                            stripped: false,
                        }),
                        ..IntAbs::top()
                    }),
                    _ => AbsVal::Int(IntAbs::of(width_range(width, signed))),
                };
                st.stack.push(out);
            }
            Op::Truthy => {
                let v = st.stack.pop().unwrap_or(AbsVal::Bot);
                let out = match &v {
                    AbsVal::Int(i) => {
                        if let Some(c) = i.range.as_singleton() {
                            AbsVal::Int(IntAbs::constant(i64::from(c != 0)))
                        } else if i.nonzero {
                            AbsVal::Int(IntAbs::constant(1))
                        } else {
                            let mut o = IntAbs::of(Interval::new(0, 1));
                            o.cmp = i.cmp.clone();
                            o.src = i.src;
                            AbsVal::Int(o)
                        }
                    }
                    AbsVal::Ptr(p) => match p.region {
                        Region::Null => AbsVal::Int(IntAbs::constant(0)),
                        Region::Unknown => AbsVal::Int(IntAbs::of(Interval::new(0, 1))),
                        _ if p.wild => AbsVal::Int(IntAbs::of(Interval::new(0, 1))),
                        _ => AbsVal::Int(IntAbs::constant(1)),
                    },
                    _ => AbsVal::Int(IntAbs::of(Interval::new(0, 1))),
                };
                st.stack.push(out);
            }
            Op::Call { f, .. } => {
                let argc = self.prog.funcs[f as usize].params.len();
                for _ in 0..argc {
                    st.stack.pop();
                }
                // The callee can reach every escaped local and all globals.
                self.havoc_escaped(st);
                st.stack.push(AbsVal::Top);
            }
            Op::Builtin { b, .. } => return self.builtin(pc, b, st),
            Op::Define { off, size } => {
                let lo = i128::from(off);
                let hi = lo + i128::from(size);
                st.locals.retain(|&k, c| {
                    i128::from(k) + i128::from(c.size) <= lo || i128::from(k) >= hi
                });
                st.str_locals.remove(&off);
                Self::set_liveness(st, off, size, false);
            }
            Op::Kill { off, size } => {
                let lo = i128::from(off);
                let hi = lo + i128::from(size);
                st.locals.retain(|&k, c| {
                    i128::from(k) + i128::from(c.size) <= lo || i128::from(k) >= hi
                });
                st.str_locals.remove(&off);
                Self::set_liveness(st, off, size, true);
            }
            Op::InitStrLocal { off, sid, .. } => {
                let len = self.prog.strings[sid as usize].len() as u64 + 1;
                let lo = i128::from(off);
                let hi = lo + i128::from(len);
                st.locals.retain(|&k, c| {
                    i128::from(k) + i128::from(c.size) <= lo || i128::from(k) >= hi
                });
                st.str_locals.insert(off);
            }
            Op::InitStrGlobal { addr, sid, .. } => {
                let len = self.prog.strings[sid as usize].len() as u64 + 1;
                let lo = i128::from(addr);
                let hi = lo + i128::from(len);
                st.globals.retain(|&k, c| {
                    i128::from(k) + i128::from(c.size) <= lo || i128::from(k) >= hi
                });
            }
            Op::IncDecLocal {
                off,
                ty,
                meta,
                pre,
                inc,
                ..
            } => {
                let ty = self.ty(ty);
                let size = self.ty_size(ty);
                let old = Self::read_cells(
                    &st.locals,
                    |k: u32| i128::from(k),
                    i128::from(off),
                    size,
                    ty,
                );
                let op = if inc { BinOp::Add } else { BinOp::Sub };
                let one = AbsVal::Int(IntAbs::constant(1));
                // `++` is not a Binary *expression*: no idiom counting.
                let new = self.binary_vals(pc, op, &meta, old.clone(), one, false);
                Self::write_local(st, off, size, &new);
                st.stack.push(Self::settle(if pre { &new } else { &old }));
            }
            Op::IncDecGlobal {
                addr,
                ty,
                meta,
                pre,
                inc,
                ..
            } => {
                let ty = self.ty(ty);
                let size = self.ty_size(ty);
                let old = Self::read_cells(
                    &st.globals,
                    |k: u64| i128::from(k),
                    i128::from(addr),
                    size,
                    ty,
                );
                let op = if inc { BinOp::Add } else { BinOp::Sub };
                let one = AbsVal::Int(IntAbs::constant(1));
                let new = self.binary_vals(pc, op, &meta, old.clone(), one, false);
                Self::write_global(st, addr, size, &new);
                st.stack.push(Self::settle(if pre { &new } else { &old }));
            }
            Op::IncDecInd {
                ty,
                size,
                meta,
                pre,
                inc,
                ..
            } => {
                let p = Self::as_ptr(&st.stack.pop().unwrap_or(AbsVal::Bot));
                // Read-modify-write: the write check subsumes the read one.
                self.deref_check(pc, &p, size, true, st);
                let ty = self.ty(ty);
                let old = self.load_through(st, &p, ty, size);
                let op = if inc { BinOp::Add } else { BinOp::Sub };
                let one = AbsVal::Int(IntAbs::constant(1));
                let new = self.binary_vals(pc, op, &meta, old.clone(), one, false);
                self.store_through(st, &p, size, &new);
                st.stack.push(Self::settle(if pre { &new } else { &old }));
            }
            Op::Unsupported { .. } => {
                self.add(pc, FindingKind::Diverged, ModelSet::everything());
                return Flow::Dead;
            }
            Op::Jump { .. } | Op::JumpIfZero { .. } | Op::JumpIfNonZero { .. } | Op::Ret { .. } => {
                unreachable!("terminators are handled by run_block")
            }
        }
        Flow::Next
    }

    // --- Blocks and the worklist ---

    fn branch(
        &mut self,
        cfg: &Cfg,
        target: usize,
        fall_pc: usize,
        mut st: AbsState,
        zero_takes: bool,
    ) -> Vec<(usize, AbsState)> {
        let cond = st.stack.pop().unwrap_or(AbsVal::Bot);
        let mut out = Vec::new();
        if let Some(ti) = cfg.block_at(target) {
            let mut ts = st.clone();
            if Self::refine(&mut ts, &cond, !zero_takes) {
                out.push((ti, ts));
            }
        }
        if let Some(fi) = cfg.block_at(fall_pc) {
            if Self::refine(&mut st, &cond, zero_takes) {
                out.push((fi, st));
            }
        }
        out
    }

    fn run_block(
        &mut self,
        cfg: &Cfg,
        bi: usize,
        mut st: AbsState,
        exit_globals: &mut Option<BTreeMap<u64, Cell>>,
    ) -> Vec<(usize, AbsState)> {
        let (start, end) = (cfg.blocks[bi].start, cfg.blocks[bi].end);
        for pc in start..end {
            let op = self.prog.code[pc].clone();
            match op {
                Op::Jump { target } => {
                    return cfg
                        .block_at(target as usize)
                        .map(|s| vec![(s, st)])
                        .unwrap_or_default();
                }
                Op::JumpIfZero { target } => {
                    return self.branch(cfg, target as usize, end, st, true);
                }
                Op::JumpIfNonZero { target } => {
                    return self.branch(cfg, target as usize, end, st, false);
                }
                Op::Ret { has_value } => {
                    if has_value {
                        st.stack.pop();
                    }
                    *exit_globals = Some(match exit_globals.take() {
                        None => st.globals.clone(),
                        Some(g) => join_global_cells(g, &st.globals),
                    });
                    return vec![];
                }
                other => match self.exec(pc, &other, &mut st) {
                    Flow::Next => {}
                    Flow::Dead => return vec![],
                },
            }
        }
        // Fell off the block: continue into the lexical successor.
        cfg.block_at(end).map(|s| vec![(s, st)]).unwrap_or_default()
    }

    fn entry_state(&self, fid: u32) -> AbsState {
        let f = &self.prog.funcs[fid as usize];
        let mut st = AbsState::default();
        if f.name == "main" {
            // main runs right after the global initializers.
            st.globals = self.init_globals.clone();
        }
        for p in &f.params {
            let ty = self.ty(p.ty);
            let val = match ty {
                Type::Ptr { .. } => AbsVal::Ptr(PtrAbs {
                    is_const: ty.pointee_is_const(),
                    ..PtrAbs::assumed_param()
                }),
                Type::IntPtr { .. } | Type::IntCap { .. } => AbsVal::Int(IntAbs {
                    range: Interval::new(LOW_ADDR, ADDR_MAX),
                    taint: Some(Taint {
                        prov: Box::new(PtrAbs::assumed_param()),
                        delta: Interval::singleton(0),
                        modified: false,
                        via_intcap_any: true,
                        via_intcap_all: true,
                        truncated: false,
                        stripped: false,
                    }),
                    ..IntAbs::top()
                }),
                Type::Int { width, signed } => {
                    AbsVal::Int(IntAbs::of(width_range(*width, *signed)))
                }
                _ => AbsVal::Top,
            };
            st.locals.insert(p.off, Cell { val, size: p.size });
        }
        st
    }

    fn analyze_fn(&mut self, fid: u32) {
        let f = &self.prog.funcs[fid as usize];
        self.func = f.name.clone();
        let (entry, end) = self.prog.func_range(fid);
        self.escaped = self.prog.code[entry..end]
            .iter()
            .filter_map(|op| match *op {
                Op::AddrLocal { off, size, .. } => Some((off, size)),
                _ => None,
            })
            .collect();
        let cfg = Cfg::build(self.prog, fid);
        let nblocks = cfg.blocks.len();
        if nblocks == 0 {
            return;
        }
        let mut ins: Vec<Option<AbsState>> = vec![None; nblocks];
        let mut joins: Vec<u32> = vec![0; nblocks];
        let mut queued = vec![false; nblocks];
        ins[0] = Some(self.entry_state(fid));
        let mut work: VecDeque<usize> = VecDeque::from([0]);
        queued[0] = true;
        let budget = nblocks * 64 + 128;
        let mut visits = 0usize;
        let mut exit_globals: Option<BTreeMap<u64, Cell>> = None;
        while let Some(bi) = work.pop_front() {
            queued[bi] = false;
            visits += 1;
            if visits > budget {
                self.add(entry, FindingKind::Diverged, ModelSet::everything());
                break;
            }
            let Some(in_st) = ins[bi].clone() else {
                continue;
            };
            for (succ, out_st) in self.run_block(&cfg, bi, in_st, &mut exit_globals) {
                let widen = cfg.blocks[succ].is_loop_head && joins[succ] >= 2;
                let merged = match &ins[succ] {
                    None => out_st,
                    Some(old) => match old.join(&out_st, widen) {
                        None => {
                            // Irregular stack depths across a join: give up
                            // on this function rather than guess.
                            self.add(
                                cfg.blocks[succ].start,
                                FindingKind::Diverged,
                                ModelSet::everything(),
                            );
                            continue;
                        }
                        Some(m) => {
                            if &m == old {
                                continue;
                            }
                            m
                        }
                    },
                };
                ins[succ] = Some(merged);
                joins[succ] += 1;
                if !queued[succ] {
                    queued[succ] = true;
                    work.push_back(succ);
                }
            }
        }
        if fid == self.prog.init_fid {
            if let Some(g) = exit_globals {
                self.init_globals = g;
            }
        }
    }
}

/// Runs the lint over a lowered program.
///
/// `structs` are the source unit's struct definitions (for slot sizing);
/// `cheri` optionally supplies the same unit lowered for the CHERI layout,
/// enabling the layout-divergence check on folded `sizeof`/`offsetof`
/// constants.
pub fn analyze_ir(prog: &IrProgram, structs: &[StructDef], cheri: Option<&IrProgram>) -> Report {
    let mut a = Analyzer {
        prog,
        structs,
        findings: BTreeMap::new(),
        func: String::new(),
        escaped: Vec::new(),
        init_globals: BTreeMap::new(),
    };
    // The init pseudo-function first: its exit globals seed main's entry.
    a.analyze_fn(prog.init_fid);
    for fid in 0..prog.funcs.len() as u32 {
        if fid != prog.init_fid {
            a.analyze_fn(fid);
        }
    }
    if let Some(ch) = cheri {
        if ch.code.len() == prog.code.len() {
            for (pc, (x, y)) in prog.code.iter().zip(&ch.code).enumerate() {
                if let (Op::ConstInt { v: va, .. }, Op::ConstInt { v: vb, .. }) = (x, y) {
                    if va != vb && prog.op_info(pc).origin != ConstOrigin::None {
                        // A layout-sensitive constant: the CHERI build
                        // observes different sizeof/offsetof values.
                        a.func = func_name_at(prog, pc);
                        a.add(
                            pc,
                            FindingKind::Layout,
                            ModelSet::EMPTY
                                .with(ModelKind::CheriV2)
                                .with(ModelKind::CheriV3),
                        );
                    }
                }
            }
        }
    }
    let mut findings: Vec<Finding> = a.findings.into_values().collect();
    findings.sort_by_key(|f| (f.pc, kind_key(f.kind)));
    Report {
        findings,
        funcs: prog.funcs.iter().map(|f| f.name.clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_interp::{lower, TargetInfo};

    fn lint(src: &str) -> Report {
        let unit = cheri_c::parse(src).expect("test programs parse");
        let lp64 = lower(&unit, TargetInfo::lp64());
        let cheri = lower(&unit, TargetInfo::cheri());
        analyze_ir(&lp64, &unit.structs, Some(&cheri))
    }

    #[test]
    fn clean_program_is_portable() {
        let r = lint(
            r#"
            int main(void) {
                int a[4];
                a[1] = 3;
                int *p = &a[1];
                assert(*p == 3);
                return 0;
            }
            "#,
        );
        assert!(r.portable(), "findings: {}", r.render());
        assert_eq!(r.idiom_counts(), [0; 8]);
    }

    #[test]
    fn bounded_loop_stays_portable() {
        let r = lint(
            r#"
            int main(void) {
                int i;
                int n = 5;
                int s = 0;
                for (i = 0; i < n; i++) { s = s + i; }
                assert(s == 10);
                return 0;
            }
            "#,
        );
        assert!(r.portable(), "findings: {}", r.render());
    }

    #[test]
    fn int_round_trip_through_plain_long_traps_cheri_only() {
        let r = lint(
            r#"
            int main(void) {
                int x = 5;
                long bits = (long)&x;
                int *p = (int*)bits;
                assert(*p == 5);
                return 0;
            }
            "#,
        );
        for m in ModelKind::ALL {
            let want = !matches!(m, ModelKind::CheriV2 | ModelKind::CheriV3);
            assert_eq!(r.works(m), want, "{m}: {}", r.render());
        }
        // `long bits = (long)&x` is the Int idiom (column 4).
        assert_eq!(r.idiom_counts()[4], 1, "{}", r.render());
    }

    #[test]
    fn out_of_bounds_deref_flags_checked_models() {
        let r = lint(
            r#"
            int main(void) {
                int a[2];
                a[0] = 1;
                int *p = a + 5;
                assert(*p == 0);
                return 0;
            }
            "#,
        );
        assert!(r.works(ModelKind::Pdp11), "{}", r.render());
        assert!(!r.works(ModelKind::HardBound), "{}", r.render());
        assert!(!r.works(ModelKind::Strict), "{}", r.render());
        assert!(!r.works(ModelKind::Relaxed), "{}", r.render());
        assert!(!r.works(ModelKind::CheriV2), "{}", r.render());
        assert!(!r.works(ModelKind::CheriV3), "{}", r.render());
    }

    #[test]
    fn deconst_cast_counts_and_flags_v2_store() {
        let r = lint(
            r#"
            int main(void) {
                char buf[4];
                buf[0] = 'a';
                const char *p = buf;
                char *q = (char*)p;
                *q = 'b';
                assert(buf[0] == 'b');
                return 0;
            }
            "#,
        );
        assert_eq!(r.idiom_counts()[0], 1, "DECONST: {}", r.render());
        assert!(!r.works(ModelKind::CheriV2), "{}", r.render());
        assert!(r.works(ModelKind::CheriV3), "{}", r.render());
        assert!(r.works(ModelKind::Pdp11), "{}", r.render());
    }

    #[test]
    fn division_by_possible_zero_is_flagged_everywhere() {
        let r = lint(
            r#"
            int helper(int n) { return 10 / n; }
            int main(void) { return helper(5) - 2; }
            "#,
        );
        assert!(
            r.findings
                .iter()
                .any(|f| matches!(f.kind, FindingKind::DivByZero)),
            "{}",
            r.render()
        );
        assert!(!r.works(ModelKind::Pdp11));
    }

    #[test]
    fn use_after_scope_flags_relaxed() {
        let r = lint(
            r#"
            int main(void) {
                int *p;
                {
                    int x = 3;
                    p = &x;
                }
                assert(*p == 3);
                return 0;
            }
            "#,
        );
        assert!(!r.works(ModelKind::Relaxed), "{}", r.render());
        assert!(r.works(ModelKind::Pdp11), "{}", r.render());
    }

    /// `memcpy` kills the destination's old abstract value: copying the
    /// bytes of a stripped integer over a slot that held a valid pointer
    /// must taint the slot — dereferencing it afterwards is the TagStrip
    /// pitfall, and the metadata-keyed and capability models must warn.
    #[test]
    fn memcpy_kills_destination_and_propagates_taint() {
        let r = lint(
            r#"
            int main(void) {
                int x = 7;
                int *p = &x;
                long raw = (long)&x;
                memcpy(&p, &raw, 8);
                assert(*p == 7);
                return 0;
            }
            "#,
        );
        assert!(!r.works(ModelKind::CheriV2), "{}", r.render());
        assert!(!r.works(ModelKind::CheriV3), "{}", r.render());
        assert!(r.works(ModelKind::Pdp11), "{}", r.render());
    }

    /// The dual: `memcpy` of a clean pointer's bytes replaces whatever
    /// garbage the destination held, so the copied pointer dereferences
    /// cleanly — the kill must not leave stale taint behind.
    #[test]
    fn memcpy_of_clean_pointer_overwrites_stale_value() {
        let r = lint(
            r#"
            int main(void) {
                int x = 7;
                int *src = &x;
                int *dst = (int*)(long)1;
                memcpy(&dst, &src, 8);
                assert(*dst == 7);
                return 0;
            }
            "#,
        );
        // The wild initializer is dead after the copy; only CHERI minds
        // the plain-long round trip in the initializer expression itself.
        assert!(r.works(ModelKind::Relaxed), "{}", r.render());
        assert!(r.works(ModelKind::HardBound), "{}", r.render());
    }

    /// Join precision: a pointer assigned on both branches of an `if`
    /// stays dereferenceable after the merge, and a branch-dependent
    /// index stays inside bounds the lint can prove.
    #[test]
    fn join_of_two_valid_pointers_stays_clean() {
        let r = lint(
            r#"
            int main(void) {
                int a = 1;
                int b = 2;
                int *p;
                if (a < b) { p = &a; } else { p = &b; }
                assert(*p == 1);
                return 0;
            }
            "#,
        );
        assert!(r.portable(), "{}", r.render());
    }
}
