//! `cheri-lint` — the command-line front end of the static analyzer.
//!
//! With no arguments it lints the full built-in suite — the eight Table 3
//! idiom cases, the two CRuby pitfalls, the 13-package synthetic corpus
//! and every `cheri-workloads` source — and prints the diagnostics. The
//! output is deterministic, which makes it a regression oracle:
//!
//! * `cheri-lint --update-golden PATH` writes the suite output to PATH;
//! * `cheri-lint --golden PATH` re-runs the suite and exits nonzero if
//!   the output differs from the committed file (used by CI);
//! * `cheri-lint FILE.c` lints one source file and prints its report.

use cheri_idioms::{cases, corpus, pitfalls, Idiom};
use cheri_interp::ModelKind;
use cheri_lint::analyze_source;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Corpus seed shared with the Table 1 tests and benches.
const CORPUS_SEED: u64 = 2026;

/// Lints one named program and appends its full diagnostics.
fn lint_section(out: &mut String, name: &str, src: &str) {
    let report = analyze_source(src).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
    let _ = writeln!(out, "== {name} ({} findings)", report.findings.len());
    out.push_str(&report.render());
    out.push('\n');
}

/// The workload sources, sized small — the analyzer never executes them,
/// so the parameters only pick loop-bound constants.
fn workloads() -> Vec<(&'static str, String)> {
    use cheri_workloads::sources as w;
    vec![
        ("treeadd", w::treeadd(4, 2)),
        ("bisort", w::bisort(32)),
        ("perimeter", w::perimeter(3)),
        ("mst", w::mst(8)),
        ("malloc-stress", w::malloc_stress(4, 2)),
        ("malloc-stress-oob", w::malloc_stress_oob(4, 2)),
        ("dhrystone", w::dhrystone(5)),
        ("tcpdump-baseline", w::tcpdump_baseline()),
        ("tcpdump-cheriv2", w::tcpdump_cheriv2()),
        ("tcpdump-cheriv3", w::tcpdump_cheriv3()),
        ("zlib", w::zlib(1024, true)),
    ]
}

/// Runs the whole built-in suite and returns its deterministic transcript.
fn suite() -> String {
    let mut out = String::new();
    out.push_str("cheri-lint golden diagnostics\n");
    out.push_str("(canonical cases, CRuby pitfalls, synthetic corpus, workload sources)\n\n");

    out.push_str("---- canonical idiom cases ----\n\n");
    for idiom in Idiom::ALL {
        lint_section(
            &mut out,
            &format!("case {}", idiom.label()),
            cases::source(idiom),
        );
    }
    for p in pitfalls::Pitfall::ALL {
        lint_section(
            &mut out,
            &format!("pitfall {}", p.name()),
            pitfalls::source(p),
        );
    }

    out.push_str("---- synthetic corpus (seed 2026) ----\n\n");
    for pkg in corpus::generate_corpus(CORPUS_SEED) {
        let report = analyze_source(&pkg.source)
            .unwrap_or_else(|e| panic!("corpus {}: parse error: {e}", pkg.spec.name));
        let counts = report.idiom_counts();
        let _ = write!(out, "{:<14}", pkg.spec.name);
        for (idiom, n) in Idiom::ALL.iter().zip(counts) {
            let _ = write!(out, " {}={n}", idiom.label());
        }
        let works: Vec<&str> = ModelKind::ALL
            .iter()
            .filter(|&&m| report.works(m))
            .map(|m| m.display_name())
            .collect();
        let verdict = if report.portable() {
            "portable".to_string()
        } else {
            format!("runs under [{}]", works.join(","))
        };
        let _ = writeln!(out, " | {verdict}");
    }
    out.push('\n');

    out.push_str("---- workload sources ----\n\n");
    for (name, src) in workloads() {
        lint_section(&mut out, name, &src);
    }
    out
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cheri-lint                      lint the built-in suite to stdout\n\
         \x20      cheri-lint FILE.c             lint one source file\n\
         \x20      cheri-lint --golden PATH      compare the suite against a golden file\n\
         \x20      cheri-lint --update-golden PATH  rewrite the golden file"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {
            print!("{}", suite());
            ExitCode::SUCCESS
        }
        [flag, path] if flag == "--update-golden" => {
            let text = suite();
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("cheri-lint: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("cheri-lint: wrote {} lines to {path}", text.lines().count());
            ExitCode::SUCCESS
        }
        [flag, path] if flag == "--golden" => {
            let want = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cheri-lint: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let got = suite();
            if got == want {
                eprintln!("cheri-lint: diagnostics match {path}");
                return ExitCode::SUCCESS;
            }
            // Report the first divergence with a line of context; dumping
            // both full transcripts would drown the CI log.
            let (mut line_no, mut shown) = (0usize, false);
            for (a, b) in got.lines().zip(want.lines()) {
                line_no += 1;
                if a != b {
                    eprintln!(
                        "cheri-lint: golden mismatch at line {line_no}:\n  golden: {b}\n  actual: {a}"
                    );
                    shown = true;
                    break;
                }
            }
            if !shown {
                eprintln!(
                    "cheri-lint: golden mismatch: lengths differ ({} vs {} lines)",
                    got.lines().count(),
                    want.lines().count()
                );
            }
            eprintln!("cheri-lint: re-run with --update-golden {path} after reviewing the diff");
            ExitCode::FAILURE
        }
        [path] if !path.starts_with('-') => match std::fs::read_to_string(path) {
            Ok(src) => match analyze_source(&src) {
                Ok(report) => {
                    print!("{}", report.render());
                    if report.portable() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("cheri-lint: {path}: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("cheri-lint: cannot read {path}: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
