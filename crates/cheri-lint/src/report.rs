//! Lint findings and per-program verdicts.

use crate::lattice::ModelSet;
use cheri_idioms::Idiom;
use cheri_interp::ModelKind;
use std::fmt::Write as _;

/// What a finding is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// A Table 1 idiom occurrence (the static analog of
    /// [`cheri_idioms::analyze_unit`]'s counts).
    Idiom(Idiom),
    /// A dereference that may trap under the listed models.
    Deref,
    /// Pointer arithmetic that may trap at the operation itself
    /// (CHERIv2 bounds consumption / capability arithmetic).
    Arith,
    /// A possibly-zero divisor (or `i64::MIN % -1`).
    DivByZero,
    /// Possible signed 64-bit overflow — wraps in the interpreters, traps
    /// on the compiled-VM substrates.
    Overflow,
    /// An `assert` that statically always fails.
    AssertFail,
    /// A layout-sensitive constant (`sizeof`/`offsetof`) whose value
    /// differs between the LP64 and CHERI lowerings.
    Layout,
    /// A nondeterministic input (`clock`) — execution may differ between
    /// substrates regardless of memory model.
    Nondet,
    /// The analysis gave up on this function (budget, irregular stack).
    Diverged,
}

impl FindingKind {
    /// Short diagnostic label.
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::Idiom(i) => i.label(),
            FindingKind::Deref => "deref",
            FindingKind::Arith => "ptr-arith",
            FindingKind::DivByZero => "div-by-zero",
            FindingKind::Overflow => "overflow",
            FindingKind::AssertFail => "assert-fail",
            FindingKind::Layout => "layout",
            FindingKind::Nondet => "nondet",
            FindingKind::Diverged => "diverged",
        }
    }
}

/// One diagnostic: an op (pc) in a function that the listed models may
/// trap on, or an idiom occurrence worth an escape-hatch annotation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Containing function (source name).
    pub func: String,
    /// Op index into the lowered program.
    pub pc: usize,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (0 when unknown).
    pub col: u32,
    /// What was found.
    pub kind: FindingKind,
    /// The models that may trap here (empty for pure idiom tallies that
    /// every model tolerates).
    pub may: ModelSet,
}

/// The lint result for one translation unit.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, in (function, pc) order, deduplicated by `(pc, kind)`.
    pub findings: Vec<Finding>,
    /// Names of the analyzed functions.
    pub funcs: Vec<String>,
}

impl Report {
    /// Idiom occurrence counts in [`Idiom::ALL`] order — bit-compatible
    /// with the AST analyzer's Table 1 counts.
    pub fn idiom_counts(&self) -> [u64; 8] {
        let mut counts = [0u64; 8];
        for f in &self.findings {
            if let FindingKind::Idiom(i) = f.kind {
                counts[Idiom::ALL.iter().position(|&k| k == i).expect("idiom")] += 1;
            }
        }
        counts
    }

    /// The idiom findings, for per-line reporting.
    pub fn idiom_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| matches!(f.kind, FindingKind::Idiom(_)))
    }

    /// Whether the program is predicted to run to completion under `m`:
    /// no finding names the model and the analysis did not give up.
    pub fn works(&self, m: ModelKind) -> bool {
        self.findings.iter().all(|f| !f.may.contains(m))
    }

    /// Whether the compiled-VM substrates may diverge from the wrapping
    /// interpreters (overflow traps).
    pub fn vm_clean(&self) -> bool {
        self.findings.iter().all(|f| !f.may.has_vm())
    }

    /// The lint's portability verdict: predicted to behave identically on
    /// **all** substrates — every model runs it, the VM cannot overflow-
    /// trap, and there is no nondeterministic input.
    pub fn portable(&self) -> bool {
        ModelKind::ALL.iter().all(|&m| self.works(m))
            && self.vm_clean()
            && !self
                .findings
                .iter()
                .any(|f| matches!(f.kind, FindingKind::Nondet | FindingKind::Diverged))
    }

    /// The findings that make the program non-portable (everything except
    /// model-neutral idiom tallies).
    pub fn blocking(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| {
            !f.may.is_empty() || matches!(f.kind, FindingKind::Nondet | FindingKind::Diverged)
        })
    }

    /// Renders compiler-style source-line diagnostics.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let mods = if f.may == ModelSet::everything() {
                "all".to_string()
            } else {
                let mut names: Vec<&str> =
                    f.may.models().iter().map(|m| m.display_name()).collect();
                if f.may.has_vm() {
                    names.push("vm");
                }
                names.join(",")
            };
            let _ = match f.kind {
                FindingKind::Idiom(i) => writeln!(
                    out,
                    "{}:{}: idiom {} in `{}`{}",
                    f.line,
                    f.col,
                    i.label(),
                    f.func,
                    if f.may.is_empty() {
                        String::new()
                    } else {
                        format!(" (may trap: {mods})")
                    }
                ),
                _ => writeln!(
                    out,
                    "{}:{}: {} in `{}` may trap: {}",
                    f.line,
                    f.col,
                    f.kind.label(),
                    f.func,
                    mods
                ),
            };
        }
        let verdict = if self.portable() {
            "portable: behaves identically on every substrate".to_string()
        } else {
            let works: Vec<&str> = ModelKind::ALL
                .iter()
                .filter(|&&m| self.works(m))
                .map(|m| m.display_name())
                .collect();
            format!(
                "not portable; predicted to run under: [{}]",
                works.join(",")
            )
        };
        let _ = writeln!(out, "{verdict}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_portable() {
        let r = Report::default();
        assert!(r.portable());
        assert!(r.vm_clean());
        for m in ModelKind::ALL {
            assert!(r.works(m));
        }
        assert_eq!(r.idiom_counts(), [0; 8]);
        assert!(r.render().contains("portable"));
    }

    #[test]
    fn model_findings_break_works_but_not_others() {
        let mut r = Report::default();
        r.findings.push(Finding {
            func: "f".into(),
            pc: 3,
            line: 2,
            col: 1,
            kind: FindingKind::Deref,
            may: ModelSet::EMPTY.with(ModelKind::CheriV2),
        });
        assert!(!r.works(ModelKind::CheriV2));
        assert!(r.works(ModelKind::CheriV3));
        assert!(!r.portable());
        assert!(r.render().contains("deref"));
    }

    #[test]
    fn neutral_idiom_findings_keep_portability() {
        let mut r = Report::default();
        r.findings.push(Finding {
            func: "f".into(),
            pc: 0,
            line: 1,
            col: 0,
            kind: FindingKind::Idiom(Idiom::Sub),
            may: ModelSet::EMPTY,
        });
        assert!(
            r.portable(),
            "an idiom every model tolerates is not blocking"
        );
        assert_eq!(r.idiom_counts()[2], 1, "SUB is column 2");
        assert_eq!(r.blocking().count(), 0);
    }
}
