//! Type layout, parameterized by the memory model's pointer representation.
//!
//! The same source program has *different struct layouts* under different
//! models: a PDP-11 pointer is 8 bytes, a CHERI capability is 32 bytes and
//! 32-byte aligned (paper §4.1 discusses exactly this cost for arrays of
//! fat pointers). `sizeof` therefore resolves here, not in the front end.

use cheri_c::{StructDef, Type};

/// Pointer representation parameters supplied by a memory model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TargetInfo {
    /// Bytes of storage for a pointer.
    pub ptr_size: u64,
    /// Alignment of pointer storage.
    pub ptr_align: u64,
    /// `true` when `intptr_t`/`intcap_t` are capability-sized (CHERI: the
    /// `intptr_t` typedef refers to `intcap_t`, §5.1).
    pub cap_intptr: bool,
}

impl TargetInfo {
    /// The conventional 64-bit layout (PDP-11-like and the fat-pointer
    /// schemes, whose metadata lives out of band).
    pub fn lp64() -> TargetInfo {
        TargetInfo {
            ptr_size: 8,
            ptr_align: 8,
            cap_intptr: false,
        }
    }

    /// The CHERI pure-capability layout: 256-bit aligned capabilities.
    pub fn cheri() -> TargetInfo {
        TargetInfo {
            ptr_size: 32,
            ptr_align: 32,
            cap_intptr: true,
        }
    }
}

/// Size of `ty` in bytes under `ti`.
///
/// # Panics
///
/// Panics on `void` (like `sizeof(void)` in strict C) or an unknown struct
/// id, both of which the front end prevents.
pub fn size_of(ty: &Type, structs: &[StructDef], ti: &TargetInfo) -> u64 {
    match ty {
        Type::Void => panic!("sizeof(void)"),
        Type::Int { width, .. } => *width as u64,
        Type::IntPtr { .. } | Type::IntCap { .. } => {
            if ti.cap_intptr {
                32
            } else {
                8
            }
        }
        Type::Ptr { .. } => ti.ptr_size,
        Type::Array { elem, len } => size_of(elem, structs, ti) * len,
        Type::Struct(id) => {
            let sd = &structs[*id];
            if sd.is_union {
                let size = sd
                    .fields
                    .iter()
                    .map(|f| size_of(&f.ty, structs, ti))
                    .max()
                    .unwrap_or(0);
                round_up(size, align_of(ty, structs, ti))
            } else {
                let mut off = 0;
                for f in &sd.fields {
                    let a = align_of(&f.ty, structs, ti);
                    off = round_up(off, a) + size_of(&f.ty, structs, ti);
                }
                round_up(off.max(1), align_of(ty, structs, ti))
            }
        }
    }
}

/// Alignment of `ty` in bytes under `ti`.
pub fn align_of(ty: &Type, structs: &[StructDef], ti: &TargetInfo) -> u64 {
    match ty {
        Type::Void => 1,
        Type::Int { width, .. } => *width as u64,
        Type::IntPtr { .. } | Type::IntCap { .. } => {
            if ti.cap_intptr {
                32
            } else {
                8
            }
        }
        Type::Ptr { .. } => ti.ptr_align,
        Type::Array { elem, .. } => align_of(elem, structs, ti),
        Type::Struct(id) => structs[*id]
            .fields
            .iter()
            .map(|f| align_of(&f.ty, structs, ti))
            .max()
            .unwrap_or(1),
    }
}

/// Byte offset and type of field `name` in struct `id` (0 for all union
/// members — the §3.2 aliasing escape hatch).
///
/// # Panics
///
/// Panics if the field does not exist (prevented by the front end).
pub fn field_offset(structs: &[StructDef], id: usize, name: &str, ti: &TargetInfo) -> (u64, Type) {
    let sd = &structs[id];
    if sd.is_union {
        let f = sd.field(name).expect("checked field");
        return (0, f.ty.clone());
    }
    let mut off = 0;
    for f in &sd.fields {
        let a = align_of(&f.ty, structs, ti);
        off = round_up(off, a);
        if f.name == name {
            return (off, f.ty.clone());
        }
        off += size_of(&f.ty, structs, ti);
    }
    panic!("field `{name}` not found (front end should have rejected)");
}

fn round_up(v: u64, align: u64) -> u64 {
    if align == 0 {
        v
    } else {
        v.next_multiple_of(align)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_c::parse;

    fn structs_of(src: &str) -> Vec<StructDef> {
        parse(src).unwrap().structs
    }

    #[test]
    fn scalar_sizes() {
        let ti = TargetInfo::lp64();
        assert_eq!(size_of(&Type::char_(), &[], &ti), 1);
        assert_eq!(size_of(&Type::int(), &[], &ti), 4);
        assert_eq!(size_of(&Type::long(), &[], &ti), 8);
        assert_eq!(size_of(&Type::ptr_to(Type::int()), &[], &ti), 8);
    }

    #[test]
    fn cheri_pointers_are_4x() {
        let ti = TargetInfo::cheri();
        assert_eq!(size_of(&Type::ptr_to(Type::int()), &[], &ti), 32);
        assert_eq!(align_of(&Type::ptr_to(Type::int()), &[], &ti), 32);
        assert_eq!(size_of(&Type::IntPtr { signed: true }, &[], &ti), 32);
        assert_eq!(
            size_of(&Type::IntPtr { signed: true }, &[], &TargetInfo::lp64()),
            8
        );
    }

    #[test]
    fn struct_layout_with_padding() {
        let ss = structs_of("struct s { char c; long l; int i; };");
        let ti = TargetInfo::lp64();
        assert_eq!(field_offset(&ss, 0, "c", &ti).0, 0);
        assert_eq!(field_offset(&ss, 0, "l", &ti).0, 8);
        assert_eq!(field_offset(&ss, 0, "i", &ti).0, 16);
        assert_eq!(size_of(&Type::Struct(0), &ss, &ti), 24);
        assert_eq!(align_of(&Type::Struct(0), &ss, &ti), 8);
    }

    #[test]
    fn pointer_fields_blow_up_under_cheri() {
        // The Olden effect: a list node quadruples its pointer footprint.
        let ss = structs_of("struct node { long v; struct node *next; };");
        assert_eq!(size_of(&Type::Struct(0), &ss, &TargetInfo::lp64()), 16);
        assert_eq!(size_of(&Type::Struct(0), &ss, &TargetInfo::cheri()), 64);
    }

    #[test]
    fn union_members_share_offset_zero() {
        let ss = structs_of("union u { long l; char b[8]; int i; };");
        let ti = TargetInfo::lp64();
        assert_eq!(field_offset(&ss, 0, "l", &ti).0, 0);
        assert_eq!(field_offset(&ss, 0, "b", &ti).0, 0);
        assert_eq!(size_of(&Type::Struct(0), &ss, &ti), 8);
    }

    #[test]
    fn arrays_multiply() {
        let ti = TargetInfo::lp64();
        let a = Type::Array {
            elem: Box::new(Type::int()),
            len: 10,
        };
        assert_eq!(size_of(&a, &[], &ti), 40);
        assert_eq!(align_of(&a, &[], &ti), 4);
    }

    #[test]
    fn empty_struct_is_one_byte() {
        let ss = structs_of("struct e { };");
        assert_eq!(size_of(&Type::Struct(0), &ss, &TargetInfo::lp64()), 1);
    }
}
